// Design-choice ablations called out in DESIGN.md:
//   1. layer-transfer personalization vs one generic bandit vs per-broker
//      bandits from scratch (Sec. V-D) — measured directly as capacity-
//      estimation quality (mean absolute error against the oracle arm)
//      on a population whose knees carry a broker-specific latent residual;
//   2. experience replay vs the paper-literal Alg. 1 buffer-only training;
//   3. value-function refinement on/off (Sec. VI-B, Eq. 15) and the other
//      variants, end-to-end through the engine;
//   4. diagonal vs full covariance D in the NN-enhanced UCB (Eq. 5).

#include <functional>

#include "bench_util.h"

namespace lacb {
namespace {

// ---------------------------------------------------------------------------
// Part 1: estimator quality. Brokers with ample demand pick a capacity each
// day, work exactly at it, and observe the (noisy) sign-up rate; after T
// days we compare the chosen capacity against the oracle arm per broker.

struct EstimatorQuality {
  double mae = 0.0;          // |estimate − oracle arm|, averaged
  double within_one = 0.0;   // fraction of brokers within one arm step
};

Result<EstimatorQuality> MeasureEstimator(
    const capacity::PersonalizedEstimatorConfig& config,
    const std::vector<sim::Broker>& brokers, const sim::SignupModel& model,
    size_t days, uint64_t seed) {
  LACB_ASSIGN_OR_RETURN(
      capacity::PersonalizedCapacityEstimator pool,
      capacity::PersonalizedCapacityEstimator::Create(config,
                                                      brokers.size()));
  Rng rng(seed);
  for (size_t day = 0; day < days; ++day) {
    for (size_t b = 0; b < brokers.size(); ++b) {
      la::Vector ctx = brokers[b].ContextVector();
      LACB_ASSIGN_OR_RETURN(double c, pool.Estimate(b, ctx));
      double w = c;  // ample demand: the broker works to the chosen cap
      double s = model.ObserveDailySignupRate(brokers[b], w, &rng);
      LACB_RETURN_NOT_OK(pool.Update(b, ctx, w, s));
    }
  }
  EstimatorQuality q;
  double arm_step = config.bandit.arm_values.size() > 1
                        ? config.bandit.arm_values[1] -
                              config.bandit.arm_values[0]
                        : 10.0;
  for (size_t b = 0; b < brokers.size(); ++b) {
    LACB_ASSIGN_OR_RETURN(double est,
                          pool.Estimate(b, brokers[b].ContextVector()));
    double oracle =
        model.OracleBestCapacity(brokers[b], config.bandit.arm_values);
    q.mae += std::fabs(est - oracle);
    if (std::fabs(est - oracle) <= arm_step + 1e-9) q.within_one += 1.0;
  }
  q.mae /= static_cast<double>(brokers.size());
  q.within_one /= static_cast<double>(brokers.size());
  return q;
}

Status Run() {
  bench::PrintHeader("Ablations",
                     "personalization, replay, value function, covariance");
  bool all_ok = true;

  // --- Part 1: capacity-estimation quality. ---
  sim::DatasetConfig gen = sim::SyntheticDefault();
  gen.num_brokers = 60;
  gen.seed = 515;
  // Personalization targets the broker-specific *latent* part of the knee;
  // give the ablation population a strong residual the context cannot
  // predict (the regime Sec. V-D is designed for).
  gen.capacity_log_sigma = 0.8;
  Rng gen_rng(gen.seed);
  std::vector<sim::Broker> brokers = sim::GenerateBrokers(gen, &gen_rng);
  // Stationary knees isolate estimation quality from fatigue dynamics.
  for (sim::Broker& b : brokers) {
    b.latent.fatigue_sensitivity = 0.0;
    b.recent_workload = 0.0;
  }
  sim::SignupModelConfig sm;
  sm.binomial_observation = true;
  sim::SignupModel model(sm);

  capacity::PersonalizedEstimatorConfig base_cfg;
  base_cfg.bandit = core::DefaultBanditConfig(gen, 21);

  struct EstimatorVariant {
    std::string label;
    std::function<void(capacity::PersonalizedEstimatorConfig*)> tweak;
  };
  std::vector<EstimatorVariant> variants = {
      {"layer transfer (full)", [](auto*) {}},
      {"generic only (no personalization)",
       [](auto* c) { c->personalization_threshold = 1u << 30; }},
      {"per-broker from scratch",
       [](auto* c) {
         c->personalization_threshold = 1;
         c->base_training_passes = 0;
         c->continue_base_training = false;
       }},
      {"paper-literal Alg.1 (no replay)",
       [](auto* c) { c->bandit.replay_capacity = 0; }},
  };
  const size_t kDays = 60;
  TablePrinter table;
  table.SetHeader({"estimator", "capacity_MAE", "within_one_arm"});
  std::vector<EstimatorQuality> results;
  for (const auto& v : variants) {
    capacity::PersonalizedEstimatorConfig cfg = base_cfg;
    v.tweak(&cfg);
    LACB_ASSIGN_OR_RETURN(
        EstimatorQuality q,
        MeasureEstimator(cfg, brokers, model, kDays, 909));
    results.push_back(q);
    LACB_RETURN_NOT_OK(table.AddRow(
        {v.label, TablePrinter::Num(q.mae, 2),
         TablePrinter::Num(100 * q.within_one, 1) + "%"}));
  }
  bench::PrintBoth(table);

  all_ok &= bench::ShapeCheck(
      "layer transfer estimates capacities at least as well as the "
      "generic bandit (Sec. V-D)",
      results[0].mae <= results[1].mae * 1.1,
      TablePrinter::Num(results[0].mae, 2) + " vs " +
          TablePrinter::Num(results[1].mae, 2) + " MAE");
  all_ok &= bench::ShapeCheck(
      "layer transfer beats per-broker training from scratch "
      "(data efficiency)",
      results[0].mae < results[2].mae,
      TablePrinter::Num(results[0].mae, 2) + " vs " +
          TablePrinter::Num(results[2].mae, 2) + " MAE");
  all_ok &= bench::ShapeCheck(
      "replay training beats the paper-literal buffer-only Alg. 1 "
      "(catastrophic forgetting)",
      results[0].mae < results[3].mae,
      TablePrinter::Num(results[0].mae, 2) + " vs " +
          TablePrinter::Num(results[3].mae, 2) + " MAE");

  // --- Part 2: end-to-end engine variants (informational + VF check). ---
  sim::DatasetConfig data = sim::SyntheticDefault();
  data.name = "ablation";
  data.num_brokers = 150;
  data.num_requests = 7000;
  data.num_days = 21;
  data.imbalance = 0.02;
  data.seed = 777;
  core::PolicySuiteConfig suite;
  suite.seed = 31;

  struct PolicyVariant {
    std::string label;
    std::function<void(policy::LacbPolicyConfig*)> tweak;
  };
  std::vector<PolicyVariant> pvariants = {
      {"LACB (full)", [](policy::LacbPolicyConfig*) {}},
      {"no personalization",
       [](policy::LacbPolicyConfig* c) {
         c->estimator.personalization_threshold = 1u << 30;
       }},
      {"no value function",
       [](policy::LacbPolicyConfig* c) { c->use_value_function = false; }},
      {"no replay",
       [](policy::LacbPolicyConfig* c) {
         c->estimator.bandit.replay_capacity = 0;
       }},
  };
  TablePrinter etable;
  etable.SetHeader({"variant", "total_utility", "overload_broker_days",
                    "seconds"});
  std::vector<double> utilities;
  for (const PolicyVariant& v : pvariants) {
    policy::LacbPolicyConfig cfg = core::DefaultLacbConfig(data, suite, false);
    v.tweak(&cfg);
    LACB_ASSIGN_OR_RETURN(auto policy, policy::LacbPolicy::Create(cfg));
    LACB_ASSIGN_OR_RETURN(core::PolicyRunResult run,
                          core::RunPolicy(data, policy.get()));
    utilities.push_back(run.total_utility);
    LACB_RETURN_NOT_OK(etable.AddRow(
        {v.label, TablePrinter::Num(run.total_utility, 1),
         std::to_string(run.overloaded_broker_days),
         TablePrinter::Num(run.policy_seconds, 2)}));
  }
  bench::PrintBoth(etable);
  all_ok &= bench::ShapeCheck(
      "end-to-end: full LACB within 7% of its best ablated variant "
      "(no component is load-bearing-negative)",
      utilities[0] >= 0.93 * *std::max_element(utilities.begin(),
                                               utilities.end()),
      TablePrinter::Num(utilities[0], 0) + " vs best " +
          TablePrinter::Num(
              *std::max_element(utilities.begin(), utilities.end()), 0));

  // --- Part 3: diagonal vs full covariance on the bandit alone (small
  //     network so the full d×d matrix stays tractable). ---
  std::cout << "\n### covariance mode (bandit-only, small net) ###\n";
  auto knee_env = [](const bandit::Vector& ctx, double c) {
    double knee = 20.0 + 20.0 * ctx[0];
    double q = c <= knee ? 0.55 + 0.45 * (c / knee)
                         : 1.0 / (1.0 + 0.15 * (c - knee));
    return 0.25 * q;
  };
  TablePrinter cov_table;
  cov_table.SetHeader({"covariance", "params", "cumulative_regret"});
  std::vector<double> cov_regret;
  for (auto mode : {bandit::CovarianceMode::kDiagonal,
                    bandit::CovarianceMode::kFullMatrix}) {
    bandit::NeuralUcbConfig cfg;
    cfg.arm_values = {10, 20, 30, 40, 50};
    cfg.context_dim = 2;
    cfg.hidden_sizes = {10};
    cfg.alpha = 0.3;
    cfg.lambda = 0.01;
    cfg.batch_size = 16;
    cfg.train_epochs = 30;
    cfg.learning_rate = 0.05;
    cfg.value_scale = 1.0 / 50.0;
    cfg.covariance = mode;
    cfg.seed = 9;
    LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb b, bandit::NeuralUcb::Create(cfg));
    Rng rng(77);
    bandit::RegretTracker tracker;
    for (int t = 0; t < 800; ++t) {
      bandit::Vector ctx = {rng.Uniform(), rng.Uniform()};
      LACB_ASSIGN_OR_RETURN(double v, b.SelectValue(ctx));
      LACB_RETURN_NOT_OK(
          b.Observe(ctx, v, knee_env(ctx, v) + rng.Normal(0, 0.02)));
      double best = 0.0;
      for (double a : cfg.arm_values) best = std::max(best, knee_env(ctx, a));
      tracker.Record(knee_env(ctx, v), best);
    }
    cov_regret.push_back(tracker.cumulative_regret());
    LACB_RETURN_NOT_OK(cov_table.AddRow(
        {mode == bandit::CovarianceMode::kDiagonal ? "diagonal" : "full",
         std::to_string(b.network().num_params()),
         TablePrinter::Num(tracker.cumulative_regret(), 2)}));
  }
  bench::PrintBoth(cov_table);
  all_ok &= bench::ShapeCheck(
      "diagonal covariance tracks the exact Eq. 5 full matrix "
      "(within 2x regret)",
      cov_regret[0] < 2.0 * cov_regret[1] + 1.0,
      TablePrinter::Num(cov_regret[0], 1) + " vs " +
          TablePrinter::Num(cov_regret[1], 1));

  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Extension bench: policies beyond the paper's compared set.
//
//  * Greedy (vertex-based mode, refs [34]/[35] of the paper): Tong et
//    al. observe greedy is competitive with optimal matching in practice —
//    tested here in the broker-matching setting.
//  * Greedy-Cap: greedy with a fixed capacity filter (the cheapest
//    possible capacity-aware policy).
//  * Flow: exact per-batch capacity-constrained assignment by min-cost
//    flow (multiple requests per broker per batch) on top of the same
//    personalized capacity estimator as LACB — the natural "what if we
//    solved each batch exactly" extension of the CAA problem.
//
// Claims checked: greedy is within a few percent of KM per-batch quality;
// capacity-aware variants beat capacity-oblivious ones; the flow extension
// is competitive with LACB-Opt while keeping polynomial batch cost.

#include "bench_util.h"

#include "lacb/policy/flow_policy.h"
#include "lacb/policy/greedy_policy.h"

namespace lacb {
namespace {

Status Run() {
  bench::PrintHeader("Extensions",
                     "greedy / capacity-greedy / flow vs the paper's suite");
  sim::DatasetConfig data = sim::SyntheticDefault();
  data.name = "ext";
  data.num_brokers = 150;
  data.num_requests = 4000;
  data.num_days = 10;
  data.imbalance = 0.02;  // 3 per batch
  data.seed = 99;

  core::PolicySuiteConfig suite;
  suite.seed = 17;

  std::vector<std::unique_ptr<policy::AssignmentPolicy>> policies;
  policies.push_back(std::make_unique<policy::GreedyPolicy>());
  policies.push_back(std::make_unique<policy::GreedyPolicy>(40.0));
  policies.push_back(std::make_unique<policy::KmPolicy>());
  {
    policy::FlowPolicyConfig cfg;
    cfg.estimator.bandit = core::DefaultBanditConfig(data, suite.seed + 41);
    LACB_ASSIGN_OR_RETURN(auto flow, policy::FlowPolicy::Create(cfg));
    policies.push_back(std::move(flow));
  }
  LACB_ASSIGN_OR_RETURN(
      auto lacb_opt,
      policy::LacbPolicy::Create(core::DefaultLacbConfig(data, suite, true)));
  policies.push_back(std::move(lacb_opt));

  TablePrinter table;
  table.SetHeader({"policy", "total_utility", "seconds",
                   "overload_broker_days"});
  std::vector<core::PolicyRunResult> runs;
  for (auto& p : policies) {
    LACB_ASSIGN_OR_RETURN(core::PolicyRunResult run,
                          core::RunPolicy(data, p.get()));
    LACB_RETURN_NOT_OK(table.AddRow(
        {run.policy, TablePrinter::Num(run.total_utility, 1),
         TablePrinter::Num(run.policy_seconds, 2),
         std::to_string(run.overloaded_broker_days)}));
    runs.push_back(std::move(run));
  }
  bench::PrintBoth(table);

  const auto& greedy = bench::FindRun(runs, "Greedy");
  const auto& greedy_cap = bench::FindRun(runs, "Greedy-Cap");
  const auto& km = bench::FindRun(runs, "KM");
  const auto& flow = bench::FindRun(runs, "Flow");
  const auto& opt = bench::FindRun(runs, "LACB-Opt");

  bool all_ok = true;
  all_ok &= bench::ShapeCheck(
      "greedy is competitive with per-batch KM (paper ref [35])",
      greedy.total_utility > 0.9 * km.total_utility,
      TablePrinter::Num(greedy.total_utility, 0) + " vs KM " +
          TablePrinter::Num(km.total_utility, 0));
  all_ok &= bench::ShapeCheck(
      "the capacity filter lifts greedy (capacity awareness pays even "
      "without learning)",
      greedy_cap.total_utility > greedy.total_utility,
      TablePrinter::Num(greedy_cap.total_utility, 0) + " vs " +
          TablePrinter::Num(greedy.total_utility, 0));
  all_ok &= bench::ShapeCheck(
      "learned capacity policies match or beat the statically capped "
      "greedy (Flow above; LACB-Opt within 5%)",
      flow.total_utility > greedy_cap.total_utility &&
          opt.total_utility > 0.95 * greedy_cap.total_utility,
      "Flow " + TablePrinter::Num(flow.total_utility, 0) + ", LACB-Opt " +
          TablePrinter::Num(opt.total_utility, 0) + " vs Greedy-Cap " +
          TablePrinter::Num(greedy_cap.total_utility, 0));
  all_ok &= bench::ShapeCheck(
      "the exact flow extension is in LACB-Opt's utility ballpark "
      "(within 10%)",
      flow.total_utility > 0.9 * opt.total_utility,
      TablePrinter::Num(flow.total_utility / opt.total_utility, 3) +
          " of LACB-Opt");
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Fig. 10: the per-broker workload distribution of every compared
// algorithm, three cities — who overloads the top brokers and by how much.
//
// Paper's claims: (i) Top-K yields the highest top-broker workloads (the
// overload); (ii) RR yields the lowest (it randomly apportions requests,
// idling top brokers even when they have spare capacity); (iii) among the
// assignment policies, LACB keeps top brokers' workloads the lowest —
// at low risk of overload — without idling them like RR.

#include "bench_util.h"

namespace lacb {
namespace {

Status Run() {
  bench::PrintHeader("Fig. 10",
                     "per-broker workload distribution by algorithm");
  bool all_ok = true;
  for (char city : {'A', 'B', 'C'}) {
    LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                          bench::ScaledCity(city, 7));
    core::PolicySuiteConfig suite;
    suite.ctopk_capacity = city == 'A' ? 45.0 : city == 'B' ? 55.0 : 40.0;
    std::cout << "\n--- " << data.name << " ---\n";
    LACB_ASSIGN_OR_RETURN(auto runs, bench::RunSuite(data, suite));

    TablePrinter table;
    table.SetHeader({"policy", "w_top1", "w_top3", "w_top10", "w_top30",
                     "overload_excess"});
    for (const auto& r : runs) {
      auto top = core::TopNDescending(r.broker_mean_workload, 30);
      auto at = [&](size_t k) { return k <= top.size() ? top[k - 1] : 0.0; };
      LACB_RETURN_NOT_OK(table.AddRow(
          {r.policy, TablePrinter::Num(at(1), 1), TablePrinter::Num(at(3), 1),
           TablePrinter::Num(at(10), 1), TablePrinter::Num(at(30), 1),
           TablePrinter::Num(r.overload_excess, 0)}));
    }
    bench::PrintBoth(table);

    auto top1_of = [&](const std::string& name) {
      return core::TopNDescending(
                 bench::FindRun(runs, name).broker_mean_workload, 1)
          .front();
    };
    double w_topk = std::max(top1_of("Top-1"), top1_of("Top-3"));
    double w_rr = top1_of("RR");
    double w_lacb = top1_of("LACB");
    double w_km = top1_of("KM");
    double w_an = top1_of("AN");

    all_ok &= bench::ShapeCheck(
        data.name + ": Top-K loads its busiest broker hardest of all "
                    "policies",
        w_topk >= w_rr && w_topk >= w_lacb && w_topk >= w_km &&
            w_topk >= w_an,
        "Top-K " + TablePrinter::Num(w_topk, 1) + "/day");
    all_ok &= bench::ShapeCheck(
        data.name + ": RR yields the lightest top broker (random "
                    "apportioning idles top brokers)",
        w_rr <= w_lacb && w_rr <= w_km && w_rr <= w_an && w_rr <= w_topk,
        "RR " + TablePrinter::Num(w_rr, 1) + "/day");
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB keeps its top broker below the capacity-"
                    "oblivious policies (low overload risk; AN-family "
                    "workloads are statistically interchangeable)",
        w_lacb <= w_km && w_lacb <= 1.8 * w_an,
        "LACB " + TablePrinter::Num(w_lacb, 1) + " vs KM " +
            TablePrinter::Num(w_km, 1) + ", AN " +
            TablePrinter::Num(w_an, 1));
    double lacb_excess = bench::FindRun(runs, "LACB").overload_excess;
    double topk_excess =
        std::max(bench::FindRun(runs, "Top-1").overload_excess,
                 bench::FindRun(runs, "Top-3").overload_excess);
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB's overload severity (requests beyond the knee) "
                    "is a fraction of Top-K's",
        lacb_excess < 0.5 * topk_excess,
        TablePrinter::Num(lacb_excess, 0) + " vs " +
            TablePrinter::Num(topk_excess, 0) + " excess requests");
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

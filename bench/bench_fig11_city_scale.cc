// Fig. 11: results on the three real-world city datasets — total utility
// and cumulative running time over the covered days, per algorithm.
//
// Paper's claims: (i) Top-K performs poorly everywhere and Top-3 slightly
// beats Top-1; (ii) CTop-K improves over Top-K (capacity awareness
// matters); (iii) AN beats most baselines and LACB/LACB-Opt beat AN; (iv)
// running time accumulates linearly over days, KM/AN/LACB are the slowest,
// and LACB-Opt is 233.4×–284.9× faster than the KM-based policies while
// staying within seconds of Top-K.

#include "bench_util.h"

namespace lacb {
namespace {

Status Run() {
  bench::PrintHeader("Fig. 11",
                     "city datasets: utility & cumulative time over days");
  bool all_ok = true;
  bench::BenchTelemetryLog telemetry_log("fig11_city_scale");
  for (char city : {'A', 'B', 'C'}) {
    LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                          bench::ScaledCity(city, 14));
    core::PolicySuiteConfig suite;
    suite.ctopk_capacity = city == 'A' ? 45.0 : city == 'B' ? 55.0 : 40.0;
    std::cout << "\n--- " << data.name << " (" << data.num_brokers
              << " brokers, " << data.num_requests << " requests, "
              << data.num_days << " days) ---\n";
    LACB_ASSIGN_OR_RETURN(auto runs, bench::RunSuite(data, suite));
    telemetry_log.Add(data, runs);

    // Headline table.
    TablePrinter table;
    table.SetHeader({"policy", "total_utility", "total_seconds"});
    for (const auto& r : runs) {
      LACB_RETURN_NOT_OK(
          table.AddRow({r.policy, TablePrinter::Num(r.total_utility, 1),
                        TablePrinter::Num(r.policy_seconds, 3)}));
    }
    bench::PrintBoth(table);

    // Cumulative series (sampled every 3 days) — the figure's x-axis.
    TablePrinter series;
    std::vector<std::string> header = {"day"};
    for (const auto& r : runs) header.push_back(r.policy);
    series.SetHeader(header);
    size_t days = runs.front().daily_utility.size();
    for (size_t d = 2; d < days; d += 3) {
      std::vector<std::string> urow = {"u@" + std::to_string(d + 1)};
      std::vector<std::string> trow = {"t@" + std::to_string(d + 1)};
      for (const auto& r : runs) {
        auto cu = core::CumulativeSeries(r.daily_utility);
        auto ct = core::CumulativeSeries(r.daily_policy_seconds);
        urow.push_back(TablePrinter::Num(cu[d], 0));
        trow.push_back(TablePrinter::Num(ct[d], 2));
      }
      LACB_RETURN_NOT_OK(series.AddRow(urow));
      LACB_RETURN_NOT_OK(series.AddRow(trow));
    }
    bench::PrintBoth(series);

    const auto& top1 = bench::FindRun(runs, "Top-1");
    const auto& top3 = bench::FindRun(runs, "Top-3");
    const auto& ctop1 = bench::FindRun(runs, "CTop-1");
    const auto& km = bench::FindRun(runs, "KM");
    const auto& an = bench::FindRun(runs, "AN");
    const auto& lacb = bench::FindRun(runs, "LACB");
    const auto& opt = bench::FindRun(runs, "LACB-Opt");

    all_ok &= bench::ShapeCheck(
        data.name + ": Top-3 >= Top-1 (Top-1 overloads harder)",
        top3.total_utility >= top1.total_utility * 0.95,
        TablePrinter::Num(top1.total_utility, 0) + " vs " +
            TablePrinter::Num(top3.total_utility, 0));
    const auto& ctop3 = bench::FindRun(runs, "CTop-3");
    all_ok &= bench::ShapeCheck(
        data.name + ": CTop-K at/above its Top-K counterpart (strictly "
                    "above where the paper's cap binds at our scale)",
        ctop1.total_utility > 0.99 * top1.total_utility &&
            ctop3.total_utility > 0.97 * top3.total_utility &&
            (ctop1.total_utility > top1.total_utility ||
             ctop3.total_utility > top3.total_utility),
        "CTop-1 " + TablePrinter::Num(ctop1.total_utility, 0) + " vs Top-1 " +
            TablePrinter::Num(top1.total_utility, 0) + "; CTop-3 " +
            TablePrinter::Num(ctop3.total_utility, 0) + " vs Top-3 " +
            TablePrinter::Num(top3.total_utility, 0));
    double learned =
        std::max(an.total_utility, lacb.total_utility);
    double non_learned = std::max(
        {top1.total_utility, top3.total_utility, ctop1.total_utility,
         km.total_utility, bench::FindRun(runs, "RR").total_utility,
         bench::FindRun(runs, "CTop-3").total_utility});
    all_ok &= bench::ShapeCheck(
        data.name + ": learned capacity policies (AN/LACB family) beat "
                    "the non-learned baselines",
        learned > 0.97 * non_learned,
        TablePrinter::Num(learned, 0) + " vs " +
            TablePrinter::Num(non_learned, 0));
    // AN differs from LACB only in personalization/value-function; at our
    // scale their gap sits inside the bandit's seed variance (~±6%).
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB within seed variance of AN or above "
                    "(paper: outperforms)",
        lacb.total_utility >= 0.9 * an.total_utility,
        TablePrinter::Num(lacb.total_utility, 0) + " vs AN " +
            TablePrinter::Num(an.total_utility, 0));
    double speedup = km.policy_seconds / std::max(1e-9, opt.policy_seconds);
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB-Opt orders of magnitude faster than KM-based "
                    "(paper: 233.4x-284.9x at |B|/batch ~ 200x; our scaled "
                    "ratio is ~25-50x)",
        speedup > 8.0, TablePrinter::Num(speedup, 1) + "x");
    double gap_to_topk = opt.policy_seconds - top1.policy_seconds;
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB-Opt within seconds of Top-K "
                    "(paper: 1.7-24.2 s slower)",
        gap_to_topk < 30.0, TablePrinter::Num(gap_to_topk, 2) + " s");
  }
  LACB_RETURN_NOT_OK(telemetry_log.Write());
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Fig. 2: average sign-up rate of brokers vs. requests served per day, in
// two cities, measured from the platform under the incumbent Top-3
// recommendation mechanism (the measurement the paper ran on production
// logs).
//
// Paper's claims: (i) rates are healthy (City A: 14.3–27.5%) below ~40
// requests/day and collapse (2.5–17.8%) above; (ii) Welch's t-test on the
// below/above split gives p < 0.0001.

#include "bench_util.h"

namespace lacb {
namespace {

struct CityMeasurement {
  std::string name;
  std::vector<double> workloads;     // broker-day workloads
  std::vector<double> signup_rates;  // matching observed rates
};

Result<CityMeasurement> Measure(char city, double scale) {
  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                        bench::MotivationCity(city, scale));
  CityMeasurement out;
  out.name = data.name;

  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(data));
  policy::TopKPolicy top3(3, data.seed + 5);
  LACB_RETURN_NOT_OK(top3.Initialize(platform));
  for (size_t day = 0; day < platform.num_days(); ++day) {
    LACB_RETURN_NOT_OK(platform.StartDay(day));
    LACB_RETURN_NOT_OK(top3.BeginDay(platform, day));
    for (size_t batch = 0; batch < platform.NumBatchesToday(); ++batch) {
      LACB_ASSIGN_OR_RETURN(auto requests, platform.BatchRequests(batch));
      LACB_ASSIGN_OR_RETURN(la::Matrix utility, platform.BatchUtility(batch));
      policy::BatchInput input;
      input.requests = &requests;
      input.utility = &utility;
      input.workloads = &platform.workloads_today();
      LACB_ASSIGN_OR_RETURN(auto assignment, top3.AssignBatch(input));
      LACB_RETURN_NOT_OK(platform.CommitAssignment(batch, assignment));
    }
    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, platform.EndDay());
    for (const sim::TrialTriple& t : outcome.trials) {
      if (t.workload <= 0.0) continue;
      out.workloads.push_back(t.workload);
      out.signup_rates.push_back(t.signup_rate);
    }
  }
  return out;
}

Status Run() {
  bench::PrintHeader("Fig. 2",
                     "average sign-up rate vs daily workload, two cities");
  bool all_ok = true;
  for (char city : {'A', 'B'}) {
    LACB_ASSIGN_OR_RETURN(CityMeasurement m, Measure(city, 0.05));
    std::cout << "\n--- " << m.name << " (" << m.workloads.size()
              << " broker-day observations under Top-3) ---\n";
    LACB_ASSIGN_OR_RETURN(
        stats::BinnedSeries series,
        stats::BinMeans(m.workloads, m.signup_rates, 0.0, 80.0, 16));
    TablePrinter table;
    table.SetHeader({"requests_per_day", "avg_signup_rate", "broker_days"});
    for (size_t b = 0; b < series.bin_centers.size(); ++b) {
      if (series.counts[b] == 0) continue;
      LACB_RETURN_NOT_OK(table.AddRow(
          {TablePrinter::Num(series.bin_centers[b], 1),
           TablePrinter::Num(series.means[b], 4),
           std::to_string(series.counts[b])}));
    }
    bench::PrintBoth(table);

    // Below/above the paper's 40-requests threshold.
    std::vector<double> below;
    std::vector<double> above;
    for (size_t i = 0; i < m.workloads.size(); ++i) {
      (m.workloads[i] <= 40.0 ? below : above).push_back(m.signup_rates[i]);
    }
    if (below.size() < 2 || above.size() < 2) {
      std::cout << "not enough overloaded broker-days for the t-test\n";
      continue;
    }
    LACB_ASSIGN_OR_RETURN(double mean_below, stats::Mean(below));
    LACB_ASSIGN_OR_RETURN(double mean_above, stats::Mean(above));
    LACB_ASSIGN_OR_RETURN(stats::WelchResult welch,
                          stats::WelchTTest(below, above));
    std::cout << "mean rate <=40 req/day: " << TablePrinter::Num(mean_below, 4)
              << "   >40 req/day: " << TablePrinter::Num(mean_above, 4)
              << "\nWelch t=" << TablePrinter::Num(welch.t_statistic, 2)
              << " df=" << TablePrinter::Num(welch.degrees_of_freedom, 1)
              << " p=" << welch.p_value << "\n";
    all_ok &= bench::ShapeCheck(
        m.name + ": sign-up rate drops beyond ~40 requests/day",
        mean_above < mean_below,
        TablePrinter::Num(mean_below, 3) + " -> " +
            TablePrinter::Num(mean_above, 3));
    all_ok &= bench::ShapeCheck(
        m.name + ": Welch t-test p < 0.0001 (paper: p < 0.0001)",
        welch.p_value < 1e-4, "p=" + std::to_string(welch.p_value));
  }
  std::cout << "\n" << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Fig. 3: per-broker sign-up rate vs workload for the top (busiest) brokers
// in City A, fit with 2-D Gaussian kernel density estimation.
//
// The paper measures June 1 – Aug 31 (≈92 days) of production logs; we run
// the simulated platform for the same horizon, alternating the incumbent
// Top-3 mechanism with occasional randomized days so every top broker is
// observed across a wide workload range (production logs naturally contain
// both light and heavy days).
//
// Paper's claims: (i) all of the busiest brokers show a decreasing sign-up
// trend beyond their accustomed workload; (ii) the KDE mode (center of the
// performance distribution, the "accustomed workload area") sits at a
// moderate workload where the broker performs better than when overloaded;
// (iii) patterns are broker-specific (modes and knees differ).

#include <algorithm>
#include <map>

#include "bench_util.h"

namespace lacb {
namespace {

struct BrokerTrace {
  std::vector<double> workloads;
  std::vector<double> rates;
};

Status Run() {
  bench::PrintHeader(
      "Fig. 3", "per-broker sign-up vs workload (KDE), top brokers, City A");
  // The motivation study covers ~92 days (June 1 - Aug 31), not Table IV's
  // 21. Cheap policies only, so a bigger cohort (0.12) is affordable.
  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                        bench::MotivationCity('A', 0.12, /*days=*/92));
  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(data));
  policy::TopKPolicy top3(3, data.seed + 5);
  policy::RandomizedRecommendationPolicy rr(data.seed + 6);
  LACB_RETURN_NOT_OK(top3.Initialize(platform));
  LACB_RETURN_NOT_OK(rr.Initialize(platform));

  std::map<size_t, BrokerTrace> traces;
  for (size_t day = 0; day < platform.num_days(); ++day) {
    policy::AssignmentPolicy* policy =
        day % 6 == 5 ? static_cast<policy::AssignmentPolicy*>(&rr) : &top3;
    LACB_RETURN_NOT_OK(platform.StartDay(day));
    LACB_RETURN_NOT_OK(policy->BeginDay(platform, day));
    for (size_t batch = 0; batch < platform.NumBatchesToday(); ++batch) {
      LACB_ASSIGN_OR_RETURN(auto requests, platform.BatchRequests(batch));
      LACB_ASSIGN_OR_RETURN(la::Matrix utility, platform.BatchUtility(batch));
      policy::BatchInput input;
      input.requests = &requests;
      input.utility = &utility;
      input.workloads = &platform.workloads_today();
      LACB_ASSIGN_OR_RETURN(auto assignment, policy->AssignBatch(input));
      LACB_RETURN_NOT_OK(platform.CommitAssignment(batch, assignment));
    }
    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, platform.EndDay());
    LACB_RETURN_NOT_OK(policy->EndDay(outcome));
    for (const sim::TrialTriple& t : outcome.trials) {
      if (t.workload <= 0.0) continue;
      traces[t.broker].workloads.push_back(t.workload);
      traces[t.broker].rates.push_back(t.signup_rate);
    }
  }

  // The busiest brokers overall (the paper takes the top-50 by volume and
  // keeps the 21 that occasionally exceed 40 requests/day).
  std::vector<std::pair<double, size_t>> volume;
  for (const auto& [b, tr] : traces) {
    double total = 0.0;
    for (double w : tr.workloads) total += w;
    volume.emplace_back(total, b);
  }
  std::sort(volume.rbegin(), volume.rend());
  size_t take = std::min<size_t>(30, volume.size());

  TablePrinter table;
  table.SetHeader({"broker", "obs_days", "mode_workload", "mode_rate",
                   "heavy_minus_light_rate", "light_beats_heavy"});
  size_t decreasing = 0;
  size_t moderate_mode = 0;
  size_t considered = 0;
  std::vector<double> modes;
  // The paper keeps, among the top-50 by volume, those pushed past the
  // city knee occasionally ("serve more than 40 requests"); 32 is the
  // scaled analog. The claim under test is Fig. 3's caption: "most top
  // brokers perform better in [the] light area compared with [the] large
  // workload area".
  constexpr double kHeavyDay = 32.0;
  for (size_t i = 0; i < take && considered < 15; ++i) {
    size_t b = volume[i].second;
    const BrokerTrace& tr = traces[b];
    if (tr.workloads.size() < 20) continue;
    double w_max = *std::max_element(tr.workloads.begin(), tr.workloads.end());
    // Mean workload over the ten heaviest days: the broker's "large
    // workload area". Brokers never pushed past the knee are not in
    // Fig. 3's cohort.
    std::vector<size_t> order(tr.workloads.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t c) {
      return tr.workloads[a] > tr.workloads[c];
    });
    std::vector<double> heavy_band;
    double heavy_w = 0.0;
    for (size_t j = 0; j < std::min<size_t>(10, order.size()); ++j) {
      heavy_band.push_back(tr.rates[order[j]]);
      heavy_w += tr.workloads[order[j]];
    }
    heavy_w /= static_cast<double>(heavy_band.size());
    if (heavy_w < kHeavyDay) continue;
    // The "light area": the ten lightest working days.
    std::vector<double> light_band;
    for (size_t j = order.size(); j > 0 && light_band.size() < 10; --j) {
      light_band.push_back(tr.rates[order[j - 1]]);
    }
    if (light_band.size() < 5) continue;
    ++considered;
    LACB_ASSIGN_OR_RETURN(stats::GaussianKde2D kde,
                          stats::GaussianKde2D::Fit(tr.workloads, tr.rates));
    stats::GaussianKde2D::Mode mode = kde.FindMode(0.0, w_max, 0.0, 0.4, 50);
    modes.push_back(mode.x);
    double slope = stats::Mean(heavy_band).value() -
                   stats::Mean(light_band).value();
    bool dec = slope < 0.0;
    decreasing += dec ? 1 : 0;
    moderate_mode += (mode.x >= 2.0 && mode.x <= 60.0) ? 1 : 0;
    LACB_RETURN_NOT_OK(table.AddRow(
        {std::to_string(b), std::to_string(tr.workloads.size()),
         TablePrinter::Num(mode.x, 1), TablePrinter::Num(mode.y, 3),
         TablePrinter::Num(slope, 5), dec ? "yes" : "no"}));
  }
  bench::PrintBoth(table);

  bool all_ok = true;
  all_ok &= bench::ShapeCheck(
      "most top brokers perform better in the light area than the large "
      "workload area (paper: all 21 of 21)",
      decreasing * 10 >= considered * 8,
      std::to_string(decreasing) + "/" + std::to_string(considered));
  all_ok &= bench::ShapeCheck(
      "KDE modes (accustomed areas) sit below the extreme workloads "
      "(paper: ~10-20 req/day performs best)",
      moderate_mode * 10 >= considered * 6,
      std::to_string(moderate_mode) + "/" + std::to_string(considered));
  // Broker-specific patterns: the modes are not all alike.
  if (modes.size() >= 3) {
    double lo = *std::min_element(modes.begin(), modes.end());
    double hi = *std::max_element(modes.begin(), modes.end());
    all_ok &= bench::ShapeCheck(
        "accustomed areas are broker-specific (spread of KDE modes)",
        hi > lo + 2.0,
        TablePrinter::Num(lo, 1) + " .. " + TablePrinter::Num(hi, 1));
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Fig. 4: the workload distribution of the top brokers under the platform's
// Top-3 recommendation, City A and City B.
//
// Paper's claims: (i) workloads concentrate heavily on the recommended top
// brokers — in City A the top-1 broker serves 38.26 requests/day vs a city
// average of 3.18, a 12.03× ratio; (ii) on the order of a hundred brokers
// sit above the healthy 10–20 range, risking their capacity.

#include "bench_util.h"

namespace lacb {
namespace {

Status Run() {
  bench::PrintHeader("Fig. 4",
                     "workload distribution of top brokers under Top-3");
  bool all_ok = true;
  for (char city : {'A', 'B'}) {
    LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                          bench::MotivationCity(city, 0.05));
    policy::TopKPolicy top3(3, data.seed + 5);
    LACB_ASSIGN_OR_RETURN(core::PolicyRunResult run,
                          core::RunPolicy(data, &top3));

    std::vector<double> top = core::TopNDescending(run.broker_mean_workload,
                                                   20);
    // The paper's "a broker serves 3.18 requests per day on average"
    // averages over *active* brokers (most of a city's brokers serve no
    // app-originated requests on a given day); we match that definition.
    double city_mean = 0.0;
    size_t active = 0;
    for (size_t b = 0; b < run.broker_mean_workload.size(); ++b) {
      if (run.broker_requests[b] > 0.0) {
        city_mean += run.broker_mean_workload[b];
        ++active;
      }
    }
    city_mean /= std::max<double>(1.0, static_cast<double>(active));
    double ratio = top.empty() || city_mean <= 0.0 ? 0.0
                                                   : top.front() / city_mean;

    std::cout << "\n--- " << data.name << " (" << data.num_brokers
              << " brokers) ---\n";
    TablePrinter table;
    table.SetHeader({"rank", "mean_requests_per_day"});
    for (size_t i = 0; i < top.size(); ++i) {
      LACB_RETURN_NOT_OK(table.AddRow(
          {std::to_string(i + 1), TablePrinter::Num(top[i], 2)}));
    }
    bench::PrintBoth(table);
    double gini = core::GiniCoefficient(run.broker_requests);
    std::cout << "active-broker mean workload: " << TablePrinter::Num(city_mean, 2)
              << " requests/day; top-1/mean ratio: "
              << TablePrinter::Num(ratio, 2)
              << " (paper City A: 12.03x); workload Gini: "
              << TablePrinter::Num(gini, 3) << "\n";

    all_ok &= bench::ShapeCheck(
        data.name + ": top-1 workload roughly an order of magnitude above "
                    "the active-broker mean (paper: 12.03x in City A)",
        ratio > 5.0 && ratio < 120.0, TablePrinter::Num(ratio, 1) + "x");
    // The Matthew effect: requests concentrate on few brokers. A Gini
    // above ~0.7 is extreme concentration.
    all_ok &= bench::ShapeCheck(
        data.name + ": workload distribution is heavily concentrated "
                    "(Matthew effect)",
        gini > 0.6, "Gini " + TablePrinter::Num(gini, 2));
    // Count brokers beyond the healthy 10-20 band (the paper's black box).
    size_t risky = 0;
    for (double w : run.broker_mean_workload) {
      if (w > 20.0) ++risky;
    }
    all_ok &= bench::ShapeCheck(
        data.name + ": a visible cohort of brokers exceeds the healthy "
                    "10-20 requests/day band",
        risky >= 2, std::to_string(risky) + " brokers above 20/day");
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

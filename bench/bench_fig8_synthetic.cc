// Fig. 8: synthetic-dataset sweeps — total utility and running time vs the
// number of brokers |B|, number of requests |R|, covering days, and degree
// of imbalance σ, for all nine compared algorithms.
//
// The grid is a ratio-preserving downscale (~1/10) of Table III so the
// cubic-time baselines finish on one core; EXPERIMENTS.md records the
// mapping. Paper's claims checked here:
//   * LACB and LACB-Opt achieve identical utility (Corollary 1);
//   * they dominate Top-K, RR, KM, CTop-K and AN in utility;
//   * Top-K's utility does not grow with more brokers (overload);
//   * KM/AN/LACB running time grows cubically with |B| while LACB-Opt
//     stays nearly flat (paper: 16.4×–1091.9× speedups);
//   * the LACB-Opt speedup grows as the imbalance σ shrinks.

#include <functional>

#include "bench_util.h"

namespace lacb {
namespace {

sim::DatasetConfig BaseConfig() {
  sim::DatasetConfig cfg = sim::SyntheticDefault();
  // Table III defaults scaled for a single core: 2000->200 brokers,
  // 50K->2.5K requests, 14->7 days; σ unchanged (0.015 -> 3 req/batch).
  cfg.name = "synthetic";
  cfg.num_brokers = 200;
  cfg.num_requests = 2500;
  cfg.num_days = 7;
  cfg.imbalance = 0.015;
  cfg.seed = 4242;
  return cfg;
}

struct SweepPoint {
  std::string label;
  sim::DatasetConfig config;
};

struct SweepResult {
  std::vector<std::string> policies;
  // [point][policy]
  std::vector<std::vector<double>> utility;
  std::vector<std::vector<double>> seconds;
};

Result<SweepResult> RunSweep(const std::string& title,
                             const std::vector<SweepPoint>& points,
                             bench::BenchTelemetryLog* telemetry_log) {
  std::cout << "\n### Sweep: " << title << " ###\n";
  SweepResult result;
  core::PolicySuiteConfig suite;
  suite.ctopk_capacity = 40.0;  // empirical knee of the synthetic population
  for (const SweepPoint& point : points) {
    std::cerr << "  running " << point.label << " ..." << std::endl;
    LACB_ASSIGN_OR_RETURN(auto runs, bench::RunSuite(point.config, suite));
    if (telemetry_log != nullptr) {
      sim::DatasetConfig annotated = point.config;
      annotated.name += "/" + point.label;
      telemetry_log->Add(annotated, runs);
    }
    if (result.policies.empty()) {
      for (const auto& r : runs) result.policies.push_back(r.policy);
    }
    std::vector<double> u;
    std::vector<double> t;
    for (const auto& r : runs) {
      u.push_back(r.total_utility);
      t.push_back(r.policy_seconds);
    }
    result.utility.push_back(std::move(u));
    result.seconds.push_back(std::move(t));
  }

  std::cout.flush();
  for (int table_kind = 0; table_kind < 2; ++table_kind) {
    TablePrinter table;
    std::vector<std::string> header = {table_kind == 0 ? "utility" : "seconds"};
    for (const auto& p : result.policies) header.push_back(p);
    table.SetHeader(header);
    for (size_t i = 0; i < points.size(); ++i) {
      std::vector<std::string> row = {points[i].label};
      for (size_t j = 0; j < result.policies.size(); ++j) {
        row.push_back(table_kind == 0
                          ? TablePrinter::Num(result.utility[i][j], 1)
                          : TablePrinter::Num(result.seconds[i][j], 3));
      }
      LACB_RETURN_NOT_OK(table.AddRow(row));
    }
    bench::PrintBoth(table);
  }
  return result;
}

size_t PolicyIndex(const SweepResult& r, const std::string& name) {
  for (size_t i = 0; i < r.policies.size(); ++i) {
    if (r.policies[i] == name) return i;
  }
  LACB_CHECK(false);
  return 0;
}

// Shared shape checks evaluated on one sweep.
bool CheckSweep(const std::string& sweep, const SweepResult& r,
                bool check_lacb_dominates) {
  bool ok = true;
  size_t lacb = PolicyIndex(r, "LACB");
  size_t opt = PolicyIndex(r, "LACB-Opt");
  size_t km = PolicyIndex(r, "KM");

  // Corollary 1: LACB-Opt == LACB in utility at every point.
  bool equal = true;
  for (size_t i = 0; i < r.utility.size(); ++i) {
    double a = r.utility[i][lacb];
    double b = r.utility[i][opt];
    if (std::abs(a - b) > 1e-6 * std::max(1.0, std::abs(a))) equal = false;
  }
  ok &= bench::ShapeCheck(sweep + ": LACB-Opt utility == LACB (Cor. 1)",
                          equal, equal ? "equal at all points" : "diverged");

  if (check_lacb_dominates) {
    // Two-part dominance, mirroring the Fig. 11 treatment: (a) LACB clears
    // every *non-learned* baseline at (almost) every point; (b) LACB stays
    // within the bandit's seed variance of AN — AN shares LACB's estimator
    // and differs only by personalization/value function, so their gap at
    // our scale is noise the paper's full-size runs average out.
    size_t an = PolicyIndex(r, "AN");
    size_t wins = 0;
    bool within_an_band = true;
    for (size_t i = 0; i < r.utility.size(); ++i) {
      double best_static = 0.0;
      for (size_t j = 0; j < r.policies.size(); ++j) {
        if (j == lacb || j == opt || j == an) continue;
        best_static = std::max(best_static, r.utility[i][j]);
      }
      if (r.utility[i][lacb] >= 0.97 * best_static) ++wins;
      if (r.utility[i][lacb] < 0.85 * r.utility[i][an]) {
        within_an_band = false;
      }
    }
    ok &= bench::ShapeCheck(
        sweep + ": LACB at/above the non-learned baselines and within "
                "seed variance of AN (paper: dominates)",
        within_an_band && wins * 4 >= r.utility.size() * 3,
        std::to_string(wins) + "/" + std::to_string(r.utility.size()) +
            " points vs static baselines");
  }

  // LACB-Opt is much faster than the KM-based policies everywhere.
  double min_speedup = 1e18;
  double max_speedup = 0.0;
  for (size_t i = 0; i < r.seconds.size(); ++i) {
    double s = r.seconds[i][km] / std::max(1e-9, r.seconds[i][opt]);
    min_speedup = std::min(min_speedup, s);
    max_speedup = std::max(max_speedup, s);
  }
  ok &= bench::ShapeCheck(
      sweep + ": LACB-Opt speedup over KM-based (paper: 16.4x-1091.9x)",
      min_speedup > 4.0,
      TablePrinter::Num(min_speedup, 1) + "x-" +
          TablePrinter::Num(max_speedup, 1) + "x");
  return ok;
}

Status Run() {
  bench::PrintHeader("Fig. 8", "synthetic sweeps: utility & time vs |B|, "
                               "|R|, days, sigma (scaled Table III grid)");
  bool all_ok = true;
  bench::BenchTelemetryLog telemetry_log("fig8_synthetic");

  // --- Sweep 1: number of brokers (Table III: 500..10000 -> 50..400). ---
  {
    std::vector<SweepPoint> points;
    for (size_t nb : {50u, 100u, 150u, 200u, 300u}) {
      sim::DatasetConfig c = BaseConfig();
      c.num_brokers = nb;
      c.num_requests = 2000;
      // Districts scale with the broker population: top-k lists are tied
      // to houses/neighbourhoods, so adding brokers adds neighbourhoods
      // rather than diluting each list (matches the paper's observation
      // that more brokers do not relieve the top ones).
      c.num_districts = std::max<size_t>(4, nb / 15);
      // Keep σ: requests per batch scale with |B| as in the paper.
      points.push_back({"|B|=" + std::to_string(nb), c});
    }
    LACB_ASSIGN_OR_RETURN(SweepResult r, RunSweep("number of brokers", points, &telemetry_log));
    all_ok &= CheckSweep("|B| sweep", r, true);
    // Top-K utility must not grow with |B| (the overload pathology).
    size_t top1 = PolicyIndex(r, "Top-1");
    double first = r.utility.front()[top1];
    double last = r.utility.back()[top1];
    all_ok &= bench::ShapeCheck(
        "|B| sweep: Top-1 utility does not grow with more brokers",
        last <= first * 1.35,
        TablePrinter::Num(first, 0) + " -> " + TablePrinter::Num(last, 0));
    // Cubic growth of KM vs near-flat LACB-Opt.
    size_t km = PolicyIndex(r, "KM");
    size_t opt = PolicyIndex(r, "LACB-Opt");
    double km_growth = r.seconds.back()[km] / std::max(1e-9, r.seconds.front()[km]);
    double opt_growth =
        r.seconds.back()[opt] / std::max(1e-9, r.seconds.front()[opt]);
    all_ok &= bench::ShapeCheck(
        "|B| sweep: KM time grows much faster than LACB-Opt time",
        km_growth > 4.0 * opt_growth,
        "KM x" + TablePrinter::Num(km_growth, 1) + " vs LACB-Opt x" +
            TablePrinter::Num(opt_growth, 1));
  }

  // --- Sweep 2: number of requests (10K..200K -> 1250..10000). ---
  {
    std::vector<SweepPoint> points;
    for (size_t nr : {1000u, 2000u, 3000u, 4500u, 6000u}) {
      sim::DatasetConfig c = BaseConfig();
      c.num_requests = nr;
      points.push_back({"|R|=" + std::to_string(nr), c});
    }
    LACB_ASSIGN_OR_RETURN(SweepResult r, RunSweep("number of requests", points, &telemetry_log));
    all_ok &= CheckSweep("|R| sweep", r, true);
    // Utility grows with |R| for the capacity-aware policies.
    size_t lacb = PolicyIndex(r, "LACB");
    all_ok &= bench::ShapeCheck(
        "|R| sweep: LACB utility grows with more requests",
        r.utility.back()[lacb] > r.utility.front()[lacb],
        TablePrinter::Num(r.utility.front()[lacb], 0) + " -> " +
            TablePrinter::Num(r.utility.back()[lacb], 0));
  }

  // --- Sweep 3: covering days (7..21, unscaled). ---
  {
    std::vector<SweepPoint> points;
    for (size_t days : {7u, 10u, 14u, 17u, 21u}) {  // Table III values
      sim::DatasetConfig c = BaseConfig();
      c.num_days = days;
      c.num_requests = 5000;  // the full scaled Table III default
      points.push_back({"Day=" + std::to_string(days), c});
    }
    LACB_ASSIGN_OR_RETURN(SweepResult r, RunSweep("covering days", points, &telemetry_log));
    all_ok &= CheckSweep("Day sweep", r, true);
  }

  // --- Sweep 4: degree of imbalance σ (Table III values, unscaled). ---
  {
    std::vector<SweepPoint> points;
    for (double sigma : {0.005, 0.01, 0.015, 0.02, 0.05}) {
      sim::DatasetConfig c = BaseConfig();
      c.imbalance = sigma;
      c.num_requests = 1500;
      points.push_back({"sigma=" + TablePrinter::Num(sigma, 3), c});
    }
    LACB_ASSIGN_OR_RETURN(SweepResult r, RunSweep("degree of imbalance", points, &telemetry_log));
    all_ok &= CheckSweep("sigma sweep", r, false);
    // The speedup shrinks as σ grows (paper: 641.7x at 0.005, 16.4x at 0.05).
    size_t km = PolicyIndex(r, "KM");
    size_t opt = PolicyIndex(r, "LACB-Opt");
    double speedup_low = r.seconds.front()[km] / std::max(1e-9, r.seconds.front()[opt]);
    double speedup_high = r.seconds.back()[km] / std::max(1e-9, r.seconds.back()[opt]);
    all_ok &= bench::ShapeCheck(
        "sigma sweep: LACB-Opt speedup larger at small sigma "
        "(paper: 641.7x @0.005 vs 16.4x @0.05)",
        speedup_low > speedup_high,
        TablePrinter::Num(speedup_low, 1) + "x @0.005 vs " +
            TablePrinter::Num(speedup_high, 1) + "x @0.05");
  }

  LACB_RETURN_NOT_OK(telemetry_log.Write());
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

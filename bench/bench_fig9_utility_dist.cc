// Fig. 9: the per-broker utility distribution of every compared algorithm
// on the three city datasets, with a close look at the top brokers.
//
// Paper's claims: (i) capacity-based assignment (CTop-K, AN, LACB) earns
// higher utility than Top-K for most brokers; (ii) LACB improves
// 72.0–82.2% of brokers vs Top-K (80.8% in City A); (iii) RR equalizes
// utilities but *decreases* utility for a sizeable minority (25.7% in
// City A) relative to Top-K.

#include "bench_util.h"

namespace lacb {
namespace {

Status Run() {
  bench::PrintHeader("Fig. 9", "per-broker utility distribution by algorithm, "
                               "three cities (scaled presets)");
  bool all_ok = true;
  for (char city : {'A', 'B', 'C'}) {
    LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data,
                          bench::ScaledCity(city, 7));
    core::PolicySuiteConfig suite;
    suite.ctopk_capacity = city == 'A' ? 45.0 : city == 'B' ? 55.0 : 40.0;
    std::cout << "\n--- " << data.name << " (" << data.num_brokers
              << " brokers, " << data.num_requests << " requests, "
              << data.num_days << " days) ---\n";
    LACB_ASSIGN_OR_RETURN(auto runs, bench::RunSuite(data, suite));

    // Top-broker utility distribution (the paper's inset).
    TablePrinter table;
    table.SetHeader({"policy", "u_top1", "u_top3", "u_top10", "u_top30",
                     "total"});
    for (const auto& r : runs) {
      auto top = core::TopNDescending(r.broker_utility, 30);
      auto at = [&](size_t k) {
        return k <= top.size() ? top[k - 1] : 0.0;
      };
      LACB_RETURN_NOT_OK(table.AddRow(
          {r.policy, TablePrinter::Num(at(1), 1), TablePrinter::Num(at(3), 1),
           TablePrinter::Num(at(10), 1), TablePrinter::Num(at(30), 1),
           TablePrinter::Num(r.total_utility, 1)}));
    }
    bench::PrintBoth(table);

    const auto& top3 = bench::FindRun(runs, "Top-3");
    const auto& lacb = bench::FindRun(runs, "LACB");
    const auto& rr = bench::FindRun(runs, "RR");
    LACB_ASSIGN_OR_RETURN(
        core::ImprovementStats lacb_vs_topk,
        core::CompareBrokerUtility(lacb.broker_utility, top3.broker_utility));
    LACB_ASSIGN_OR_RETURN(
        core::ImprovementStats rr_vs_topk,
        core::CompareBrokerUtility(rr.broker_utility, top3.broker_utility));
    std::cout << "LACB vs Top-3: improved "
              << TablePrinter::Num(100 * lacb_vs_topk.improved_fraction, 1)
              << "% of brokers, worsened "
              << TablePrinter::Num(100 * lacb_vs_topk.worsened_fraction, 1)
              << "%  (paper: 72.0-82.2% improved)\n"
              << "RR   vs Top-3: improved "
              << TablePrinter::Num(100 * rr_vs_topk.improved_fraction, 1)
              << "%, worsened "
              << TablePrinter::Num(100 * rr_vs_topk.worsened_fraction, 1)
              << "%  (paper City A: 25.7% worsened)\n";

    all_ok &= bench::ShapeCheck(
        data.name + ": LACB improves a clear majority of brokers vs Top-K "
                    "(paper: 72-82%)",
        lacb_vs_topk.improved_fraction >= 0.55 &&
            lacb_vs_topk.improved_fraction >
                1.3 * lacb_vs_topk.worsened_fraction,
        TablePrinter::Num(100 * lacb_vs_topk.improved_fraction, 1) +
            "% improved vs " +
            TablePrinter::Num(100 * lacb_vs_topk.worsened_fraction, 1) +
            "% worsened");
    all_ok &= bench::ShapeCheck(
        data.name + ": RR worsens a sizeable minority vs Top-K "
                    "(paper: 25.7% in City A)",
        rr_vs_topk.worsened_fraction > 0.1,
        TablePrinter::Num(100 * rr_vs_topk.worsened_fraction, 1) + "%");
    all_ok &= bench::ShapeCheck(
        data.name + ": LACB total utility above Top-K, RR, KM and at/near "
                    "CTop-K (within 7%; the generously-capped CTop-K is "
                    "the strongest static baseline at our scale)",
        lacb.total_utility > top3.total_utility &&
            lacb.total_utility > rr.total_utility &&
            lacb.total_utility > bench::FindRun(runs, "KM").total_utility &&
            lacb.total_utility >
                0.93 * bench::FindRun(runs, "CTop-1").total_utility,
        TablePrinter::Num(lacb.total_utility, 0));
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

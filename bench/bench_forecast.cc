// Predictive capacity observability: how much warning the forecasting
// plane gives before the service actually starts shedding, and what that
// sensitivity costs in false alarms.
//
// Methodology (docs/observability.md, "Forecasting & pressure signals"):
//
//  - The service's throughput ceiling is made machine-independent with an
//    injected per-batch worker stall (FaultPlan::worker_stall_rate = 1):
//    every batch costs ~stall_duration regardless of CPU speed, so the
//    ceiling is ~max_batch_size / stall_duration requests per second and
//    the queue dynamics below are the same on a laptop and in CI.
//
//  - Bursty days use the flash-crowd generator: arrivals at a base rate
//    well under the ceiling, then one contiguous window at base ×
//    multiplier — far above it. The queue fills in roughly
//    queue_capacity / (burst_rate − ceiling) seconds while the service
//    commits (and forecast-samples) a batch every ~stall_duration, so the
//    burst detector and the queue-saturation horizon have several samples
//    to fire before admission control sheds the first request.
//
//  - Lead time = first_shed − first_signal, read from the
//    serve.forecast.* gauges of each trial's captured telemetry. The
//    headline claim is a positive median lead across bursty trials: the
//    plane predicts saturation, it does not just report it.
//
//  - Calm days (same schedule, multiplier 1) score the false-positive
//    rate: burst firings / forecast samples with no burst in the offered
//    load. The gate is <= 5%.
//
// Results land in BENCH_forecast.json (schema below; validated by CI).

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_util.h"

namespace lacb {
namespace {

// Injected per-batch cost: ceiling = 32 / 15ms ~ 2130 req/s. The batch
// deadline sits ABOVE the stall so calm-day batches close with a full
// deadline window of arrivals and the worker idles between batches —
// without that margin, deadline-closed singleton batches cap throughput
// near the offered load and the calm day sheds on queue random walks.
constexpr auto kStall = std::chrono::milliseconds(15);
constexpr auto kBatchDelay = std::chrono::milliseconds(30);
constexpr size_t kMaxBatch = 16;          // ceiling = 16 / 15ms ~ 1066 req/s
constexpr double kBaseRate = 300.0;       // calm: ~1/4 of the ceiling
constexpr double kBurstMultiplier = 5.0;  // burst: ~1.4x the ceiling
// Overflow arithmetic: the burst's net fill rate is burst − ceiling ~
// 430 req/s, so 128 slots fill in ~300ms — roughly 18 batch commits
// (= forecast samples) after onset, which is the room the detectors need
// to fire BEFORE the first shed rather than tie with it. The stall must
// also dominate the real per-batch solve cost for the ceiling to be
// machine-independent, which is why the dataset below is kept small.
constexpr size_t kQueueCapacity = 128;
// The bench compresses a "day" into a few wall seconds, so only horizons
// predicting exhaustion within a few batch windows count as pressure —
// the default (5s) spans most of a compressed day and would fire on the
// steady capacity drain instead of the burst.
constexpr double kWarnHorizon = 0.25;

double GaugeOf(const core::PolicyRunResult& run, const std::string& name,
               double fallback) {
  if (run.telemetry == nullptr) return fallback;
  auto it = run.telemetry->metrics.gauges.find(name);
  return it == run.telemetry->metrics.gauges.end() ? fallback : it->second;
}

uint64_t CounterOf(const core::PolicyRunResult& run, const std::string& name) {
  if (run.telemetry == nullptr) return 0;
  auto it = run.telemetry->metrics.counters.find(name);
  return it == run.telemetry->metrics.counters.end() ? 0 : it->second;
}

struct Trial {
  double first_signal = -1.0;
  double first_shed = -1.0;
  double first_degraded = -1.0;
  double lead = 0.0;
  bool has_lead = false;
  uint64_t samples = 0;
  uint64_t firings = 0;
  uint64_t shed = 0;
};

serve::ServedRunOptions TrialOptions(uint64_t seed, bool bursty) {
  serve::ServedRunOptions opts;
  opts.mode = serve::LoadMode::kFlashCrowd;
  opts.poisson_seed = seed;
  opts.flash_base_rate = kBaseRate;
  opts.burst_multiplier = bursty ? kBurstMultiplier : 1.0;
  opts.burst_start_fraction = 0.4;
  opts.burst_fraction = 0.4;  // 800 req at 3000/s ~ 270ms >> queue fill time
  opts.serve.num_workers = 1;
  opts.serve.max_batch_size = kMaxBatch;
  opts.serve.max_batch_delay = kBatchDelay;
  // Small enough to overflow within the burst window, large enough that
  // calm-day arrival noise never comes close.
  opts.serve.queue_capacity = kQueueCapacity;
  opts.serve.forecasting.enabled = true;
  opts.serve.forecasting.warn_horizon_seconds = kWarnHorizon;
  // The machine-independent ceiling: every batch stalls for kStall. No
  // supervisor is armed (stall_timeout stays 0), so the stall is pure
  // service time, not an incident.
  serve::FaultPlan plan;
  plan.seed = 2027;
  plan.worker_stall_rate = 1.0;
  plan.stall_duration = kStall;
  opts.serve.fault_plan = plan;
  return opts;
}

Result<Trial> RunTrial(const sim::DatasetConfig& data,
                       const core::PolicySuiteConfig& suite, uint64_t seed,
                       bool bursty) {
  serve::ServedRunOptions opts = TrialOptions(seed, bursty);
  LACB_ASSIGN_OR_RETURN(
      core::PolicyRunResult run,
      serve::RunPolicyServed(data, core::SuitePolicyFactory(data, suite, 5),
                             opts));
  Trial t;
  t.first_signal = GaugeOf(run, "serve.forecast.first_signal_seconds", -1.0);
  t.first_shed = GaugeOf(run, "serve.forecast.first_shed_seconds", -1.0);
  t.first_degraded =
      GaugeOf(run, "serve.forecast.first_degraded_seconds", -1.0);
  t.samples = CounterOf(run, "serve.forecast.samples");
  t.firings = CounterOf(run, "serve.forecast.burst_firings");
  t.shed = run.shed_requests;
  double event = t.first_shed;
  if (t.first_degraded >= 0.0 && (event < 0.0 || t.first_degraded < event)) {
    event = t.first_degraded;
  }
  if (t.first_signal >= 0.0 && event >= 0.0) {
    t.lead = event - t.first_signal;
    t.has_lead = true;
  }
  return t;
}

Status Run() {
  bench::PrintHeader("forecasting plane",
                     "pressure-signal lead time on flash-crowd days, "
                     "false-positive rate on calm days");

  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data, bench::ScaledCity('A', 1));
  data.num_requests = 2000;
  // Small fleet: the per-batch solve must cost well under the injected
  // 15ms stall or the real (machine-dependent) solve time sets the
  // service ceiling and the queue overflows between forecast samples.
  data.num_brokers = 48;
  // exp(4.1) ~ 60 requests/day per broker: fleet capacity ~2.9k vs 2k
  // offered, so calm days are not capacity-bound and broker-exhaustion
  // horizons stay advisory rather than dominating the burst signal.
  data.capacity_log_mean = 4.1;
  data.name = "cityA_flash";
  core::PolicySuiteConfig suite;
  const double ceiling = static_cast<double>(kMaxBatch) /
                         std::chrono::duration<double>(kStall).count();
  std::cout << "dataset: " << data.name << " (" << data.num_brokers
            << " brokers, " << data.num_requests
            << " requests/day), injected service ceiling ~"
            << TablePrinter::Num(ceiling, 0) << " req/s, base "
            << TablePrinter::Num(kBaseRate, 0) << " req/s, burst "
            << TablePrinter::Num(kBaseRate * kBurstMultiplier, 0)
            << " req/s\n\n";

  bool all_ok = true;

  // --- Bursty trials: lead time distribution ---
  constexpr int kBurstyTrials = 5;
  std::vector<Trial> bursty;
  TablePrinter table;
  table.SetHeader({"trial", "first_signal_s", "first_shed_s", "lead_ms",
                   "samples", "burst_firings", "shed"});
  for (int i = 0; i < kBurstyTrials; ++i) {
    LACB_ASSIGN_OR_RETURN(Trial t,
                          RunTrial(data, suite, 1234 + i, /*bursty=*/true));
    LACB_RETURN_NOT_OK(table.AddRow(
        {std::to_string(i), TablePrinter::Num(t.first_signal, 3),
         TablePrinter::Num(t.first_shed, 3),
         t.has_lead ? TablePrinter::Num(t.lead * 1e3, 1) : "n/a",
         std::to_string(t.samples), std::to_string(t.firings),
         std::to_string(t.shed)}));
    bursty.push_back(t);
  }
  bench::PrintBoth(table);

  std::vector<double> leads;
  for (const Trial& t : bursty) {
    if (t.has_lead) leads.push_back(t.lead);
  }
  std::sort(leads.begin(), leads.end());
  const double median_lead =
      leads.empty() ? -1.0 : leads[leads.size() / 2];

  size_t trials_with_shed = 0;
  size_t trials_with_signal = 0;
  for (const Trial& t : bursty) {
    if (t.first_shed >= 0.0) ++trials_with_shed;
    if (t.first_signal >= 0.0) ++trials_with_signal;
  }
  all_ok &= bench::ShapeCheck(
      "every bursty trial overflows admission (the burst exceeds the "
      "service ceiling)",
      trials_with_shed == kBurstyTrials,
      std::to_string(trials_with_shed) + "/" +
          std::to_string(kBurstyTrials) + " trials shed");
  all_ok &= bench::ShapeCheck(
      "every bursty trial raises a pressure signal",
      trials_with_signal == kBurstyTrials,
      std::to_string(trials_with_signal) + "/" +
          std::to_string(kBurstyTrials) + " trials signaled");
  all_ok &= bench::ShapeCheck(
      "median lead time is positive (the forecast precedes the first "
      "shed/degraded event)",
      !leads.empty() && median_lead > 0.0,
      TablePrinter::Num(median_lead * 1e3, 1) + " ms");

  // --- Calm trials: false-positive rate ---
  constexpr int kCalmTrials = 2;
  uint64_t calm_samples = 0;
  uint64_t calm_firings = 0;
  uint64_t calm_shed = 0;
  for (int i = 0; i < kCalmTrials; ++i) {
    LACB_ASSIGN_OR_RETURN(Trial t,
                          RunTrial(data, suite, 4321 + i, /*bursty=*/false));
    calm_samples += t.samples;
    calm_firings += t.firings;
    calm_shed += t.shed;
  }
  const double fp_rate =
      calm_samples == 0
          ? 1.0
          : static_cast<double>(calm_firings) /
                static_cast<double>(calm_samples);
  std::cout << "calm days: " << calm_samples << " samples, " << calm_firings
            << " burst firings, " << calm_shed << " shed\n\n";
  all_ok &= bench::ShapeCheck(
      "calm days stay under the ceiling (no shedding without a burst)",
      calm_shed == 0, std::to_string(calm_shed) + " shed");
  all_ok &= bench::ShapeCheck(
      "calm-day burst false-positive rate <= 5%", fp_rate <= 0.05,
      TablePrinter::Num(fp_rate * 100.0, 2) + "%");

  // --- BENCH_forecast.json (validated by CI) ---
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("bench", "forecast");
  root.Set("schema_version", static_cast<int64_t>(1));
  root.Set("stall_ms",
           std::chrono::duration<double>(kStall).count() * 1e3);
  root.Set("service_ceiling_rps", ceiling);
  root.Set("base_rate_rps", kBaseRate);
  root.Set("burst_rate_rps", kBaseRate * kBurstMultiplier);
  root.Set("queue_capacity", static_cast<int64_t>(kQueueCapacity));
  root.Set("warn_horizon_seconds", kWarnHorizon);
  obs::JsonValue trials = obs::JsonValue::Array();
  for (size_t i = 0; i < bursty.size(); ++i) {
    const Trial& t = bursty[i];
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("trial", static_cast<int64_t>(i));
    entry.Set("first_signal_seconds", t.first_signal);
    entry.Set("first_shed_seconds", t.first_shed);
    entry.Set("first_degraded_seconds", t.first_degraded);
    entry.Set("lead_time_seconds", t.has_lead ? t.lead : -1.0);
    entry.Set("samples", t.samples);
    entry.Set("burst_firings", t.firings);
    entry.Set("shed_requests", t.shed);
    trials.Append(std::move(entry));
  }
  root.Set("bursty_trials", std::move(trials));
  root.Set("median_lead_time_seconds", median_lead);
  obs::JsonValue calm = obs::JsonValue::Object();
  calm.Set("trials", static_cast<int64_t>(kCalmTrials));
  calm.Set("samples", calm_samples);
  calm.Set("burst_firings", calm_firings);
  calm.Set("false_positive_rate", fp_rate);
  calm.Set("shed_requests", calm_shed);
  root.Set("calm", std::move(calm));
  LACB_RETURN_NOT_OK(obs::WriteJsonFile(root, "BENCH_forecast.json"));
  std::cout << "telemetry written to BENCH_forecast.json\n";

  std::cout << (all_ok ? "\nALL SHAPE CHECKS PASSED\n"
                       : "\nSOME SHAPE CHECKS FAILED\n");
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status status = lacb::Run();
  if (!status.ok()) {
    std::cerr << "bench_forecast failed: " << status.message() << "\n";
    return 1;
  }
  return 0;
}

// Matching-solver frontier: exact Kuhn–Munkres vs the parallel ½-approx
// b-matching solver across batch sizes and thread counts.
//
// Each frontier point is a capacity-aware batch instance — n requests
// against n/8 brokers with capacity 8 (so total capacity equals demand and
// every request is matchable). The exact baseline solves it as KM on the
// column-expanded n×n matrix (capacity k → k unit columns, the paper's
// formulation); the approximate solver consumes the capacities natively.
//
// Claims checked: (i) the approximate utility stays ≥ 95% of the exact
// optimum at every size with an exact baseline — far above the ½ worst
// case; (ii) at the serving-scale point (n = 4096, 8 threads) the approx
// solver is ≥ 5× faster than exact KM; (iii) the approximate assignment
// is bit-identical across thread counts (the determinism contract);
// (iv) approx latency grows with batch size. KM at n = 16384 (a ~7-minute
// cubic solve) is skipped; the per-request-max upper bound stands in as
// the utility yardstick there.
//
// Emits BENCH_matching.json; CI re-validates all four claims from it.

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench_util.h"
#include "lacb/matching/approx/parallel_bmatch.h"
#include "lacb/matching/approx/scoring.h"
#include "lacb/matching/approx/solver_select.h"

namespace lacb {
namespace {

constexpr size_t kCap = 8;
constexpr size_t kKmExactLimit = 4096;  // largest size with a KM baseline

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThreadPoint {
  size_t threads = 0;
  double seconds = 0.0;
  double utility = 0.0;
  uint64_t rounds = 0;
  uint64_t proposals = 0;
  uint64_t steals = 0;
};

struct FrontierPoint {
  size_t batch_size = 0;
  size_t brokers = 0;
  bool km_exact = false;
  double km_seconds = 0.0;
  double km_utility = 0.0;
  double upper_bound_utility = 0.0;
  std::vector<ThreadPoint> threads;
};

// Capacity k → k unit columns; zero-pad so rows <= cols for the KM solver.
la::Matrix ExpandColumns(const la::Matrix& w, size_t cap) {
  const size_t expanded = w.cols() * cap;
  la::Matrix out(w.rows(), std::max(w.rows(), expanded));
  for (size_t r = 0; r < w.rows(); ++r) {
    for (size_t c = 0; c < w.cols(); ++c) {
      for (size_t k = 0; k < cap; ++k) out(r, c * cap + k) = w(r, c);
    }
  }
  return out;
}

Result<FrontierPoint> RunPoint(size_t n) {
  FrontierPoint point;
  point.batch_size = n;
  point.brokers = std::max<size_t>(kCap, n / kCap);

  // Float-rounded uniforms so the exact (double) and approx (float32)
  // domains score every edge identically.
  Rng rng(90000 + n);
  la::Matrix w(n, point.brokers);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < point.brokers; ++c) {
      w(r, c) = static_cast<double>(static_cast<float>(rng.Uniform()));
    }
  }
  for (size_t r = 0; r < n; ++r) {
    double best = 0.0;
    for (size_t c = 0; c < point.brokers; ++c) best = std::max(best, w(r, c));
    point.upper_bound_utility += best;
  }

  if (n <= kKmExactLimit) {
    la::Matrix expanded = ExpandColumns(w, kCap);
    const double t0 = Now();
    LACB_ASSIGN_OR_RETURN(matching::Assignment km,
                          matching::MaxWeightAssignment(expanded));
    point.km_seconds = Now() - t0;
    point.km_utility = km.total_weight;
    point.km_exact = true;
  }

  matching::approx::ScoreMatrix scores;
  matching::approx::ToScoreMatrix(w, &scores);
  std::vector<int64_t> caps(point.brokers, static_cast<int64_t>(kCap));
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    matching::approx::BMatchOptions opts;
    opts.num_threads = threads;
    ThreadPoint tp;
    tp.threads = threads;
    // Best of 3 repetitions (the instance is identical, so only timing
    // varies; utility and rounds come from the last run).
    tp.seconds = 1e30;
    matching::approx::BMatchResult result;
    for (int rep = 0; rep < 3; ++rep) {
      const double t0 = Now();
      LACB_ASSIGN_OR_RETURN(result, matching::approx::ParallelBMatch(
                                        scores, caps, opts));
      tp.seconds = std::min(tp.seconds, Now() - t0);
    }
    tp.utility = result.total_weight;
    tp.rounds = result.rounds;
    tp.proposals = result.proposals;
    tp.steals = result.steals;
    point.threads.push_back(tp);
  }
  return point;
}

Status Run() {
  bench::PrintHeader("matching frontier",
                     "exact KM vs parallel approx across batch sizes");

  std::vector<FrontierPoint> points;
  for (size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    std::cout << "batch " << n << "..." << std::flush;
    LACB_ASSIGN_OR_RETURN(FrontierPoint p, RunPoint(n));
    std::cout << " done (km "
              << (p.km_exact ? TablePrinter::Num(p.km_seconds, 3) + "s"
                             : "skipped")
              << ")\n";
    points.push_back(std::move(p));
  }

  TablePrinter table;
  table.SetHeader({"batch", "brokers", "km_s", "km_util", "threads",
                   "approx_s", "approx_util", "ratio", "rounds", "speedup"});
  for (const FrontierPoint& p : points) {
    for (const ThreadPoint& t : p.threads) {
      const double yardstick =
          p.km_exact ? p.km_utility : p.upper_bound_utility;
      LACB_RETURN_NOT_OK(table.AddRow(
          {std::to_string(p.batch_size), std::to_string(p.brokers),
           p.km_exact ? TablePrinter::Num(p.km_seconds, 4) : "-",
           p.km_exact ? TablePrinter::Num(p.km_utility, 2) : "-",
           std::to_string(t.threads), TablePrinter::Num(t.seconds, 5),
           TablePrinter::Num(t.utility, 2),
           TablePrinter::Num(t.utility / yardstick, 4),
           std::to_string(t.rounds),
           p.km_exact ? TablePrinter::Num(p.km_seconds / t.seconds, 1)
                      : "-"}));
    }
  }
  bench::PrintBoth(table);

  // --- Shape checks (CI re-validates the same claims from the JSON) ---
  bool all_ok = true;

  bool ratio_ok = true;
  double worst_ratio = 1.0;
  for (const FrontierPoint& p : points) {
    if (!p.km_exact) continue;
    for (const ThreadPoint& t : p.threads) {
      const double ratio = t.utility / p.km_utility;
      worst_ratio = std::min(worst_ratio, ratio);
      ratio_ok &= ratio >= 0.95;
    }
  }
  all_ok &= bench::ShapeCheck(
      "approx utility >= 95% of exact KM at every exact-baseline size",
      ratio_ok, "worst ratio " + TablePrinter::Num(worst_ratio, 4));

  const FrontierPoint* serving = nullptr;
  for (const FrontierPoint& p : points) {
    if (p.batch_size == 4096) serving = &p;
  }
  double serving_speedup = 0.0;
  if (serving != nullptr && serving->km_exact) {
    for (const ThreadPoint& t : serving->threads) {
      if (t.threads == 8) serving_speedup = serving->km_seconds / t.seconds;
    }
  }
  all_ok &= bench::ShapeCheck(
      "approx (8 threads) >= 5x faster than exact KM at batch 4096",
      serving_speedup >= 5.0,
      TablePrinter::Num(serving_speedup, 1) + "x");

  bool thread_invariant = true;
  for (const FrontierPoint& p : points) {
    for (const ThreadPoint& t : p.threads) {
      thread_invariant &= t.utility == p.threads.front().utility;
    }
  }
  all_ok &= bench::ShapeCheck(
      "approx utility bit-identical across thread counts",
      thread_invariant, thread_invariant ? "all equal" : "divergence");

  bool grows = true;
  for (size_t ti = 0; ti < points.front().threads.size(); ++ti) {
    grows &= points.back().threads[ti].seconds >
             points.front().threads[ti].seconds;
  }
  all_ok &= bench::ShapeCheck(
      "approx latency grows from batch 64 to batch 16384", grows,
      grows ? "endpoints ordered" : "non-monotone endpoints");

  // --- BENCH_matching.json ---
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("bench", "matching");
  root.Set("schema_version", static_cast<int64_t>(1));
  root.Set("cap_per_broker", static_cast<uint64_t>(kCap));
  obs::JsonValue frontier = obs::JsonValue::Array();
  for (const FrontierPoint& p : points) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("batch_size", static_cast<uint64_t>(p.batch_size));
    entry.Set("brokers", static_cast<uint64_t>(p.brokers));
    entry.Set("km_exact", p.km_exact);
    if (p.km_exact) {
      entry.Set("km_seconds", p.km_seconds);
      entry.Set("km_utility", p.km_utility);
    }
    entry.Set("upper_bound_utility", p.upper_bound_utility);
    obs::JsonValue threads = obs::JsonValue::Array();
    for (const ThreadPoint& t : p.threads) {
      obs::JsonValue tj = obs::JsonValue::Object();
      tj.Set("threads", static_cast<uint64_t>(t.threads));
      tj.Set("approx_seconds", t.seconds);
      tj.Set("approx_utility", t.utility);
      tj.Set("rounds", t.rounds);
      tj.Set("proposals", t.proposals);
      tj.Set("steals", t.steals);
      threads.Append(std::move(tj));
    }
    entry.Set("threads", std::move(threads));
    frontier.Append(std::move(entry));
  }
  root.Set("frontier", std::move(frontier));
  LACB_RETURN_NOT_OK(obs::WriteJsonFile(root, "BENCH_matching.json"));
  std::cout << "telemetry written to BENCH_matching.json\n";

  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Microbenchmarks of the capacity-estimation substrate: the Eq. 5 scoring
// path (forward + parameter gradient + covariance quadratic form), arm
// selection, training passes, and the diagonal-vs-full covariance cost gap
// that motivates the diagonal default for paper-sized networks.

#include <benchmark/benchmark.h>

#include "lacb/bandit/lin_ucb.h"
#include "lacb/bandit/neural_ucb.h"
#include "lacb/common/rng.h"
#include "lacb/nn/mlp.h"

namespace lacb {
namespace {

bandit::NeuralUcbConfig MakeConfig(size_t hidden, bandit::CovarianceMode mode) {
  bandit::NeuralUcbConfig cfg;
  cfg.arm_values = {10, 20, 30, 40, 50, 60};
  cfg.context_dim = 18;
  cfg.hidden_sizes = {hidden, hidden / 2};
  cfg.alpha = 0.5;
  cfg.lambda = 0.001;
  cfg.batch_size = 16;
  cfg.train_epochs = 30;
  cfg.learning_rate = 0.05;
  cfg.value_scale = 1.0 / 60.0;
  cfg.covariance = mode;
  cfg.seed = 1;
  return cfg;
}

bandit::Vector RandomContext(Rng* rng) {
  bandit::Vector ctx(18);
  for (double& v : ctx) v = rng->Uniform();
  return ctx;
}

void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  nn::MlpConfig cfg;
  cfg.layer_sizes = {25, static_cast<size_t>(state.range(0)),
                     static_cast<size_t>(state.range(0)) / 2};
  auto net = nn::Mlp::Create(cfg, &rng).value();
  la::Vector x(25, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x).value());
  }
}
BENCHMARK(BM_MlpForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpParamGradient(benchmark::State& state) {
  Rng rng(1);
  nn::MlpConfig cfg;
  cfg.layer_sizes = {25, static_cast<size_t>(state.range(0)),
                     static_cast<size_t>(state.range(0)) / 2};
  auto net = nn::Mlp::Create(cfg, &rng).value();
  la::Vector x(25, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.ParamGradient(x).value());
  }
}
BENCHMARK(BM_MlpParamGradient)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// One Alg. 1 selection: |C| UCB scores + the chosen arm's D update.
void BM_NeuralUcbSelect_Diagonal(benchmark::State& state) {
  auto b = bandit::NeuralUcb::Create(
               MakeConfig(static_cast<size_t>(state.range(0)),
                          bandit::CovarianceMode::kDiagonal))
               .value();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.SelectValue(RandomContext(&rng)).value());
  }
}
BENCHMARK(BM_NeuralUcbSelect_Diagonal)->Arg(16)->Arg(32)->Arg(64);

void BM_NeuralUcbSelect_FullMatrix(benchmark::State& state) {
  auto b = bandit::NeuralUcb::Create(
               MakeConfig(static_cast<size_t>(state.range(0)),
                          bandit::CovarianceMode::kFullMatrix))
               .value();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.SelectValue(RandomContext(&rng)).value());
  }
}
// The full d×d covariance is O(d²) per arm score: keep d modest.
BENCHMARK(BM_NeuralUcbSelect_FullMatrix)->Arg(8)->Arg(16)->Arg(32);

// One full training pass over a 16-observation buffer (Alg. 1 lines 13-18
// with replay minibatches).
void BM_NeuralUcbTrainingPass(benchmark::State& state) {
  auto cfg = MakeConfig(32, bandit::CovarianceMode::kDiagonal);
  auto b = bandit::NeuralUcb::Create(cfg).value();
  Rng rng(3);
  for (auto _ : state) {
    for (size_t i = 0; i < cfg.batch_size; ++i) {
      (void)b.Observe(RandomContext(&rng), 30.0, 0.2);
    }
  }
}
BENCHMARK(BM_NeuralUcbTrainingPass);

void BM_LinUcbSelect(benchmark::State& state) {
  bandit::LinUcbConfig cfg;
  cfg.arm_values = {10, 20, 30, 40, 50, 60};
  cfg.context_dim = 18;
  cfg.alpha = 0.5;
  auto b = bandit::LinUcb::Create(cfg).value();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.SelectValue(RandomContext(&rng)).value());
  }
}
BENCHMARK(BM_LinUcbSelect);

// A full day of capacity estimation for a broker fleet (the per-day cost
// LACB adds on top of assignment).
void BM_FleetDailyEstimation(benchmark::State& state) {
  size_t fleet = static_cast<size_t>(state.range(0));
  auto b = bandit::NeuralUcb::Create(
               MakeConfig(32, bandit::CovarianceMode::kDiagonal))
               .value();
  Rng rng(5);
  std::vector<bandit::Vector> contexts;
  for (size_t i = 0; i < fleet; ++i) contexts.push_back(RandomContext(&rng));
  for (auto _ : state) {
    for (const auto& ctx : contexts) {
      benchmark::DoNotOptimize(b.SelectValue(ctx).value());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fleet));
}
BENCHMARK(BM_FleetDailyEstimation)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace lacb

// Microbenchmarks (google-benchmark) of the matching substrate — the
// complexity claims of Sec. VI: padded KM is O(|B|³), CBS selection is
// expected O(|R||B|), and CBS + KM on the pruned graph is O(|R|³ + |R||B|).

#include <benchmark/benchmark.h>

#include "lacb/common/rng.h"
#include "lacb/matching/assignment.h"
#include "lacb/matching/min_cost_flow.h"
#include "lacb/matching/selection.h"

namespace lacb {
namespace {

la::Matrix RandomUtility(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Uniform();
  }
  return m;
}

// Padded square KM over the full broker set: the paper's O(|B|^3) VFGA core.
void BM_KmPaddedSquare(benchmark::State& state) {
  size_t brokers = static_cast<size_t>(state.range(0));
  size_t requests = 10;
  la::Matrix u = RandomUtility(requests, brokers, 42);
  for (auto _ : state) {
    la::Matrix square = matching::PadToSquare(u).value();
    auto a = matching::MaxWeightAssignment(square).value();
    benchmark::DoNotOptimize(a.total_weight);
  }
  state.SetComplexityN(static_cast<int64_t>(brokers));
}
BENCHMARK(BM_KmPaddedSquare)->RangeMultiplier(2)->Range(64, 1024)
    ->Complexity(benchmark::oNCubed);

// CBS + rectangular KM: the paper's O(|R|^3 + |R||B|) LACB-Opt core.
void BM_CbsPlusKm(benchmark::State& state) {
  size_t brokers = static_cast<size_t>(state.range(0));
  size_t requests = 10;
  la::Matrix u = RandomUtility(requests, brokers, 42);
  Rng rng(7);
  for (auto _ : state) {
    auto cols = matching::CandidateColumns(u, &rng).value();
    auto pruned = matching::RestrictColumns(u, cols).value();
    auto a = matching::MaxWeightAssignment(pruned).value();
    benchmark::DoNotOptimize(a.total_weight);
  }
  state.SetComplexityN(static_cast<int64_t>(brokers));
}
BENCHMARK(BM_CbsPlusKm)->RangeMultiplier(2)->Range(64, 1024)
    ->Complexity(benchmark::oN);

// Rectangular KM without padding (what the dummy construction is equivalent
// to): O(|R|^2 |B|).
void BM_KmRectangular(benchmark::State& state) {
  size_t brokers = static_cast<size_t>(state.range(0));
  size_t requests = 10;
  la::Matrix u = RandomUtility(requests, brokers, 42);
  for (auto _ : state) {
    auto a = matching::MaxWeightAssignment(u).value();
    benchmark::DoNotOptimize(a.total_weight);
  }
}
BENCHMARK(BM_KmRectangular)->RangeMultiplier(2)->Range(64, 1024);

// Growth of KM in the request count at fixed |B| (the |R|^3 term).
void BM_KmGrowingRequests(benchmark::State& state) {
  size_t requests = static_cast<size_t>(state.range(0));
  size_t brokers = 512;
  la::Matrix u = RandomUtility(requests, brokers, 43);
  Rng rng(8);
  for (auto _ : state) {
    auto cols = matching::CandidateColumns(u, &rng).value();
    auto pruned = matching::RestrictColumns(u, cols).value();
    auto a = matching::MaxWeightAssignment(pruned).value();
    benchmark::DoNotOptimize(a.total_weight);
  }
  state.SetComplexityN(static_cast<int64_t>(requests));
}
BENCHMARK(BM_KmGrowingRequests)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

// CBS selection alone: expected O(|B|) per request.
void BM_CbsSelection(benchmark::State& state) {
  size_t brokers = static_cast<size_t>(state.range(0));
  Rng data_rng(9);
  std::vector<double> utilities(brokers);
  for (double& v : utilities) v = data_rng.Uniform();
  Rng rng(10);
  for (auto _ : state) {
    auto top = matching::SelectTopK(utilities, 10, &rng).value();
    benchmark::DoNotOptimize(top.size());
  }
  state.SetComplexityN(static_cast<int64_t>(brokers));
}
BENCHMARK(BM_CbsSelection)->RangeMultiplier(4)->Range(256, 16384)
    ->Complexity(benchmark::oN);

// Exhaustive top-k via sorting, for contrast with CBS quickselect.
void BM_SortSelection(benchmark::State& state) {
  size_t brokers = static_cast<size_t>(state.range(0));
  Rng data_rng(9);
  std::vector<double> utilities(brokers);
  for (double& v : utilities) v = data_rng.Uniform();
  for (auto _ : state) {
    std::vector<size_t> idx(brokers);
    for (size_t i = 0; i < brokers; ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + 10, idx.end(),
                      [&](size_t a, size_t b) {
                        return utilities[a] > utilities[b];
                      });
    benchmark::DoNotOptimize(idx[0]);
  }
}
BENCHMARK(BM_SortSelection)->RangeMultiplier(4)->Range(256, 16384);

// Min-cost-flow assignment oracle, for cost context vs KM.
void BM_MinCostFlowAssignment(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  la::Matrix u = RandomUtility(n, n, 44);
  for (auto _ : state) {
    matching::MinCostFlow g(2 * n + 2);
    size_t source = 0;
    size_t sink = 2 * n + 1;
    for (size_t r = 0; r < n; ++r) {
      (void)g.AddEdge(source, 1 + r, 1, 0.0);
      for (size_t c = 0; c < n; ++c) {
        (void)g.AddEdge(1 + r, 1 + n + c, 1, -u(r, c));
      }
    }
    for (size_t c = 0; c < n; ++c) (void)g.AddEdge(1 + n + c, sink, 1, 0.0);
    auto res = g.Solve(source, sink).value();
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_MinCostFlowAssignment)->RangeMultiplier(2)->Range(16, 128);

}  // namespace
}  // namespace lacb

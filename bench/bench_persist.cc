// Durable-state overhead: the checkpoint/WAL subsystem (docs/persistence.md)
// layered over the lockstep serving path, swept across checkpoint cadences.
//
// Claims checked: (i) persistence is a pure overlay — realized utility at
// every checkpoint interval is bit-identical to the persistence-off run
// (snapshots are taken at quiesce points and never perturb the decision
// stream); (ii) the overlay actually persists — checkpoints and WAL
// records accumulate at the configured cadence; (iii) warm restart works
// end to end — a second service booted on the interval-sweep directory
// restores the final day's state and reports zero replay divergence.
// Measured alongside: wall-time overhead vs the persistence-off baseline,
// checkpoint sizes, WAL volume, per-snapshot latency quantiles, and the
// cold-boot restore time — the durability cost curve BENCH_persist.json
// records for future perf PRs to diff.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"

namespace lacb {
namespace {

struct SweepPoint {
  uint64_t interval = 0;  // batches between mid-day checkpoints; 0 = off
  double wall_seconds = 0.0;
  core::PolicyRunResult run;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  obs::HistogramSnapshot snapshot_latency;
};

uint64_t Counter(const core::PolicyRunResult& run, const std::string& name) {
  if (run.telemetry == nullptr) return 0;
  const auto& counters = run.telemetry->metrics.counters;
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Result<SweepPoint> RunSweepPoint(const sim::DatasetConfig& data,
                                 const core::PolicySuiteConfig& suite,
                                 uint64_t interval, const std::string& dir) {
  serve::ServedRunOptions opts;
  opts.mode = serve::LoadMode::kLockstepReplay;
  opts.serve.num_workers = 1;
  opts.serve.max_batch_size = 1u << 20;
  opts.serve.max_batch_delay = std::chrono::seconds(300);
  opts.serve.queue_capacity = 1u << 16;
  if (!dir.empty()) {
    std::filesystem::remove_all(dir);
    opts.serve.checkpoint_dir = dir;
    opts.serve.checkpoint_interval_batches = interval;
    // The sweep measures serialization + atomic-write cost, not device
    // sync latency (CI runs on tmpfs where fsync is meaningless anyway).
    opts.serve.wal_fsync = false;
  }

  SweepPoint point;
  point.interval = interval;
  Stopwatch sw;
  LACB_ASSIGN_OR_RETURN(
      point.run, serve::RunPolicyServed(
                     data, core::SuitePolicyFactory(data, suite, 8), opts));
  point.wall_seconds = sw.ElapsedSeconds();
  point.checkpoints = Counter(point.run, "persist.checkpoints");
  point.checkpoint_bytes = Counter(point.run, "persist.checkpoint_bytes");
  point.wal_records = Counter(point.run, "persist.wal_records");
  point.wal_bytes = Counter(point.run, "persist.wal_bytes");
  if (point.run.telemetry != nullptr) {
    const auto& hists = point.run.telemetry->metrics.histograms;
    if (auto it = hists.find("persist.checkpoint_seconds");
        it != hists.end()) {
      point.snapshot_latency = it->second;
    }
  }
  // Distinguish the sweep points in BENCH_persist.json.
  point.run.policy.append("@ckpt").append(
      dir.empty() ? "off" : std::to_string(interval));
  return point;
}

Status Run() {
  bench::PrintHeader("durable state",
                     "checkpoint/WAL overhead & warm-restart cost vs cadence");

  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data, bench::ScaledCity('A', 3));
  core::PolicySuiteConfig suite;
  std::cout << "dataset: " << data.name << " (" << data.num_brokers
            << " brokers, " << data.num_requests << " requests, "
            << data.num_days << " days), policy: LACB-Opt (full learned "
            << "state: NN bandit + value function + estimator)\n\n";

  bool all_ok = true;
  bench::BenchTelemetryLog telemetry_log("persist");

  const std::string dir_prefix =
      (std::filesystem::temp_directory_path() / "lacb_bench_persist_")
          .string();
  TablePrinter table;
  table.SetHeader({"interval", "wall_s", "overhead", "ckpts", "ckpt_mb",
                   "wal_recs", "wal_mb", "snap_p50_ms", "snap_p99_ms"});
  std::vector<SweepPoint> points;
  std::vector<core::PolicyRunResult> runs;
  std::string last_dir;
  for (uint64_t interval : {0u, 1u, 4u, 16u}) {
    // interval 0 with no directory is the persistence-off baseline; the
    // persisted points all checkpoint at day boundaries plus every
    // `interval` committed batches.
    std::string dir;
    if (interval != 0) {
      dir = dir_prefix + std::to_string(interval);
      last_dir = dir;
    }
    LACB_ASSIGN_OR_RETURN(SweepPoint point,
                          RunSweepPoint(data, suite, interval, dir));
    double overhead =
        points.empty()
            ? 0.0
            : point.wall_seconds / std::max(1e-9, points[0].wall_seconds) -
                  1.0;
    LACB_RETURN_NOT_OK(table.AddRow(
        {interval == 0 ? "off" : std::to_string(interval),
         TablePrinter::Num(point.wall_seconds, 3),
         points.empty() ? "-" : TablePrinter::Num(overhead * 100.0, 1) + "%",
         std::to_string(point.checkpoints),
         TablePrinter::Num(point.checkpoint_bytes / 1e6, 2),
         std::to_string(point.wal_records),
         TablePrinter::Num(point.wal_bytes / 1e6, 2),
         TablePrinter::Num(point.snapshot_latency.p50 * 1e3, 3),
         TablePrinter::Num(point.snapshot_latency.p99 * 1e3, 3)}));
    runs.push_back(point.run);
    points.push_back(std::move(point));
  }
  bench::PrintBoth(table);
  telemetry_log.Add(data, runs);

  all_ok &= bench::ShapeCheck(
      "persistence is a pure overlay: realized utility is bit-identical at "
      "every checkpoint cadence",
      points[1].run.total_utility == points[0].run.total_utility &&
          points[2].run.total_utility == points[0].run.total_utility &&
          points[3].run.total_utility == points[0].run.total_utility,
      TablePrinter::Num(points[0].run.total_utility, 4) + " at all points");
  all_ok &= bench::ShapeCheck(
      "persistence-off run touches no durable state",
      points[0].checkpoints == 0 && points[0].wal_records == 0,
      std::to_string(points[0].checkpoints) + " ckpts, " +
          std::to_string(points[0].wal_records) + " wal records");
  all_ok &= bench::ShapeCheck(
      "checkpoint count grows with cadence (interval 1 > interval 16 > 0)",
      points[1].checkpoints > points[3].checkpoints &&
          points[3].checkpoints > 0,
      std::to_string(points[1].checkpoints) + " vs " +
          std::to_string(points[3].checkpoints));
  all_ok &= bench::ShapeCheck(
      "every committed batch reaches the WAL at every cadence",
      points[1].wal_records >= points[1].run.daily_utility.size() &&
          points[1].wal_records == points[2].wal_records &&
          points[2].wal_records == points[3].wal_records,
      std::to_string(points[1].wal_records) + " records");

  // Warm-restart cost: boot a fresh service on the interval-16 directory
  // (checkpoint + WAL tail from the completed run) and time Start().
  {
    obs::ScopedTelemetry telemetry;
    serve::ServeOptions restore_opts;
    restore_opts.num_workers = 1;
    restore_opts.checkpoint_dir = last_dir;
    restore_opts.wal_fsync = false;
    LACB_ASSIGN_OR_RETURN(
        auto service,
        serve::AssignmentService::Create(
            data, core::SuitePolicyFactory(data, suite, 8), restore_opts));
    Stopwatch sw;
    LACB_RETURN_NOT_OK(service->Start());
    double restore_seconds = sw.ElapsedSeconds();
    const serve::RestoreInfo& info = service->restore_info();
    uint64_t divergence =
        obs::ActiveRegistry().GetCounter("persist.replay_divergence").value();
    std::cout << "\nwarm restart from " << last_dir << ": "
              << TablePrinter::Num(restore_seconds * 1e3, 2) << " ms, day "
              << info.day << ", " << info.replayed_batches
              << " WAL batches replayed\n";
    all_ok &= bench::ShapeCheck(
        "cold boot restores the completed run's final state",
        info.restored && !info.day_open &&
            info.day + 1 == data.num_days,
        "day " + std::to_string(info.day) +
            (info.day_open ? " (open)" : " (closed)"));
    all_ok &= bench::ShapeCheck(
        "WAL replay reproduces every journaled decision (zero divergence)",
        divergence == 0, std::to_string(divergence) + " divergent batches");
    service->Shutdown();
  }

  LACB_RETURN_NOT_OK(telemetry_log.Write());
  for (uint64_t interval : {1u, 4u, 16u}) {
    std::filesystem::remove_all(dir_prefix + std::to_string(interval));
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return all_ok ? Status::OK()
                : Status::Internal("persist bench shape checks failed");
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

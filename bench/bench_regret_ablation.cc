// Regret ablation (Sec. V-E, Theorem 1): cumulative regret of the
// NN-enhanced UCB against LinUCB and ε-greedy on a synthetic capacity
// environment with a non-linear, context-dependent reward; plus the
// Theorem-1 sensitivity of the regret bound to |C| (number of candidate
// capacities) and L (network depth).
//
// Claims checked: (i) NN-UCB beats LinUCB on a non-linear reward (the
// motivation for replacing the linear model in Eq. 3 with Eq. 5);
// (ii) both UCB policies beat ε-greedy; (iii) measured regret stays below
// the Theorem-1 bound n|C|ξ^L/π^(L−1); (iv) regret grows with |C|, as the
// bound predicts ("setting a suitable number of candidate capacities is
// beneficial").

#include <cmath>

#include "bench_util.h"

namespace lacb {
namespace {

// Context-dependent capacity environment: the knee is a non-linear
// function of the 3-d context; the reward has the warm-up/collapse shape.
struct Environment {
  double Knee(const bandit::Vector& ctx) const {
    double t = 0.5 * ctx[0] + 0.3 * std::sin(3.0 * ctx[1]) * ctx[1] +
               0.2 * ctx[2] * ctx[2];
    return 15.0 + 35.0 * std::clamp(t, 0.0, 1.0);
  }
  double Reward(const bandit::Vector& ctx, double c) const {
    double knee = Knee(ctx);
    double q = c <= knee ? 0.55 + 0.45 * (c / knee)
                         : 1.0 / (1.0 + 0.15 * (c - knee));
    return 0.25 * q;
  }
  double Optimal(const bandit::Vector& ctx,
                 const std::vector<double>& arms) const {
    double best = 0.0;
    for (double a : arms) best = std::max(best, Reward(ctx, a));
    return best;
  }
};

Result<double> RunBandit(bandit::ContextualBandit* b, size_t trials,
                         uint64_t seed, std::vector<double>* curve) {
  Environment env;
  Rng rng(seed);
  bandit::RegretTracker tracker;
  for (size_t t = 0; t < trials; ++t) {
    bandit::Vector ctx = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    LACB_ASSIGN_OR_RETURN(double v, b->SelectValue(ctx));
    double r = env.Reward(ctx, v) + rng.Normal(0.0, 0.02);
    LACB_RETURN_NOT_OK(b->Observe(ctx, v, r));
    tracker.Record(env.Reward(ctx, v), env.Optimal(ctx, b->arm_values()));
  }
  if (curve != nullptr) *curve = tracker.history();
  return tracker.cumulative_regret();
}

std::vector<double> Arms(size_t count) {
  std::vector<double> arms;
  for (size_t i = 0; i < count; ++i) {
    arms.push_back(10.0 + 50.0 * static_cast<double>(i) /
                              static_cast<double>(std::max<size_t>(1, count - 1)));
  }
  return arms;
}

Status Run() {
  bench::PrintHeader("Regret ablation (Thm. 1)",
                     "NN-UCB vs LinUCB vs eps-greedy; |C| and depth scaling");
  const size_t kTrials = 3000;
  bool all_ok = true;

  // --- Policy comparison at |C| = 6. ---
  std::vector<double> arms = Arms(6);

  bandit::NeuralUcbConfig nn_cfg;
  nn_cfg.arm_values = arms;
  nn_cfg.context_dim = 3;
  nn_cfg.hidden_sizes = {32, 16};
  nn_cfg.alpha = 0.3;
  nn_cfg.lambda = 0.001;
  nn_cfg.batch_size = 16;
  nn_cfg.train_epochs = 30;
  nn_cfg.learning_rate = 0.05;
  nn_cfg.value_scale = 1.0 / 60.0;
  nn_cfg.seed = 5;
  LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb nn_ucb,
                        bandit::NeuralUcb::Create(nn_cfg));

  bandit::LinUcbConfig lin_cfg;
  lin_cfg.arm_values = arms;
  lin_cfg.context_dim = 3;
  lin_cfg.alpha = 0.3;
  lin_cfg.lambda = 1.0;
  lin_cfg.value_scale = 1.0 / 60.0;
  LACB_ASSIGN_OR_RETURN(bandit::LinUcb lin_ucb,
                        bandit::LinUcb::Create(lin_cfg));

  bandit::EpsGreedyConfig eps_cfg;
  eps_cfg.arm_values = arms;
  eps_cfg.context_dim = 3;
  eps_cfg.epsilon = 0.1;
  eps_cfg.seed = 6;
  LACB_ASSIGN_OR_RETURN(bandit::EpsGreedy eps, bandit::EpsGreedy::Create(eps_cfg));

  std::vector<double> nn_curve;
  std::vector<double> lin_curve;
  std::vector<double> eps_curve;
  LACB_ASSIGN_OR_RETURN(double nn_regret,
                        RunBandit(&nn_ucb, kTrials, 11, &nn_curve));
  LACB_ASSIGN_OR_RETURN(double lin_regret,
                        RunBandit(&lin_ucb, kTrials, 11, &lin_curve));
  LACB_ASSIGN_OR_RETURN(double eps_regret,
                        RunBandit(&eps, kTrials, 11, &eps_curve));
  (void)eps_regret;  // the asymptotic comparison below uses the curve

  TablePrinter curve;
  curve.SetHeader({"trial", "NN-UCB", "LinUCB", "eps-greedy"});
  for (size_t t = 299; t < kTrials; t += 300) {
    LACB_RETURN_NOT_OK(curve.AddRow(
        {std::to_string(t + 1), TablePrinter::Num(nn_curve[t], 2),
         TablePrinter::Num(lin_curve[t], 2),
         TablePrinter::Num(eps_curve[t], 2)}));
  }
  bench::PrintBoth(curve);

  all_ok &= bench::ShapeCheck(
      "NN-enhanced UCB beats LinUCB on the non-linear reward",
      nn_regret < lin_regret,
      TablePrinter::Num(nn_regret, 1) + " vs " +
          TablePrinter::Num(lin_regret, 1));
  // ε-greedy explores a constant 10% forever, so its cumulative regret is
  // a line; the UCB policies pay more up front and flatten. The asymptotic
  // comparison is the *late-phase* per-trial regret.
  auto late_rate = [&](const std::vector<double>& curve) {
    size_t n = curve.size();
    return (curve[n - 1] - curve[n - 501]) / 500.0;
  };
  double nn_late = late_rate(nn_curve);
  double eps_late = late_rate(eps_curve);
  all_ok &= bench::ShapeCheck(
      "NN-UCB's late-phase per-trial regret beats eps-greedy's floor",
      nn_late < eps_late,
      TablePrinter::Num(nn_late, 4) + " vs " +
          TablePrinter::Num(eps_late, 4) + " per trial");

  // Theorem-1 bound at the trained network.
  double xi = nn_ucb.network().MaxLayerOperatorNorm();
  size_t L = nn_ucb.network().num_layers();
  double bound = static_cast<double>(kTrials) * arms.size() *
                 std::pow(xi, static_cast<double>(L)) /
                 std::pow(M_PI, static_cast<double>(L - 1));
  std::cout << "Theorem-1 ingredients: xi=" << TablePrinter::Num(xi, 2)
            << " L=" << L << " bound=" << TablePrinter::Num(bound, 1) << "\n";
  all_ok &= bench::ShapeCheck(
      "measured NN-UCB regret below the Theorem-1 bound n|C|xi^L/pi^(L-1)",
      nn_regret < bound,
      TablePrinter::Num(nn_regret, 1) + " < " + TablePrinter::Num(bound, 1));

  // --- Regret vs number of arms |C| (bound is linear in |C|). ---
  TablePrinter arms_table;
  arms_table.SetHeader({"num_arms", "nn_ucb_regret", "thm1_bound"});
  std::vector<double> regrets;
  for (size_t count : {3u, 6u, 12u, 24u}) {
    bandit::NeuralUcbConfig cfg = nn_cfg;
    cfg.arm_values = Arms(count);
    LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb b, bandit::NeuralUcb::Create(cfg));
    LACB_ASSIGN_OR_RETURN(double regret, RunBandit(&b, kTrials, 13, nullptr));
    regrets.push_back(regret);
    double bxi = b.network().MaxLayerOperatorNorm();
    double bd = static_cast<double>(kTrials) * count *
                std::pow(bxi, 3.0) / std::pow(M_PI, 2.0);
    LACB_RETURN_NOT_OK(arms_table.AddRow(
        {std::to_string(count), TablePrinter::Num(regret, 2),
         TablePrinter::Num(bd, 1)}));
  }
  bench::PrintBoth(arms_table);
  all_ok &= bench::ShapeCheck(
      "regret grows with the candidate-set size |C| (Thm. 1 discussion)",
      regrets.back() > regrets.front(),
      TablePrinter::Num(regrets.front(), 1) + " -> " +
          TablePrinter::Num(regrets.back(), 1));

  // --- Regret vs network depth (deeper nets risk worse arm choices). ---
  TablePrinter depth_table;
  depth_table.SetHeader({"hidden_layers", "nn_ucb_regret"});
  for (size_t depth : {1u, 2u, 4u}) {
    bandit::NeuralUcbConfig cfg = nn_cfg;
    cfg.hidden_sizes.assign(depth, 16);
    LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb b, bandit::NeuralUcb::Create(cfg));
    LACB_ASSIGN_OR_RETURN(double regret, RunBandit(&b, kTrials, 17, nullptr));
    LACB_RETURN_NOT_OK(depth_table.AddRow(
        {std::to_string(depth), TablePrinter::Num(regret, 2)}));
  }
  bench::PrintBoth(depth_table);
  std::cout << "(the paper adopts a 3-layer MLP to balance model capacity "
               "against bandit effectiveness)\n";

  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

// Dynamic scenario engine: stress matrix over churn rate × burst shape ×
// two-sided tightness (docs/scenarios.md).
//
// Three sweeps, every point re-checking its conservation identity:
//
//  - Offline churn sweep: the LACB-Opt policy under rising stochastic
//    broker churn (paired join/leave Poisson rates over a reserved join
//    pool, plus a mid-day fail burst). Measures realized utility, churn
//    bookkeeping (applied events, churn-voided assignments), and the
//    offline ledger: submitted == assigned + unmatched + dropped_appeals.
//
//  - Two-sided sweep: budget tightness × backend (exact KM row-expansion
//    vs approx b-Suitor), appeal-free. Every batch's solution was already
//    re-checked by CheckTwoSidedFeasible inside the runner; the sweep
//    exports the violation count (gate: 0) and the value split between
//    primary and extra engagement edges.
//
//  - Served sweep: open-loop LoadMode::kScenario arrivals (diurnal curve +
//    one flash window at a rate multiple) against the serving layer with
//    and without churn. Measures shed rate, p99 batch latency, and the
//    serve ledger: submitted == assigned + unmatched + failed +
//    dropped_appeals.
//
// Results land in BENCH_scenario.json (schema below; validated by CI —
// conservation and two-sided feasibility are re-checked from the JSON).

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"

namespace lacb {
namespace {

// Small instance: the sweeps run 3 offline × 6 two-sided × 4 served
// points, so each run must stay in the hundreds of milliseconds.
sim::DatasetConfig BenchConfig() {
  sim::DatasetConfig config;
  config.name = "scenario-bench";
  config.num_brokers = 40;
  config.num_requests = 1800;
  config.num_days = 3;
  config.seed = 20260809;
  return config;
}

scenario::ScenarioSpec ChurnSpec(double rate) {
  scenario::ScenarioSpec spec;
  spec.seed = 7;
  spec.stochastic.join_rate = rate;
  spec.stochastic.leave_rate = rate;
  spec.stochastic.fail_rate = rate * 0.5;
  spec.stochastic.join_pool_fraction = rate > 0.0 ? 0.2 : 0.0;
  return spec;
}

obs::JsonValue LedgerJson(const scenario::ScenarioLedger& ledger) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("submitted", static_cast<uint64_t>(ledger.submitted));
  out.Set("assigned", static_cast<uint64_t>(ledger.assigned));
  out.Set("unmatched", static_cast<uint64_t>(ledger.unmatched));
  out.Set("dropped_appeals", static_cast<uint64_t>(ledger.dropped_appeals));
  out.Set("churn_rejected", static_cast<uint64_t>(ledger.churn_rejected));
  out.Set("extra_assigned", static_cast<uint64_t>(ledger.extra_assigned));
  out.Set("conservation_ok", ledger.ConservationHolds());
  return out;
}

Status Run() {
  bench::PrintHeader("scenario engine",
                     "churn x burst shape x two-sided tightness");
  const sim::DatasetConfig config = BenchConfig();
  core::PolicySuiteConfig suite;
  suite.seed = 55;
  constexpr size_t kLacbOpt = 8;
  bool all_ok = true;

  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("schema_version", static_cast<uint64_t>(1));
  root.Set("bench", "scenario");

  // --- Offline churn sweep ------------------------------------------------
  std::cout << "\n--- offline churn sweep (LACB-Opt) ---\n";
  obs::JsonValue churn_sweep = obs::JsonValue::Array();
  for (double rate : {0.0, 0.5, 1.5}) {
    scenario::ScenarioSpec spec = ChurnSpec(rate);
    LACB_ASSIGN_OR_RETURN(scenario::CompiledScenario scenario,
                          scenario::CompiledScenario::Compile(spec, config));
    LACB_ASSIGN_OR_RETURN(auto policy,
                          core::MakeSuitePolicy(config, suite, kLacbOpt));
    LACB_ASSIGN_OR_RETURN(
        scenario::ScenarioRunResult result,
        scenario::RunPolicyScenario(config, policy.get(), scenario));
    all_ok &= bench::ShapeCheck(
        "conservation holds at churn rate " + std::to_string(rate),
        result.ledger.ConservationHolds(),
        std::to_string(result.ledger.submitted) + " submitted");
    obs::JsonValue point = obs::JsonValue::Object();
    point.Set("churn_rate_per_day", rate);
    point.Set("utility", result.run.total_utility);
    point.Set("churn_events_applied",
              static_cast<uint64_t>(result.churn_applied));
    point.Set("p99_batch_seconds", result.run.p99_batch_latency);
    point.Set("ledger", LedgerJson(result.ledger));
    churn_sweep.Append(std::move(point));
    std::cout << "  rate " << rate << "/day: utility "
              << result.run.total_utility << ", events "
              << result.churn_applied << ", churn-voided "
              << result.ledger.churn_rejected << "\n";
  }
  root.Set("offline_churn_sweep", std::move(churn_sweep));

  // --- Two-sided tightness sweep ------------------------------------------
  std::cout << "\n--- two-sided tightness sweep ---\n";
  sim::DatasetConfig ts_config = config;
  ts_config.appeal_rate = 0.0;  // engagement edges cannot re-queue
  obs::JsonValue ts_sweep = obs::JsonValue::Array();
  for (double tightness : {0.0, 0.4, 0.8}) {
    for (scenario::TwoSidedBackend backend :
         {scenario::TwoSidedBackend::kExact,
          scenario::TwoSidedBackend::kApprox}) {
      scenario::ScenarioSpec spec;
      spec.seed = 11;
      spec.two_sided.enabled = true;
      spec.two_sided.tightness = tightness;
      spec.two_sided.max_limit = 3;
      spec.two_sided.backend = backend;
      LACB_ASSIGN_OR_RETURN(
          scenario::CompiledScenario scenario,
          scenario::CompiledScenario::Compile(spec, ts_config));
      LACB_ASSIGN_OR_RETURN(auto policy,
                            core::MakeSuitePolicy(ts_config, suite, kLacbOpt));
      LACB_ASSIGN_OR_RETURN(
          scenario::ScenarioRunResult result,
          scenario::RunPolicyScenario(ts_config, policy.get(), scenario));
      const char* name =
          backend == scenario::TwoSidedBackend::kExact ? "exact" : "approx";
      all_ok &= bench::ShapeCheck(
          std::string("two-sided feasible (") + name + ", tightness " +
              std::to_string(tightness) + ")",
          result.feasibility_violations == 0 &&
              result.ledger.ConservationHolds(),
          std::to_string(result.feasibility_violations) + " violations");
      obs::JsonValue point = obs::JsonValue::Object();
      point.Set("tightness", tightness);
      point.Set("backend", name);
      point.Set("utility", result.run.total_utility);
      point.Set("feasibility_violations",
                static_cast<uint64_t>(result.feasibility_violations));
      point.Set("ledger", LedgerJson(result.ledger));
      ts_sweep.Append(std::move(point));
      std::cout << "  tightness " << tightness << " (" << name
                << "): utility " << result.run.total_utility << ", extras "
                << result.ledger.extra_assigned << "\n";
    }
  }
  root.Set("two_sided_sweep", std::move(ts_sweep));

  // --- Served sweep: churn x burst shape ----------------------------------
  std::cout << "\n--- served sweep (LoadMode::kScenario) ---\n";
  obs::JsonValue served_sweep = obs::JsonValue::Array();
  for (double rate : {0.0, 1.0}) {
    for (double burst : {1.0, 6.0}) {
      scenario::ScenarioSpec spec = ChurnSpec(rate);
      spec.arrivals.diurnal = {0.6, 1.4, 1.0};
      if (burst > 1.0) {
        scenario::FlashWindow window;
        window.start_fraction = 0.4;
        window.length_fraction = 0.2;
        window.multiplier = burst;
        spec.arrivals.flash.push_back(window);
      }
      LACB_ASSIGN_OR_RETURN(
          scenario::CompiledScenario compiled,
          scenario::CompiledScenario::Compile(spec, config));

      serve::ServedRunOptions options;
      options.mode = serve::LoadMode::kScenario;
      options.flash_base_rate = 40000.0;  // ~15 ms of arrivals per day
      options.serve.scenario = std::make_shared<scenario::CompiledScenario>(
          std::move(compiled));
      options.serve.num_workers = 2;
      options.serve.queue_capacity = 64;  // tight: the 6x burst must shed
      options.serve.max_batch_size = 32;
      options.serve.max_batch_delay = std::chrono::milliseconds(2);

      obs::ScopedTelemetry telemetry;
      LACB_ASSIGN_OR_RETURN(
          auto service,
          serve::AssignmentService::Create(
              config, core::SuitePolicyFactory(config, suite, kLacbOpt),
              options.serve));
      LACB_RETURN_NOT_OK(service->Start());
      std::vector<double> latencies;
      for (size_t day = 0; day < config.num_days; ++day) {
        LACB_RETURN_NOT_OK(service->OpenDay(day));
        LACB_RETURN_NOT_OK(serve::PumpDay(service.get(), day, options));
        LACB_RETURN_NOT_OK(service->CloseDay().status());
      }
      serve::ServeStats stats = service->Stats();
      service->Shutdown();
      obs::MetricsSnapshot metrics = telemetry.registry().Snapshot();
      double p99 = 0.0;
      if (auto it = metrics.histograms.find("serve.batch_assign_seconds");
          it != metrics.histograms.end()) {
        p99 = it->second.p99;
      }

      bool conserved = stats.assigned + stats.unmatched + stats.failed +
                           stats.dropped_appeals ==
                       stats.submitted;
      all_ok &= bench::ShapeCheck(
          "serve conservation (churn " + std::to_string(rate) + ", burst " +
              std::to_string(burst) + "x)",
          conserved, std::to_string(stats.submitted) + " submitted");
      double offered = static_cast<double>(stats.submitted + stats.shed);
      double shed_rate =
          offered > 0.0 ? static_cast<double>(stats.shed) / offered : 0.0;
      obs::JsonValue point = obs::JsonValue::Object();
      point.Set("churn_rate_per_day", rate);
      point.Set("burst_multiplier", burst);
      point.Set("submitted", stats.submitted);
      point.Set("shed", stats.shed);
      point.Set("shed_rate", shed_rate);
      point.Set("assigned", stats.assigned);
      point.Set("unmatched", stats.unmatched);
      point.Set("failed", stats.failed);
      point.Set("dropped_appeals", stats.dropped_appeals);
      point.Set("churn_events", stats.churn_events);
      point.Set("churn_rejected", stats.churn_rejected);
      point.Set("p99_batch_seconds", p99);
      point.Set("conservation_ok", conserved);
      served_sweep.Append(std::move(point));
      std::cout << "  churn " << rate << ", burst " << burst
                << "x: shed rate " << shed_rate << ", p99 " << p99
                << "s, churn events " << stats.churn_events << "\n";
    }
  }
  root.Set("served_sweep", std::move(served_sweep));

  LACB_RETURN_NOT_OK(obs::WriteJsonFile(root, "BENCH_scenario.json"));
  std::cout << "\ntelemetry written to BENCH_scenario.json\n";
  if (!all_ok) return Status::Internal("scenario bench shape checks failed");
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

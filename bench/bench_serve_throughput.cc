// Serving-layer throughput: the online AssignmentService (bounded
// ingestion queue -> deadline micro-batcher -> sharded worker pool)
// driving the paper's KM assignment policy, swept across worker counts.
//
// Claims checked: (i) the served lockstep path reproduces the offline
// engine's realized utility exactly (the serving layer is a faithful
// deployment of the batch protocol, not an approximation); (ii) policy
// compute parallelizes — with >= 4 hardware threads, 4 workers deliver
// > 2x the single-worker throughput (the environment commit is O(batch)
// and serialized; AssignBatch carries the cubic KM cost and is not).
// On machines with fewer cores the scaling check is reported as SKIP —
// the sweep still runs and the numbers are recorded.

#include <thread>

#include "bench_util.h"

namespace lacb {
namespace {

struct SweepPoint {
  size_t workers = 1;
  double wall_seconds = 0.0;
  double throughput = 0.0;  // requests committed per wall second
  core::PolicyRunResult run;
  obs::HistogramSnapshot assign_latency;
  obs::HistogramSnapshot e2e_latency;
};

Result<SweepPoint> RunSweepPoint(const sim::DatasetConfig& data,
                                 const core::PolicySuiteConfig& suite,
                                 size_t workers,
                                 obs::EventRecorder* recorder = nullptr) {
  serve::ServedRunOptions opts;
  opts.mode = serve::LoadMode::kFreeRunReplay;
  opts.serve.num_workers = workers;
  opts.serve.max_batch_size = 32;
  opts.serve.max_batch_delay = std::chrono::milliseconds(2);
  opts.serve.queue_capacity = 1u << 16;  // free-run saturation, no shedding
  opts.serve.num_stripes = 16;
  // Sample the breathing of the pipeline every 2ms; the series rides into
  // BENCH_serve.json through each run's telemetry snapshot.
  opts.sample_interval = std::chrono::milliseconds(2);
  opts.sample_instruments = {"serve.queue_depth", "serve.carryover_depth",
                             "serve.shed_requests", "serve.submitted",
                             "serve.inflight_batches"};
  opts.recorder = recorder;

  SweepPoint point;
  point.workers = workers;
  Stopwatch sw;
  LACB_ASSIGN_OR_RETURN(
      point.run, serve::RunPolicyServed(
                     data, core::SuitePolicyFactory(data, suite, 5), opts));
  point.wall_seconds = sw.ElapsedSeconds();

  double committed = 0.0;
  for (double w : point.run.broker_requests) committed += w;
  point.throughput = committed / std::max(1e-9, point.wall_seconds);
  if (point.run.telemetry != nullptr) {
    const auto& hists = point.run.telemetry->metrics.histograms;
    if (auto it = hists.find("serve.batch_assign_seconds"); it != hists.end())
      point.assign_latency = it->second;
    if (auto it = hists.find("serve.e2e_seconds"); it != hists.end())
      point.e2e_latency = it->second;
  }
  // Distinguish the sweep points in BENCH_serve.json.
  point.run.policy.append("@").append(std::to_string(workers)).append("w");
  return point;
}

Status Run() {
  bench::PrintHeader("serving layer",
                     "online assignment throughput & latency vs workers");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << "\n";

  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data, bench::ScaledCity('A', 4));
  core::PolicySuiteConfig suite;
  std::cout << "dataset: " << data.name << " (" << data.num_brokers
            << " brokers, " << data.num_requests << " requests, "
            << data.num_days << " days), policy: KM\n\n";

  bool all_ok = true;
  bench::BenchTelemetryLog telemetry_log("serve");

  // Faithfulness first: lockstep with one worker must be bit-identical to
  // the offline engine (the full gate lives in serve_test.cc; the bench
  // re-checks the headline number on the bench dataset).
  LACB_ASSIGN_OR_RETURN(auto offline_policy,
                        core::MakeSuitePolicy(data, suite, 5));
  LACB_ASSIGN_OR_RETURN(core::PolicyRunResult offline,
                        core::RunPolicy(data, offline_policy.get()));
  serve::ServedRunOptions lockstep;
  lockstep.mode = serve::LoadMode::kLockstepReplay;
  lockstep.serve.num_workers = 1;
  lockstep.serve.max_batch_size = 1u << 20;
  lockstep.serve.max_batch_delay = std::chrono::seconds(300);
  LACB_ASSIGN_OR_RETURN(
      core::PolicyRunResult served_lockstep,
      serve::RunPolicyServed(data, core::SuitePolicyFactory(data, suite, 5),
                             lockstep));
  all_ok &= bench::ShapeCheck(
      "served lockstep utility == offline engine utility (bit-identical)",
      served_lockstep.total_utility == offline.total_utility,
      TablePrinter::Num(served_lockstep.total_utility, 4) + " vs " +
          TablePrinter::Num(offline.total_utility, 4));

  // Worker sweep under free-run saturation.
  std::vector<SweepPoint> points;
  TablePrinter table;
  table.SetHeader({"workers", "wall_s", "req_per_s", "shed", "assign_p50_ms",
                   "assign_p95_ms", "assign_p99_ms", "e2e_p99_ms"});
  std::vector<core::PolicyRunResult> runs;
  // The widest sweep point also records an event timeline: the exported
  // TRACE_serve.json opens in chrome://tracing / ui.perfetto.dev and shows
  // the request flows hopping producer -> batcher -> worker threads.
  obs::EventRecorder recorder;
  for (size_t workers : {1u, 2u, 4u}) {
    LACB_ASSIGN_OR_RETURN(
        SweepPoint point,
        RunSweepPoint(data, suite, workers,
                      workers == 4 ? &recorder : nullptr));
    LACB_RETURN_NOT_OK(table.AddRow(
        {std::to_string(point.workers),
         TablePrinter::Num(point.wall_seconds, 3),
         TablePrinter::Num(point.throughput, 0),
         std::to_string(point.run.shed_requests),
         TablePrinter::Num(point.assign_latency.p50 * 1e3, 3),
         TablePrinter::Num(point.assign_latency.p95 * 1e3, 3),
         TablePrinter::Num(point.assign_latency.p99 * 1e3, 3),
         TablePrinter::Num(point.e2e_latency.p99 * 1e3, 3)}));
    runs.push_back(point.run);
    points.push_back(std::move(point));
  }
  bench::PrintBoth(table);
  telemetry_log.Add(data, runs);

  all_ok &= bench::ShapeCheck(
      "free-run sweep sheds nothing (queue bound above the day's burst)",
      points[0].run.shed_requests == 0 && points[2].run.shed_requests == 0,
      std::to_string(points[0].run.shed_requests) + " / " +
          std::to_string(points[2].run.shed_requests) + " shed");

  double speedup = points[2].throughput / std::max(1e-9, points[0].throughput);
  if (hw >= 4) {
    all_ok &= bench::ShapeCheck(
        "4 workers > 2x single-worker throughput (policy compute "
        "parallelizes; only the O(batch) commit serializes)",
        speedup > 2.0, TablePrinter::Num(speedup, 2) + "x");
  } else {
    std::cout << "[SHAPE SKIP] 4-worker > 2x scaling needs >= 4 hardware "
                 "threads; this machine has "
              << hw << " (measured: " << TablePrinter::Num(speedup, 2)
              << "x)\n";
  }

  LACB_RETURN_NOT_OK(telemetry_log.Write());

  // Timeline + time-series artifacts for the 4-worker point. CI uploads
  // these next to BENCH_serve.json.
  LACB_RETURN_NOT_OK(
      obs::WriteChromeTrace(recorder, "TRACE_serve.json", "bench_serve"));
  std::cout << "wrote TRACE_serve.json ("
            << recorder.Snapshot().events.size() << " events)\n";
  const core::PolicyRunResult& widest = points.back().run;
  if (widest.telemetry != nullptr && !widest.telemetry->series.empty()) {
    LACB_RETURN_NOT_OK(
        widest.telemetry->series.WriteJsonl("SERIES_serve.jsonl"));
    std::cout << "wrote SERIES_serve.jsonl ("
              << widest.telemetry->series.points.size() << " samples)\n";
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

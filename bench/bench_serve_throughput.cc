// Serving-layer throughput: the online AssignmentService (bounded
// ingestion queue -> deadline micro-batcher -> sharded worker pool)
// driving the paper's KM assignment policy, swept across worker counts.
//
// Claims checked: (i) the served lockstep path reproduces the offline
// engine's realized utility exactly (the serving layer is a faithful
// deployment of the batch protocol, not an approximation); (ii) policy
// compute parallelizes — with >= 4 hardware threads, 4 workers deliver
// > 2x the single-worker throughput (the environment commit is O(batch)
// and serialized; AssignBatch carries the cubic KM cost and is not).
// On machines with fewer cores the scaling check is reported as SKIP —
// the sweep still runs and the numbers are recorded.
//
// A second sweep turns on deterministic fault injection
// (docs/robustness.md) and scales every fault rate together: at each
// point it re-checks the request-conservation identity
//   submitted == assigned + unmatched + failed + dropped_appeals
// from the run's own counters and records throughput, p99 end-to-end
// latency, the degraded-batch fraction, and the retry/redrive counts
// into BENCH_fault.json — the graceful-degradation curve under load.

#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_util.h"

namespace lacb {
namespace {

struct SweepPoint {
  size_t workers = 1;
  double wall_seconds = 0.0;
  double throughput = 0.0;  // requests committed per wall second
  core::PolicyRunResult run;
  obs::HistogramSnapshot assign_latency;
  obs::HistogramSnapshot e2e_latency;
};

Result<SweepPoint> RunSweepPoint(const sim::DatasetConfig& data,
                                 const core::PolicySuiteConfig& suite,
                                 size_t workers,
                                 obs::EventRecorder* recorder = nullptr,
                                 bool attribution = true,
                                 const std::string& profile_path = "") {
  serve::ServedRunOptions opts;
  opts.mode = serve::LoadMode::kFreeRunReplay;
  opts.serve.num_workers = workers;
  opts.serve.max_batch_size = 32;
  opts.serve.max_batch_delay = std::chrono::milliseconds(2);
  opts.serve.queue_capacity = 1u << 16;  // free-run saturation, no shedding
  opts.serve.num_stripes = 16;
  // Sample the breathing of the pipeline every 2ms; the series rides into
  // BENCH_serve.json through each run's telemetry snapshot.
  opts.sample_interval = std::chrono::milliseconds(2);
  opts.sample_instruments = {"serve.queue_depth", "serve.carryover_depth",
                             "serve.shed_requests", "serve.submitted",
                             "serve.inflight_batches"};
  opts.recorder = recorder;
  // The performance-attribution plane rides every sweep point so the
  // serve.stage.* and serve.solver.* instruments land in BENCH_serve.json;
  // the sampling profiler runs alongside (folded output only where asked).
  if (attribution) {
    opts.serve.stage_attribution = true;
    opts.serve.solver_introspection = true;
    // 5ms keeps hundreds of sweeps per point without the sampler
    // contending the tracer mutex against every span transition.
    opts.profile_interval = std::chrono::milliseconds(5);
    opts.profile_path = profile_path;
  }

  SweepPoint point;
  point.workers = workers;
  Stopwatch sw;
  LACB_ASSIGN_OR_RETURN(
      point.run, serve::RunPolicyServed(
                     data, core::SuitePolicyFactory(data, suite, 5), opts));
  point.wall_seconds = sw.ElapsedSeconds();

  double committed = 0.0;
  for (double w : point.run.broker_requests) committed += w;
  point.throughput = committed / std::max(1e-9, point.wall_seconds);
  if (point.run.telemetry != nullptr) {
    const auto& hists = point.run.telemetry->metrics.histograms;
    if (auto it = hists.find("serve.batch_assign_seconds"); it != hists.end())
      point.assign_latency = it->second;
    if (auto it = hists.find("serve.e2e_seconds"); it != hists.end())
      point.e2e_latency = it->second;
  }
  // Distinguish the sweep points in BENCH_serve.json.
  point.run.policy.append("@").append(std::to_string(workers)).append("w");
  return point;
}

uint64_t Counter(const core::PolicyRunResult& run, const std::string& name) {
  if (run.telemetry == nullptr) return 0;
  const auto& counters = run.telemetry->metrics.counters;
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double Gauge(const core::PolicyRunResult& run, const std::string& name) {
  if (run.telemetry == nullptr) return 0.0;
  const auto& gauges = run.telemetry->metrics.gauges;
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

/// \brief One point of the fault sweep: every injection rate scaled by
/// `rate`, supervision + solve budget + commit retry all armed.
Result<SweepPoint> RunFaultPoint(const sim::DatasetConfig& data,
                                 const core::PolicySuiteConfig& suite,
                                 double rate) {
  serve::ServedRunOptions opts;
  opts.mode = serve::LoadMode::kFreeRunReplay;
  opts.serve.num_workers = 2;
  opts.serve.max_batch_size = 32;
  opts.serve.max_batch_delay = std::chrono::milliseconds(2);
  opts.serve.queue_capacity = 1u << 16;
  opts.serve.num_stripes = 16;
  // Arm the whole fault-tolerance surface: budgeted solves (generous, so
  // only injected overruns degrade), bounded commit retries, supervision.
  opts.serve.solve_budget = std::chrono::seconds(10);
  opts.serve.commit_max_attempts = 4;
  opts.serve.commit_backoff_base = std::chrono::microseconds(50);
  // Stall detection must sit above the worst-case honest batch latency or
  // slow machines redrive healthy workers (harmless — exactly-once holds —
  // but it muddies the incident counts this sweep reports). The KM solve
  // can take hundreds of ms on a loaded single core, so supervision here
  // effectively covers crashes only; chaos tests exercise tight stall
  // timeouts deliberately.
  opts.serve.stall_timeout = std::chrono::seconds(10);
  opts.serve.supervisor_poll = std::chrono::microseconds(500);
  serve::FaultPlan plan;
  plan.seed = 2027;
  plan.commit_transient_rate = rate;
  plan.commit_after_apply_fraction = 0.5;
  plan.commit_stall_rate = rate / 2;
  plan.solve_over_budget_rate = rate;
  plan.store_stall_rate = rate / 2;
  plan.worker_stall_rate = rate / 2;
  plan.worker_crash_rate = rate / 2;
  plan.stall_duration = std::chrono::microseconds(500);
  opts.serve.fault_plan = plan;

  SweepPoint point;
  Stopwatch sw;
  LACB_ASSIGN_OR_RETURN(
      point.run, serve::RunPolicyServed(
                     data, core::SuitePolicyFactory(data, suite, 5), opts));
  point.wall_seconds = sw.ElapsedSeconds();
  double committed = 0.0;
  for (double w : point.run.broker_requests) committed += w;
  point.throughput = committed / std::max(1e-9, point.wall_seconds);
  if (point.run.telemetry != nullptr) {
    const auto& hists = point.run.telemetry->metrics.histograms;
    if (auto it = hists.find("serve.e2e_seconds"); it != hists.end())
      point.e2e_latency = it->second;
  }
  // Distinguish the sweep points in BENCH_fault.json.
  char label[32];
  std::snprintf(label, sizeof(label), "@fault%.2f", rate);
  point.run.policy.append(label);
  return point;
}

Status Run() {
  bench::PrintHeader("serving layer",
                     "online assignment throughput & latency vs workers");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << "\n";

  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig data, bench::ScaledCity('A', 4));
  core::PolicySuiteConfig suite;
  std::cout << "dataset: " << data.name << " (" << data.num_brokers
            << " brokers, " << data.num_requests << " requests, "
            << data.num_days << " days), policy: KM\n\n";

  bool all_ok = true;
  bench::BenchTelemetryLog telemetry_log("serve");

  // Faithfulness first: lockstep with one worker must be bit-identical to
  // the offline engine (the full gate lives in serve_test.cc; the bench
  // re-checks the headline number on the bench dataset).
  LACB_ASSIGN_OR_RETURN(auto offline_policy,
                        core::MakeSuitePolicy(data, suite, 5));
  LACB_ASSIGN_OR_RETURN(core::PolicyRunResult offline,
                        core::RunPolicy(data, offline_policy.get()));
  serve::ServedRunOptions lockstep;
  lockstep.mode = serve::LoadMode::kLockstepReplay;
  lockstep.serve.num_workers = 1;
  lockstep.serve.max_batch_size = 1u << 20;
  lockstep.serve.max_batch_delay = std::chrono::seconds(300);
  LACB_ASSIGN_OR_RETURN(
      core::PolicyRunResult served_lockstep,
      serve::RunPolicyServed(data, core::SuitePolicyFactory(data, suite, 5),
                             lockstep));
  all_ok &= bench::ShapeCheck(
      "served lockstep utility == offline engine utility (bit-identical)",
      served_lockstep.total_utility == offline.total_utility,
      TablePrinter::Num(served_lockstep.total_utility, 4) + " vs " +
          TablePrinter::Num(offline.total_utility, 4));

  // Worker sweep under free-run saturation.
  std::vector<SweepPoint> points;
  TablePrinter table;
  table.SetHeader({"workers", "wall_s", "req_per_s", "shed", "assign_p50_ms",
                   "assign_p95_ms", "assign_p99_ms", "e2e_p99_ms"});
  std::vector<core::PolicyRunResult> runs;
  // The widest sweep point also records an event timeline: the exported
  // TRACE_serve.json opens in chrome://tracing / ui.perfetto.dev and shows
  // the request flows hopping producer -> batcher -> worker threads.
  obs::EventRecorder recorder;
  for (size_t workers : {1u, 2u, 4u}) {
    LACB_ASSIGN_OR_RETURN(
        SweepPoint point,
        RunSweepPoint(data, suite, workers,
                      workers == 4 ? &recorder : nullptr,
                      /*attribution=*/true,
                      workers == 4 ? "PROF_serve.folded" : ""));
    LACB_RETURN_NOT_OK(table.AddRow(
        {std::to_string(point.workers),
         TablePrinter::Num(point.wall_seconds, 3),
         TablePrinter::Num(point.throughput, 0),
         std::to_string(point.run.shed_requests),
         TablePrinter::Num(point.assign_latency.p50 * 1e3, 3),
         TablePrinter::Num(point.assign_latency.p95 * 1e3, 3),
         TablePrinter::Num(point.assign_latency.p99 * 1e3, 3),
         TablePrinter::Num(point.e2e_latency.p99 * 1e3, 3)}));
    runs.push_back(point.run);
    points.push_back(std::move(point));
  }
  bench::PrintBoth(table);
  telemetry_log.Add(data, runs);

  all_ok &= bench::ShapeCheck(
      "free-run sweep sheds nothing (queue bound above the day's burst)",
      points[0].run.shed_requests == 0 && points[2].run.shed_requests == 0,
      std::to_string(points[0].run.shed_requests) + " / " +
          std::to_string(points[2].run.shed_requests) + " shed");

  double speedup = points[2].throughput / std::max(1e-9, points[0].throughput);
  if (hw >= 4) {
    all_ok &= bench::ShapeCheck(
        "4 workers > 2x single-worker throughput (policy compute "
        "parallelizes; only the O(batch) commit serializes)",
        speedup > 2.0, TablePrinter::Num(speedup, 2) + "x");
  } else {
    std::cout << "[SHAPE SKIP] 4-worker > 2x scaling needs >= 4 hardware "
                 "threads; this machine has "
              << hw << " (measured: " << TablePrinter::Num(speedup, 2)
              << "x)\n";
  }

  // Attribution evidence: every committed batch carries stage timings and
  // a SolveStats record.
  {
    uint64_t batches = Counter(points[0].run, "serve.batches");
    uint64_t solves = Counter(points[0].run, "serve.solver.solves");
    all_ok &= bench::ShapeCheck(
        "solver introspection covers every committed batch",
        batches > 0 && solves >= batches,
        std::to_string(solves) + " solves / " + std::to_string(batches) +
            " batches");
    const auto& hists = points[0].run.telemetry->metrics.histograms;
    auto solve_stage = hists.find("serve.stage.solve_seconds");
    all_ok &= bench::ShapeCheck(
        "stage-latency histograms populated (one sample per batch stage)",
        solve_stage != hists.end() && solve_stage->second.count >= batches,
        solve_stage == hists.end()
            ? "serve.stage.solve_seconds missing"
            : std::to_string(solve_stage->second.count) + " samples");
  }

  // Critical-path breakdown of the widest point: where a batch's wall
  // time actually goes.
  {
    const core::PolicyRunResult& run = points.back().run;
    const char* stages[] = {"queue_wait", "channel_wait", "solve", "commit",
                            "disposition"};
    double totals[5];
    double sum = 0.0;
    for (int i = 0; i < 5; ++i) {
      totals[i] = Gauge(run, std::string("serve.stage.") + stages[i] +
                                 "_total_seconds");
      sum += totals[i];
    }
    std::cout << "\nbatch critical-path breakdown (4 workers):\n";
    TablePrinter stage_table;
    stage_table.SetHeader({"stage", "total_s", "share"});
    for (int i = 0; i < 5; ++i) {
      LACB_RETURN_NOT_OK(stage_table.AddRow(
          {stages[i], TablePrinter::Num(totals[i], 4),
           TablePrinter::Num(sum <= 0.0 ? 0.0 : totals[i] / sum, 3)}));
    }
    bench::PrintBoth(stage_table);
  }

  // Overhead of the whole attribution plane (stage timers + SolveStats +
  // sampling profiler): paired single-worker re-runs, dark vs
  // instrumented, interleaved and best-of-2 per side so scheduler noise
  // and warm-up drift land on both configurations equally.
  double plain_best = 0.0;
  double instrumented_best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    LACB_ASSIGN_OR_RETURN(
        SweepPoint plain,
        RunSweepPoint(data, suite, 1, nullptr, /*attribution=*/false));
    plain_best = std::max(plain_best, plain.throughput);
    LACB_ASSIGN_OR_RETURN(
        SweepPoint instrumented,
        RunSweepPoint(data, suite, 1, nullptr, /*attribution=*/true));
    instrumented_best = std::max(instrumented_best, instrumented.throughput);
  }
  double slowdown = 1.0 - instrumented_best / std::max(1e-9, plain_best);
  all_ok &= bench::ShapeCheck(
      "attribution + profiler cost < 5% single-worker throughput",
      slowdown < 0.05,
      TablePrinter::Num(slowdown * 100.0, 2) + "% slower with attribution");

  LACB_RETURN_NOT_OK(telemetry_log.Write());
  {
    std::ifstream prof("PROF_serve.folded");
    size_t stacks = 0;
    std::string line;
    while (std::getline(prof, line)) {
      if (!line.empty()) ++stacks;
    }
    std::cout << "wrote PROF_serve.folded (" << stacks
              << " folded stacks; feed to flamegraph.pl or speedscope)\n";
  }

  // Fault sweep: scale every injection rate together and watch the
  // pipeline degrade gracefully instead of leaking requests.
  std::cout << "\nfault sweep (2 workers, supervised, budgeted solves):\n";
  bench::BenchTelemetryLog fault_log("fault");
  TablePrinter fault_table;
  fault_table.SetHeader({"fault_rate", "req_per_s", "e2e_p99_ms", "degraded",
                         "retries", "redriven", "crashes", "failed",
                         "conserved"});
  std::vector<core::PolicyRunResult> fault_runs;
  bool all_conserved = true;
  bool faulted_degraded = false;
  uint64_t no_fault_incidents = 0;
  for (double rate : {0.0, 0.05, 0.10, 0.20}) {
    LACB_ASSIGN_OR_RETURN(SweepPoint point,
                          RunFaultPoint(data, suite, rate));
    uint64_t submitted = Counter(point.run, "serve.submitted");
    uint64_t assigned = Counter(point.run, "serve.assigned_requests");
    uint64_t unmatched = Counter(point.run, "serve.unmatched_requests");
    uint64_t failed = Counter(point.run, "serve.failed_requests");
    uint64_t dropped = Counter(point.run, "serve.dropped_appeals");
    uint64_t degraded = Counter(point.run, "serve.degraded_batches");
    uint64_t batches = Counter(point.run, "serve.batches");
    uint64_t retries = Counter(point.run, "serve.commit_retries");
    uint64_t redriven = Counter(point.run, "serve.redriven_batches");
    uint64_t crashes = Counter(point.run, "serve.worker_crashes");
    bool conserved = submitted == assigned + unmatched + failed + dropped;
    all_conserved &= conserved;
    if (rate > 0.0) faulted_degraded |= degraded > 0;
    if (rate == 0.0) no_fault_incidents = retries + redriven + crashes +
                                          degraded + failed;
    double degraded_frac =
        batches == 0 ? 0.0
                     : static_cast<double>(degraded) / static_cast<double>(batches);
    LACB_RETURN_NOT_OK(fault_table.AddRow(
        {TablePrinter::Num(rate, 2), TablePrinter::Num(point.throughput, 0),
         TablePrinter::Num(point.e2e_latency.p99 * 1e3, 3),
         TablePrinter::Num(degraded_frac, 3), std::to_string(retries),
         std::to_string(redriven), std::to_string(crashes),
         std::to_string(failed), conserved ? "yes" : "NO"}));
    fault_runs.push_back(point.run);
  }
  bench::PrintBoth(fault_table);
  fault_log.Add(data, fault_runs);
  LACB_RETURN_NOT_OK(fault_log.Write());

  all_ok &= bench::ShapeCheck(
      "request conservation (submitted == assigned + unmatched + failed + "
      "dropped) holds at every fault rate",
      all_conserved, all_conserved ? "all points exact" : "ledger leak");
  all_ok &= bench::ShapeCheck(
      "zero-fault point is incident-free (no retries, redrives, crashes, "
      "degradations, or failures)",
      no_fault_incidents == 0, std::to_string(no_fault_incidents) +
                                   " incidents at rate 0");
  all_ok &= bench::ShapeCheck(
      "injected over-budget solves surface as degraded batches",
      faulted_degraded, faulted_degraded ? "degraded > 0 under faults"
                                         : "no degradation seen");

  // Timeline + time-series artifacts for the 4-worker point. CI uploads
  // these next to BENCH_serve.json.
  LACB_RETURN_NOT_OK(
      obs::WriteChromeTrace(recorder, "TRACE_serve.json", "bench_serve"));
  std::cout << "wrote TRACE_serve.json ("
            << recorder.Snapshot().events.size() << " events)\n";
  const core::PolicyRunResult& widest = points.back().run;
  if (widest.telemetry != nullptr && !widest.telemetry->series.empty()) {
    LACB_RETURN_NOT_OK(
        widest.telemetry->series.WriteJsonl("SERIES_serve.jsonl"));
    std::cout << "wrote SERIES_serve.jsonl ("
              << widest.telemetry->series.points.size() << " samples)\n";
  }
  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

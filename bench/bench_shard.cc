// Sharded-serving chaos sweep: the multi-process fleet (docs/sharding.md)
// driven through the full horizon while 0, 1, or 2 shards are SIGKILLed
// mid-day under load.
//
// Claims checked: (i) the fleet conservation identity
// `submitted == assigned + unmatched + failed + dropped_appeals + shed`
// holds at every chaos level — a kill never loses or double-counts a
// request; (ii) exactly-once terminals survive failover (no duplicate
// terminals, no reconcile mismatches, nothing left pending); (iii) every
// injected kill produces a failover that redrives the dead shard's
// in-flight work; (iv) recovered-fleet utility stays within a bounded gap
// of the unkilled run — failover costs availability, not correctness.
// BENCH_shard.json records the sweep for CI validation and future diffs.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lacb/cluster/coordinator.h"
#include "lacb/common/stopwatch.h"
#include "lacb/obs/snapshot.h"

namespace lacb {
namespace {

// One shard death injected after submitting batch `batch` of day `day`.
struct KillEvent {
  size_t day = 0;
  size_t batch = 0;
  uint64_t shard = 0;
};

struct SweepPoint {
  size_t kills = 0;
  double wall_seconds = 0.0;
  std::vector<double> daily_utility;
  cluster::FleetStats stats;
};

sim::DatasetConfig FleetConfig() {
  sim::DatasetConfig cfg;
  cfg.name = "fleet";
  cfg.num_brokers = 40;
  cfg.num_requests = 480;
  cfg.num_days = 3;
  cfg.imbalance = 0.2;
  cfg.seed = 321;
  cfg.appeal_rate = 0.4;
  return cfg;
}

Result<SweepPoint> RunSweepPoint(const std::string& workdir,
                                 const std::vector<KillEvent>& kills) {
  std::filesystem::remove_all(workdir);
  cluster::CoordinatorOptions opts;
  opts.shard_binary = LACB_SHARD_BINARY;
  opts.workdir = workdir;
  opts.base_config = FleetConfig();
  opts.num_shards = 4;
  LACB_ASSIGN_OR_RETURN(auto coord, cluster::Coordinator::Create(opts));

  SweepPoint point;
  point.kills = kills.size();
  Stopwatch sw;
  LACB_RETURN_NOT_OK(coord->Start());
  size_t fired = 0;
  for (size_t day = 0; day < coord->NumDays(); ++day) {
    LACB_RETURN_NOT_OK(coord->OpenDay(day));
    for (size_t j = 0; j < coord->BatchesPerDay(); ++j) {
      LACB_RETURN_NOT_OK(coord->SubmitScheduledBatch(j));
      while (fired < kills.size() && kills[fired].day == day &&
             kills[fired].batch == j) {
        LACB_RETURN_NOT_OK(
            coord->KillShard(kills[fired].shard, /*sigstop=*/false));
        ++fired;
      }
    }
    LACB_RETURN_NOT_OK(coord->CloseDay());
  }
  LACB_RETURN_NOT_OK(coord->Shutdown());
  point.wall_seconds = sw.ElapsedSeconds();
  point.daily_utility = coord->FleetDailyUtility();
  point.stats = coord->Stats();
  std::filesystem::remove_all(workdir);
  return point;
}

bool ConservationHolds(const cluster::FleetStats& s) {
  return s.submitted == s.assigned + s.unmatched + s.failed +
                            s.dropped_appeals + s.shed &&
         s.pending == 0 && s.duplicate_terminals == 0 &&
         s.reconcile_mismatches == 0;
}

Status Run() {
  bench::PrintHeader("sharded serving",
                     "fleet conservation & utility under 0/1/2 shard kills");

  sim::DatasetConfig cfg = FleetConfig();
  std::cout << "fleet: 4 shards, " << cfg.num_brokers << " brokers, "
            << cfg.num_requests << " requests/day, " << cfg.num_days
            << " days, policy: LACB-Opt\n\n";

  // Kill points sit mid-day under load: one failover in day 1, the second
  // (at chaos level 2) in day 2 so the fleet must survive back-to-back
  // adoptions with already-redistributed ranges.
  const std::vector<std::vector<KillEvent>> chaos_levels = {
      {},
      {{1, 10, 1}},
      {{1, 10, 1}, {2, 5, 2}},
  };

  const std::string dir_prefix =
      (std::filesystem::temp_directory_path() / "lacb_bench_shard_").string();
  TablePrinter table;
  table.SetHeader({"kills", "wall_s", "submitted", "assigned", "redriven",
                   "failovers", "wal_shipped", "utility", "conserved"});
  std::vector<SweepPoint> points;
  for (const std::vector<KillEvent>& kills : chaos_levels) {
    LACB_ASSIGN_OR_RETURN(
        SweepPoint point,
        RunSweepPoint(dir_prefix + std::to_string(kills.size()), kills));
    double total = 0.0;
    for (double u : point.daily_utility) total += u;
    LACB_RETURN_NOT_OK(table.AddRow(
        {std::to_string(point.kills), TablePrinter::Num(point.wall_seconds, 3),
         std::to_string(point.stats.submitted),
         std::to_string(point.stats.assigned),
         std::to_string(point.stats.redriven_requests),
         std::to_string(point.stats.failovers),
         std::to_string(point.stats.wal_records_shipped),
         TablePrinter::Num(total, 4),
         ConservationHolds(point.stats) ? "yes" : "NO"}));
    points.push_back(std::move(point));
  }
  bench::PrintBoth(table);

  bool all_ok = true;
  double base_total = 0.0;
  for (double u : points[0].daily_utility) base_total += u;
  for (const SweepPoint& point : points) {
    all_ok &= bench::ShapeCheck(
        "conservation identity holds at " + std::to_string(point.kills) +
            " kills (exactly-once, nothing pending)",
        ConservationHolds(point.stats),
        std::to_string(point.stats.submitted) + " submitted, " +
            std::to_string(point.stats.pending) + " pending, " +
            std::to_string(point.stats.duplicate_terminals) + " dupes");
  }
  all_ok &= bench::ShapeCheck(
      "the unkilled fleet needs no failovers or redrives",
      points[0].stats.failovers == 0 && points[0].stats.redriven_requests == 0,
      std::to_string(points[0].stats.failovers) + " failovers");
  for (size_t level = 1; level < points.size(); ++level) {
    const cluster::FleetStats& s = points[level].stats;
    all_ok &= bench::ShapeCheck(
        "every kill at level " + std::to_string(level) +
            " produced a failover that redrove in-flight work",
        s.shard_deaths == level && s.failovers >= level &&
            s.redriven_requests > 0 && s.wal_records_shipped > 0,
        std::to_string(s.shard_deaths) + " deaths, " +
            std::to_string(s.failovers) + " failovers, " +
            std::to_string(s.redriven_requests) + " redriven");
    double total = 0.0;
    for (double u : points[level].daily_utility) total += u;
    all_ok &= bench::ShapeCheck(
        "recovered-fleet utility at level " + std::to_string(level) +
            " stays within 25% of the unkilled run",
        total > 0.75 * base_total && total < 1.25 * base_total,
        TablePrinter::Num(total, 4) + " vs " +
            TablePrinter::Num(base_total, 4));
  }

  // Machine-readable sweep for the CI conservation validator.
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("bench", std::string("shard"));
  root.Set("schema_version", static_cast<int64_t>(1));
  obs::JsonValue sweep = obs::JsonValue::Array();
  for (const SweepPoint& point : points) {
    const cluster::FleetStats& s = point.stats;
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("kills", static_cast<uint64_t>(point.kills));
    entry.Set("wall_seconds", point.wall_seconds);
    entry.Set("submitted", s.submitted);
    entry.Set("assigned", s.assigned);
    entry.Set("unmatched", s.unmatched);
    entry.Set("failed", s.failed);
    entry.Set("dropped_appeals", s.dropped_appeals);
    entry.Set("shed", s.shed);
    entry.Set("pending", s.pending);
    entry.Set("redriven_requests", s.redriven_requests);
    entry.Set("shard_deaths", s.shard_deaths);
    entry.Set("failovers", s.failovers);
    entry.Set("duplicate_terminals", s.duplicate_terminals);
    entry.Set("reconcile_mismatches", s.reconcile_mismatches);
    entry.Set("wal_records_shipped", s.wal_records_shipped);
    entry.Set("checkpoints_shipped", s.checkpoints_shipped);
    obs::JsonValue daily = obs::JsonValue::Array();
    for (double u : point.daily_utility) daily.Append(u);
    entry.Set("daily_utility", std::move(daily));
    sweep.Append(std::move(entry));
  }
  root.Set("sweep", std::move(sweep));
  LACB_RETURN_NOT_OK(obs::WriteJsonFile(root, "BENCH_shard.json"));
  std::cout << "\ntelemetry written to BENCH_shard.json\n";

  std::cout << "\n"
            << (all_ok ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED")
            << "\n";
  return all_ok ? Status::OK()
                : Status::Internal("shard bench shape checks failed");
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::Run();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

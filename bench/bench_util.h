// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper: it prints
// the series the figure plots (aligned table + the same rows as CSV for
// re-plotting) and a SHAPE CHECK block comparing the qualitative claim the
// paper makes against what this run measured.

#ifndef LACB_BENCH_BENCH_UTIL_H_
#define LACB_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "lacb/lacb.h"

namespace lacb::bench {

/// \brief Prints the standard bench header.
inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::cout << "==============================================================\n"
            << "Reproducing " << figure << ": " << what << "\n"
            << "==============================================================\n";
}

/// \brief Prints a shape-check line: the paper's qualitative claim, our
/// measured value, and PASS/FAIL.
inline bool ShapeCheck(const std::string& claim, bool holds,
                       const std::string& measured) {
  std::cout << (holds ? "[SHAPE OK]   " : "[SHAPE FAIL] ") << claim
            << "  (measured: " << measured << ")\n";
  return holds;
}

/// \brief City preset scaled for single-core benching.
///
/// Scale factors are per city so every scaled instance keeps the paper's
/// operating regime: several-request batches, ≥60 batches/day (so brokers
/// *can* be pushed past their knees), brokers ≫ per-batch requests. City B
/// carries ~2.5× the per-broker demand of A/C (Table IV), so it scales
/// further down.
inline Result<sim::DatasetConfig> ScaledCity(char city, size_t days) {
  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig preset, sim::CityPreset(city));
  double scale = city == 'A' ? 0.05 : city == 'B' ? 0.02 : 0.065;
  preset.num_requests = preset.num_requests * days / preset.num_days;
  preset.num_days = days;
  return sim::ScaleDown(preset, scale);
}

/// \brief Motivation-study city instance (the Fig. 2–4 drivers): the city
/// preset scaled by an explicit factor, with an optional horizon override.
/// `days` = 0 keeps Table IV's horizon; otherwise the horizon is replaced
/// and the request volume extended proportionally *before* scaling, so the
/// per-day operating regime is unchanged.
inline Result<sim::DatasetConfig> MotivationCity(char city, double scale,
                                                 size_t days = 0) {
  LACB_ASSIGN_OR_RETURN(sim::DatasetConfig preset, sim::CityPreset(city));
  if (days != 0) {
    preset.num_requests = preset.num_requests * days / preset.num_days;
    preset.num_days = days;
  }
  return sim::ScaleDown(preset, scale);
}

/// \brief Runs a policy suite over a dataset, printing progress.
inline Result<std::vector<core::PolicyRunResult>> RunSuite(
    const sim::DatasetConfig& data, const core::PolicySuiteConfig& suite) {
  LACB_ASSIGN_OR_RETURN(auto policies, core::MakePolicySuite(data, suite));
  std::vector<core::PolicyRunResult> runs;
  for (auto& p : policies) {
    LACB_ASSIGN_OR_RETURN(core::PolicyRunResult run,
                          core::RunPolicy(data, p.get()));
    runs.push_back(std::move(run));
  }
  return runs;
}

/// \brief Finds a run by policy name (must exist).
inline const core::PolicyRunResult& FindRun(
    const std::vector<core::PolicyRunResult>& runs, const std::string& name) {
  for (const auto& r : runs) {
    if (r.policy == name) return r;
  }
  LACB_CHECK(false);
  return runs.front();
}

/// \brief Emits both the aligned table and its CSV form.
inline void PrintBoth(const TablePrinter& table) {
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  std::cout << "\n";
}

/// \brief Accumulates per-run telemetry across a bench's datasets and
/// writes one machine-readable BENCH_<name>.json next to the binary.
///
/// Schema (see docs/observability.md): the top level names the bench; each
/// dataset entry carries one object per policy run with the headline
/// numbers plus the full obs::RunTelemetry snapshot (counters, gauges,
/// histogram quantiles, span tree). This is the file future perf PRs diff
/// for before/after evidence.
class BenchTelemetryLog {
 public:
  explicit BenchTelemetryLog(std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    root_.Set("bench", bench_name_);
    root_.Set("schema_version", static_cast<int64_t>(1));
    root_.Set("datasets", obs::JsonValue::Array());
  }

  /// \brief Records every run of one dataset (call once per RunSuite).
  void Add(const sim::DatasetConfig& data,
           const std::vector<core::PolicyRunResult>& runs) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("dataset", data.name);
    entry.Set("num_brokers", static_cast<uint64_t>(data.num_brokers));
    entry.Set("num_requests", static_cast<uint64_t>(data.num_requests));
    entry.Set("num_days", static_cast<uint64_t>(data.num_days));
    obs::JsonValue policies = obs::JsonValue::Array();
    for (const core::PolicyRunResult& r : runs) {
      obs::JsonValue run = obs::JsonValue::Object();
      run.Set("policy", r.policy);
      run.Set("total_utility", r.total_utility);
      run.Set("policy_seconds", r.policy_seconds);
      run.Set("overloaded_broker_days",
              static_cast<uint64_t>(r.overloaded_broker_days));
      run.Set("overload_excess", r.overload_excess);
      // Serve-path fields; zero on offline runs, so no special casing.
      run.Set("shed_requests", static_cast<uint64_t>(r.shed_requests));
      run.Set("p99_batch_latency", r.p99_batch_latency);
      run.Set("degraded_batches", static_cast<uint64_t>(r.degraded_batches));
      run.Set("failed_requests", static_cast<uint64_t>(r.failed_requests));
      if (r.telemetry != nullptr) {
        run.Set("telemetry", r.telemetry->ToJson());
      }
      policies.Append(std::move(run));
    }
    entry.Set("policies", std::move(policies));
    datasets_.Append(std::move(entry));
  }

  /// \brief Writes BENCH_<name>.json in the working directory.
  Status Write() {
    root_.Set("datasets", std::move(datasets_));
    datasets_ = obs::JsonValue::Array();
    std::string path = "BENCH_" + bench_name_ + ".json";
    LACB_RETURN_NOT_OK(obs::WriteJsonFile(root_, path));
    std::cout << "telemetry written to " << path << "\n";
    return Status::OK();
  }

 private:
  std::string bench_name_;
  obs::JsonValue root_;
  obs::JsonValue datasets_ = obs::JsonValue::Array();
};

}  // namespace lacb::bench

#endif  // LACB_BENCH_BENCH_UTIL_H_

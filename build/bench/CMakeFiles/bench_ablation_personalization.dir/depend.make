# Empty dependencies file for bench_ablation_personalization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_policies.dir/bench_extension_policies.cc.o"
  "CMakeFiles/bench_extension_policies.dir/bench_extension_policies.cc.o.d"
  "bench_extension_policies"
  "bench_extension_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_extension_policies.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig10_workload_dist.
# This may be replaced when dependencies are built.

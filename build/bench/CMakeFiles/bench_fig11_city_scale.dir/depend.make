# Empty dependencies file for bench_fig11_city_scale.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig2_signup_curve.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_top_broker_kde.dir/bench_fig3_top_broker_kde.cc.o"
  "CMakeFiles/bench_fig3_top_broker_kde.dir/bench_fig3_top_broker_kde.cc.o.d"
  "bench_fig3_top_broker_kde"
  "bench_fig3_top_broker_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_top_broker_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3_top_broker_kde.
# This may be replaced when dependencies are built.

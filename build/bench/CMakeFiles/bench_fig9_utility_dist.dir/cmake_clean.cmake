file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_utility_dist.dir/bench_fig9_utility_dist.cc.o"
  "CMakeFiles/bench_fig9_utility_dist.dir/bench_fig9_utility_dist.cc.o.d"
  "bench_fig9_utility_dist"
  "bench_fig9_utility_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_utility_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

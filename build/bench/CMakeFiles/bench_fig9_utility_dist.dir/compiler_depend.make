# Empty compiler generated dependencies file for bench_fig9_utility_dist.
# This may be replaced when dependencies are built.

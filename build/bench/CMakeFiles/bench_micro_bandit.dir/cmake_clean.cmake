file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bandit.dir/bench_micro_bandit.cc.o"
  "CMakeFiles/bench_micro_bandit.dir/bench_micro_bandit.cc.o.d"
  "bench_micro_bandit"
  "bench_micro_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

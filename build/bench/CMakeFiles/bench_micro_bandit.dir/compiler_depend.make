# Empty compiler generated dependencies file for bench_micro_bandit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_matching.dir/bench_micro_matching.cc.o"
  "CMakeFiles/bench_micro_matching.dir/bench_micro_matching.cc.o.d"
  "bench_micro_matching"
  "bench_micro_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

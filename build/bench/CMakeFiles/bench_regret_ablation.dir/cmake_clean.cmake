file(REMOVE_RECURSE
  "CMakeFiles/bench_regret_ablation.dir/bench_regret_ablation.cc.o"
  "CMakeFiles/bench_regret_ablation.dir/bench_regret_ablation.cc.o.d"
  "bench_regret_ablation"
  "bench_regret_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regret_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

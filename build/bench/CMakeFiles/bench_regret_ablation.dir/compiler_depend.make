# Empty compiler generated dependencies file for bench_regret_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/appeal_reassignment.dir/appeal_reassignment.cpp.o"
  "CMakeFiles/appeal_reassignment.dir/appeal_reassignment.cpp.o.d"
  "appeal_reassignment"
  "appeal_reassignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appeal_reassignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for appeal_reassignment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/capacity_estimation_demo.dir/capacity_estimation_demo.cpp.o"
  "CMakeFiles/capacity_estimation_demo.dir/capacity_estimation_demo.cpp.o.d"
  "capacity_estimation_demo"
  "capacity_estimation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_estimation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

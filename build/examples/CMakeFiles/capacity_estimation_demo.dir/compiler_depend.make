# Empty compiler generated dependencies file for capacity_estimation_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/city_scale_comparison.dir/city_scale_comparison.cpp.o"
  "CMakeFiles/city_scale_comparison.dir/city_scale_comparison.cpp.o.d"
  "city_scale_comparison"
  "city_scale_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_scale_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for city_scale_comparison.
# This may be replaced when dependencies are built.

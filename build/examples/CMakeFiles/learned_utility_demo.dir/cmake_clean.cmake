file(REMOVE_RECURSE
  "CMakeFiles/learned_utility_demo.dir/learned_utility_demo.cpp.o"
  "CMakeFiles/learned_utility_demo.dir/learned_utility_demo.cpp.o.d"
  "learned_utility_demo"
  "learned_utility_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_utility_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for learned_utility_demo.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lacb/bandit/eps_greedy.cc" "src/CMakeFiles/lacb.dir/lacb/bandit/eps_greedy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/bandit/eps_greedy.cc.o.d"
  "/root/repo/src/lacb/bandit/lin_ucb.cc" "src/CMakeFiles/lacb.dir/lacb/bandit/lin_ucb.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/bandit/lin_ucb.cc.o.d"
  "/root/repo/src/lacb/bandit/neural_ucb.cc" "src/CMakeFiles/lacb.dir/lacb/bandit/neural_ucb.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/bandit/neural_ucb.cc.o.d"
  "/root/repo/src/lacb/bandit/thompson.cc" "src/CMakeFiles/lacb.dir/lacb/bandit/thompson.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/bandit/thompson.cc.o.d"
  "/root/repo/src/lacb/capacity/personalized_estimator.cc" "src/CMakeFiles/lacb.dir/lacb/capacity/personalized_estimator.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/capacity/personalized_estimator.cc.o.d"
  "/root/repo/src/lacb/common/logging.cc" "src/CMakeFiles/lacb.dir/lacb/common/logging.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/common/logging.cc.o.d"
  "/root/repo/src/lacb/common/rng.cc" "src/CMakeFiles/lacb.dir/lacb/common/rng.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/common/rng.cc.o.d"
  "/root/repo/src/lacb/common/status.cc" "src/CMakeFiles/lacb.dir/lacb/common/status.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/common/status.cc.o.d"
  "/root/repo/src/lacb/common/table_printer.cc" "src/CMakeFiles/lacb.dir/lacb/common/table_printer.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/common/table_printer.cc.o.d"
  "/root/repo/src/lacb/core/engine.cc" "src/CMakeFiles/lacb.dir/lacb/core/engine.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/core/engine.cc.o.d"
  "/root/repo/src/lacb/core/metrics.cc" "src/CMakeFiles/lacb.dir/lacb/core/metrics.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/core/metrics.cc.o.d"
  "/root/repo/src/lacb/core/policy_suite.cc" "src/CMakeFiles/lacb.dir/lacb/core/policy_suite.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/core/policy_suite.cc.o.d"
  "/root/repo/src/lacb/gbdt/booster.cc" "src/CMakeFiles/lacb.dir/lacb/gbdt/booster.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/gbdt/booster.cc.o.d"
  "/root/repo/src/lacb/gbdt/tree.cc" "src/CMakeFiles/lacb.dir/lacb/gbdt/tree.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/gbdt/tree.cc.o.d"
  "/root/repo/src/lacb/la/linalg.cc" "src/CMakeFiles/lacb.dir/lacb/la/linalg.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/la/linalg.cc.o.d"
  "/root/repo/src/lacb/la/matrix.cc" "src/CMakeFiles/lacb.dir/lacb/la/matrix.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/la/matrix.cc.o.d"
  "/root/repo/src/lacb/matching/assignment.cc" "src/CMakeFiles/lacb.dir/lacb/matching/assignment.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/matching/assignment.cc.o.d"
  "/root/repo/src/lacb/matching/auction.cc" "src/CMakeFiles/lacb.dir/lacb/matching/auction.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/matching/auction.cc.o.d"
  "/root/repo/src/lacb/matching/hopcroft_karp.cc" "src/CMakeFiles/lacb.dir/lacb/matching/hopcroft_karp.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/matching/hopcroft_karp.cc.o.d"
  "/root/repo/src/lacb/matching/min_cost_flow.cc" "src/CMakeFiles/lacb.dir/lacb/matching/min_cost_flow.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/matching/min_cost_flow.cc.o.d"
  "/root/repo/src/lacb/matching/selection.cc" "src/CMakeFiles/lacb.dir/lacb/matching/selection.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/matching/selection.cc.o.d"
  "/root/repo/src/lacb/nn/mlp.cc" "src/CMakeFiles/lacb.dir/lacb/nn/mlp.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/nn/mlp.cc.o.d"
  "/root/repo/src/lacb/nn/optimizer.cc" "src/CMakeFiles/lacb.dir/lacb/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/nn/optimizer.cc.o.d"
  "/root/repo/src/lacb/policy/an_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/an_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/an_policy.cc.o.d"
  "/root/repo/src/lacb/policy/assignment_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/assignment_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/assignment_policy.cc.o.d"
  "/root/repo/src/lacb/policy/flow_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/flow_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/flow_policy.cc.o.d"
  "/root/repo/src/lacb/policy/greedy_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/greedy_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/greedy_policy.cc.o.d"
  "/root/repo/src/lacb/policy/km_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/km_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/km_policy.cc.o.d"
  "/root/repo/src/lacb/policy/lacb_policy.cc" "src/CMakeFiles/lacb.dir/lacb/policy/lacb_policy.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/lacb_policy.cc.o.d"
  "/root/repo/src/lacb/policy/recommendation.cc" "src/CMakeFiles/lacb.dir/lacb/policy/recommendation.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/recommendation.cc.o.d"
  "/root/repo/src/lacb/policy/value_function.cc" "src/CMakeFiles/lacb.dir/lacb/policy/value_function.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/policy/value_function.cc.o.d"
  "/root/repo/src/lacb/sim/broker.cc" "src/CMakeFiles/lacb.dir/lacb/sim/broker.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/broker.cc.o.d"
  "/root/repo/src/lacb/sim/dataset.cc" "src/CMakeFiles/lacb.dir/lacb/sim/dataset.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/dataset.cc.o.d"
  "/root/repo/src/lacb/sim/learned_utility.cc" "src/CMakeFiles/lacb.dir/lacb/sim/learned_utility.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/learned_utility.cc.o.d"
  "/root/repo/src/lacb/sim/platform.cc" "src/CMakeFiles/lacb.dir/lacb/sim/platform.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/platform.cc.o.d"
  "/root/repo/src/lacb/sim/signup_model.cc" "src/CMakeFiles/lacb.dir/lacb/sim/signup_model.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/signup_model.cc.o.d"
  "/root/repo/src/lacb/sim/trace_io.cc" "src/CMakeFiles/lacb.dir/lacb/sim/trace_io.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/trace_io.cc.o.d"
  "/root/repo/src/lacb/sim/utility_model.cc" "src/CMakeFiles/lacb.dir/lacb/sim/utility_model.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/sim/utility_model.cc.o.d"
  "/root/repo/src/lacb/stats/correlation.cc" "src/CMakeFiles/lacb.dir/lacb/stats/correlation.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/stats/correlation.cc.o.d"
  "/root/repo/src/lacb/stats/descriptive.cc" "src/CMakeFiles/lacb.dir/lacb/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/stats/descriptive.cc.o.d"
  "/root/repo/src/lacb/stats/hypothesis.cc" "src/CMakeFiles/lacb.dir/lacb/stats/hypothesis.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/stats/hypothesis.cc.o.d"
  "/root/repo/src/lacb/stats/kde.cc" "src/CMakeFiles/lacb.dir/lacb/stats/kde.cc.o" "gcc" "src/CMakeFiles/lacb.dir/lacb/stats/kde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblacb.a"
)

# Empty compiler generated dependencies file for lacb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lacb_policy_test.dir/lacb_policy_test.cc.o"
  "CMakeFiles/lacb_policy_test.dir/lacb_policy_test.cc.o.d"
  "lacb_policy_test"
  "lacb_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacb_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lacb_policy_test.
# This may be replaced when dependencies are built.

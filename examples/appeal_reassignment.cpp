// Appeal handling demo (paper Sec. VI-B discussion): clients unsatisfied
// with an assigned broker appeal; the platform zeroes the pair's utility,
// restores the broker's workload, and re-queues the request into the next
// time interval.
//
//   ./appeal_reassignment
//
// Runs the same instance with appeals off and on, showing that LACB-Opt
// absorbs re-queued requests (appealed clients are eventually served)
// while total utility degrades only mildly.

#include <iostream>

#include "lacb/lacb.h"

int main() {
  using namespace lacb;

  sim::DatasetConfig base;
  base.name = "appeals";
  base.num_brokers = 60;
  base.num_requests = 1800;
  base.num_days = 6;
  base.imbalance = 0.2;
  base.seed = 515;

  core::PolicySuiteConfig suite;
  TablePrinter table;
  table.SetHeader({"appeal_rate", "appeals", "served_requests",
                   "total_utility", "utility_per_request"});

  for (double rate : {0.0, 0.15, 0.4}) {
    sim::DatasetConfig data = base;
    data.appeal_rate = rate;
    auto policy =
        policy::LacbPolicy::Create(core::DefaultLacbConfig(data, suite, true));
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return 1;
    }
    auto run = core::RunPolicy(data, policy->get());
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    double served = 0.0;
    for (double r : run->broker_requests) served += r;
    (void)table.AddRow(
        {TablePrinter::Num(rate, 2), std::to_string(run->total_appeals),
         TablePrinter::Num(served, 0),
         TablePrinter::Num(run->total_utility, 1),
         TablePrinter::Num(served > 0 ? run->total_utility / served : 0.0,
                           4)});
  }
  table.Print(std::cout);
  std::cout << "\nAppealed requests are re-queued into the next interval and"
            << "\nre-assigned to a different broker, so served counts stay"
            << "\nclose to the request volume even at high appeal rates.\n";
  return 0;
}

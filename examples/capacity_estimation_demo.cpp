// Capacity-estimation demo: watch the NN-enhanced UCB bandit (Alg. 1)
// discover a broker's workload capacity online.
//
//   ./capacity_estimation_demo
//
// A single broker has a hidden capacity knee at 30 requests/day. The bandit
// chooses a daily capacity from C = {10..60}, observes the realized
// sign-up rate from the ground-truth model, and should concentrate its
// choices around the knee. The demo prints the choice trace, the learned
// reward curve, and the cumulative regret vs the oracle (Eq. 7).

#include <iostream>

#include "lacb/lacb.h"

int main() {
  using namespace lacb;

  // The hidden environment: one broker with a knee at 30.
  sim::Broker broker;
  broker.id = 0;
  broker.latent.true_capacity = 30.0;
  broker.latent.base_quality = 0.25;
  broker.latent.overload_slope = 0.25;
  broker.latent.fatigue_sensitivity = 0.0;  // keep the knee stationary
  broker.recent_workload = 15.0;
  sim::SignupModelConfig sm_cfg;
  sm_cfg.binomial_observation = true;
  sim::SignupModel model(sm_cfg);

  bandit::NeuralUcbConfig cfg;
  cfg.arm_values = {10, 20, 30, 40, 50, 60};
  cfg.context_dim = sim::Broker::kContextDim;
  cfg.hidden_sizes = {32, 16};
  cfg.alpha = 0.05;
  cfg.lambda = 0.001;
  cfg.batch_size = 16;
  cfg.train_epochs = 40;
  cfg.learning_rate = 0.05;
  cfg.value_scale = 1.0 / 60.0;
  cfg.seed = 7;
  auto bandit_r = bandit::NeuralUcb::Create(cfg);
  if (!bandit_r.ok()) {
    std::cerr << bandit_r.status() << "\n";
    return 1;
  }
  bandit::NeuralUcb& ucb = *bandit_r;

  Rng rng(99);
  bandit::RegretTracker regret;
  double oracle = model.OracleBestCapacity(broker, cfg.arm_values);
  std::cout << "hidden knee = " << broker.latent.true_capacity
            << ", oracle arm = " << oracle << "\n\n";

  std::vector<size_t> choices(cfg.arm_values.size(), 0);
  const int kDays = 240;
  for (int day = 0; day < kDays; ++day) {
    la::Vector ctx = broker.ContextVector();
    double c = ucb.SelectValue(ctx).value();
    // The broker works up to the chosen capacity (demand is ample).
    double w = c;
    double s = model.ObserveDailySignupRate(broker, w, &rng);
    (void)ucb.Observe(ctx, w, s);
    regret.Record(model.SignupProbability(broker, w),
                  model.SignupProbability(broker, oracle));
    for (size_t i = 0; i < cfg.arm_values.size(); ++i) {
      if (cfg.arm_values[i] == c) ++choices[i];
    }
    if ((day + 1) % 60 == 0) {
      std::cout << "after " << day + 1 << " days: cumulative regret = "
                << TablePrinter::Num(regret.cumulative_regret(), 2) << "\n";
    }
  }
  (void)ucb.FlushTraining();

  std::cout << "\narm choice counts over " << kDays << " days:\n";
  TablePrinter counts;
  counts.SetHeader({"capacity", "times_chosen", "predicted_signup",
                    "true_signup"});
  for (size_t i = 0; i < cfg.arm_values.size(); ++i) {
    double v = cfg.arm_values[i];
    (void)counts.AddRow(
        {TablePrinter::Num(v, 0), std::to_string(choices[i]),
         TablePrinter::Num(
             ucb.PredictReward(broker.ContextVector(), v).value_or(0.0), 3),
         TablePrinter::Num(model.SignupProbability(broker, v), 3)});
  }
  counts.Print(std::cout);
  std::cout << "\naverage per-day regret: "
            << TablePrinter::Num(regret.average_regret(), 4) << "\n";
  return 0;
}

// Crash-recovery quickstart: checkpointed serving, an injected mid-day
// process kill, and a warm restart that finishes the run.
//
//   ./checkpoint_restore_demo
//
// Phase 1 serves a small city with durability on (checkpoint_dir set): the
// service cuts a CRC-checksummed snapshot of every piece of learned and
// environmental state at day boundaries and every few batches, and journals
// each committed batch to a write-ahead log. A FaultPlan kill trigger
// "crashes the process" partway through day 1. Phase 2 constructs a brand
// new service on the same directory: Start() loads the newest valid
// checkpoint, replays the WAL tail through the idempotent commit path, and
// resumes mid-day — finishing the horizon as if the crash never happened.
// A persistence-free reference run verifies the recovered totals exactly.
// See docs/persistence.md for the formats and the recovery protocol.

#include <filesystem>
#include <iostream>

#include "lacb/lacb.h"

using namespace lacb;

namespace {

sim::DatasetConfig DemoData() {
  sim::DatasetConfig data;
  data.name = "ckpt-demo";
  data.num_brokers = 30;
  data.num_requests = 360;
  data.num_days = 3;
  data.imbalance = 0.2;
  data.seed = 321;
  data.appeal_rate = 0.4;
  return data;
}

serve::ServeOptions DemoOptions(const std::string& dir,
                                uint64_t kill_after_commits) {
  serve::ServeOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1u << 20;
  options.max_batch_delay = std::chrono::seconds(300);
  options.checkpoint_dir = dir;            // durability on
  options.checkpoint_interval_batches = 4; // snapshot every 4 batches
  options.fault_plan.kill_after_commits = kill_after_commits;
  return options;
}

// Drives the platform's lockstep schedule from (start_day, start_batch),
// resuming an already-open day when the restore says so. Appends each
// completed day's realized utility to `daily`.
Status Drive(serve::AssignmentService* service, size_t start_day,
             uint64_t start_batch, bool day_open, std::vector<double>* daily) {
  const auto& schedule = service->platform().all_requests();
  for (size_t day = start_day; day < schedule.size(); ++day) {
    if (!(day == start_day && day_open)) {
      LACB_RETURN_NOT_OK(service->OpenDay(day));
    }
    uint64_t first = day == start_day ? start_batch : 0;
    for (uint64_t b = first; b < schedule[day].size(); ++b) {
      for (const sim::Request& r : schedule[day][b]) service->Submit(r);
      service->Flush();
      LACB_RETURN_NOT_OK(service->WaitIdle());
      LACB_RETURN_NOT_OK(service->MaybeCheckpoint());
    }
    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, service->CloseDay());
    daily->push_back(outcome.realized_utility);
    std::cout << "  day " << day << " closed: utility "
              << outcome.realized_utility << "\n";
  }
  return Status::OK();
}

}  // namespace

int main() {
  sim::DatasetConfig data = DemoData();
  core::PolicySuiteConfig suite;
  policy::PolicyFactory factory =
      core::SuitePolicyFactory(data, suite, 8);  // LACB-Opt: full state
  const std::string dir = "./ckpt_demo";
  std::filesystem::remove_all(dir);

  // --- Reference: the same run, uninterrupted, no persistence ------------
  std::vector<double> expected;
  {
    obs::ScopedTelemetry telemetry;
    serve::ServeOptions plain;
    plain.num_workers = 1;
    plain.max_batch_size = 1u << 20;
    plain.max_batch_delay = std::chrono::seconds(300);
    auto service = serve::AssignmentService::Create(data, factory, plain);
    if (!service.ok() || !(*service)->Start().ok()) return 1;
    std::cout << "reference run (no persistence):\n";
    if (auto s = Drive(service->get(), 0, 0, false, &expected); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    (*service)->Shutdown();
  }

  // --- Phase 1: durable serving, killed mid-day --------------------------
  {
    obs::ScopedTelemetry telemetry;
    auto service = serve::AssignmentService::Create(
        data, factory, DemoOptions(dir, /*kill_after_commits=*/27));
    if (!service.ok() || !(*service)->Start().ok()) return 1;
    std::cout << "\nphase 1: serving with checkpoints into " << dir
              << ", kill after 27 commits\n";
    std::vector<double> partial;
    Status s = Drive(service->get(), 0, 0, false, &partial);
    if (s.ok()) {
      std::cerr << "expected the injected kill to interrupt the run\n";
      return 1;
    }
    std::cout << "  process died mid-day-1: " << s << "\n";
    (*service)->Shutdown();
  }

  // --- Phase 2: warm restart on the same directory -----------------------
  obs::ScopedTelemetry telemetry;
  auto service = serve::AssignmentService::Create(
      data, factory, DemoOptions(dir, /*kill_after_commits=*/0));
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  if (auto s = (*service)->Start(); !s.ok()) {
    std::cerr << "restore failed: " << s << "\n";
    return 1;
  }
  const serve::RestoreInfo& info = (*service)->restore_info();
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  std::cout << "\nphase 2: restored=" << (info.restored ? "yes" : "no")
            << " day=" << info.day << " day_open=" << info.day_open
            << " batches_committed_today=" << info.batches_committed_today
            << " replayed_wal_batches=" << info.replayed_batches
            << " replay_divergence="
            << registry.GetCounter("persist.replay_divergence").value()
            << "\n";
  if (!info.restored) return 1;

  std::vector<double> recovered;
  std::cout << "resuming day " << info.day << " at batch "
            << info.batches_committed_today << ":\n";
  if (auto s = Drive(service->get(), info.day, info.batches_committed_today,
                     info.day_open, &recovered);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  (*service)->Shutdown();

  // Phase 1 closed day 0 before dying; the recovered run must reproduce
  // the reference's remaining days bit-for-bit.
  bool exact = recovered.size() == 2 && expected.size() == 3 &&
               recovered[0] == expected[1] && recovered[1] == expected[2];
  std::cout << "\nrecovered day utilities match the uninterrupted run: "
            << (exact ? "bit-identical" : "MISMATCH") << "\n";
  std::cout << "checkpoint files on disk:";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::cout << " " << entry.path().filename().string();
  }
  std::cout << "\nrecovery " << (exact ? "SUCCEEDED" : "FAILED")
            << ": the restored service finished the horizon from the "
               "durable state\n";
  return exact ? 0 : 1;
}

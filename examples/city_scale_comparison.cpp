// City-scale comparison: the paper's full algorithm suite on a downscaled
// City A instance (Table IV preset, ratio-preserving 1/40 scale so the
// cubic baselines finish on a laptop).
//
//   ./city_scale_comparison [scale]
//
// Prints per-policy total utility, running time, overload statistics, and
// the improved-broker fraction vs Top-1 — the Sec. VII-C analysis.

#include <cstdlib>
#include <iostream>

#include "lacb/lacb.h"

int main(int argc, char** argv) {
  using namespace lacb;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.025;
  auto city = sim::CityPreset('A');
  if (!city.ok()) {
    std::cerr << city.status() << "\n";
    return 1;
  }
  city->num_days = 7;  // one week is enough for the example
  sim::DatasetConfig data = sim::ScaleDown(*city, scale);
  std::cout << "City A scaled by " << scale << ": " << data.num_brokers
            << " brokers, " << data.num_requests << " requests, "
            << data.num_days << " days, "
            << data.RequestsPerBatch() << " requests/batch\n\n";

  core::PolicySuiteConfig suite;
  suite.ctopk_capacity = 45.0;  // the paper's empirical City-A capacity
  auto policies = core::MakePolicySuite(data, suite);
  if (!policies.ok()) {
    std::cerr << policies.status() << "\n";
    return 1;
  }

  std::vector<core::PolicyRunResult> runs;
  for (auto& p : *policies) {
    std::cout << "running " << p->name() << "...\n";
    auto run = core::RunPolicy(data, p.get());
    if (!run.ok()) {
      std::cerr << p->name() << " failed: " << run.status() << "\n";
      return 1;
    }
    runs.push_back(std::move(*run));
  }

  const core::PolicyRunResult* top1 = &runs.front();
  std::cout << "\n";
  TablePrinter table;
  table.SetHeader({"policy", "total_utility", "seconds", "overload_days",
                   "improved_vs_Top-1"});
  for (const auto& r : runs) {
    auto improved = core::CompareBrokerUtility(r.broker_utility,
                                               top1->broker_utility);
    (void)table.AddRow(
        {r.policy, TablePrinter::Num(r.total_utility, 1),
         TablePrinter::Num(r.policy_seconds, 2),
         std::to_string(r.overloaded_broker_days),
         improved.ok()
             ? TablePrinter::Num(100.0 * improved->improved_fraction, 1) + "%"
             : "n/a"});
  }
  table.Print(std::cout);

  // Workload concentration of the top brokers, per policy (Fig. 10 flavor).
  std::cout << "\nTop-5 mean daily workloads per policy:\n";
  TablePrinter dist;
  dist.SetHeader({"policy", "w1", "w2", "w3", "w4", "w5"});
  for (const auto& r : runs) {
    auto top = core::TopNDescending(r.broker_mean_workload, 5);
    std::vector<std::string> row = {r.policy};
    for (double w : top) row.push_back(TablePrinter::Num(w, 1));
    while (row.size() < 6) row.push_back("-");
    (void)dist.AddRow(row);
  }
  dist.Print(std::cout);
  return 0;
}

// Dataset export/import: persist a generated matching instance as CSV for
// external analysis (pandas, R) or exact replay, then reload and verify.
//
//   ./dataset_export [output_dir]

#include <filesystem>
#include <iostream>

#include "lacb/lacb.h"

int main(int argc, char** argv) {
  using namespace lacb;

  std::string dir = argc > 1 ? argv[1]
                             : std::filesystem::temp_directory_path().string();
  sim::DatasetConfig data;
  data.name = "export-demo";
  data.num_brokers = 50;
  data.num_requests = 500;
  data.num_days = 3;
  data.imbalance = 0.2;
  data.seed = 31337;

  Rng rng(data.seed);
  auto brokers = sim::GenerateBrokers(data, &rng);
  auto requests = sim::GenerateRequests(data, &rng);

  std::string brokers_csv = dir + "/lacb_demo_brokers.csv";
  std::string requests_csv = dir + "/lacb_demo_requests.csv";
  if (Status s = sim::ExportBrokersCsv(brokers, brokers_csv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (Status s = sim::ExportRequestsCsv(requests, requests_csv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "wrote " << brokers.size() << " brokers to " << brokers_csv
            << "\nwrote " << data.num_requests << " requests to "
            << requests_csv << "\n";

  // Round-trip check: reload and compare a few invariants.
  auto brokers_back = sim::ImportBrokersCsv(brokers_csv);
  auto requests_back = sim::ImportRequestsCsv(requests_csv);
  if (!brokers_back.ok() || !requests_back.ok()) {
    std::cerr << "reload failed: " << brokers_back.status() << " / "
              << requests_back.status() << "\n";
    return 1;
  }
  size_t reloaded_requests = 0;
  for (const auto& day : *requests_back) {
    for (const auto& batch : day) reloaded_requests += batch.size();
  }
  std::cout << "reloaded " << brokers_back->size() << " brokers and "
            << reloaded_requests << " requests; ids/latents match: "
            << ((*brokers_back)[7].latent.true_capacity ==
                        brokers[7].latent.true_capacity
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}

// Learned-utility demo: reproduce the production pipeline around u_{r,b}.
//
// The paper treats the matching utility as an input "learned from
// historical assignments using models such as XGBoost". This example
// closes that loop: (1) run the platform for a warm-up period under Top-3
// and log realized assignment outcomes; (2) train the GBDT utility model
// on the log; (3) run LACB-Opt twice — once assigning on the oracle
// utilities and once on the *learned* predictions — with realized utility
// always evaluated by the simulator, and report how much the learned
// model costs.
//
//   ./learned_utility_demo

#include <iostream>

#include "lacb/lacb.h"

namespace lacb {
namespace {

Status RunDemo() {
  sim::DatasetConfig data;
  data.name = "learned-utility";
  data.num_brokers = 60;
  data.num_requests = 3600;
  data.num_days = 12;
  data.imbalance = 0.1;  // 6 per batch
  data.seed = 90210;

  // --- Phase 1: collect an assignment log under the incumbent Top-3. ---
  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(data));
  policy::TopKPolicy top3(3, data.seed + 1);
  LACB_RETURN_NOT_OK(top3.Initialize(platform));
  std::vector<sim::AssignmentLogEntry> log;
  const size_t kWarmupDays = 6;
  for (size_t day = 0; day < kWarmupDays; ++day) {
    LACB_RETURN_NOT_OK(platform.StartDay(day));
    LACB_RETURN_NOT_OK(top3.BeginDay(platform, day));
    std::vector<std::vector<int64_t>> assignments;
    std::vector<std::vector<sim::Request>> batches;
    for (size_t b = 0; b < platform.NumBatchesToday(); ++b) {
      LACB_ASSIGN_OR_RETURN(auto requests, platform.BatchRequests(b));
      LACB_ASSIGN_OR_RETURN(la::Matrix utility, platform.BatchUtility(b));
      policy::BatchInput input;
      input.requests = &requests;
      input.utility = &utility;
      input.workloads = &platform.workloads_today();
      LACB_ASSIGN_OR_RETURN(auto assignment, top3.AssignBatch(input));
      LACB_RETURN_NOT_OK(platform.CommitAssignment(b, assignment));
      assignments.push_back(std::move(assignment));
      batches.push_back(std::move(requests));
    }
    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, platform.EndDay());
    // Log each served pair with its realized per-request utility: the
    // day's quality factor applies uniformly, so apportion the broker's
    // realized utility over its served requests.
    std::vector<double> served(platform.num_brokers(), 0.0);
    for (const auto& a : assignments) {
      for (int64_t broker : a) {
        if (broker >= 0) served[static_cast<size_t>(broker)] += 1.0;
      }
    }
    for (size_t b = 0; b < batches.size(); ++b) {
      for (size_t i = 0; i < batches[b].size(); ++i) {
        int64_t broker = assignments[b][i];
        if (broker < 0) continue;
        size_t bi = static_cast<size_t>(broker);
        if (served[bi] <= 0.0) continue;
        sim::AssignmentLogEntry e;
        e.request = batches[b][i];
        e.broker = bi;
        e.realized_utility = outcome.per_broker_utility[bi] / served[bi];
        log.push_back(std::move(e));
      }
    }
  }
  std::cout << "warm-up logged " << log.size() << " assignments over "
            << kWarmupDays << " days\n";

  // --- Phase 2: train the learned utility model. ---
  LACB_ASSIGN_OR_RETURN(sim::LearnedUtilityModel learned,
                        sim::LearnedUtilityModel::Train(log,
                                                        platform.brokers()));
  LACB_ASSIGN_OR_RETURN(double train_mse,
                        learned.Evaluate(log, platform.brokers()));
  std::cout << "GBDT utility model: " << learned.booster().num_trees()
            << " trees, train MSE " << TablePrinter::Num(train_mse, 4)
            << "\n\n";

  // --- Phase 3: LACB-Opt on oracle vs learned utilities. ---
  core::PolicySuiteConfig suite;
  TablePrinter table;
  table.SetHeader({"assignment_utilities", "realized_total_utility"});
  for (bool use_learned : {false, true}) {
    LACB_ASSIGN_OR_RETURN(sim::Platform fresh, sim::Platform::Create(data));
    LACB_ASSIGN_OR_RETURN(
        auto policy,
        policy::LacbPolicy::Create(core::DefaultLacbConfig(data, suite, true)));
    LACB_RETURN_NOT_OK(policy->Initialize(fresh));
    double total = 0.0;
    for (size_t day = 0; day < fresh.num_days(); ++day) {
      LACB_RETURN_NOT_OK(fresh.StartDay(day));
      LACB_RETURN_NOT_OK(policy->BeginDay(fresh, day));
      for (size_t b = 0; b < fresh.NumBatchesToday(); ++b) {
        LACB_ASSIGN_OR_RETURN(auto requests, fresh.BatchRequests(b));
        la::Matrix utility;
        if (use_learned) {
          LACB_ASSIGN_OR_RETURN(
              utility, learned.UtilityMatrix(requests, fresh.brokers()));
        } else {
          LACB_ASSIGN_OR_RETURN(utility, fresh.BatchUtility(b));
        }
        policy::BatchInput input;
        input.requests = &requests;
        input.utility = &utility;
        input.workloads = &fresh.workloads_today();
        LACB_ASSIGN_OR_RETURN(auto assignment, policy->AssignBatch(input));
        LACB_RETURN_NOT_OK(fresh.CommitAssignment(b, assignment));
      }
      LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, fresh.EndDay());
      LACB_RETURN_NOT_OK(policy->EndDay(outcome));
      total += outcome.realized_utility;
    }
    LACB_RETURN_NOT_OK(table.AddRow(
        {use_learned ? "learned (GBDT)" : "oracle",
         TablePrinter::Num(total, 1)}));
  }
  table.Print(std::cout);
  std::cout << "\nAssigning on GBDT-predicted utilities (what a production\n"
               "platform actually has) retains most of the realized utility\n"
               "of assigning on the oracle.\n";
  return Status::OK();
}

}  // namespace
}  // namespace lacb

int main() {
  lacb::Status s = lacb::RunDemo();
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  return 0;
}

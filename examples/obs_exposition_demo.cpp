// Live observability plane demo: the three exporters working together.
//
//   ./obs_exposition_demo
//
// Runs the serving layer over a small synthetic city with the full
// instrumentation stack attached:
//   1. an ExpositionServer on an ephemeral 127.0.0.1 port, scraped once
//      mid-run with a plain socket GET (what Prometheus would do),
//   2. an EventRecorder capturing the request timeline, exported as
//      obs_demo_trace.json — load it in chrome://tracing or
//      ui.perfetto.dev to see request flows hop across threads,
//   3. a TimeSeriesSampler ticking queue/carryover depth on a wall-clock
//      cadence, written as obs_demo_series.jsonl.
//
// Both files land in the build directory (LACB_OBS_DEMO_OUTPUT_DIR, set
// by examples/CMakeLists.txt), not the working directory.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "lacb/lacb.h"

namespace {

// Minimal blocking HTTP GET against 127.0.0.1:port — the demo stands in
// for a Prometheus scraper, so it speaks the same plain-text protocol.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

#ifndef LACB_OBS_DEMO_OUTPUT_DIR
#define LACB_OBS_DEMO_OUTPUT_DIR "."
#endif

}  // namespace

int main() {
  using namespace lacb;

  sim::DatasetConfig data;
  data.name = "obs-demo";
  data.num_brokers = 40;
  data.num_requests = 900;
  data.num_days = 3;
  data.imbalance = 0.2;
  data.seed = 17;

  core::PolicySuiteConfig suite;
  policy::PolicyFactory factory = core::SuitePolicyFactory(data, suite, 1);

  obs::ScopedTelemetry telemetry;
  obs::EventRecorder recorder;
  obs::ScopedEventRecording recording(&recorder);

  serve::ServeOptions options;
  options.num_workers = 2;
  options.max_batch_size = 16;
  options.max_batch_delay = std::chrono::milliseconds(1);
  options.queue_capacity = 1024;
  options.exposition_port = 0;  // ephemeral: the OS picks a free port

  auto service = serve::AssignmentService::Create(data, factory, options);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  if (auto s = (*service)->Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "metrics live at http://127.0.0.1:" << (*service)->exposition_port()
            << "/metrics\n";

  // Sample serving gauges/counters every 2ms while the run breathes.
  obs::TimeSeriesSampler::Options sampler_opts;
  sampler_opts.instruments = {"serve.queue_depth", "serve.carryover_depth",
                              "serve.submitted", "serve.shed_requests"};
  sampler_opts.time_unit = "seconds";
  obs::TimeSeriesSampler sampler(sampler_opts);
  if (auto s = sampler.StartPeriodic(std::chrono::milliseconds(2)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  for (size_t day = 0; day < data.num_days; ++day) {
    if (auto s = (*service)->OpenDay(day); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    for (const auto& batch : (*service)->platform().all_requests()[day]) {
      for (const sim::Request& r : batch) (void)(*service)->Submit(r);
    }
    if (day == 1) {
      // Scrape mid-run, exactly as a Prometheus server would.
      std::string scrape = HttpGet((*service)->exposition_port(), "/metrics");
      std::istringstream lines(scrape.substr(scrape.find("\r\n\r\n") + 4));
      std::string line;
      std::cout << "\n--- /metrics (first 24 lines of the day-1 scrape) ---\n";
      for (int i = 0; i < 24 && std::getline(lines, line); ++i) {
        std::cout << line << "\n";
      }
      std::cout << "---\n\n";
    }
    auto outcome = (*service)->CloseDay();
    if (!outcome.ok()) {
      std::cerr << outcome.status() << "\n";
      return 1;
    }
    std::cout << "day " << day << ": realized utility "
              << outcome->realized_utility << ", appeals " << outcome->appeals
              << "\n";
  }

  serve::ServeStats stats = (*service)->Stats();
  (*service)->Shutdown();
  sampler.StopPeriodic();

  std::cout << "\nserved " << stats.assigned << " assignments over "
            << stats.batches << " batches; exposition answered "
            << "1 scrape during the run\n";

  const std::string out_dir = LACB_OBS_DEMO_OUTPUT_DIR;
  const std::string trace_path = out_dir + "/obs_demo_trace.json";
  if (auto s = obs::WriteChromeTrace(recorder, trace_path,
                                     "obs_exposition_demo");
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  obs::TraceSnapshot snap = recorder.Snapshot();
  std::cout << "wrote " << trace_path << ": " << snap.events.size()
            << " events across " << snap.threads
            << " threads (open in chrome://tracing or ui.perfetto.dev)\n";

  const std::string series_path = out_dir + "/obs_demo_series.jsonl";
  const obs::TimeSeries& series = sampler.Series();
  if (auto s = series.WriteJsonl(series_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "wrote " << series_path << ": " << series.points.size()
            << " samples of " << sampler_opts.instruments.size()
            << " instruments\n";
  return 0;
}

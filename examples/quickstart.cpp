// Quickstart: run LACB-Opt on a small synthetic matching instance.
//
// Builds a dataset, runs the proposed policy through the simulated
// platform, and prints the headline numbers next to a Top-1 baseline —
// the minimal end-to-end use of the public API.
//
//   ./quickstart

#include <iostream>

#include "lacb/lacb.h"

int main() {
  using namespace lacb;

  // 1. Describe the matching instance (brokers, requests, days, imbalance).
  sim::DatasetConfig data;
  data.name = "quickstart";
  data.num_brokers = 80;
  data.num_requests = 2400;
  data.num_days = 6;
  data.imbalance = 0.15;  // 12 requests per batch
  data.seed = 2024;

  // 2. Build the proposed policy (LACB with Candidate Broker Selection).
  core::PolicySuiteConfig suite;
  auto lacb_opt =
      policy::LacbPolicy::Create(core::DefaultLacbConfig(data, suite, true));
  if (!lacb_opt.ok()) {
    std::cerr << "failed to build LACB-Opt: " << lacb_opt.status() << "\n";
    return 1;
  }

  // 3. ...and the status-quo baseline the paper argues against.
  policy::TopKPolicy top1(1, suite.seed);

  // 4. Run both against identical instances.
  auto run_lacb = core::RunPolicy(data, lacb_opt->get());
  auto run_top = core::RunPolicy(data, &top1);
  if (!run_lacb.ok() || !run_top.ok()) {
    std::cerr << "run failed: " << run_lacb.status() << " / "
              << run_top.status() << "\n";
    return 1;
  }

  // 5. Report.
  TablePrinter table;
  table.SetHeader({"policy", "total_utility", "overload_broker_days",
                   "top1_workload_vs_mean", "policy_seconds"});
  for (const core::PolicyRunResult* r : {&run_lacb.value(), &run_top.value()}) {
    (void)table.AddRow({r->policy, TablePrinter::Num(r->total_utility, 1),
                        std::to_string(r->overloaded_broker_days),
                        TablePrinter::Num(
                            core::MaxToMeanRatio(r->broker_mean_workload), 2),
                        TablePrinter::Num(r->policy_seconds, 3)});
  }
  table.Print(std::cout);

  auto improved = core::CompareBrokerUtility(run_lacb->broker_utility,
                                             run_top->broker_utility);
  if (improved.ok()) {
    std::cout << "\nBrokers better off under LACB-Opt than Top-1: "
              << TablePrinter::Num(100.0 * improved->improved_fraction, 1)
              << "%\n";
  }
  return 0;
}

// Serving-layer quickstart: run the LACB pipeline as an online service.
//
//   ./serve_quickstart
//
// Builds an AssignmentService over a small synthetic city — bounded
// ingestion queue, deadline-driven micro-batcher, a pool of assignment
// workers each holding its own policy replica — then drives one request
// stream through it by hand (open day / submit / flush / close day) and a
// full multi-day run through the Poisson load generator. Prints the
// service counters and the latency profile the obs layer collected.

#include <iostream>

#include "lacb/lacb.h"

int main() {
  using namespace lacb;

  sim::DatasetConfig data;
  data.name = "serve-quickstart";
  data.num_brokers = 40;
  data.num_requests = 900;
  data.num_days = 3;
  data.imbalance = 0.2;
  data.seed = 7;

  core::PolicySuiteConfig suite;
  // Suite index 1 = Top-3, cheap enough for a demo; swap in 5 (KM) or
  // 8 (LACB-Opt) to serve the heavier policies the same way.
  policy::PolicyFactory factory = core::SuitePolicyFactory(data, suite, 1);

  // --- Manual protocol: the service as a library -------------------------
  obs::ScopedTelemetry telemetry;  // run-scoped metrics/trace collection

  serve::ServeOptions options;
  options.num_workers = 2;
  options.max_batch_size = 16;
  options.max_batch_delay = std::chrono::milliseconds(1);
  options.queue_capacity = 1024;

  auto service = serve::AssignmentService::Create(data, factory, options);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  if (auto s = (*service)->Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = (*service)->OpenDay(0); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  // Producers may call Submit from any thread; here we pump day 0 of the
  // platform's schedule inline. Submit returns false when admission sheds.
  size_t sent = 0;
  for (const auto& batch : (*service)->platform().all_requests()[0]) {
    for (const sim::Request& r : batch) sent += (*service)->Submit(r) ? 1 : 0;
  }
  auto outcome = (*service)->CloseDay();  // flush + drain + day feedback
  if (!outcome.ok()) {
    std::cerr << outcome.status() << "\n";
    return 1;
  }
  serve::ServeStats stats = (*service)->Stats();
  std::cout << "manual day 0: submitted " << sent << ", assigned "
            << stats.assigned << ", unmatched " << stats.unmatched
            << ", shed " << stats.shed << ", appeals " << stats.appeals
            << "\n  batches " << stats.batches << " (size/deadline/flush "
            << stats.size_closes << "/" << stats.deadline_closes << "/"
            << stats.flush_closes << "), realized utility "
            << outcome->realized_utility << "\n";
  (*service)->Shutdown();

  // --- Full run through the load generator -------------------------------
  serve::ServedRunOptions run_options;
  run_options.serve = options;
  run_options.mode = serve::LoadMode::kPoisson;
  run_options.poisson_rate = 5000.0;  // ~0.2 ms mean inter-arrival gap

  auto run = serve::RunPolicyServed(data, factory, run_options);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  std::cout << "\nPoisson run (" << run->policy << ", "
            << run_options.serve.num_workers << " workers): total utility "
            << run->total_utility << ", shed " << run->shed_requests
            << ", p99 batch assign " << run->p99_batch_latency * 1e3
            << " ms\n";
  if (run->telemetry != nullptr) {
    const auto& hists = run->telemetry->metrics.histograms;
    if (auto it = hists.find("serve.e2e_seconds"); it != hists.end()) {
      std::cout << "end-to-end latency: p50 " << it->second.p50 * 1e3
                << " ms, p95 " << it->second.p95 * 1e3 << " ms, p99 "
                << it->second.p99 * 1e3 << " ms over " << it->second.count
                << " requests\n";
    }
  }
  return 0;
}

// Contextual bandit interface over real-valued arms.
//
// In the paper's formulation (Sec. V-B) the arms are candidate workload
// capacities — real values, not opaque indices — and the feedback triple
// (x, w, s) rewards the *observed workload* w, which need not equal the
// chosen arm (a broker's realized workload is usually below the chosen
// capacity). The interface therefore exposes arms by value: policies score
// each candidate value under a context, and updates accept any value.

#ifndef LACB_BANDIT_CONTEXTUAL_BANDIT_H_
#define LACB_BANDIT_CONTEXTUAL_BANDIT_H_

#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"

namespace lacb::bandit {

using la::Vector;

/// \brief A contextual bandit whose arms are real values.
class ContextualBandit {
 public:
  virtual ~ContextualBandit() = default;

  /// \brief Chooses the arm value maximizing the policy's acquisition score
  /// (e.g. the UCB of Eq. 5) under `context`.
  virtual Result<double> SelectValue(const Vector& context) = 0;

  /// \brief Predicted mean reward of playing `value` under `context`
  /// (no exploration bonus).
  virtual Result<double> PredictReward(const Vector& context,
                                       double value) const = 0;

  /// \brief Feeds back one observation (x, w, s): reward `reward` was
  /// obtained at arm value `value` under `context`.
  virtual Status Observe(const Vector& context, double value,
                         double reward) = 0;

  /// \brief The candidate arm values C.
  virtual const std::vector<double>& arm_values() const = 0;

  /// \brief Context dimensionality expected by SelectValue/Observe.
  virtual size_t context_dim() const = 0;
};

/// \brief Cumulative-regret tracker (paper Eq. 7).
///
/// The caller supplies, per trial, the reward actually obtained and the
/// best achievable reward over all arms under that context (available in
/// simulation, where the ground-truth reward model is known).
class RegretTracker {
 public:
  /// \brief Records one trial.
  void Record(double obtained_reward, double optimal_reward) {
    cumulative_ += optimal_reward - obtained_reward;
    history_.push_back(cumulative_);
  }

  double cumulative_regret() const { return cumulative_; }
  size_t num_trials() const { return history_.size(); }

  /// \brief Cumulative regret after each trial (for regret-curve plots).
  const std::vector<double>& history() const { return history_; }

  /// \brief Average per-trial regret.
  double average_regret() const {
    return history_.empty()
               ? 0.0
               : cumulative_ / static_cast<double>(history_.size());
  }

 private:
  double cumulative_ = 0.0;
  std::vector<double> history_;
};

}  // namespace lacb::bandit

#endif  // LACB_BANDIT_CONTEXTUAL_BANDIT_H_

#include "lacb/bandit/eps_greedy.h"

#include <cmath>
#include <limits>
#include <utility>

namespace lacb::bandit {

EpsGreedy::EpsGreedy(EpsGreedyConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      sums_(config_.arm_values.size(), 0.0),
      counts_(config_.arm_values.size(), 0) {}

Result<EpsGreedy> EpsGreedy::Create(const EpsGreedyConfig& config) {
  if (config.arm_values.empty()) {
    return Status::InvalidArgument("EpsGreedy needs at least one arm value");
  }
  if (config.epsilon < 0.0 || config.epsilon > 1.0) {
    return Status::InvalidArgument("EpsGreedy epsilon must be in [0,1]");
  }
  return EpsGreedy(config);
}

size_t EpsGreedy::NearestArm(double value) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < config_.arm_values.size(); ++i) {
    double d = std::fabs(config_.arm_values[i] - value);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

Result<double> EpsGreedy::SelectValue(const Vector& context) {
  (void)context;
  if (rng_.Bernoulli(config_.epsilon)) {
    size_t i = static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(config_.arm_values.size()) - 1));
    return config_.arm_values[i];
  }
  // Play each arm once before going greedy.
  size_t best = 0;
  double best_mean = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < config_.arm_values.size(); ++i) {
    if (counts_[i] == 0) return config_.arm_values[i];
    double mean = sums_[i] / static_cast<double>(counts_[i]);
    if (mean > best_mean) {
      best_mean = mean;
      best = i;
    }
  }
  return config_.arm_values[best];
}

Result<double> EpsGreedy::PredictReward(const Vector& context,
                                        double value) const {
  (void)context;
  size_t i = NearestArm(value);
  if (counts_[i] == 0) return 0.0;
  return sums_[i] / static_cast<double>(counts_[i]);
}

Status EpsGreedy::Observe(const Vector& context, double value,
                          double reward) {
  (void)context;
  size_t i = NearestArm(value);
  sums_[i] += reward;
  ++counts_[i];
  return Status::OK();
}

Status EpsGreedy::SaveState(persist::ByteWriter* w) const {
  w->Str(rng_.SaveState());
  w->VecF64(sums_);
  std::vector<uint64_t> counts(counts_.begin(), counts_.end());
  w->VecU64(counts);
  return Status::OK();
}

Status EpsGreedy::LoadState(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(std::string rng_state, r->Str());
  LACB_RETURN_NOT_OK(rng_.LoadState(rng_state));
  LACB_ASSIGN_OR_RETURN(sums_, r->VecF64());
  LACB_ASSIGN_OR_RETURN(std::vector<uint64_t> counts, r->VecU64());
  if (sums_.size() != config_.arm_values.size() ||
      counts.size() != config_.arm_values.size()) {
    return Status::InvalidArgument("EpsGreedy state arm-count mismatch");
  }
  counts_.assign(counts.begin(), counts.end());
  return Status::OK();
}

}  // namespace lacb::bandit

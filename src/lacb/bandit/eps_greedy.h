// ε-greedy contextual bandit: a simple exploration baseline.
//
// Keeps a per-arm running mean reward conditioned on nothing (arms are
// treated independently; the context is ignored for selection but stored
// statistics still converge to the marginal best arm). Serves as the naive
// baseline in the regret ablation bench: unlike UCB policies it neither
// shrinks exploration with confidence nor shares information across arms.

#ifndef LACB_BANDIT_EPS_GREEDY_H_
#define LACB_BANDIT_EPS_GREEDY_H_

#include <vector>

#include "lacb/bandit/contextual_bandit.h"
#include "lacb/common/rng.h"
#include "lacb/persist/bytes.h"

namespace lacb::bandit {

/// \brief Configuration of an EpsGreedy policy.
struct EpsGreedyConfig {
  std::vector<double> arm_values;
  size_t context_dim = 0;
  /// Exploration probability.
  double epsilon = 0.1;
  uint64_t seed = 1;
};

/// \brief Context-free ε-greedy over the same value-arm interface.
class EpsGreedy : public ContextualBandit {
 public:
  static Result<EpsGreedy> Create(const EpsGreedyConfig& config);

  Result<double> SelectValue(const Vector& context) override;
  Result<double> PredictReward(const Vector& context,
                               double value) const override;
  Status Observe(const Vector& context, double value, double reward) override;

  const std::vector<double>& arm_values() const override {
    return config_.arm_values;
  }
  size_t context_dim() const override { return config_.context_dim; }

  /// \brief Checkpoint serialization of (rng, per-arm sums/counts).
  Status SaveState(persist::ByteWriter* w) const;
  Status LoadState(persist::ByteReader* r);

 private:
  explicit EpsGreedy(EpsGreedyConfig config);

  /// Index of the arm whose value is nearest to `value`.
  size_t NearestArm(double value) const;

  EpsGreedyConfig config_;
  Rng rng_;
  std::vector<double> sums_;
  std::vector<size_t> counts_;
};

}  // namespace lacb::bandit

#endif  // LACB_BANDIT_EPS_GREEDY_H_

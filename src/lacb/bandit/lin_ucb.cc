#include "lacb/bandit/lin_ucb.h"

#include "lacb/persist/serializers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lacb/obs/obs.h"

namespace lacb::bandit {

namespace {
std::vector<double> WidthBounds() {
  std::vector<double> bounds;
  for (double b = 1e-4; b < 2000.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}
}  // namespace

LinUcb::LinUcb(LinUcbConfig config, la::ShermanMorrisonInverse a_inv)
    : config_(std::move(config)),
      a_inv_(std::move(a_inv)),
      b_(config_.context_dim + 2, 0.0),
      theta_(config_.context_dim + 2, 0.0) {}

Result<LinUcb> LinUcb::Create(const LinUcbConfig& config) {
  if (config.arm_values.empty()) {
    return Status::InvalidArgument("LinUcb needs at least one arm value");
  }
  if (config.context_dim == 0) {
    return Status::InvalidArgument("LinUcb context_dim must be positive");
  }
  if (config.alpha < 0.0) {
    return Status::InvalidArgument("LinUcb alpha must be non-negative");
  }
  LACB_ASSIGN_OR_RETURN(
      auto a_inv,
      la::ShermanMorrisonInverse::Create(config.context_dim + 2,
                                         config.lambda));
  return LinUcb(config, std::move(a_inv));
}

Result<Vector> LinUcb::Features(const Vector& context, double value) const {
  if (context.size() != config_.context_dim) {
    return Status::InvalidArgument("LinUcb context dimension mismatch");
  }
  Vector phi;
  phi.reserve(context.size() + 2);
  phi.insert(phi.end(), context.begin(), context.end());
  phi.push_back(value * config_.value_scale);
  phi.push_back(1.0);  // intercept
  return phi;
}

void LinUcb::RefreshTheta() {
  theta_ = a_inv_.inverse().MatVec(b_).value();
}

Result<double> LinUcb::UcbScore(const Vector& context, double value) const {
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, value));
  LACB_ASSIGN_OR_RETURN(double width2, a_inv_.QuadraticForm(phi));
  return la::Dot(theta_, phi) + config_.alpha * std::sqrt(width2);
}

Result<double> LinUcb::SelectValue(const Vector& context) {
  LACB_TRACE_SPAN("bandit_select");
  double best_value = config_.arm_values.front();
  double best_score = -std::numeric_limits<double>::infinity();
  for (double v : config_.arm_values) {
    LACB_ASSIGN_OR_RETURN(double score, UcbScore(context, v));
    if (score > best_score) {
      best_score = score;
      best_value = v;
    }
  }
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, best_value));
  LACB_ASSIGN_OR_RETURN(double width2, a_inv_.QuadraticForm(phi));
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("bandit.lin_ucb.pulls").Increment();
  registry.GetHistogram("bandit.lin_ucb.ucb_width", WidthBounds())
      .Record(config_.alpha * std::sqrt(std::max(0.0, width2)));
  return best_value;
}

Result<double> LinUcb::PredictReward(const Vector& context,
                                     double value) const {
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, value));
  return la::Dot(theta_, phi);
}

Status LinUcb::Observe(const Vector& context, double value, double reward) {
  LACB_TRACE_SPAN("bandit_update");
  obs::ActiveRegistry().GetCounter("bandit.lin_ucb.observations").Increment();
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, value));
  LACB_RETURN_NOT_OK(a_inv_.RankOneUpdate(phi));
  la::Axpy(reward, phi, &b_);
  RefreshTheta();
  return Status::OK();
}

Status LinUcb::SaveState(persist::ByteWriter* w) const {
  persist::WriteMatrix(w, a_inv_.inverse());
  w->VecF64(b_);
  w->VecF64(theta_);
  return Status::OK();
}

Status LinUcb::LoadState(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(la::Matrix inv, persist::ReadMatrix(r));
  LACB_ASSIGN_OR_RETURN(
      a_inv_, la::ShermanMorrisonInverse::FromInverse(std::move(inv)));
  LACB_ASSIGN_OR_RETURN(b_, r->VecF64());
  LACB_ASSIGN_OR_RETURN(theta_, r->VecF64());
  if (b_.size() != a_inv_.dim() || theta_.size() != a_inv_.dim()) {
    return Status::InvalidArgument("LinUcb state dimension mismatch");
  }
  return Status::OK();
}

}  // namespace lacb::bandit

// LinUCB: the standard linear-payoff UCB policy (paper Eq. 3; Li et al.).
//
// The feature map is φ(x, v) = [x; v; 1]. A ridge design matrix
// A = λI + Σ φφᵀ and response vector b = Σ rφ give θ = A⁻¹ b, and the
// acquisition score is θᵀφ + α √(φᵀ A⁻¹ φ). A⁻¹ is maintained with
// Sherman–Morrison, so selection and updates are O(d²).

#ifndef LACB_BANDIT_LIN_UCB_H_
#define LACB_BANDIT_LIN_UCB_H_

#include <vector>

#include "lacb/bandit/contextual_bandit.h"
#include "lacb/la/linalg.h"
#include "lacb/persist/bytes.h"

namespace lacb::bandit {

/// \brief Configuration of a LinUcb policy.
struct LinUcbConfig {
  /// Candidate arm values (the capacity set C). Must be non-empty.
  std::vector<double> arm_values;
  size_t context_dim = 0;
  /// Exploration coefficient α of Eq. 3.
  double alpha = 1.0;
  /// Ridge regularizer λ initializing A = λI.
  double lambda = 1.0;
  /// Arm values are multiplied by this before entering the feature map,
  /// keeping them on the scale of the (normalized) context features.
  double value_scale = 1.0;
};

/// \brief Linear UCB contextual bandit.
class LinUcb : public ContextualBandit {
 public:
  static Result<LinUcb> Create(const LinUcbConfig& config);

  Result<double> SelectValue(const Vector& context) override;
  Result<double> PredictReward(const Vector& context,
                               double value) const override;
  Status Observe(const Vector& context, double value, double reward) override;

  const std::vector<double>& arm_values() const override {
    return config_.arm_values;
  }
  size_t context_dim() const override { return config_.context_dim; }

  /// \brief UCB score of a single arm value (prediction + width).
  Result<double> UcbScore(const Vector& context, double value) const;

  /// \brief Checkpoint serialization of (A⁻¹, b, θ).
  Status SaveState(persist::ByteWriter* w) const;
  Status LoadState(persist::ByteReader* r);

 private:
  LinUcb(LinUcbConfig config, la::ShermanMorrisonInverse a_inv);

  Result<Vector> Features(const Vector& context, double value) const;
  void RefreshTheta();

  LinUcbConfig config_;
  la::ShermanMorrisonInverse a_inv_;
  Vector b_;      // Σ r φ
  Vector theta_;  // A⁻¹ b, refreshed on each observation
};

}  // namespace lacb::bandit

#endif  // LACB_BANDIT_LIN_UCB_H_

#include "lacb/bandit/neural_ucb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "lacb/obs/obs.h"
#include "lacb/persist/serializers.h"

namespace lacb::bandit {

namespace {
// UCB widths are dimensionless scores well under 1 for a trained net;
// finer buckets than the latency default make the histogram readable.
std::vector<double> WidthBounds() {
  std::vector<double> bounds;
  for (double b = 1e-4; b < 2000.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}
}  // namespace

namespace {

Status ValidateConfig(const NeuralUcbConfig& config) {
  if (config.arm_values.empty()) {
    return Status::InvalidArgument("NeuralUcb needs at least one arm value");
  }
  if (config.context_dim == 0) {
    return Status::InvalidArgument("NeuralUcb context_dim must be positive");
  }
  if (config.alpha < 0.0) {
    return Status::InvalidArgument("NeuralUcb alpha must be non-negative");
  }
  if (config.lambda <= 0.0) {
    return Status::InvalidArgument("NeuralUcb lambda must be positive");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("NeuralUcb batch_size must be positive");
  }
  return Status::OK();
}

nn::MlpConfig NetworkConfig(const NeuralUcbConfig& config) {
  nn::MlpConfig net;
  // Input: context, one RBF activation per arm anchor, and the raw scaled
  // value (see NeuralUcb::NetInput).
  net.layer_sizes.push_back(config.context_dim + config.arm_values.size() + 1);
  for (size_t h : config.hidden_sizes) net.layer_sizes.push_back(h);
  return net;
}

}  // namespace

NeuralUcb::NeuralUcb(NeuralUcbConfig config, nn::Mlp net)
    : config_(std::move(config)),
      net_(std::move(net)),
      optimizer_(config_.learning_rate),
      train_rng_(config_.seed + 0x5eed) {
  size_t d = net_.num_params();
  if (config_.covariance == CovarianceMode::kFullMatrix) {
    full_cov_ = std::make_unique<la::ShermanMorrisonInverse>(
        la::ShermanMorrisonInverse::Create(d, config_.lambda).value());
  } else {
    diag_cov_ = std::make_unique<la::DiagonalInverse>(
        la::DiagonalInverse::Create(d, config_.lambda).value());
  }
}

Result<NeuralUcb> NeuralUcb::Create(const NeuralUcbConfig& config) {
  LACB_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  LACB_ASSIGN_OR_RETURN(nn::Mlp net, nn::Mlp::Create(NetworkConfig(config), &rng));
  return NeuralUcb(config, std::move(net));
}

Result<NeuralUcb> NeuralUcb::CreateWithNetwork(const NeuralUcbConfig& config,
                                               nn::Mlp network) {
  LACB_RETURN_NOT_OK(ValidateConfig(config));
  if (network.input_dim() !=
      config.context_dim + config.arm_values.size() + 1) {
    return Status::InvalidArgument(
        "NeuralUcb network input dim must be context_dim + |arms| + 1");
  }
  return NeuralUcb(config, std::move(network));
}

Result<Vector> NeuralUcb::NetInput(const Vector& context,
                                   double value) const {
  if (context.size() != config_.context_dim) {
    return Status::InvalidArgument("NeuralUcb context dimension mismatch");
  }
  Vector in;
  in.reserve(context.size() + config_.arm_values.size() + 1);
  in.insert(in.end(), context.begin(), context.end());
  // Radial-basis features over the arm anchors make non-monotone reward
  // shapes in the workload dimension (the capacity knee's interior peak)
  // linearly separable for the network, while remaining smooth in the
  // arbitrary observed workloads w fed back by Alg. 2. Bandwidth = the
  // median arm spacing.
  double bw = 1.0;
  if (config_.arm_values.size() > 1) {
    std::vector<double> sorted = config_.arm_values;
    std::sort(sorted.begin(), sorted.end());
    bw = std::max(1e-9, sorted[sorted.size() / 2] -
                            sorted[sorted.size() / 2 - 1]);
  }
  for (double anchor : config_.arm_values) {
    double z = (value - anchor) / bw;
    in.push_back(std::exp(-0.5 * z * z));
  }
  in.push_back(value * config_.value_scale);
  return in;
}

Result<double> NeuralUcb::Width2(const Vector& grad) const {
  if (full_cov_ != nullptr) return full_cov_->QuadraticForm(grad);
  return diag_cov_->QuadraticForm(grad);
}

Status NeuralUcb::CovarianceUpdate(const Vector& grad) {
  if (full_cov_ != nullptr) return full_cov_->RankOneUpdate(grad);
  return diag_cov_->RankOneUpdate(grad);
}

Result<double> NeuralUcb::UcbScore(const Vector& context,
                                   double value) const {
  LACB_ASSIGN_OR_RETURN(Vector in, NetInput(context, value));
  LACB_ASSIGN_OR_RETURN(double mean, net_.Forward(in));
  LACB_ASSIGN_OR_RETURN(Vector grad, net_.ParamGradient(in));
  LACB_ASSIGN_OR_RETURN(double width2, Width2(grad));
  return mean + config_.alpha * std::sqrt(width2);
}

Result<double> NeuralUcb::SelectValue(const Vector& context) {
  LACB_TRACE_SPAN("bandit_select");
  // Alg. 1 lines 6-9: pick the arm with the maximal upper confidence bound,
  // then update D with the chosen arm's gradient (line 12).
  double best_value = config_.arm_values.front();
  double best_score = -std::numeric_limits<double>::infinity();
  for (double v : config_.arm_values) {
    LACB_ASSIGN_OR_RETURN(double score, UcbScore(context, v));
    if (score > best_score) {
      best_score = score;
      best_value = v;
    }
  }
  LACB_ASSIGN_OR_RETURN(Vector in, NetInput(context, best_value));
  LACB_ASSIGN_OR_RETURN(Vector grad, net_.ParamGradient(in));
  // The chosen arm's confidence width α·√(gᵀD⁻¹g) before folding g into D:
  // the exploration-health series (wide = still exploring, narrow =
  // exploiting) every future perf PR compares against.
  LACB_ASSIGN_OR_RETURN(double width2, Width2(grad));
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("bandit.neural_ucb.pulls").Increment();
  registry.GetHistogram("bandit.neural_ucb.ucb_width", WidthBounds())
      .Record(config_.alpha * std::sqrt(std::max(0.0, width2)));
  LACB_RETURN_NOT_OK(CovarianceUpdate(grad));
  return best_value;
}

Result<double> NeuralUcb::PredictReward(const Vector& context,
                                        double value) const {
  LACB_ASSIGN_OR_RETURN(Vector in, NetInput(context, value));
  return net_.Forward(in);
}

Status NeuralUcb::Observe(const Vector& context, double value,
                          double reward) {
  LACB_TRACE_SPAN("bandit_update");
  obs::ActiveRegistry().GetCounter("bandit.neural_ucb.observations")
      .Increment();
  LACB_ASSIGN_OR_RETURN(Vector in, NetInput(context, value));
  buffer_.push_back(nn::Example{std::move(in), reward});
  if (buffer_.size() >= config_.batch_size) {
    LACB_RETURN_NOT_OK(FlushTraining());
  }
  return Status::OK();
}

Status NeuralUcb::CopyCovariance(const NeuralUcb& other) {
  if (other.net_.num_params() != net_.num_params()) {
    return Status::InvalidArgument("CopyCovariance: parameter-count mismatch");
  }
  if ((full_cov_ != nullptr) != (other.full_cov_ != nullptr)) {
    return Status::InvalidArgument("CopyCovariance: covariance-mode mismatch");
  }
  if (full_cov_ != nullptr) {
    *full_cov_ = *other.full_cov_;
  } else {
    *diag_cov_ = *other.diag_cov_;
  }
  return Status::OK();
}

Status NeuralUcb::FlushTraining() {
  if (buffer_.empty()) return Status::OK();
  LACB_TRACE_SPAN("bandit_train");
  obs::ActiveRegistry().GetCounter("bandit.neural_ucb.training_passes")
      .Increment();
  if (config_.replay_capacity == 0) {
    // Paper-literal Alg. 1: train on the fresh buffer only.
    for (size_t e = 0; e < config_.train_epochs; ++e) {
      LACB_ASSIGN_OR_RETURN(Vector grad,
                            net_.LossGradient(buffer_, config_.lambda));
      LACB_RETURN_NOT_OK(optimizer_.Step(grad, &net_));
    }
    buffer_.clear();
    ++training_passes_;
    return Status::OK();
  }
  // Fold the buffer into the replay (ring eviction beyond capacity).
  for (nn::Example& ex : buffer_) {
    if (replay_.size() < config_.replay_capacity) {
      replay_.push_back(std::move(ex));
    } else {
      replay_[replay_next_] = std::move(ex);
      replay_next_ = (replay_next_ + 1) % config_.replay_capacity;
    }
  }
  buffer_.clear();
  // Minibatch SGD over the replay; the L2 term of Eq. 6 applies per step.
  size_t mb = std::max<size_t>(1, config_.minibatch_size);
  std::vector<nn::Example> batch;
  for (size_t e = 0; e < config_.train_epochs; ++e) {
    batch.clear();
    size_t take = std::min(mb, replay_.size());
    for (size_t i = 0; i < take; ++i) {
      size_t j = static_cast<size_t>(train_rng_.UniformInt(
          0, static_cast<int64_t>(replay_.size()) - 1));
      batch.push_back(replay_[j]);
    }
    LACB_ASSIGN_OR_RETURN(Vector grad,
                          net_.LossGradient(batch, config_.lambda));
    // LossGradient sums over the batch; normalize so the step size is
    // independent of the minibatch size.
    double inv = 1.0 / static_cast<double>(take);
    for (double& g : grad) g *= inv;
    LACB_RETURN_NOT_OK(optimizer_.Step(grad, &net_));
  }
  ++training_passes_;
  return Status::OK();
}

namespace {

void WriteExamples(persist::ByteWriter* w,
                   const std::vector<nn::Example>& examples) {
  w->U64(examples.size());
  for (const nn::Example& ex : examples) {
    w->VecF64(ex.x);
    w->F64(ex.target);
  }
}

Result<std::vector<nn::Example>> ReadExamples(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  std::vector<nn::Example> out;
  for (uint64_t i = 0; i < n; ++i) {
    nn::Example ex;
    LACB_ASSIGN_OR_RETURN(ex.x, r->VecF64());
    LACB_ASSIGN_OR_RETURN(ex.target, r->F64());
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace

Status NeuralUcb::SaveState(persist::ByteWriter* w) const {
  w->VecF64(net_.params());
  const std::vector<bool>& mask = net_.trainable_mask();
  w->U64(mask.size());
  for (bool t : mask) w->Bool(t);
  if (full_cov_ != nullptr) {
    w->U8(0);
    persist::WriteMatrix(w, full_cov_->inverse());
  } else {
    w->U8(1);
    w->VecF64(diag_cov_->diagonal());
  }
  w->VecF64(optimizer_.velocity());
  WriteExamples(w, buffer_);
  WriteExamples(w, replay_);
  w->U64(replay_next_);
  w->Str(train_rng_.SaveState());
  w->U64(training_passes_);
  return Status::OK();
}

Status NeuralUcb::LoadState(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(Vector params, r->VecF64());
  LACB_RETURN_NOT_OK(net_.SetParams(std::move(params)));
  LACB_ASSIGN_OR_RETURN(uint64_t mask_size, r->U64());
  for (uint64_t l = 0; l < mask_size; ++l) {
    LACB_ASSIGN_OR_RETURN(bool trainable, r->Bool());
    LACB_RETURN_NOT_OK(net_.SetLayerTrainable(static_cast<size_t>(l),
                                              trainable));
  }
  LACB_ASSIGN_OR_RETURN(uint8_t mode, r->U8());
  if (mode == 0) {
    LACB_ASSIGN_OR_RETURN(la::Matrix inv, persist::ReadMatrix(r));
    if (full_cov_ == nullptr) {
      return Status::InvalidArgument(
          "NeuralUcb state has full covariance but bandit is diagonal");
    }
    LACB_ASSIGN_OR_RETURN(
        *full_cov_, la::ShermanMorrisonInverse::FromInverse(std::move(inv)));
  } else {
    LACB_ASSIGN_OR_RETURN(Vector diag, r->VecF64());
    if (diag_cov_ == nullptr) {
      return Status::InvalidArgument(
          "NeuralUcb state has diagonal covariance but bandit is full");
    }
    LACB_ASSIGN_OR_RETURN(*diag_cov_,
                          la::DiagonalInverse::FromDiagonal(std::move(diag)));
  }
  LACB_ASSIGN_OR_RETURN(Vector velocity, r->VecF64());
  optimizer_.set_velocity(std::move(velocity));
  LACB_ASSIGN_OR_RETURN(buffer_, ReadExamples(r));
  LACB_ASSIGN_OR_RETURN(replay_, ReadExamples(r));
  LACB_ASSIGN_OR_RETURN(uint64_t replay_next, r->U64());
  replay_next_ = static_cast<size_t>(replay_next);
  LACB_ASSIGN_OR_RETURN(std::string rng_state, r->Str());
  LACB_RETURN_NOT_OK(train_rng_.LoadState(rng_state));
  LACB_ASSIGN_OR_RETURN(uint64_t passes, r->U64());
  training_passes_ = static_cast<size_t>(passes);
  return Status::OK();
}

}  // namespace lacb::bandit

// NN-enhanced UCB (paper Sec. V-C, Eq. 5, Alg. 1).
//
// Replaces LinUCB's linear reward model with an MLP S_θ([x; c]) and its
// confidence width with √(g_θᵀ D⁻¹ g_θ), where g_θ = ∇_θ S_θ and
// D = λI + Σ g g ᵀ over played arms. Observations are buffered and the
// network is retrained on the squared loss of Eq. 6 whenever the buffer
// reaches `batch_size` (Alg. 1 lines 13–18).
//
// The covariance can be kept as the full d×d matrix (faithful to Eq. 5,
// O(d²) per step — fine for small networks) or as the standard diagonal
// NeuralUCB approximation (O(d), required for paper-sized networks). This
// same class also serves as the "AN" baseline's NeuralUCB estimator.

#ifndef LACB_BANDIT_NEURAL_UCB_H_
#define LACB_BANDIT_NEURAL_UCB_H_

#include <memory>
#include <vector>

#include "lacb/bandit/contextual_bandit.h"
#include "lacb/la/linalg.h"
#include "lacb/nn/mlp.h"
#include "lacb/nn/optimizer.h"
#include "lacb/persist/bytes.h"

namespace lacb::bandit {

/// \brief How the gradient covariance D is represented.
enum class CovarianceMode {
  kFullMatrix,  ///< Exact Eq. 5 via Sherman–Morrison, O(d²) per step.
  kDiagonal,    ///< Diagonal approximation, O(d) per step.
};

/// \brief Configuration of a NeuralUcb policy.
struct NeuralUcbConfig {
  /// Candidate arm values (the capacity set C). Must be non-empty.
  std::vector<double> arm_values;
  size_t context_dim = 0;
  /// Hidden layer widths of S_θ; the input layer is context_dim + 1 and the
  /// output is scalar. {64, 16} gives the paper's 3-layer MLP.
  std::vector<size_t> hidden_sizes = {64, 16};
  /// Exploration coefficient α (paper uses 0.001).
  double alpha = 0.001;
  /// Ridge λ: initializes D = λI and weighs the L2 term of Eq. 6
  /// (paper uses 0.001).
  double lambda = 0.001;
  /// Observation-buffer size triggering a training pass (paper uses 16).
  size_t batch_size = 16;
  /// Gradient-descent steps per training pass.
  size_t train_epochs = 40;
  /// Learning rate of the training steps (Alg. 1 line 17).
  double learning_rate = 0.01;
  /// Experience replay: observations are retained (up to this many, ring
  /// eviction) and each training pass samples minibatches from the whole
  /// replay, as in the original NeuralUCB. 0 reproduces the paper's
  /// literal Alg. 1 (train on the fresh 16-observation buffer only), which
  /// suffers catastrophic forgetting — compared in the ablation bench.
  size_t replay_capacity = 4096;
  /// Minibatch size sampled from the replay per training step.
  size_t minibatch_size = 128;
  /// Arm values are multiplied by this before entering the network (they
  /// also enter as RBF activations over the arm anchors; see NetInput).
  double value_scale = 1.0;
  CovarianceMode covariance = CovarianceMode::kDiagonal;
  uint64_t seed = 1;
};

/// \brief Contextual bandit with the NN-enhanced UCB policy.
class NeuralUcb : public ContextualBandit {
 public:
  static Result<NeuralUcb> Create(const NeuralUcbConfig& config);

  /// \brief Builds a NeuralUcb around an existing network (used by the
  /// personalized estimator to clone a pre-trained base network).
  static Result<NeuralUcb> CreateWithNetwork(const NeuralUcbConfig& config,
                                             nn::Mlp network);

  Result<double> SelectValue(const Vector& context) override;
  Result<double> PredictReward(const Vector& context,
                               double value) const override;
  Status Observe(const Vector& context, double value, double reward) override;

  const std::vector<double>& arm_values() const override {
    return config_.arm_values;
  }
  size_t context_dim() const override { return config_.context_dim; }

  /// \brief UCB score of one arm value: S_θ + α√(gᵀD⁻¹g) (Eq. 5).
  Result<double> UcbScore(const Vector& context, double value) const;

  /// \brief Flushes the observation buffer through a training pass even if
  /// it is not full (used at end-of-horizon).
  Status FlushTraining();

  /// \brief Copies the covariance state D from another bandit with the
  /// same network shape and covariance mode. Used by layer transfer
  /// (Sec. V-D): a freshly personalized bandit inherits the base bandit's
  /// accumulated confidence instead of re-exploring from scratch.
  Status CopyCovariance(const NeuralUcb& other);

  /// \brief Access to the reward network (e.g. to freeze layers or read
  /// parameters for layer transfer).
  nn::Mlp* mutable_network() { return &net_; }
  const nn::Mlp& network() const { return net_; }

  size_t buffered_observations() const { return buffer_.size(); }
  size_t training_passes() const { return training_passes_; }

  /// \brief Serializes all mutable state (network parameters + trainable
  /// mask, covariance, optimizer momentum, observation buffer, replay
  /// ring, training RNG); LoadState restores it bit-exactly into a bandit
  /// created from the same config.
  Status SaveState(persist::ByteWriter* w) const;
  Status LoadState(persist::ByteReader* r);

 private:
  NeuralUcb(NeuralUcbConfig config, nn::Mlp net);

  Result<Vector> NetInput(const Vector& context, double value) const;
  Result<double> Width2(const Vector& grad) const;
  Status CovarianceUpdate(const Vector& grad);

  NeuralUcbConfig config_;
  nn::Mlp net_;
  // Exactly one of the two is engaged, per config_.covariance.
  std::unique_ptr<la::ShermanMorrisonInverse> full_cov_;
  std::unique_ptr<la::DiagonalInverse> diag_cov_;
  nn::Sgd optimizer_;
  std::vector<nn::Example> buffer_;
  std::vector<nn::Example> replay_;
  size_t replay_next_ = 0;  // ring-eviction cursor
  Rng train_rng_;
  size_t training_passes_ = 0;
};

}  // namespace lacb::bandit

#endif  // LACB_BANDIT_NEURAL_UCB_H_

#include "lacb/bandit/thompson.h"

#include "lacb/persist/serializers.h"

#include <cmath>
#include <limits>
#include <utility>

namespace lacb::bandit {

LinearThompson::LinearThompson(LinearThompsonConfig config,
                               la::ShermanMorrisonInverse a_inv)
    : config_(std::move(config)),
      a_inv_(std::move(a_inv)),
      b_(config_.context_dim + 2, 0.0),
      theta_(config_.context_dim + 2, 0.0),
      rng_(config_.seed) {}

Result<LinearThompson> LinearThompson::Create(
    const LinearThompsonConfig& config) {
  if (config.arm_values.empty()) {
    return Status::InvalidArgument("LinearThompson needs >= 1 arm value");
  }
  if (config.context_dim == 0) {
    return Status::InvalidArgument("LinearThompson context_dim must be > 0");
  }
  if (config.posterior_scale < 0.0) {
    return Status::InvalidArgument("posterior_scale must be non-negative");
  }
  LACB_ASSIGN_OR_RETURN(
      auto a_inv,
      la::ShermanMorrisonInverse::Create(config.context_dim + 2,
                                         config.lambda));
  return LinearThompson(config, std::move(a_inv));
}

Result<la::Vector> LinearThompson::Features(const Vector& context,
                                            double value) const {
  if (context.size() != config_.context_dim) {
    return Status::InvalidArgument("LinearThompson context dim mismatch");
  }
  Vector phi;
  phi.reserve(context.size() + 2);
  phi.insert(phi.end(), context.begin(), context.end());
  phi.push_back(value * config_.value_scale);
  phi.push_back(1.0);
  return phi;
}

Result<la::Vector> LinearThompson::SampleTheta() {
  // A⁻¹ = L Lᵀ; θ̃ = θ̂ + v L z gives covariance v² A⁻¹.
  LACB_ASSIGN_OR_RETURN(la::Matrix l, la::CholeskyFactor(a_inv_.inverse()));
  size_t d = theta_.size();
  Vector z(d);
  for (double& v : z) v = rng_.Normal();
  Vector sample = theta_;
  for (size_t i = 0; i < d; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j <= i; ++j) acc += l(i, j) * z[j];
    sample[i] += config_.posterior_scale * acc;
  }
  return sample;
}

Result<double> LinearThompson::SelectValue(const Vector& context) {
  LACB_ASSIGN_OR_RETURN(Vector theta, SampleTheta());
  double best_value = config_.arm_values.front();
  double best_score = -std::numeric_limits<double>::infinity();
  for (double v : config_.arm_values) {
    LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, v));
    double score = la::Dot(theta, phi);
    if (score > best_score) {
      best_score = score;
      best_value = v;
    }
  }
  return best_value;
}

Result<double> LinearThompson::PredictReward(const Vector& context,
                                             double value) const {
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, value));
  return la::Dot(theta_, phi);
}

Status LinearThompson::Observe(const Vector& context, double value,
                               double reward) {
  LACB_ASSIGN_OR_RETURN(Vector phi, Features(context, value));
  LACB_RETURN_NOT_OK(a_inv_.RankOneUpdate(phi));
  la::Axpy(reward, phi, &b_);
  LACB_ASSIGN_OR_RETURN(theta_, a_inv_.inverse().MatVec(b_));
  return Status::OK();
}

Status LinearThompson::SaveState(persist::ByteWriter* w) const {
  persist::WriteMatrix(w, a_inv_.inverse());
  w->VecF64(b_);
  w->VecF64(theta_);
  w->Str(rng_.SaveState());
  return Status::OK();
}

Status LinearThompson::LoadState(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(la::Matrix inv, persist::ReadMatrix(r));
  LACB_ASSIGN_OR_RETURN(
      a_inv_, la::ShermanMorrisonInverse::FromInverse(std::move(inv)));
  LACB_ASSIGN_OR_RETURN(b_, r->VecF64());
  LACB_ASSIGN_OR_RETURN(theta_, r->VecF64());
  if (b_.size() != a_inv_.dim() || theta_.size() != a_inv_.dim()) {
    return Status::InvalidArgument("LinearThompson state dimension mismatch");
  }
  LACB_ASSIGN_OR_RETURN(std::string rng_state, r->Str());
  LACB_RETURN_NOT_OK(rng_.LoadState(rng_state));
  return Status::OK();
}

}  // namespace lacb::bandit

// Linear Thompson sampling over the same value-arm interface.
//
// Posterior sampling alternative to the UCB policies: maintains the ridge
// posterior N(θ̂, v²A⁻¹) over the linear reward model on features
// φ(x, v) = [x; v; 1] and, per decision, scores arms under one posterior
// sample θ̃. Included as an additional exploration baseline for the regret
// ablation (the paper's Sec. V-C considers UCB only).

#ifndef LACB_BANDIT_THOMPSON_H_
#define LACB_BANDIT_THOMPSON_H_

#include <vector>

#include "lacb/bandit/contextual_bandit.h"
#include "lacb/common/rng.h"
#include "lacb/la/linalg.h"
#include "lacb/persist/bytes.h"

namespace lacb::bandit {

/// \brief Configuration of a LinearThompson policy.
struct LinearThompsonConfig {
  std::vector<double> arm_values;
  size_t context_dim = 0;
  /// Posterior scale v: larger explores more.
  double posterior_scale = 0.5;
  /// Ridge regularizer initializing A = λI.
  double lambda = 1.0;
  /// Arm values are multiplied by this before entering the feature map.
  double value_scale = 1.0;
  uint64_t seed = 1;
};

/// \brief Thompson sampling with a linear reward model.
class LinearThompson : public ContextualBandit {
 public:
  static Result<LinearThompson> Create(const LinearThompsonConfig& config);

  Result<double> SelectValue(const Vector& context) override;
  Result<double> PredictReward(const Vector& context,
                               double value) const override;
  Status Observe(const Vector& context, double value, double reward) override;

  const std::vector<double>& arm_values() const override {
    return config_.arm_values;
  }
  size_t context_dim() const override { return config_.context_dim; }

  /// \brief Checkpoint serialization of (A⁻¹, b, θ, rng).
  Status SaveState(persist::ByteWriter* w) const;
  Status LoadState(persist::ByteReader* r);

 private:
  LinearThompson(LinearThompsonConfig config,
                 la::ShermanMorrisonInverse a_inv);

  Result<Vector> Features(const Vector& context, double value) const;
  /// One posterior draw θ̃ = θ̂ + v·L z with L Lᵀ = A⁻¹, z ~ N(0, I).
  Result<Vector> SampleTheta();

  LinearThompsonConfig config_;
  la::ShermanMorrisonInverse a_inv_;
  Vector b_;
  Vector theta_;
  Rng rng_;
};

}  // namespace lacb::bandit

#endif  // LACB_BANDIT_THOMPSON_H_

#include "lacb/capacity/personalized_estimator.h"

#include <algorithm>
#include <utility>

#include "lacb/obs/obs.h"
#include "lacb/stats/descriptive.h"

namespace lacb::capacity {

PersonalizedCapacityEstimator::PersonalizedCapacityEstimator(
    PersonalizedEstimatorConfig config, std::unique_ptr<bandit::NeuralUcb> base,
    size_t num_brokers)
    : config_(std::move(config)),
      base_(std::move(base)),
      personal_(num_brokers),
      observations_(num_brokers, 0),
      history_(num_brokers) {}

Result<PersonalizedCapacityEstimator> PersonalizedCapacityEstimator::Create(
    const PersonalizedEstimatorConfig& config, size_t num_brokers) {
  if (num_brokers == 0) {
    return Status::InvalidArgument("estimator pool needs >= 1 broker");
  }
  LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb base,
                        bandit::NeuralUcb::Create(config.bandit));
  return PersonalizedCapacityEstimator(
      config, std::make_unique<bandit::NeuralUcb>(std::move(base)),
      num_brokers);
}

Result<double> PersonalizedCapacityEstimator::Estimate(
    size_t broker, const bandit::Vector& context) {
  if (broker >= personal_.size()) {
    return Status::OutOfRange("broker index out of range");
  }
  if (personal_[broker] != nullptr) {
    return personal_[broker]->SelectValue(context);
  }
  return base_->SelectValue(context);
}

Status PersonalizedCapacityEstimator::MaybePersonalize(size_t broker) {
  if (personal_[broker] != nullptr) return Status::OK();
  if (observations_[broker] < config_.personalization_threshold) {
    return Status::OK();
  }
  if (base_->training_passes() < config_.base_training_passes) {
    return Status::OK();
  }
  // Layer transfer: copy the base network, freeze all but the last layer.
  nn::Mlp net = base_->network();
  for (size_t l = 0; l + 1 < net.num_layers(); ++l) {
    LACB_RETURN_NOT_OK(net.SetLayerTrainable(l, false));
  }
  bandit::NeuralUcbConfig cfg = config_.bandit;
  cfg.seed = config_.bandit.seed + 17 * (broker + 1);
  // Brokers see ~one observation per day; the base's buffer size would
  // leave the fine-tuned layer untrained for weeks.
  cfg.batch_size = std::max<size_t>(1, config_.personal_batch_size);
  cfg.learning_rate = config_.personal_learning_rate;
  cfg.train_epochs = config_.personal_train_epochs;
  LACB_ASSIGN_OR_RETURN(
      bandit::NeuralUcb personal,
      bandit::NeuralUcb::CreateWithNetwork(cfg, std::move(net)));
  // The base's covariance comes along with its network: exploration
  // confidence is part of what the transfer carries over.
  LACB_RETURN_NOT_OK(personal.CopyCovariance(*base_));
  // Warm-start the fine-tune: replay the broker's own history so the last
  // layer adapts to it immediately rather than waiting for future days.
  for (const HistoryEntry& h : history_[broker]) {
    LACB_RETURN_NOT_OK(
        personal.Observe(h.context, h.workload, h.signup_rate));
  }
  LACB_RETURN_NOT_OK(personal.FlushTraining());
  personal_[broker] =
      std::make_unique<bandit::NeuralUcb>(std::move(personal));
  ++personalized_count_;
  obs::ActiveRegistry()
      .GetGauge("estimator.personalized_brokers")
      .Set(static_cast<double>(personalized_count_));
  return Status::OK();
}

Status PersonalizedCapacityEstimator::Update(size_t broker,
                                             const bandit::Vector& context,
                                             double workload,
                                             double signup_rate) {
  if (broker >= personal_.size()) {
    return Status::OutOfRange("broker index out of range");
  }
  ++observations_[broker];
  if (history_[broker].size() < config_.history_capacity) {
    history_[broker].push_back(HistoryEntry{context, workload, signup_rate});
  }
  if (personal_[broker] != nullptr) {
    LACB_RETURN_NOT_OK(
        personal_[broker]->Observe(context, workload, signup_rate));
    if (config_.continue_base_training) {
      LACB_RETURN_NOT_OK(base_->Observe(context, workload, signup_rate));
    }
    return Status::OK();
  }
  LACB_RETURN_NOT_OK(base_->Observe(context, workload, signup_rate));
  return MaybePersonalize(broker);
}

Status PersonalizedCapacityEstimator::SaveState(
    persist::ByteWriter* w) const {
  LACB_RETURN_NOT_OK(base_->SaveState(w));
  w->U64(personal_.size());
  std::vector<uint64_t> observations(observations_.begin(),
                                     observations_.end());
  w->VecU64(observations);
  for (const std::vector<HistoryEntry>& h : history_) {
    w->U64(h.size());
    for (const HistoryEntry& e : h) {
      w->VecF64(e.context);
      w->F64(e.workload);
      w->F64(e.signup_rate);
    }
  }
  for (const auto& p : personal_) {
    w->Bool(p != nullptr);
    if (p != nullptr) LACB_RETURN_NOT_OK(p->SaveState(w));
  }
  return Status::OK();
}

Status PersonalizedCapacityEstimator::LoadState(persist::ByteReader* r) {
  LACB_RETURN_NOT_OK(base_->LoadState(r));
  LACB_ASSIGN_OR_RETURN(uint64_t num_brokers, r->U64());
  if (num_brokers != personal_.size()) {
    return Status::InvalidArgument("estimator broker count mismatch");
  }
  LACB_ASSIGN_OR_RETURN(std::vector<uint64_t> observations, r->VecU64());
  if (observations.size() != personal_.size()) {
    return Status::InvalidArgument("estimator observation count mismatch");
  }
  observations_.assign(observations.begin(), observations.end());
  for (std::vector<HistoryEntry>& h : history_) {
    LACB_ASSIGN_OR_RETURN(uint64_t n, r->U64());
    h.clear();
    for (uint64_t i = 0; i < n; ++i) {
      HistoryEntry e;
      LACB_ASSIGN_OR_RETURN(e.context, r->VecF64());
      LACB_ASSIGN_OR_RETURN(e.workload, r->F64());
      LACB_ASSIGN_OR_RETURN(e.signup_rate, r->F64());
      h.push_back(std::move(e));
    }
  }
  personalized_count_ = 0;
  for (size_t broker = 0; broker < personal_.size(); ++broker) {
    LACB_ASSIGN_OR_RETURN(bool has_personal, r->Bool());
    if (!has_personal) {
      personal_[broker] = nullptr;
      continue;
    }
    // Rebuild the shell with the exact MaybePersonalize recipe (same
    // config derivation), then overwrite all of its mutable state.
    nn::Mlp net = base_->network();
    for (size_t l = 0; l + 1 < net.num_layers(); ++l) {
      LACB_RETURN_NOT_OK(net.SetLayerTrainable(l, false));
    }
    bandit::NeuralUcbConfig cfg = config_.bandit;
    cfg.seed = config_.bandit.seed + 17 * (broker + 1);
    cfg.batch_size = std::max<size_t>(1, config_.personal_batch_size);
    cfg.learning_rate = config_.personal_learning_rate;
    cfg.train_epochs = config_.personal_train_epochs;
    LACB_ASSIGN_OR_RETURN(
        bandit::NeuralUcb personal,
        bandit::NeuralUcb::CreateWithNetwork(cfg, std::move(net)));
    LACB_RETURN_NOT_OK(personal.LoadState(r));
    personal_[broker] =
        std::make_unique<bandit::NeuralUcb>(std::move(personal));
    ++personalized_count_;
  }
  return Status::OK();
}

Result<double> EstimateEmpiricalCapacity(
    const std::vector<double>& workloads,
    const std::vector<double>& signup_rates, double drop_fraction,
    size_t num_bins) {
  if (workloads.size() != signup_rates.size() || workloads.size() < 4) {
    return Status::InvalidArgument(
        "empirical capacity needs >= 4 paired observations");
  }
  if (drop_fraction <= 0.0 || drop_fraction >= 1.0) {
    return Status::InvalidArgument("drop_fraction must be in (0,1)");
  }
  double max_w = *std::max_element(workloads.begin(), workloads.end());
  if (max_w <= 0.0) {
    return Status::InvalidArgument("all workloads are zero");
  }
  LACB_ASSIGN_OR_RETURN(
      stats::BinnedSeries series,
      stats::BinMeans(workloads, signup_rates, 0.0, max_w + 1e-9, num_bins));
  // Running below-knee mean; the knee is the first bin whose mean drops
  // below drop_fraction of it.
  double running_sum = 0.0;
  size_t running_count = 0;
  for (size_t b = 0; b < series.means.size(); ++b) {
    if (series.counts[b] == 0) continue;
    if (running_count > 0) {
      double below_mean = running_sum / static_cast<double>(running_count);
      if (series.means[b] < drop_fraction * below_mean) {
        return series.bin_centers[b];
      }
    }
    running_sum += series.means[b];
    ++running_count;
  }
  // No knee visible: the population never saturated; report the max.
  return max_w;
}

}  // namespace lacb::capacity

// Personalized workload-capacity estimation (paper Sec. V-D).
//
// One generic NN-enhanced-UCB bandit is trained on the pooled observations
// of all brokers (∪_b T_b). Once a broker has accumulated enough personal
// observations, it receives its own bandit whose network is a copy of the
// base network with the first L−1 layers *frozen* — only the last layer
// fine-tunes on that broker's data (layer transfer). This gives
// personalization without per-broker data starvation.

#ifndef LACB_CAPACITY_PERSONALIZED_ESTIMATOR_H_
#define LACB_CAPACITY_PERSONALIZED_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "lacb/bandit/neural_ucb.h"

namespace lacb::capacity {

/// \brief Configuration of the personalized estimator pool.
struct PersonalizedEstimatorConfig {
  bandit::NeuralUcbConfig bandit;
  /// Personal observations a broker must accumulate before receiving a
  /// fine-tuned bandit of its own. Transfer pays off only once the shared
  /// trunk is mature and the broker has enough data for the last layer to
  /// fit its latent residual rather than noise — roughly a month of daily
  /// observations.
  size_t personalization_threshold = 30;
  /// Base-network training passes required before any layer transfer.
  size_t base_training_passes = 1;
  /// Training-buffer size of the *personal* bandits. Brokers receive about
  /// one observation per day, so the base's buffer size (16) would mean a
  /// personal bandit almost never trains; small personal buffers keep the
  /// fine-tuned last layer current.
  size_t personal_batch_size = 4;
  /// Per-broker observations retained to warm-start a fresh personal
  /// bandit (its replay is seeded with this history at transfer time).
  size_t history_capacity = 64;
  /// Fine-tune learning rate and steps per personal training pass.
  double personal_learning_rate = 0.05;
  size_t personal_train_epochs = 30;
  /// Keep feeding observations to the base bandit after personalization
  /// (improves later transfers; off reproduces the paper's train-then-copy).
  bool continue_base_training = true;
};

/// \brief Pool of capacity estimators: shared base + per-broker fine-tunes.
class PersonalizedCapacityEstimator {
 public:
  static Result<PersonalizedCapacityEstimator> Create(
      const PersonalizedEstimatorConfig& config, size_t num_brokers);

  /// \brief B_b.estimate(x): the capacity with maximal UCB for broker b.
  /// Uses the personal bandit when one exists, the base bandit otherwise.
  Result<double> Estimate(size_t broker, const bandit::Vector& context);

  /// \brief B_b.update(x, w, s): feeds one observation triple; may trigger
  /// layer transfer for the broker.
  Status Update(size_t broker, const bandit::Vector& context, double workload,
                double signup_rate);

  /// \brief Number of brokers that currently own a personal bandit.
  size_t personalized_count() const { return personalized_count_; }

  bool IsPersonalized(size_t broker) const {
    return broker < personal_.size() && personal_[broker] != nullptr;
  }

  const bandit::NeuralUcb& base() const { return *base_; }

  /// \brief Serializes the full pool: base bandit, per-broker observation
  /// counts + history, and every personal bandit. LoadState reconstructs
  /// personal bandit shells with the exact MaybePersonalize recipe before
  /// overwriting their state, so a restored pool is bit-identical.
  Status SaveState(persist::ByteWriter* w) const;
  Status LoadState(persist::ByteReader* r);

 private:
  PersonalizedCapacityEstimator(PersonalizedEstimatorConfig config,
                                std::unique_ptr<bandit::NeuralUcb> base,
                                size_t num_brokers);

  Status MaybePersonalize(size_t broker);

  struct HistoryEntry {
    bandit::Vector context;
    double workload;
    double signup_rate;
  };

  PersonalizedEstimatorConfig config_;
  std::unique_ptr<bandit::NeuralUcb> base_;
  std::vector<std::unique_ptr<bandit::NeuralUcb>> personal_;
  std::vector<size_t> observations_;
  std::vector<std::vector<HistoryEntry>> history_;
  size_t personalized_count_ = 0;
};

/// \brief City-level empirical capacity from pooled (workload, sign-up)
/// scatter: the smallest workload bin whose mean sign-up rate falls below
/// `drop_fraction` of the below-knee running mean. This is how the CTop-K
/// baseline chooses its single city-wide capacity (paper Sec. VII-A).
Result<double> EstimateEmpiricalCapacity(const std::vector<double>& workloads,
                                         const std::vector<double>& signup_rates,
                                         double drop_fraction = 0.8,
                                         size_t num_bins = 16);

}  // namespace lacb::capacity

#endif  // LACB_CAPACITY_PERSONALIZED_ESTIMATOR_H_

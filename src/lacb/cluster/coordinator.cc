#include "lacb/cluster/coordinator.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <utility>

#include "lacb/cluster/frame.h"
#include "lacb/common/rng.h"
#include "lacb/obs/context.h"

namespace lacb::cluster {

namespace fs = std::filesystem;

namespace {

double UnixSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions opts)
    : options_(std::move(opts)),
      ring_(options_.num_ranges == 0 ? options_.num_shards
                                     : options_.num_ranges),
      num_ranges_(options_.num_ranges == 0 ? options_.num_shards
                                           : options_.num_ranges) {}

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    CoordinatorOptions opts) {
  if (opts.shard_binary.empty()) {
    return Status::InvalidArgument("Coordinator requires the shard binary");
  }
  if (opts.workdir.empty()) {
    return Status::InvalidArgument("Coordinator requires a workdir");
  }
  if (opts.num_shards == 0) {
    return Status::InvalidArgument("Coordinator requires >= 1 shard");
  }
  if (opts.num_ranges > 0 && opts.num_ranges < opts.num_shards) {
    return Status::InvalidArgument("fewer ranges than shards");
  }
  auto coord = std::unique_ptr<Coordinator>(new Coordinator(std::move(opts)));
  // Materialize every range's slice and its full request schedule — the
  // exact stream Platform::Create generates inside the shard, so killed
  // and unkilled runs feed bit-identical traffic.
  for (uint64_t r = 0; r < coord->num_ranges_; ++r) {
    RangeState& range = coord->ranges_[r];
    range.range = r;
    range.config = ShardDatasetConfig(coord->options_.base_config, r,
                                      coord->num_ranges_);
    Rng rng(range.config.seed);
    (void)sim::GenerateBrokers(range.config, &rng);
    range.schedule = sim::GenerateRequests(range.config, &rng);
  }
  return coord;
}

Coordinator::~Coordinator() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [id, shard] : shards_) {
      if (shard.pid > 0 && !shard.reaped) ::kill(shard.pid, SIGKILL);
      if (shard.fd >= 0) ::shutdown(shard.fd, SHUT_RDWR);
    }
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  for (auto& [id, shard] : shards_) {
    if (shard.reader.joinable()) shard.reader.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, shard] : shards_) {
    ReapLocked(&shard);
    if (shard.fd >= 0) {
      CloseFd(shard.fd);
      shard.fd = -1;
    }
  }
  if (listen_fd_ >= 0) CloseFd(listen_fd_);
}

// --- bring-up -------------------------------------------------------------

Status Coordinator::SpawnShard(uint64_t shard_id) {
  std::string arg_port = "--port=" + std::to_string(listen_port_);
  std::string arg_shard = "--shard=" + std::to_string(shard_id);
  std::string arg_hb =
      "--heartbeat-ms=" + std::to_string(options_.heartbeat_period.count());
  std::vector<char*> argv = {options_.shard_binary.data(), arg_port.data(),
                             arg_shard.data(), arg_hb.data(), nullptr};
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError("fork failed for shard " +
                           std::to_string(shard_id));
  }
  if (pid == 0) {
    ::execv(options_.shard_binary.c_str(), argv.data());
    _exit(127);  // execv only returns on failure
  }
  Shard& shard = shards_[shard_id];
  shard.id = shard_id;
  shard.pid = pid;
  shard.send_mu = std::make_unique<std::mutex>();
  return Status::OK();
}

AssignRange Coordinator::BuildAssignment(
    const RangeState& range, const std::string& checkpoint_dir) const {
  AssignRange msg;
  msg.range = range.range;
  msg.config = range.config;
  msg.checkpoint_dir = checkpoint_dir;
  msg.checkpoint_interval_batches = options_.checkpoint_interval_batches;
  msg.wal_fsync = options_.wal_fsync;
  msg.suite_seed = options_.suite_seed;
  msg.policy_index = options_.policy_index;
  return msg;
}

Status Coordinator::Start() {
  registry_ = &obs::ActiveRegistry();
  RegisterMetrics();
  std::error_code ec;
  // The persist layer creates only the leaf checkpoint directory, so the
  // shards' common parent must exist before any range is assigned.
  fs::create_directories(options_.workdir + "/local", ec);
  if (ec) {
    return Status::IoError("cannot create workdir: " + options_.workdir +
                           ": " + ec.message());
  }
  replica_ = std::make_unique<ReplicaStore>(options_.workdir + "/replica",
                                            options_.wal_fsync);

  LACB_ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(0, &listen_port_));
  for (uint64_t s = 0; s < options_.num_shards; ++s) {
    LACB_RETURN_NOT_OK(SpawnShard(s));
  }
  // Connection order is arbitrary; the kHello frame names the shard.
  for (size_t i = 0; i < options_.num_shards; ++i) {
    LACB_ASSIGN_OR_RETURN(
        int fd, AcceptWithTimeout(listen_fd_, options_.startup_timeout));
    Result<Frame> frame = ReadFrame(fd);
    if (!frame.ok() ||
        frame->type != static_cast<uint8_t>(MessageType::kHello)) {
      CloseFd(fd);
      return Status::Internal("shard connection did not open with kHello");
    }
    LACB_ASSIGN_OR_RETURN(Hello hello, DecodeHello(frame->payload));
    auto it = shards_.find(hello.shard_id);
    if (it == shards_.end()) {
      CloseFd(fd);
      return Status::Internal("kHello from unknown shard " +
                              std::to_string(hello.shard_id));
    }
    it->second.fd = fd;
    it->second.alive = true;
    it->second.last_frame = std::chrono::steady_clock::now();
  }
  for (auto& [id, shard] : shards_) {
    uint64_t sid = id;
    shard.reader = std::thread([this, sid] { ReaderLoop(sid); });
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }

  // Initial placement: range r -> shard r mod N, local checkpoint dir.
  std::vector<Outbound> sends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [r, range] : ranges_) {
      range.owner = r % options_.num_shards;
      std::string dir =
          options_.workdir + "/local/range" + std::to_string(r);
      sends.push_back({range.owner, MessageType::kAssignRange,
                       EncodeAssignRange(BuildAssignment(range, dir))});
    }
  }
  for (const Outbound& s : sends) {
    LACB_RETURN_NOT_OK(SendToShard(s.shard, s.type, s.payload));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock,
        [this] {
          for (const auto& [r, range] : ranges_) {
            if (!range.serving) return false;
          }
          return true;
        },
        "fleet bring-up"));
  }

  if (options_.exposition_port >= 0) {
    obs::ExpositionOptions expo;
    expo.port = options_.exposition_port;
    expo.health_fn = [this] { return Health(); };
    LACB_ASSIGN_OR_RETURN(exposition_,
                          obs::ExpositionServer::Start(
                              [this] {
                                {
                                  std::lock_guard<std::mutex> lock(mu_);
                                  SyncMetricsLocked();
                                }
                                return registry_->Snapshot();
                              },
                              expo));
  }
  return Status::OK();
}

// --- socket plumbing ------------------------------------------------------

Status Coordinator::SendToShard(uint64_t shard_id, MessageType type,
                                const std::string& payload) {
  int fd = -1;
  std::mutex* send_mu = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(shard_id);
    if (it == shards_.end() || !it->second.alive || it->second.fd < 0) {
      return Status::NotFound("shard " + std::to_string(shard_id) +
                              " is not alive");
    }
    fd = it->second.fd;
    send_mu = it->second.send_mu.get();
  }
  Status s;
  {
    std::lock_guard<std::mutex> lock(*send_mu);
    s = SendFrame(fd, static_cast<uint8_t>(type), payload);
  }
  if (!s.ok()) {
    OnShardDown(shard_id, "send failed: " + s.ToString());
  }
  return s;
}

void Coordinator::ReaderLoop(uint64_t shard_id) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = shards_[shard_id].fd;
  }
  for (;;) {
    Result<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      bool clean = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        clean = shutdown_ && shards_[shard_id].shutdown_acked;
        if (clean) shards_[shard_id].alive = false;
      }
      if (!clean) OnShardDown(shard_id, frame.status().ToString());
      cv_.notify_all();
      return;
    }
    FrameEffects fx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Shard& shard = shards_[shard_id];
      if (!shard.alive) {
        // The monitor declared this shard dead (heartbeat deadline) while
        // frames were still buffered. Applying one now could record a
        // disposition whose WAL record missed the adoption envelope — the
        // death point must be a clean cut in the frame stream.
        return;
      }
      shard.last_frame = std::chrono::steady_clock::now();
      HandleFrameLocked(shard_id, frame->type, frame->payload, &fx);
    }
    cv_.notify_all();
    for (const Outbound& s : fx.sends) {
      // A failed redrive send marks the target down; the next adoption
      // round re-derives the redrive set from the intact ledger.
      if (!SendToShard(s.shard, s.type, s.payload).ok()) {
        fx.finalize_adoption = false;
        break;
      }
    }
    if (fx.finalize_adoption) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ranges_.find(fx.adopted_range);
      if (it != ranges_.end() &&
          it->second.generation == fx.adopted_generation) {
        auto sh = shards_.find(it->second.owner);
        if (sh != shards_.end() && sh->second.alive) {
          it->second.serving = true;
          stats_.failovers += 1;
          last_failover_ = std::chrono::steady_clock::now();
          last_failover_unix_ = UnixSeconds();
        }
      }
      cv_.notify_all();
    }
  }
}

void Coordinator::MonitorLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<uint64_t> expired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!started_ || shutdown_) continue;
      auto now = std::chrono::steady_clock::now();
      for (const auto& [id, shard] : shards_) {
        if (shard.alive && now - shard.last_frame > options_.heartbeat_timeout) {
          expired.push_back(id);
        }
      }
      stats_.heartbeat_timeouts += expired.size();
    }
    for (uint64_t id : expired) {
      OnShardDown(id, "heartbeat deadline exceeded");
    }
  }
}

void Coordinator::ReapLocked(Shard* shard) {
  if (shard->pid > 0 && !shard->reaped) {
    int st = 0;
    ::waitpid(shard->pid, &st, 0);
    shard->reaped = true;
  }
}

// --- failover -------------------------------------------------------------

void Coordinator::OnShardDown(uint64_t shard_id, const std::string& why) {
  struct DeadRange {
    uint64_t range = 0;
    uint64_t generation = 0;
  };
  std::vector<DeadRange> dead_ranges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(shard_id);
    if (it == shards_.end() || !it->second.alive) return;
    Shard& shard = it->second;
    shard.alive = false;
    stats_.shard_deaths += 1;
    // SIGKILL defensively: an EOF means the process is gone already, but a
    // heartbeat-deadline death may be a SIGSTOP-wedged process that would
    // otherwise wake up later and double-serve its ranges.
    if (shard.pid > 0) ::kill(shard.pid, SIGKILL);
    if (shard.fd >= 0) ::shutdown(shard.fd, SHUT_RDWR);
    ReapLocked(&shard);
    if (shutdown_) {
      cv_.notify_all();
      return;
    }
    if (!options_.failover_enabled) {
      fatal_ = Status::Internal("shard " + std::to_string(shard_id) +
                                " died with failover disabled: " + why);
      cv_.notify_all();
      return;
    }
    for (auto& [r, range] : ranges_) {
      if (range.owner == shard_id) {
        range.serving = false;
        range.generation += 1;
        dead_ranges.push_back({r, range.generation});
      }
    }
  }
  cv_.notify_all();

  for (const DeadRange& dr : dead_ranges) {
    // The dead shard's shipped chain is final: close the replica WAL and
    // clone the range's files into a fresh bootstrap envelope.
    replica_->Finalize(dr.range);
    Result<std::string> dir =
        replica_->PrepareAdoptionDir(dr.range, dr.generation);
    if (!dir.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      fatal_ = dir.status();
      cv_.notify_all();
      return;
    }
    uint64_t survivor = 0;
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ranges_.find(dr.range);
      if (it == ranges_.end() || it->second.generation != dr.generation) {
        continue;  // a newer failover superseded this one
      }
      size_t best = SIZE_MAX;
      bool found = false;
      for (const auto& [sid, shard] : shards_) {
        if (!shard.alive) continue;
        size_t owned = 0;
        for (const auto& [r, range] : ranges_) {
          if (range.owner == sid) ++owned;
        }
        if (owned < best) {
          best = owned;
          survivor = sid;
          found = true;
        }
      }
      if (!found) {
        fatal_ = Status::Internal("no surviving shard to adopt range " +
                                  std::to_string(dr.range));
        cv_.notify_all();
        return;
      }
      it->second.owner = survivor;
      payload = EncodeAssignRange(BuildAssignment(it->second, *dir));
    }
    (void)SendToShard(survivor, MessageType::kAdoptRange, payload);
  }
  cv_.notify_all();
}

// --- frame handlers -------------------------------------------------------

void Coordinator::TerminalizeLocked(RangeState* range, int64_t id,
                                    uint64_t* counter, bool live) {
  auto it = range->pending_where.find(id);
  if (it == range->pending_where.end()) {
    // Already terminal. During replay reconciliation that is expected (the
    // live disposition beat the shard's death); from a live sink it would
    // be an exactly-once violation.
    if (live) stats_.duplicate_terminals += 1;
    return;
  }
  if (it->second == kInCarryover) {
    range->carryover.erase(id);
  } else {
    auto t = range->tickets.find(it->second);
    if (t != range->tickets.end()) {
      t->second.pending.erase(id);
      if (t->second.done && t->second.pending.empty()) {
        range->tickets.erase(t);
      }
    }
  }
  range->pending_where.erase(it);
  *counter += 1;
}

void Coordinator::ApplyDispositionLocked(RangeState* range,
                                         const serve::BatchDisposition& d,
                                         bool live) {
  for (int64_t id : d.assigned) {
    TerminalizeLocked(range, id, &stats_.assigned, live);
  }
  for (int64_t id : d.unmatched) {
    TerminalizeLocked(range, id, &stats_.unmatched, live);
  }
  for (int64_t id : d.failed) {
    TerminalizeLocked(range, id, &stats_.failed, live);
  }
  for (int64_t id : d.dropped) {
    TerminalizeLocked(range, id, &stats_.dropped_appeals, live);
  }
  for (int64_t id : d.appealed) {
    auto it = range->pending_where.find(id);
    if (it == range->pending_where.end()) {
      // An appeal for an id the ledger no longer tracks. Live, that is an
      // invariant breach (the id was already terminalized). During adoption
      // replay it is expected: replayed batches are a prefix of what the
      // live stream already applied, so a replayed appeal may refer to an id
      // a later live batch consumed from carryover and terminalized.
      if (live) stats_.reconcile_mismatches += 1;
      continue;
    }
    if (it->second != kInCarryover) {
      auto t = range->tickets.find(it->second);
      if (t != range->tickets.end()) {
        t->second.pending.erase(id);
        if (t->second.done && t->second.pending.empty()) {
          range->tickets.erase(t);
        }
      }
      it->second = kInCarryover;
      range->carryover.insert(id);
    }
  }
}

void Coordinator::ReconcileAdoptionLocked(RangeState* range,
                                          const RangeReady& ready,
                                          FrameEffects* fx) {
  // An adopted range must come up from the shipped bootstrap envelope —
  // every assignment anchors a checkpoint (and ships it) before its first
  // commit, so a cold adoption means replication lost the envelope.
  if (!ready.restored) stats_.reconcile_mismatches += 1;
  // 1. Replay dispositions apply idempotently: only ids the ledger still
  //    holds pending change state; everything else was already counted
  //    from the live stream before the shard died.
  for (const serve::BatchDisposition& d : ready.replay_log) {
    ApplyDispositionLocked(range, d, /*live=*/false);
  }
  // 2. Day outcomes that committed durably but whose kDayClosed frame was
  //    lost with the shard.
  for (const auto& [day, utility] : ready.replayed_day_closes) {
    range->day_utility.emplace(day, utility);
  }
  range->day_close_sent = false;  // any in-flight close died with the shard
  // 3. The restored carryover is the service's authoritative pending set;
  //    after step 1 the ledger must agree.
  std::set<int64_t> restored(ready.carryover_ids.begin(),
                             ready.carryover_ids.end());
  if (restored != range->carryover) {
    stats_.reconcile_mismatches += 1;
  }
  // 4. Re-align the day cursor, then redrive what is still pending. The
  //    kOpenDay (if any) precedes the redriven kSubmitBatch frames on the
  //    FIFO socket.
  if (day_open_ && (!ready.day_open || ready.day < current_day_)) {
    fx->sends.push_back({range->owner, MessageType::kOpenDay,
                         EncodePair(range->range, current_day_)});
  }
  std::vector<uint64_t> completed;
  for (auto& [ticket_id, ticket] : range->tickets) {
    if (ticket.done) continue;
    std::vector<sim::Request> remaining;
    for (const sim::Request& r : ticket.requests) {
      if (ticket.pending.count(r.id) != 0) remaining.push_back(r);
    }
    if (remaining.empty()) {
      // Fully resolved by replay (terminal or appealed into carryover);
      // the dead shard's kTicketDone will never arrive.
      if (ticket.pending.empty()) completed.push_back(ticket_id);
      continue;
    }
    ticket.requests = remaining;
    SubmitBatch redo;
    redo.range = range->range;
    redo.ticket = ticket_id;
    redo.requests = remaining;
    fx->sends.push_back({range->owner, MessageType::kSubmitBatch,
                         EncodeSubmitBatch(redo)});
    stats_.redriven_tickets += 1;
    stats_.redriven_requests += remaining.size();
  }
  for (uint64_t id : completed) range->tickets.erase(id);
  fx->finalize_adoption = true;
  fx->adopted_range = range->range;
  fx->adopted_generation = range->generation;
}

void Coordinator::HandleFrameLocked(uint64_t shard_id, uint8_t type,
                                    const std::string& payload,
                                    FrameEffects* fx) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHeartbeat: {
      auto pair = DecodePair(payload);
      if (pair.ok()) {
        shards_[shard_id].health_state = pair->second;
        stats_.heartbeats += 1;
      }
      break;
    }
    case MessageType::kDisposition: {
      auto msg = DecodeDispositionMsg(payload);
      if (!msg.ok()) break;
      auto it = ranges_.find(msg->range);
      if (it != ranges_.end()) {
        ApplyDispositionLocked(&it->second, msg->disposition, /*live=*/true);
      }
      break;
    }
    case MessageType::kTicketDone: {
      auto msg = DecodeTicketDone(payload);
      if (!msg.ok()) break;
      auto it = ranges_.find(msg->range);
      if (it == ranges_.end()) break;
      RangeState& range = it->second;
      for (int64_t id : msg->shed_ids) {
        TerminalizeLocked(&range, id, &stats_.shed, /*live=*/true);
      }
      auto t = range.tickets.find(msg->ticket);
      if (t != range.tickets.end()) {
        t->second.done = true;
        if (t->second.pending.empty()) {
          range.tickets.erase(t);
        } else {
          // Acked ticket with pending ids: its dispositions were lost on
          // the FIFO socket — impossible unless the contract broke.
          stats_.reconcile_mismatches += 1;
        }
      }
      break;
    }
    case MessageType::kDayClosed: {
      auto msg = DecodeDayClosed(payload);
      if (!msg.ok()) break;
      auto it = ranges_.find(msg->range);
      if (it != ranges_.end()) {
        it->second.day_utility.emplace(msg->day, msg->utility);
        it->second.day_close_sent = false;
      }
      break;
    }
    case MessageType::kWalShip: {
      auto msg = DecodeShipBytes(payload);
      if (!msg.ok()) break;
      Status s = replica_->AppendWalRecord(msg->range, msg->seq, msg->bytes);
      if (!s.ok()) {
        fatal_ = s;
      } else {
        stats_.wal_records_shipped += 1;
        if (wal_bytes_counter_ != nullptr) {
          wal_bytes_counter_->Increment(msg->bytes.size());
        }
      }
      break;
    }
    case MessageType::kCheckpointShip: {
      auto msg = DecodeShipBytes(payload);
      if (!msg.ok()) break;
      Status s = replica_->PutCheckpoint(msg->range, msg->seq, msg->bytes);
      if (!s.ok()) {
        fatal_ = s;
      } else {
        stats_.checkpoints_shipped += 1;
      }
      break;
    }
    case MessageType::kRangeReady: {
      auto msg = DecodeRangeReady(payload);
      if (!msg.ok()) break;
      auto it = ranges_.find(msg->range);
      if (it == ranges_.end()) break;
      RangeState& range = it->second;
      if (range.generation == 0) {
        range.serving = true;  // initial assignment
      } else if (!range.serving) {
        ReconcileAdoptionLocked(&range, *msg, fx);
      }
      break;
    }
    case MessageType::kStateDump: {
      auto msg = DecodeStateDump(payload);
      if (!msg.ok()) break;
      auto it = ranges_.find(msg->range);
      if (it != ranges_.end()) {
        it->second.state_dump = std::move(*msg);
        it->second.state_dump_ready = true;
      }
      break;
    }
    case MessageType::kShutdownAck: {
      auto pair = DecodePair(payload);
      if (pair.ok()) shards_[shard_id].shutdown_acked = true;
      break;
    }
    default:
      break;  // unknown/unexpected frames are ignored, not fatal
  }
  SyncMetricsLocked();
}

// --- pump -----------------------------------------------------------------

size_t Coordinator::BatchesPerDay() const {
  size_t max_batches = 0;
  for (const auto& [r, range] : ranges_) {
    for (const auto& day : range.schedule) {
      max_batches = std::max(max_batches, day.size());
    }
  }
  return max_batches;
}

Status Coordinator::OpenDay(size_t day) {
  std::vector<Outbound> sends;
  {
    std::unique_lock<std::mutex> lock(mu_);
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock,
        [this] {
          for (const auto& [r, range] : ranges_) {
            if (!range.serving) return false;
          }
          return true;
        },
        "open-day fleet quiesce"));
    current_day_ = day;
    day_open_ = true;
    for (auto& [r, range] : ranges_) {
      range.day_close_sent = false;
      sends.push_back({range.owner, MessageType::kOpenDay,
                       EncodePair(r, day)});
    }
  }
  for (const Outbound& s : sends) {
    (void)SendToShard(s.shard, s.type, s.payload);
  }
  return Status::OK();
}

Status Coordinator::SubmitScheduledBatch(size_t batch_index) {
  for (uint64_t r = 0; r < num_ranges_; ++r) {
    uint64_t ticket_id = 0;
    uint64_t owner = 0;
    std::string payload;
    {
      std::unique_lock<std::mutex> lock(mu_);
      RangeState& range = ranges_[r];
      if (current_day_ >= range.schedule.size() ||
          batch_index >= range.schedule[current_day_].size()) {
        continue;  // short range: nothing scheduled in this slot
      }
      LACB_RETURN_NOT_OK(WaitLocked(
          &lock,
          [this, &range] {
            return range.serving &&
                   OutstandingTicketsLocked(range) < options_.window;
          },
          "ticket window"));
      const std::vector<sim::Request>& requests =
          range.schedule[current_day_][batch_index];
      if (requests.empty()) continue;
      ticket_id = next_ticket_++;
      Ticket& ticket = range.tickets[ticket_id];
      ticket.requests = requests;
      for (const sim::Request& req : requests) {
        ticket.pending.insert(req.id);
        range.pending_where[req.id] = ticket_id;
      }
      stats_.submitted += requests.size();
      owner = range.owner;
      SubmitBatch msg;
      msg.range = r;
      msg.ticket = ticket_id;
      msg.requests = requests;
      payload = EncodeSubmitBatch(msg);
      SyncMetricsLocked();
    }
    if (!payload.empty()) {
      // A failed send is not an error for the pump: the shard's death has
      // been recorded and the failover path redrives this ticket from the
      // ledger.
      (void)SendToShard(owner, MessageType::kSubmitBatch, payload);
    }
  }
  return Status::OK();
}

Status Coordinator::CloseDay() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock,
        [this] {
          for (const auto& [r, range] : ranges_) {
            if (!range.serving || OutstandingTicketsLocked(range) > 0) {
              return false;
            }
          }
          return true;
        },
        "close-day drain"));
    day_open_ = false;
  }
  // Send/resend the close until every range has the day's outcome: an
  // adoption in mid-close resets day_close_sent, and a close that
  // committed durably on a dead shard surfaces via replayed_day_closes.
  auto deadline = std::chrono::steady_clock::now() + options_.op_timeout;
  for (;;) {
    std::vector<Outbound> sends;
    bool done = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!fatal_.ok()) return fatal_;
      for (auto& [r, range] : ranges_) {
        if (range.day_utility.count(current_day_) != 0) continue;
        done = false;
        if (range.serving && !range.day_close_sent &&
            OutstandingTicketsLocked(range) == 0) {
          range.day_close_sent = true;
          sends.push_back({range.owner, MessageType::kCloseDay,
                           EncodePair(r, current_day_)});
        }
      }
    }
    if (done) return Status::OK();
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal("close-day timed out");
    }
    for (const Outbound& s : sends) {
      (void)SendToShard(s.shard, s.type, s.payload);
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

Status Coordinator::Shutdown() {
  std::vector<uint64_t> targets;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || shutdown_) return Status::OK();
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock,
        [this] {
          for (const auto& [r, range] : ranges_) {
            if (!range.serving || OutstandingTicketsLocked(range) > 0) {
              return false;
            }
          }
          return true;
        },
        "shutdown drain"));
    shutdown_ = true;
    for (const auto& [id, shard] : shards_) {
      if (shard.alive) targets.push_back(id);
    }
  }
  for (uint64_t id : targets) {
    (void)SendToShard(id, MessageType::kShutdown, EncodePair(id, 0));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    Status s = WaitLocked(
        &lock,
        [this, &targets] {
          for (uint64_t id : targets) {
            const Shard& shard = shards_[id];
            if (shard.alive && !shard.shutdown_acked) return false;
          }
          return true;
        },
        "shutdown acks");
    if (!s.ok()) return s;
    stats_.pending = PendingCountLocked();
    SyncMetricsLocked();
  }
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  for (auto& [id, shard] : shards_) {
    if (shard.reader.joinable()) shard.reader.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, shard] : shards_) {
    ReapLocked(&shard);
    if (shard.fd >= 0) {
      CloseFd(shard.fd);
      shard.fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  return fatal_;
}

Status Coordinator::KillShard(uint64_t shard_id, bool sigstop) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(shard_id);
  if (it == shards_.end() || !it->second.alive || it->second.pid <= 0) {
    return Status::NotFound("shard " + std::to_string(shard_id) +
                            " is not running");
  }
  // SIGSTOP leaves the socket open: only the heartbeat deadline can
  // detect this death mode. SIGKILL closes the socket, so the reader's
  // EOF path fires first.
  if (::kill(it->second.pid, sigstop ? SIGSTOP : SIGKILL) != 0) {
    return Status::IoError("kill failed");
  }
  return Status::OK();
}

Status Coordinator::InjectChurn(uint64_t range,
                                const scenario::ChurnEvent& event) {
  uint64_t owner = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = ranges_.find(range);
    if (it == ranges_.end()) return Status::NotFound("no such range");
    RangeState* state = &it->second;
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock, [state] { return state->serving; }, "churn target serving"));
    owner = state->owner;
  }
  ChurnMsg msg;
  msg.range = range;
  msg.day = event.day;
  msg.batch_offset = event.batch_offset;
  msg.broker = event.broker;
  msg.kind = static_cast<uint8_t>(event.kind);
  msg.cold_capacity = event.cold_capacity;
  return SendToShard(owner, MessageType::kChurnEvent, EncodeChurnMsg(msg));
}

Result<StateDump> Coordinator::FetchState(uint64_t range) {
  uint64_t owner = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = ranges_.find(range);
    if (it == ranges_.end()) return Status::NotFound("no such range");
    RangeState* state = &it->second;
    LACB_RETURN_NOT_OK(WaitLocked(
        &lock,
        [this, state] {
          return state->serving && OutstandingTicketsLocked(*state) == 0;
        },
        "state-dump quiesce"));
    state->state_dump_ready = false;
    owner = state->owner;
  }
  LACB_RETURN_NOT_OK(
      SendToShard(owner, MessageType::kRequestState, EncodePair(range, 0)));
  std::unique_lock<std::mutex> lock(mu_);
  RangeState* state = &ranges_.find(range)->second;
  LACB_RETURN_NOT_OK(WaitLocked(
      &lock, [state] { return state->state_dump_ready; }, "state dump"));
  return state->state_dump;
}

// --- introspection --------------------------------------------------------

std::vector<double> Coordinator::FleetDailyUtility() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t days = 0;
  for (const auto& [r, range] : ranges_) {
    for (const auto& [day, u] : range.day_utility) {
      days = std::max(days, static_cast<size_t>(day) + 1);
    }
  }
  std::vector<double> out(days, 0.0);
  for (const auto& [r, range] : ranges_) {
    for (const auto& [day, u] : range.day_utility) {
      out[day] += u;
    }
  }
  return out;
}

uint64_t Coordinator::PendingCountLocked() const {
  uint64_t pending = 0;
  for (const auto& [r, range] : ranges_) {
    pending += range.pending_where.size();
  }
  return pending;
}

size_t Coordinator::OutstandingTicketsLocked(const RangeState& range) const {
  size_t n = 0;
  for (const auto& [id, ticket] : range.tickets) {
    if (!ticket.done) ++n;
  }
  return n;
}

FleetStats Coordinator::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats out = stats_;
  out.pending = PendingCountLocked();
  return out;
}

Result<uint64_t> Coordinator::RangeOwner(uint64_t range) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ranges_.find(range);
  if (it == ranges_.end()) return Status::NotFound("no such range");
  return it->second.owner;
}

double Coordinator::last_failover_unix_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_failover_unix_;
}

obs::HealthReport Coordinator::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t alive = 0;
  size_t degraded_shards = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard.alive) {
      ++alive;
      if (shard.health_state > 0) ++degraded_shards;
    }
  }
  size_t dead = shards_.size() - alive;
  size_t unserved = 0;
  for (const auto& [r, range] : ranges_) {
    if (!range.serving) ++unserved;
  }
  obs::HealthReport report;
  std::string detail =
      "shards=" + std::to_string(alive) + "/" +
      std::to_string(shards_.size()) + " dead=" + std::to_string(dead) +
      " failovers=" + std::to_string(stats_.failovers) + " last_failover=" +
      (last_failover_unix_ > 0.0 ? std::to_string(last_failover_unix_)
                                 : std::string("never"));
  const bool recent_failover =
      last_failover_unix_ > 0.0 &&
      std::chrono::steady_clock::now() - last_failover_ <
          std::chrono::seconds(5);
  if (!fatal_.ok() || alive == 0 ||
      (unserved > 0 && !options_.failover_enabled)) {
    report.state = obs::HealthState::kUnhealthy;
    report.detail = detail + (fatal_.ok() ? "" : " fatal=" + fatal_.ToString());
  } else if (dead > 0 || degraded_shards > 0 || unserved > 0 ||
             recent_failover) {
    report.state = obs::HealthState::kDegraded;
    report.detail = detail + " unserved_ranges=" + std::to_string(unserved);
  } else {
    report.state = obs::HealthState::kHealthy;
    report.detail = detail;
  }
  return report;
}

// --- helpers --------------------------------------------------------------

Status Coordinator::WaitLocked(std::unique_lock<std::mutex>* lock,
                               const std::function<bool()>& done,
                               const char* what) {
  auto deadline = std::chrono::steady_clock::now() + options_.op_timeout;
  while (!done()) {
    if (!fatal_.ok()) return fatal_;
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal(std::string("coordinator wait timed out: ") +
                              what);
    }
    cv_.wait_for(*lock, std::chrono::milliseconds(50));
  }
  return Status::OK();
}

void Coordinator::RegisterMetrics() {
  routed_counter_ = &registry_->GetCounter(
      "cluster.submitted", "Requests routed into shard tickets");
  shed_counter_ = &registry_->GetCounter(
      "cluster.shed", "Requests shed at shard admission");
  assigned_counter_ = &registry_->GetCounter(
      "cluster.assigned", "Fleet-wide requests committed to a broker");
  unmatched_counter_ = &registry_->GetCounter(
      "cluster.unmatched", "Fleet-wide requests left unassigned");
  failed_counter_ = &registry_->GetCounter(
      "cluster.failed", "Fleet-wide requests in failed batches");
  dropped_counter_ = &registry_->GetCounter(
      "cluster.dropped_appeals", "Fleet-wide appeals dropped terminally");
  redriven_counter_ = &registry_->GetCounter(
      "cluster.redriven_requests", "Requests redriven after a failover");
  deaths_counter_ = &registry_->GetCounter(
      "cluster.shard_deaths", "Shard processes declared dead");
  failovers_counter_ = &registry_->GetCounter(
      "cluster.failovers", "Range adoptions completed");
  heartbeats_counter_ = &registry_->GetCounter(
      "cluster.heartbeats", "Heartbeat frames received");
  hb_timeout_counter_ = &registry_->GetCounter(
      "cluster.heartbeat_timeouts", "Shards declared dead by deadline");
  wal_shipped_counter_ = &registry_->GetCounter(
      "cluster.wal_records_shipped", "WAL records replicated to the "
      "coordinator");
  wal_bytes_counter_ = &registry_->GetCounter(
      "cluster.wal_bytes_shipped", "Replicated WAL bytes");
  ckpt_shipped_counter_ = &registry_->GetCounter(
      "cluster.checkpoints_shipped", "Checkpoint envelopes replicated");
  duplicate_counter_ = &registry_->GetCounter(
      "cluster.duplicate_terminals",
      "Live dispositions for already-terminal requests (must stay 0)");
  shards_alive_gauge_ = &registry_->GetGauge(
      "cluster.shards_alive", "Shard processes currently alive");
  pending_gauge_ = &registry_->GetGauge(
      "cluster.pending_requests", "Requests in tickets or carryover");
}

void Coordinator::SyncMetricsLocked() {
  if (registry_ == nullptr || routed_counter_ == nullptr) return;
  auto bump = [](obs::Counter* c, uint64_t now, uint64_t* prev) {
    if (now > *prev) c->Increment(now - *prev);
    *prev = now;
  };
  bump(routed_counter_, stats_.submitted, &synced_.submitted);
  bump(shed_counter_, stats_.shed, &synced_.shed);
  bump(assigned_counter_, stats_.assigned, &synced_.assigned);
  bump(unmatched_counter_, stats_.unmatched, &synced_.unmatched);
  bump(failed_counter_, stats_.failed, &synced_.failed);
  bump(dropped_counter_, stats_.dropped_appeals, &synced_.dropped_appeals);
  bump(redriven_counter_, stats_.redriven_requests,
       &synced_.redriven_requests);
  bump(deaths_counter_, stats_.shard_deaths, &synced_.shard_deaths);
  bump(failovers_counter_, stats_.failovers, &synced_.failovers);
  bump(heartbeats_counter_, stats_.heartbeats, &synced_.heartbeats);
  bump(hb_timeout_counter_, stats_.heartbeat_timeouts,
       &synced_.heartbeat_timeouts);
  bump(wal_shipped_counter_, stats_.wal_records_shipped,
       &synced_.wal_records_shipped);
  bump(ckpt_shipped_counter_, stats_.checkpoints_shipped,
       &synced_.checkpoints_shipped);
  bump(duplicate_counter_, stats_.duplicate_terminals,
       &synced_.duplicate_terminals);
  size_t alive = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard.alive) ++alive;
  }
  shards_alive_gauge_->Set(static_cast<double>(alive));
  pending_gauge_->Set(static_cast<double>(PendingCountLocked()));
}

}  // namespace lacb::cluster

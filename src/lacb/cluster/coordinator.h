// Fleet coordinator of the sharded serving cluster (docs/sharding.md).
//
// Owns the topology: a consistent-hash ring maps districts to broker
// ranges, every range is hosted by exactly one shard process (spawned via
// fork+execv of the lacb_shard binary), and all control + replication
// traffic flows over one framed loopback socket per shard.
//
// Robustness contract:
//   - Every submitted request is tracked in a fleet ledger until it
//     reaches exactly one terminal disposition (assigned / unmatched /
//     failed / dropped appeal) or is shed at admission; appealed requests
//     stay pending in a carryover set until a later batch disposes them.
//   - Each shard ships every WAL record and checkpoint image per range;
//     because a record ships through the same FIFO socket *before* its
//     batch's disposition, any disposition the coordinator has seen is
//     guaranteed durable in the replica. Committed batches survive any
//     shard death.
//   - A dead shard (socket EOF, or heartbeat deadline exceeded — e.g. a
//     SIGSTOP-wedged process) triggers failover: its ranges' replicas are
//     finalized, cloned into adoption envelopes, and adopted by the
//     surviving shard with the fewest ranges. The adopted service replays
//     the shipped WAL chain; its replay log is reconciled idempotently
//     against the ledger (already-terminal ids are ignored), and only the
//     still-pending remainder of each in-flight ticket is redriven.
//
// Fleet-wide, the conservation identity
//   submitted == assigned + unmatched + failed + dropped_appeals
// holds under any kill schedule — the headline gate in cluster_test.cc.

#ifndef LACB_CLUSTER_COORDINATOR_H_
#define LACB_CLUSTER_COORDINATOR_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lacb/cluster/hash_ring.h"
#include "lacb/cluster/protocol.h"
#include "lacb/cluster/replica_store.h"
#include "lacb/common/result.h"
#include "lacb/common/status.h"
#include "lacb/obs/exposition.h"
#include "lacb/obs/metrics.h"
#include "lacb/sim/dataset.h"

namespace lacb::cluster {

/// \brief Fleet configuration.
struct CoordinatorOptions {
  /// Path of the lacb_shard binary (tests get it from LACB_SHARD_BINARY).
  std::string shard_binary;
  /// Working directory: per-shard checkpoint dirs, the replica tree, and
  /// adoption envelopes live under it.
  std::string workdir;
  /// Fleet-wide dataset; each range serves ShardDatasetConfig(base, r, n).
  sim::DatasetConfig base_config;
  size_t num_shards = 2;
  /// Broker ranges (0 = one per shard). With one shard and one range the
  /// fleet is bit-identical to a single-process AssignmentService.
  size_t num_ranges = 0;
  /// Off: a shard death is a hard error instead of a failover (the
  /// bit-identity gate runs this way).
  bool failover_enabled = true;
  std::chrono::milliseconds heartbeat_period{100};
  /// A shard whose last frame is older than this is declared dead even if
  /// its socket is still open (catches wedged/stopped processes). Keep
  /// generous under sanitizers.
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// Unacknowledged tickets per range before SubmitScheduledBatch blocks.
  size_t window = 4;
  /// Per-range persistence knobs forwarded to the shards.
  uint64_t checkpoint_interval_batches = 4;
  bool wal_fsync = false;
  uint64_t suite_seed = 55;
  uint64_t policy_index = 8;  ///< LACB-Opt in the suite order.
  /// Fleet exposition listener (/metrics + aggregated /healthz): -1
  /// disables, 0 ephemeral.
  int exposition_port = -1;
  /// Bring-up bound (spawn → hello → every range serving).
  std::chrono::milliseconds startup_timeout{60000};
  /// Bound on any single pump wait (window room, ticket acks, day close,
  /// state dumps, shutdown acks). Failovers run inside these waits, so the
  /// bound must cover heartbeat_timeout + adoption + replay.
  std::chrono::milliseconds op_timeout{120000};
};

/// \brief Fleet-wide ledger counters (safe to read any time; final after
/// Shutdown).
struct FleetStats {
  uint64_t submitted = 0;        ///< Requests routed into tickets.
  uint64_t shed = 0;             ///< Refused at shard admission.
  uint64_t assigned = 0;         ///< Terminal: committed to a broker.
  uint64_t unmatched = 0;        ///< Terminal: left unassigned.
  uint64_t failed = 0;           ///< Terminal: commit-exhausted/drained.
  uint64_t dropped_appeals = 0;  ///< Terminal: appeals dropped at day end.
  uint64_t pending = 0;          ///< In tickets or carryover right now.
  uint64_t redriven_requests = 0;
  uint64_t redriven_tickets = 0;
  uint64_t shard_deaths = 0;
  uint64_t failovers = 0;  ///< Range adoptions completed.
  uint64_t duplicate_terminals = 0;   ///< Live disposition for an id already
                                      ///< terminal (exactly-once violation).
  uint64_t reconcile_mismatches = 0;  ///< Replay reconciliation disagreed
                                      ///< with the ledger (invariant probe).
  uint64_t wal_records_shipped = 0;
  uint64_t checkpoints_shipped = 0;
  uint64_t heartbeats = 0;
  uint64_t heartbeat_timeouts = 0;
};

/// \brief The fleet coordinator. Public methods are the serial pump the
/// driver (test/bench) runs: Start → per day [OpenDay → SubmitScheduledBatch
/// loop → CloseDay] → Shutdown. Failover is handled internally on the
/// reader/monitor threads while the pump blocks on its windows.
class Coordinator {
 public:
  static Result<std::unique_ptr<Coordinator>> Create(CoordinatorOptions opts);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// \brief Spawns the shard processes, assigns every range, and blocks
  /// until the whole fleet is serving.
  Status Start();

  /// \brief Opens `day` on every range.
  Status OpenDay(size_t day);

  /// \brief Submits batch `batch_index` of the current day's schedule to
  /// every range as one ticket each, blocking for window room per range.
  Status SubmitScheduledBatch(size_t batch_index);

  /// \brief Waits until every outstanding ticket is acknowledged, closes
  /// the day on every range, and records the per-range day utilities.
  Status CloseDay();

  /// \brief Clean fleet shutdown: drains tickets, kShutdown handshake,
  /// reaps every child. Idempotent. The ledger must end with pending == 0.
  Status Shutdown();

  /// \brief Chaos hook: SIGKILLs (or SIGSTOPs, to exercise the heartbeat
  /// deadline instead of the socket EOF) shard `shard_id`.
  Status KillShard(uint64_t shard_id, bool sigstop);

  /// \brief Routes one scenario churn event to the shard owning `range`
  /// (the broker index is range-local — each range hosts its own roster
  /// slice). Control-plane only: the event mutates the owner's live day
  /// but is not WAL-journaled, so a failover between the event and its
  /// day close adopts the range without it (docs/scenarios.md).
  Status InjectChurn(uint64_t range, const scenario::ChurnEvent& event);

  /// \brief Batches scheduled per day in the fleet (max over ranges; short
  /// ranges simply skip indices past their schedule).
  size_t BatchesPerDay() const;
  size_t NumDays() const { return options_.base_config.num_days; }
  size_t num_ranges() const { return num_ranges_; }

  /// \brief Summed realized utility per closed day (index = day).
  std::vector<double> FleetDailyUtility() const;

  FleetStats Stats() const;

  /// \brief Aggregated fleet health (the /healthz body of the fleet
  /// exposition endpoint): unhealthy when a range has no serving owner,
  /// degraded while shards are dead/degraded or a failover is recent.
  obs::HealthReport Health() const;

  /// \brief Platform + lead-replica state of `range` (the bit-identity
  /// gate diffs these against a single-process run). Call while idle.
  Result<StateDump> FetchState(uint64_t range);

  /// \brief Owner shard of `range` right now.
  Result<uint64_t> RangeOwner(uint64_t range) const;
  const HashRing& ring() const { return ring_; }
  int exposition_port() const {
    return exposition_ != nullptr ? exposition_->port() : -1;
  }
  /// \brief Wall-clock stamp (seconds since epoch) of the latest completed
  /// failover, or 0 when none happened.
  double last_failover_unix_seconds() const;

 private:
  explicit Coordinator(CoordinatorOptions opts);

  static constexpr uint64_t kInCarryover = ~0ull;

  struct Shard {
    uint64_t id = 0;
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool shutdown_acked = false;
    bool reaped = false;
    uint64_t health_state = 0;
    std::chrono::steady_clock::time_point last_frame{};
    std::unique_ptr<std::mutex> send_mu;  // orders writes to fd
    std::thread reader;
  };

  struct Ticket {
    std::vector<sim::Request> requests;
    std::set<int64_t> pending;  // ids not yet disposed/shed/appealed
    bool done = false;
  };

  struct RangeState {
    uint64_t range = 0;
    sim::DatasetConfig config;
    std::vector<std::vector<std::vector<sim::Request>>> schedule;
    uint64_t owner = 0;
    bool serving = false;   // kRangeReady seen for the current generation
    uint64_t generation = 0;
    std::map<uint64_t, Ticket> tickets;       // outstanding, by ticket id
    std::map<int64_t, uint64_t> pending_where;  // id -> ticket | kInCarryover
    std::set<int64_t> carryover;
    std::map<uint64_t, double> day_utility;   // closed day -> utility
    bool day_close_sent = false;              // close in flight this day
    StateDump state_dump;
    bool state_dump_ready = false;
  };

  // --- process + socket plumbing ---
  Status SpawnShard(uint64_t shard_id);
  Status SendToShard(uint64_t shard_id, MessageType type,
                     const std::string& payload);
  void ReaderLoop(uint64_t shard_id);
  void MonitorLoop();
  void ReapLocked(Shard* shard);

  // --- frame handlers (mu_ held) ---

  /// A frame to send once mu_ is released (holding mu_ across a socket
  /// write could wedge the whole fleet behind one stopped shard).
  struct Outbound {
    uint64_t shard = 0;
    MessageType type = MessageType::kHeartbeat;
    std::string payload;
  };
  /// Deferred work a frame handler computed under mu_. A reconciled
  /// adoption is finalized (range marked serving) only after its redrive
  /// frames went out, so the pump can never interleave ahead of them.
  struct FrameEffects {
    std::vector<Outbound> sends;
    bool finalize_adoption = false;
    uint64_t adopted_range = 0;
    uint64_t adopted_generation = 0;
  };

  void HandleFrameLocked(uint64_t shard_id, uint8_t type,
                         const std::string& payload, FrameEffects* fx);
  void ApplyDispositionLocked(RangeState* range,
                              const serve::BatchDisposition& d, bool live);
  void TerminalizeLocked(RangeState* range, int64_t id, uint64_t* counter,
                         bool live);
  void ReconcileAdoptionLocked(RangeState* range, const RangeReady& ready,
                               FrameEffects* fx);

  // --- failover ---
  void OnShardDown(uint64_t shard_id, const std::string& why);
  AssignRange BuildAssignment(const RangeState& range,
                              const std::string& checkpoint_dir) const;

  // --- helpers ---
  uint64_t PendingCountLocked() const;
  size_t OutstandingTicketsLocked(const RangeState& range) const;
  Status WaitLocked(std::unique_lock<std::mutex>* lock,
                    const std::function<bool()>& done, const char* what);
  void RegisterMetrics();
  /// Mirrors stats_ deltas into the cluster.* instruments (mu_ held).
  void SyncMetricsLocked();

  CoordinatorOptions options_;
  HashRing ring_;
  size_t num_ranges_ = 0;
  std::unique_ptr<ReplicaStore> replica_;

  int listen_fd_ = -1;
  int listen_port_ = 0;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<uint64_t, Shard> shards_;
  std::map<uint64_t, RangeState> ranges_;
  FleetStats stats_;
  FleetStats synced_;  // last values mirrored into the obs instruments
  uint64_t next_ticket_ = 1;
  size_t current_day_ = 0;
  bool day_open_ = false;
  bool started_ = false;
  bool shutdown_ = false;
  Status fatal_ = Status::OK();
  std::chrono::steady_clock::time_point last_failover_{};
  double last_failover_unix_ = 0.0;

  std::atomic<bool> stopping_{false};
  std::thread monitor_;

  obs::MetricRegistry* registry_ = nullptr;
  std::unique_ptr<obs::ExpositionServer> exposition_;
  obs::Counter* routed_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* assigned_counter_ = nullptr;
  obs::Counter* unmatched_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* redriven_counter_ = nullptr;
  obs::Counter* deaths_counter_ = nullptr;
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* heartbeats_counter_ = nullptr;
  obs::Counter* hb_timeout_counter_ = nullptr;
  obs::Counter* wal_shipped_counter_ = nullptr;
  obs::Counter* wal_bytes_counter_ = nullptr;
  obs::Counter* ckpt_shipped_counter_ = nullptr;
  obs::Counter* duplicate_counter_ = nullptr;
  obs::Gauge* shards_alive_gauge_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
};

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_COORDINATOR_H_

#include "lacb/cluster/frame.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "lacb/common/rng.h"
#include "lacb/persist/bytes.h"

namespace lacb::cluster {

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("frame write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Full read of `size` bytes. `*clean_eof` is set when the peer closed
/// before the first byte (only meaningful when `at_boundary`).
Status ReadAll(int fd, char* data, size_t size, bool at_boundary,
               bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("frame read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (at_boundary && got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IoError("peer closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void SetCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

Status SendFrame(int fd, uint8_t type, const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  if (body.size() > kMaxFrameBody) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBody");
  }
  persist::ByteWriter out;
  out.U32(static_cast<uint32_t>(body.size()));
  const std::string& bytes = out.bytes();
  std::string wire;
  wire.reserve(4 + body.size() + 4);
  wire.append(bytes);
  wire.append(body);
  persist::ByteWriter crc;
  crc.U32(persist::Crc32(body));
  wire.append(crc.bytes());
  return WriteAll(fd, wire.data(), wire.size());
}

Result<Frame> ReadFrame(int fd) {
  char len_buf[4];
  bool clean_eof = false;
  LACB_RETURN_NOT_OK(
      ReadAll(fd, len_buf, sizeof(len_buf), /*at_boundary=*/true, &clean_eof));
  if (clean_eof) return Status::NotFound("peer closed (clean EOF)");
  uint32_t len = 0;
  std::memcpy(&len, len_buf, sizeof(len));
  if (len == 0 || len > kMaxFrameBody) {
    return Status::IoError("corrupt frame length prefix");
  }
  std::string body(len, '\0');
  LACB_RETURN_NOT_OK(
      ReadAll(fd, body.data(), len, /*at_boundary=*/false, &clean_eof));
  char crc_buf[4];
  LACB_RETURN_NOT_OK(
      ReadAll(fd, crc_buf, sizeof(crc_buf), /*at_boundary=*/false,
              &clean_eof));
  uint32_t crc = 0;
  std::memcpy(&crc, crc_buf, sizeof(crc));
  if (crc != persist::Crc32(body)) {
    return Status::IoError("frame CRC mismatch");
  }
  Frame frame;
  frame.type = static_cast<uint8_t>(body[0]);
  frame.payload = body.substr(1);
  return frame;
}

Result<int> ListenLoopback(int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  SetCloexec(fd);
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    CloseFd(fd);
    return Status::IoError("setsockopt(SO_REUSEADDR) failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Status::IoError("bind() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(fd, 64) != 0) {
    CloseFd(fd);
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    CloseFd(fd);
    return Status::IoError("getsockname() failed");
  }
  if (bound_port != nullptr) *bound_port = static_cast<int>(ntohs(bound.sin_port));
  return fd;
}

Result<int> AcceptWithTimeout(int listen_fd,
                              std::chrono::milliseconds timeout) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      return Status::IoError("accept timed out");
    }
    int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll() failed");
    }
    if (rc == 0) return Status::IoError("accept timed out");
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("accept() failed");
    }
    SetCloexec(client);
    return client;
  }
}

Result<int> ConnectLoopback(int port, const ConnectRetry& retry) {
  Rng jitter_rng(retry.jitter_seed);
  Status last = Status::OK();
  for (size_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("socket() failed");
    SetCloexec(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last = Status::IoError("connect() failed: " +
                           std::string(std::strerror(errno)));
    CloseFd(fd);
    if (attempt == retry.max_attempts) break;
    // Same deterministic jitter shape as the serve layer's commit retry:
    // base × 2^(k−1) capped, scaled into [0.5, 1].
    auto backoff = retry.backoff_base * (1u << std::min<size_t>(attempt - 1, 16));
    if (backoff > retry.backoff_cap) backoff = retry.backoff_cap;
    double jitter = 0.5 + 0.5 * jitter_rng.Fork(attempt).Uniform();
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(backoff.count() * jitter)));
  }
  return last;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace lacb::cluster

// Length-prefixed framed socket protocol for the cluster layer
// (docs/sharding.md).
//
// Wire format (mirrors the WAL's record framing so a shipped WAL record
// can be forwarded inside a frame without re-encoding):
//
//   frame:  u32 len | u8 type | payload[len-1] | u32 crc32(type+payload)
//
// Frames are written with a single full-write under the caller's
// serialization and read with full-reads; a CRC mismatch or a short read
// mid-frame is an IoError (the peer is presumed dead — the coordinator
// funnels both into its shard-death path). A clean EOF at a frame
// boundary is NotFound, the orderly-shutdown signal.
//
// All sockets are loopback TCP with FD_CLOEXEC (shard processes are
// spawned by fork+exec and must not inherit each other's connections)
// and writes use MSG_NOSIGNAL so a dead peer surfaces as EPIPE, never
// SIGPIPE.

#ifndef LACB_CLUSTER_FRAME_H_
#define LACB_CLUSTER_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "lacb/common/result.h"
#include "lacb/common/status.h"

namespace lacb::cluster {

/// \brief Upper bound on a frame body; a length prefix beyond it means a
/// corrupt stream, not a large message.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

/// \brief One decoded frame: the type byte plus its payload.
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// \brief Writes one frame with a single buffered full-write
/// (MSG_NOSIGNAL). Not internally synchronized — callers serialize per fd.
Status SendFrame(int fd, uint8_t type, const std::string& payload);

/// \brief Blocking read of the next frame. NotFound on a clean EOF at a
/// frame boundary; IoError on a short read mid-frame, a CRC mismatch, or
/// an oversized length prefix.
Result<Frame> ReadFrame(int fd);

/// \brief Opens a listening TCP socket on 127.0.0.1 (FD_CLOEXEC,
/// SO_REUSEADDR). `port` 0 binds an ephemeral port; `*bound_port`
/// receives the actual port.
Result<int> ListenLoopback(int port, int* bound_port);

/// \brief Accepts one connection (FD_CLOEXEC) or times out (IoError "accept timed out").
Result<int> AcceptWithTimeout(int listen_fd, std::chrono::milliseconds timeout);

/// \brief Connect-with-retry policy: exponential backoff scaled by the
/// serve layer's deterministic per-attempt jitter in [0.5, 1].
struct ConnectRetry {
  size_t max_attempts = 40;
  std::chrono::microseconds backoff_base{500};
  std::chrono::microseconds backoff_cap{100000};
  uint64_t jitter_seed = 2027;
};

/// \brief Connects to 127.0.0.1:`port` (FD_CLOEXEC), retrying with the
/// deterministic-jitter backoff until the listener answers or the attempt
/// budget is spent.
Result<int> ConnectLoopback(int port, const ConnectRetry& retry);

/// \brief Closes an fd ignoring EINTR (no-op for fd < 0).
void CloseFd(int fd);

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_FRAME_H_

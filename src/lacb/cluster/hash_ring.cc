#include "lacb/cluster/hash_ring.h"

#include <algorithm>

namespace lacb::cluster {

namespace {

// SplitMix64 finalizer — the same mixer Rng::Fork uses, so ring placement
// is well-spread for consecutive range/vnode indices.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

HashRing::HashRing(size_t num_ranges, size_t vnodes_per_range, uint64_t seed)
    : num_ranges_(std::max<size_t>(1, num_ranges)) {
  points_.reserve(num_ranges_ * vnodes_per_range);
  for (size_t range = 0; range < num_ranges_; ++range) {
    for (size_t v = 0; v < vnodes_per_range; ++v) {
      uint64_t point = Mix64(seed + 0x9e3779b97f4a7c15ULL *
                                        (range * vnodes_per_range + v + 1));
      points_.emplace_back(point, range);
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t HashRing::RangeOfKey(uint64_t key) const {
  if (num_ranges_ == 1) return 0;
  uint64_t h = Mix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<uint64_t, size_t>& p, uint64_t v) {
        return p.first < v;
      });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<size_t> HashRing::DistrictsOfRange(size_t range,
                                               size_t num_districts) const {
  std::vector<size_t> out;
  for (size_t d = 0; d < num_districts; ++d) {
    if (RangeForDistrict(d) == range) out.push_back(d);
  }
  return out;
}

sim::DatasetConfig ShardDatasetConfig(const sim::DatasetConfig& base,
                                      size_t range, size_t num_ranges) {
  if (num_ranges <= 1) return base;  // bit-identity gate: untouched
  sim::DatasetConfig cfg = base;
  cfg.name = base.name + "-r" + std::to_string(range);
  size_t brokers = base.num_brokers / num_ranges;
  if (range < base.num_brokers % num_ranges) ++brokers;
  cfg.num_brokers = std::max<size_t>(1, brokers);
  // Request volume scales with the broker share so RequestsPerBatch (a
  // function of imbalance × |B|) keeps the per-shard batch shape; the
  // actual served traffic is routed externally by the coordinator.
  cfg.num_requests =
      std::max<size_t>(cfg.num_days, base.num_requests / num_ranges);
  // Distinct generator stream per range: shard broker populations are
  // independent draws, together standing in for a partition of the fleet.
  cfg.seed = base.seed + 0x51ab * (range + 1);
  return cfg;
}

}  // namespace lacb::cluster

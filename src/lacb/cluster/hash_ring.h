// Consistent-hash ring: districts → shard ranges (docs/sharding.md).
//
// The fleet is partitioned into `num_ranges` broker ranges. Each range is
// a self-contained AssignmentService over a slice of the broker
// population; the ring decides which range serves a request by hashing
// its district. Virtual nodes (many ring points per range) keep the
// per-range district load balanced, and because the ring is a pure
// function of (num_ranges, vnodes, seed) every process — coordinator and
// shards alike — computes identical routing without coordination.
//
// Ranges are identities, not processes: on failover a surviving shard
// process adopts a dead shard's ranges (the satja/distributed-service-
// selection `fill_brokers_data` topology), and the ring keeps routing by
// range id unchanged.

#ifndef LACB_CLUSTER_HASH_RING_H_
#define LACB_CLUSTER_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lacb/sim/dataset.h"

namespace lacb::cluster {

/// \brief Consistent-hash ring over `num_ranges` shard ranges.
class HashRing {
 public:
  explicit HashRing(size_t num_ranges, size_t vnodes_per_range = 64,
                    uint64_t seed = 0x5ac8c0de);

  size_t num_ranges() const { return num_ranges_; }

  /// \brief Range owning an arbitrary 64-bit key (first ring point at or
  /// after hash(key), wrapping).
  size_t RangeOfKey(uint64_t key) const;

  /// \brief Range serving a request district.
  size_t RangeForDistrict(size_t district) const {
    return RangeOfKey(0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(district));
  }

  /// \brief Districts of `num_districts` that map to `range` (diagnostic /
  /// docs helper).
  std::vector<size_t> DistrictsOfRange(size_t range,
                                       size_t num_districts) const;

 private:
  size_t num_ranges_;
  // Sorted ring points: (hash, range).
  std::vector<std::pair<uint64_t, size_t>> points_;
};

/// \brief The broker-population slice a range serves: a per-range
/// DatasetConfig derived from the fleet's base config. With one range the
/// base config is returned unchanged — the bit-identity gate between a
/// single-shard cluster and the single-process AssignmentService depends
/// on this. With N ranges the broker count is divided (remainder to the
/// low ranges), request volume scales with it, and each range gets a
/// distinct seed so shard populations are independent draws.
sim::DatasetConfig ShardDatasetConfig(const sim::DatasetConfig& base,
                                      size_t range, size_t num_ranges);

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_HASH_RING_H_

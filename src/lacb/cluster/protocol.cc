#include "lacb/cluster/protocol.h"

#include "lacb/persist/bytes.h"
#include "lacb/persist/serializers.h"

namespace lacb::cluster {

namespace {

void WriteDatasetConfig(persist::ByteWriter* w, const sim::DatasetConfig& c) {
  w->Str(c.name);
  w->U64(c.num_brokers);
  w->U64(c.num_requests);
  w->U64(c.num_days);
  w->F64(c.imbalance);
  w->U64(c.num_districts);
  w->U64(c.embedding_dim);
  w->U64(c.seed);
  w->VecF64(c.capacity_candidates);
  w->F64(c.capacity_log_mean);
  w->F64(c.capacity_log_sigma);
  w->F64(c.quality_floor);
  w->F64(c.quality_span);
  w->F64(c.popularity_skew);
  w->F64(c.appeal_rate);
  w->Bool(c.poisson_arrivals);
  w->F64(c.utility.quality_weight);
  w->F64(c.utility.affinity_weight);
  w->F64(c.utility.noise_weight);
  w->F64(c.utility.quality_compression);
  w->U64(c.utility.noise_seed);
}

Result<sim::DatasetConfig> ReadDatasetConfig(persist::ByteReader* r) {
  sim::DatasetConfig c;
  LACB_ASSIGN_OR_RETURN(c.name, r->Str());
  LACB_ASSIGN_OR_RETURN(c.num_brokers, r->U64());
  LACB_ASSIGN_OR_RETURN(c.num_requests, r->U64());
  LACB_ASSIGN_OR_RETURN(c.num_days, r->U64());
  LACB_ASSIGN_OR_RETURN(c.imbalance, r->F64());
  LACB_ASSIGN_OR_RETURN(c.num_districts, r->U64());
  LACB_ASSIGN_OR_RETURN(c.embedding_dim, r->U64());
  LACB_ASSIGN_OR_RETURN(c.seed, r->U64());
  LACB_ASSIGN_OR_RETURN(c.capacity_candidates, r->VecF64());
  LACB_ASSIGN_OR_RETURN(c.capacity_log_mean, r->F64());
  LACB_ASSIGN_OR_RETURN(c.capacity_log_sigma, r->F64());
  LACB_ASSIGN_OR_RETURN(c.quality_floor, r->F64());
  LACB_ASSIGN_OR_RETURN(c.quality_span, r->F64());
  LACB_ASSIGN_OR_RETURN(c.popularity_skew, r->F64());
  LACB_ASSIGN_OR_RETURN(c.appeal_rate, r->F64());
  LACB_ASSIGN_OR_RETURN(c.poisson_arrivals, r->Bool());
  LACB_ASSIGN_OR_RETURN(c.utility.quality_weight, r->F64());
  LACB_ASSIGN_OR_RETURN(c.utility.affinity_weight, r->F64());
  LACB_ASSIGN_OR_RETURN(c.utility.noise_weight, r->F64());
  LACB_ASSIGN_OR_RETURN(c.utility.quality_compression, r->F64());
  LACB_ASSIGN_OR_RETURN(c.utility.noise_seed, r->U64());
  return c;
}

void WriteDisposition(persist::ByteWriter* w,
                      const serve::BatchDisposition& d) {
  w->U64(d.token);
  w->U64(d.day);
  w->VecI64(d.assigned);
  w->VecI64(d.unmatched);
  w->VecI64(d.appealed);
  w->VecI64(d.failed);
  w->VecI64(d.dropped);
}

Result<serve::BatchDisposition> ReadDisposition(persist::ByteReader* r) {
  serve::BatchDisposition d;
  LACB_ASSIGN_OR_RETURN(d.token, r->U64());
  LACB_ASSIGN_OR_RETURN(d.day, r->U64());
  LACB_ASSIGN_OR_RETURN(d.assigned, r->VecI64());
  LACB_ASSIGN_OR_RETURN(d.unmatched, r->VecI64());
  LACB_ASSIGN_OR_RETURN(d.appealed, r->VecI64());
  LACB_ASSIGN_OR_RETURN(d.failed, r->VecI64());
  LACB_ASSIGN_OR_RETURN(d.dropped, r->VecI64());
  return d;
}

}  // namespace

std::string EncodeHello(const Hello& m) {
  persist::ByteWriter w;
  w.U64(m.shard_id);
  w.U64(m.pid);
  return w.Release();
}

Result<Hello> DecodeHello(const std::string& payload) {
  persist::ByteReader r(payload);
  Hello m;
  LACB_ASSIGN_OR_RETURN(m.shard_id, r.U64());
  LACB_ASSIGN_OR_RETURN(m.pid, r.U64());
  return m;
}

std::string EncodeAssignRange(const AssignRange& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  WriteDatasetConfig(&w, m.config);
  w.Str(m.checkpoint_dir);
  w.U64(m.checkpoint_interval_batches);
  w.Bool(m.wal_fsync);
  w.U64(m.suite_seed);
  w.U64(m.policy_index);
  w.U64(m.num_workers);
  w.U64(m.queue_capacity);
  w.U64(m.max_batch_size);
  w.U64(m.max_batch_delay_us);
  return w.Release();
}

Result<AssignRange> DecodeAssignRange(const std::string& payload) {
  persist::ByteReader r(payload);
  AssignRange m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.config, ReadDatasetConfig(&r));
  LACB_ASSIGN_OR_RETURN(m.checkpoint_dir, r.Str());
  LACB_ASSIGN_OR_RETURN(m.checkpoint_interval_batches, r.U64());
  LACB_ASSIGN_OR_RETURN(m.wal_fsync, r.Bool());
  LACB_ASSIGN_OR_RETURN(m.suite_seed, r.U64());
  LACB_ASSIGN_OR_RETURN(m.policy_index, r.U64());
  LACB_ASSIGN_OR_RETURN(m.num_workers, r.U64());
  LACB_ASSIGN_OR_RETURN(m.queue_capacity, r.U64());
  LACB_ASSIGN_OR_RETURN(m.max_batch_size, r.U64());
  LACB_ASSIGN_OR_RETURN(m.max_batch_delay_us, r.U64());
  return m;
}

std::string EncodeRangeReady(const RangeReady& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.Bool(m.restored);
  w.U64(m.day);
  w.Bool(m.day_open);
  w.U64(m.commits_today);
  w.U64(m.replayed_batches);
  w.U64(m.replay_log.size());
  for (const serve::BatchDisposition& d : m.replay_log) {
    WriteDisposition(&w, d);
  }
  w.U64(m.replayed_day_closes.size());
  for (const auto& [day, utility] : m.replayed_day_closes) {
    w.U64(day);
    w.F64(utility);
  }
  w.VecI64(m.carryover_ids);
  return w.Release();
}

Result<RangeReady> DecodeRangeReady(const std::string& payload) {
  persist::ByteReader r(payload);
  RangeReady m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.restored, r.Bool());
  LACB_ASSIGN_OR_RETURN(m.day, r.U64());
  LACB_ASSIGN_OR_RETURN(m.day_open, r.Bool());
  LACB_ASSIGN_OR_RETURN(m.commits_today, r.U64());
  LACB_ASSIGN_OR_RETURN(m.replayed_batches, r.U64());
  LACB_ASSIGN_OR_RETURN(uint64_t log_size, r.U64());
  m.replay_log.reserve(log_size);
  for (uint64_t i = 0; i < log_size; ++i) {
    LACB_ASSIGN_OR_RETURN(serve::BatchDisposition d, ReadDisposition(&r));
    m.replay_log.push_back(std::move(d));
  }
  LACB_ASSIGN_OR_RETURN(uint64_t closes, r.U64());
  m.replayed_day_closes.reserve(closes);
  for (uint64_t i = 0; i < closes; ++i) {
    LACB_ASSIGN_OR_RETURN(uint64_t day, r.U64());
    LACB_ASSIGN_OR_RETURN(double utility, r.F64());
    m.replayed_day_closes.emplace_back(day, utility);
  }
  LACB_ASSIGN_OR_RETURN(m.carryover_ids, r.VecI64());
  return m;
}

std::string EncodeDispositionMsg(const DispositionMsg& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  WriteDisposition(&w, m.disposition);
  return w.Release();
}

Result<DispositionMsg> DecodeDispositionMsg(const std::string& payload) {
  persist::ByteReader r(payload);
  DispositionMsg m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.disposition, ReadDisposition(&r));
  return m;
}

std::string EncodeTicketDone(const TicketDone& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.U64(m.ticket);
  w.VecI64(m.shed_ids);
  return w.Release();
}

Result<TicketDone> DecodeTicketDone(const std::string& payload) {
  persist::ByteReader r(payload);
  TicketDone m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.ticket, r.U64());
  LACB_ASSIGN_OR_RETURN(m.shed_ids, r.VecI64());
  return m;
}

std::string EncodeSubmitBatch(const SubmitBatch& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.U64(m.ticket);
  persist::WriteRequests(&w, m.requests);
  return w.Release();
}

Result<SubmitBatch> DecodeSubmitBatch(const std::string& payload) {
  persist::ByteReader r(payload);
  SubmitBatch m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.ticket, r.U64());
  LACB_ASSIGN_OR_RETURN(m.requests, persist::ReadRequests(&r));
  return m;
}

std::string EncodeDayClosed(const DayClosed& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.U64(m.day);
  w.F64(m.utility);
  w.U64(m.appeals);
  return w.Release();
}

Result<DayClosed> DecodeDayClosed(const std::string& payload) {
  persist::ByteReader r(payload);
  DayClosed m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.day, r.U64());
  LACB_ASSIGN_OR_RETURN(m.utility, r.F64());
  LACB_ASSIGN_OR_RETURN(m.appeals, r.U64());
  return m;
}

std::string EncodeShipBytes(const ShipBytes& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.U64(m.seq);
  w.Str(m.bytes);
  return w.Release();
}

Result<ShipBytes> DecodeShipBytes(const std::string& payload) {
  persist::ByteReader r(payload);
  ShipBytes m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.seq, r.U64());
  LACB_ASSIGN_OR_RETURN(m.bytes, r.Str());
  return m;
}

std::string EncodeStateDump(const StateDump& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.Str(m.platform_state);
  w.Str(m.replica_state);
  return w.Release();
}

Result<StateDump> DecodeStateDump(const std::string& payload) {
  persist::ByteReader r(payload);
  StateDump m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.platform_state, r.Str());
  LACB_ASSIGN_OR_RETURN(m.replica_state, r.Str());
  return m;
}

std::string EncodeChurnMsg(const ChurnMsg& m) {
  persist::ByteWriter w;
  w.U64(m.range);
  w.U64(m.day);
  w.U64(m.batch_offset);
  w.U64(m.broker);
  w.U8(m.kind);
  w.F64(m.cold_capacity);
  return w.Release();
}

Result<ChurnMsg> DecodeChurnMsg(const std::string& payload) {
  persist::ByteReader r(payload);
  ChurnMsg m;
  LACB_ASSIGN_OR_RETURN(m.range, r.U64());
  LACB_ASSIGN_OR_RETURN(m.day, r.U64());
  LACB_ASSIGN_OR_RETURN(m.batch_offset, r.U64());
  LACB_ASSIGN_OR_RETURN(m.broker, r.U64());
  LACB_ASSIGN_OR_RETURN(m.kind, r.U8());
  LACB_ASSIGN_OR_RETURN(m.cold_capacity, r.F64());
  return m;
}

std::string EncodePair(uint64_t a, uint64_t b) {
  persist::ByteWriter w;
  w.U64(a);
  w.U64(b);
  return w.Release();
}

Result<std::pair<uint64_t, uint64_t>> DecodePair(const std::string& payload) {
  persist::ByteReader r(payload);
  std::pair<uint64_t, uint64_t> out;
  LACB_ASSIGN_OR_RETURN(out.first, r.U64());
  LACB_ASSIGN_OR_RETURN(out.second, r.U64());
  return out;
}

}  // namespace lacb::cluster

// Cluster wire protocol: typed messages carried in CRC frames
// (docs/sharding.md). Payloads use the persist layer's little-endian
// ByteWriter/ByteReader, so every message round-trips bit-exactly and a
// truncated payload decodes to a Status instead of UB.

#ifndef LACB_CLUSTER_PROTOCOL_H_
#define LACB_CLUSTER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/status.h"
#include "lacb/serve/service.h"
#include "lacb/sim/dataset.h"
#include "lacb/sim/request.h"

namespace lacb::cluster {

/// \brief Frame type byte. Shard → coordinator types are < 20,
/// coordinator → shard types are ≥ 20.
enum class MessageType : uint8_t {
  // shard → coordinator
  kHello = 1,          ///< shard_id, pid — first frame after connect.
  kHeartbeat = 2,      ///< shard_id, aggregated health state.
  kRangeReady = 3,     ///< range restored/adopted and serving (RangeReady).
  kDisposition = 4,    ///< range, BatchDisposition (live sink forward).
  kTicketDone = 5,     ///< range, ticket, shed ids — releases the window.
  kDayClosed = 6,      ///< range, day, realized utility, appeals.
  kWalShip = 7,        ///< range, ckpt seq, framed WAL record bytes.
  kCheckpointShip = 8, ///< range, seq, encoded checkpoint image.
  kStateDump = 9,      ///< range, platform bytes, replica-0 bytes.
  kShutdownAck = 10,   ///< shard_id — all ranges shut down cleanly.
  // coordinator → shard
  kAssignRange = 20,   ///< build + start a range service (AssignRange).
  kAdoptRange = 21,    ///< same payload; restore from a shipped envelope.
  kOpenDay = 22,       ///< range, day.
  kSubmitBatch = 23,   ///< range, ticket, requests.
  kCloseDay = 24,      ///< range, day.
  kRequestState = 25,  ///< range — reply with kStateDump.
  kShutdown = 26,      ///< drain + shut down every range, then ack.
  kChurnEvent = 27,    ///< range, scenario churn event (ChurnMsg).
};

/// \brief kHello payload.
struct Hello {
  uint64_t shard_id = 0;
  uint64_t pid = 0;
};

/// \brief kAssignRange / kAdoptRange payload: everything a shard needs to
/// build the range's AssignmentService. The dataset config is shipped (not
/// re-derived) so coordinator and shard can never disagree on the slice.
struct AssignRange {
  uint64_t range = 0;
  sim::DatasetConfig config;
  std::string checkpoint_dir;  ///< Local persist dir (adopt: the envelope).
  uint64_t checkpoint_interval_batches = 0;
  bool wal_fsync = false;
  uint64_t suite_seed = 55;
  uint64_t policy_index = 8;
  uint64_t num_workers = 1;
  uint64_t queue_capacity = 4096;
  uint64_t max_batch_size = 1u << 20;
  uint64_t max_batch_delay_us = 300000000;
};

/// \brief kRangeReady payload: restore outcome plus the reconciliation
/// material (replay log, replayed day outcomes, pending carryover).
struct RangeReady {
  uint64_t range = 0;
  bool restored = false;
  uint64_t day = 0;
  bool day_open = false;
  uint64_t commits_today = 0;
  uint64_t replayed_batches = 0;
  std::vector<serve::BatchDisposition> replay_log;
  std::vector<std::pair<uint64_t, double>> replayed_day_closes;
  std::vector<int64_t> carryover_ids;
};

/// \brief kDisposition payload.
struct DispositionMsg {
  uint64_t range = 0;
  serve::BatchDisposition disposition;
};

/// \brief kTicketDone payload.
struct TicketDone {
  uint64_t range = 0;
  uint64_t ticket = 0;
  std::vector<int64_t> shed_ids;
};

/// \brief kSubmitBatch payload.
struct SubmitBatch {
  uint64_t range = 0;
  uint64_t ticket = 0;
  std::vector<sim::Request> requests;
};

/// \brief kDayClosed payload.
struct DayClosed {
  uint64_t range = 0;
  uint64_t day = 0;
  double utility = 0.0;
  uint64_t appeals = 0;
};

/// \brief kWalShip / kCheckpointShip payload.
struct ShipBytes {
  uint64_t range = 0;
  uint64_t seq = 0;
  std::string bytes;
};

/// \brief kChurnEvent payload: one scenario churn event routed to the
/// shard owning `range`. The broker index is range-local (the coordinator
/// maps the global broker through its hash ring before sending). A
/// control-plane injection — applied to the live day, not WAL-journaled;
/// a shard failover between the event and its day close loses it
/// (docs/scenarios.md, "Cluster churn").
struct ChurnMsg {
  uint64_t range = 0;
  uint64_t day = 0;
  uint64_t batch_offset = 0;
  uint64_t broker = 0;
  uint8_t kind = 0;  ///< scenario::ChurnKind underlying value.
  double cold_capacity = 0.0;
};

/// \brief kStateDump payload.
struct StateDump {
  uint64_t range = 0;
  std::string platform_state;
  std::string replica_state;
};

std::string EncodeHello(const Hello& m);
Result<Hello> DecodeHello(const std::string& payload);

std::string EncodeAssignRange(const AssignRange& m);
Result<AssignRange> DecodeAssignRange(const std::string& payload);

std::string EncodeRangeReady(const RangeReady& m);
Result<RangeReady> DecodeRangeReady(const std::string& payload);

std::string EncodeDispositionMsg(const DispositionMsg& m);
Result<DispositionMsg> DecodeDispositionMsg(const std::string& payload);

std::string EncodeTicketDone(const TicketDone& m);
Result<TicketDone> DecodeTicketDone(const std::string& payload);

std::string EncodeSubmitBatch(const SubmitBatch& m);
Result<SubmitBatch> DecodeSubmitBatch(const std::string& payload);

std::string EncodeDayClosed(const DayClosed& m);
Result<DayClosed> DecodeDayClosed(const std::string& payload);

std::string EncodeShipBytes(const ShipBytes& m);
Result<ShipBytes> DecodeShipBytes(const std::string& payload);

std::string EncodeStateDump(const StateDump& m);
Result<StateDump> DecodeStateDump(const std::string& payload);

std::string EncodeChurnMsg(const ChurnMsg& m);
Result<ChurnMsg> DecodeChurnMsg(const std::string& payload);

/// \brief (range, day) pair used by kOpenDay / kCloseDay; kHeartbeat and
/// kShutdownAck reuse it as (shard_id, state) / (shard_id, 0); kRequestState
/// as (range, 0).
std::string EncodePair(uint64_t a, uint64_t b);
Result<std::pair<uint64_t, uint64_t>> DecodePair(const std::string& payload);

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_PROTOCOL_H_

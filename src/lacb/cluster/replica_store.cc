#include "lacb/cluster/replica_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "lacb/persist/bytes.h"
#include "lacb/persist/wal.h"

namespace lacb::cluster {

namespace fs = std::filesystem;

namespace {

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("replica write failed: " + path + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

ReplicaStore::ReplicaStore(std::string root, bool do_fsync)
    : root_(std::move(root)), fsync_(do_fsync) {}

ReplicaStore::~ReplicaStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [range, wal] : open_wals_) {
    if (wal.fd >= 0) ::close(wal.fd);
  }
}

std::string ReplicaStore::RangeDir(uint64_t range) const {
  return root_ + "/range" + std::to_string(range);
}

Status ReplicaStore::EnsureRangeDir(uint64_t range) {
  std::error_code ec;
  fs::create_directories(RangeDir(range), ec);
  if (ec) {
    return Status::IoError("cannot create replica dir: " + RangeDir(range) +
                           ": " + ec.message());
  }
  return Status::OK();
}

Status ReplicaStore::PutCheckpoint(uint64_t range, uint64_t seq,
                                   const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  LACB_RETURN_NOT_OK(EnsureRangeDir(range));
  return persist::WriteFileAtomic(
      RangeDir(range) + "/ckpt-" + std::to_string(seq) + ".bin", bytes,
      fsync_);
}

Status ReplicaStore::AppendWalRecord(uint64_t range, uint64_t seq,
                                     const std::string& framed_record) {
  std::lock_guard<std::mutex> lock(mu_);
  LACB_RETURN_NOT_OK(EnsureRangeDir(range));
  OpenWal& wal = open_wals_[range];
  // Must match CheckpointManager's wal-<seq>.log naming exactly: an adopted
  // shard points its persist layer at a clone of this directory and walks the
  // chain via WalPath(seq), so a different name silently yields zero replay.
  const std::string path =
      RangeDir(range) + "/wal-" + std::to_string(seq) + ".log";
  if (wal.fd < 0 || wal.seq != seq) {
    if (wal.fd >= 0) ::close(wal.fd);
    wal.fd = -1;
    // A new sequence always starts a fresh file (truncate): shipped
    // records arrive in order per range, so anything previously at this
    // path belongs to an older generation of the same takeover.
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      return Status::IoError("cannot open replica WAL: " + path + ": " +
                             std::strerror(errno));
    }
    persist::ByteWriter header;
    for (char c : persist::kWalMagic) header.U8(static_cast<uint8_t>(c));
    header.U32(persist::kWalVersion);
    header.U64(seq);
    Status s = WriteAll(fd, header.bytes().data(), header.bytes().size(), path);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    wal.fd = fd;
    wal.seq = seq;
  }
  LACB_RETURN_NOT_OK(
      WriteAll(wal.fd, framed_record.data(), framed_record.size(), path));
  if (fsync_ && ::fsync(wal.fd) != 0) {
    return Status::IoError("replica WAL fsync failed: " + path);
  }
  return Status::OK();
}

void ReplicaStore::Finalize(uint64_t range) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_wals_.find(range);
  if (it == open_wals_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  open_wals_.erase(it);
}

Result<std::string> ReplicaStore::PrepareAdoptionDir(uint64_t range,
                                                     uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string src = RangeDir(range);
  const std::string dst = root_ + "/adopt/range" + std::to_string(range) +
                          "-g" + std::to_string(generation);
  std::error_code ec;
  fs::create_directories(dst, ec);
  if (ec) {
    return Status::IoError("cannot create adoption dir: " + dst + ": " +
                           ec.message());
  }
  if (fs::exists(src, ec)) {
    for (const auto& entry : fs::directory_iterator(src, ec)) {
      if (!entry.is_regular_file()) continue;
      fs::copy_file(entry.path(), fs::path(dst) / entry.path().filename(),
                    fs::copy_options::overwrite_existing, ec);
      if (ec) {
        return Status::IoError("cannot clone replica file " +
                               entry.path().string() + ": " + ec.message());
      }
    }
  }
  return dst;
}

}  // namespace lacb::cluster

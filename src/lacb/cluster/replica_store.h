// Coordinator-side replica of every range's durable state
// (docs/sharding.md). Shards ship two streams per range over the framed
// protocol:
//
//   - kCheckpointShip: the encoded checkpoint image at sequence s — the
//     bootstrap envelope. Stored atomically as ckpt-<s>.bin.
//   - kWalShip: each WAL record's exact on-disk framing, tagged with its
//     sequence. Appended to wal-<s>.log after a standard WAL header, so
//     the replica file is RecoverWal-compatible byte for byte.
//
// On failover the store clones a range's files into a fresh adoption
// directory; the surviving shard points a new AssignmentService's
// checkpoint_dir at it and Start()'s normal restore path (newest valid
// envelope + WAL-chain replay) brings the range back to the last shipped
// record. Files are never pruned here — the replica is the recovery
// source of truth for the fleet's whole run.

#ifndef LACB_CLUSTER_REPLICA_STORE_H_
#define LACB_CLUSTER_REPLICA_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "lacb/common/result.h"
#include "lacb/common/status.h"

namespace lacb::cluster {

/// \brief Per-range durable replica written from shipped frames.
/// Thread-safe (frames for different ranges arrive on different reader
/// threads).
class ReplicaStore {
 public:
  explicit ReplicaStore(std::string root, bool do_fsync = false);
  ~ReplicaStore();
  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  /// \brief Stores the checkpoint envelope `seq` of `range` atomically.
  Status PutCheckpoint(uint64_t range, uint64_t seq, const std::string& bytes);

  /// \brief Appends one framed WAL record to `range`'s wal-<seq>.log,
  /// writing the WAL header first when the record opens a new sequence.
  Status AppendWalRecord(uint64_t range, uint64_t seq,
                         const std::string& framed_record);

  /// \brief Closes `range`'s open WAL fd (called when its shard dies —
  /// the chain is final and about to be cloned).
  void Finalize(uint64_t range);

  /// \brief Clones `range`'s replica files into a fresh adoption
  /// directory `<root>/adopt/range<range>-g<generation>` and returns its
  /// path. The caller ships the path to the adopting shard.
  Result<std::string> PrepareAdoptionDir(uint64_t range, uint64_t generation);

  /// \brief Directory holding `range`'s replica files.
  std::string RangeDir(uint64_t range) const;

 private:
  struct OpenWal {
    uint64_t seq = 0;
    int fd = -1;
  };

  Status EnsureRangeDir(uint64_t range);

  std::string root_;
  bool fsync_;
  std::mutex mu_;
  std::map<uint64_t, OpenWal> open_wals_;
};

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_REPLICA_STORE_H_

// lacb_shard: one shard process of the sharded serving fleet
// (docs/sharding.md). Spawned by the cluster coordinator via fork+execv;
// everything beyond the connection endpoint and its identity arrives over
// the framed control socket.
//
//   lacb_shard --port=<coordinator port> --shard=<shard id>
//              [--heartbeat-ms=<period>]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lacb/cluster/shard_server.h"

namespace {

bool ParseFlag(const char* arg, const char* name, long* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  long value = std::strtol(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lacb::cluster::ShardServerOptions options;
  long port = -1;
  long shard = -1;
  long heartbeat_ms = 100;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--port", &port)) continue;
    if (ParseFlag(argv[i], "--shard", &shard)) continue;
    if (ParseFlag(argv[i], "--heartbeat-ms", &heartbeat_ms)) continue;
    std::fprintf(stderr, "lacb_shard: unknown argument %s\n", argv[i]);
    return 2;
  }
  if (port <= 0 || shard < 0) {
    std::fprintf(stderr,
                 "usage: lacb_shard --port=<coordinator port> "
                 "--shard=<shard id> [--heartbeat-ms=<period>]\n");
    return 2;
  }
  options.coordinator_port = static_cast<int>(port);
  options.shard_id = static_cast<uint64_t>(shard);
  options.heartbeat_period = std::chrono::milliseconds(heartbeat_ms);

  lacb::cluster::ShardServer server(std::move(options));
  lacb::Status status = server.Run();
  if (!status.ok()) {
    // A non-zero exit drops the socket; the coordinator handles the EOF
    // with the same failover path as a SIGKILL.
    std::fprintf(stderr, "lacb_shard %ld: %s\n", shard,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

#include "lacb/cluster/shard_server.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "lacb/cluster/frame.h"
#include "lacb/core/policy_suite.h"
#include "lacb/obs/exposition.h"

namespace lacb::cluster {

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)) {}

ShardServer::~ShardServer() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_closed_ = true;
  }
  outbox_cv_.notify_all();
  if (outbox_thread_.joinable()) outbox_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  {
    std::lock_guard<std::mutex> lock(ranges_mu_);
    for (auto& [range, rt] : ranges_) {
      if (rt.service != nullptr) rt.service->Shutdown();
    }
  }
  if (fd_ >= 0) CloseFd(fd_);
}

void ShardServer::Enqueue(MessageType type, std::string payload) {
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    if (outbox_closed_ || outbox_failed_) return;
    outbox_.emplace_back(static_cast<uint8_t>(type), std::move(payload));
  }
  outbox_cv_.notify_one();
}

void ShardServer::OutboxLoop() {
  for (;;) {
    std::pair<uint8_t, std::string> item;
    {
      std::unique_lock<std::mutex> lock(outbox_mu_);
      outbox_cv_.wait(lock,
                      [this] { return !outbox_.empty() || outbox_closed_; });
      if (outbox_.empty()) return;  // closed and drained
      item = std::move(outbox_.front());
      outbox_.pop_front();
    }
    Status s = SendFrame(fd_, item.first, item.second);
    if (!s.ok()) {
      // The coordinator treats the broken socket as a shard death; stop
      // shipping and let the control loop's next read surface the error.
      std::lock_guard<std::mutex> lock(outbox_mu_);
      outbox_failed_ = true;
      outbox_.clear();
      return;
    }
  }
}

void ShardServer::HeartbeatLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    uint64_t state = 0;  // healthy
    {
      std::lock_guard<std::mutex> lock(ranges_mu_);
      for (const auto& [range, rt] : ranges_) {
        if (rt.service == nullptr) continue;
        obs::HealthReport report = rt.service->Health();
        state = std::max(state, static_cast<uint64_t>(report.state));
      }
    }
    Enqueue(MessageType::kHeartbeat, EncodePair(options_.shard_id, state));
    std::this_thread::sleep_for(options_.heartbeat_period);
  }
}

ShardServer::RangeRuntime* ShardServer::FindRange(uint64_t range) {
  std::lock_guard<std::mutex> lock(ranges_mu_);
  auto it = ranges_.find(range);
  return it == ranges_.end() ? nullptr : &it->second;
}

Status ShardServer::HandleAssignRange(const std::string& payload, bool adopt) {
  LACB_ASSIGN_OR_RETURN(AssignRange msg, DecodeAssignRange(payload));
  if (FindRange(msg.range) != nullptr) {
    return Status::AlreadyExists("range " + std::to_string(msg.range) +
                                 " already hosted");
  }

  serve::ServeOptions opts;
  opts.queue_capacity = msg.queue_capacity;
  opts.max_batch_size = msg.max_batch_size;
  opts.max_batch_delay = std::chrono::microseconds(msg.max_batch_delay_us);
  opts.num_workers = msg.num_workers;
  opts.checkpoint_dir = msg.checkpoint_dir;
  opts.checkpoint_interval_batches = msg.checkpoint_interval_batches;
  opts.wal_fsync = msg.wal_fsync;
  opts.record_replay_log = true;
  const uint64_t range = msg.range;
  opts.disposition_sink = [this, range](const serve::BatchDisposition& d) {
    DispositionMsg out;
    out.range = range;
    out.disposition = d;
    Enqueue(MessageType::kDisposition, EncodeDispositionMsg(out));
  };
  opts.wal_record_sink = [this, range](uint64_t seq, std::string_view record) {
    ShipBytes out;
    out.range = range;
    out.seq = seq;
    out.bytes.assign(record.data(), record.size());
    Enqueue(MessageType::kWalShip, EncodeShipBytes(out));
  };
  opts.checkpoint_sink = [this, range](uint64_t seq,
                                       const std::string& encoded) {
    ShipBytes out;
    out.range = range;
    out.seq = seq;
    out.bytes = encoded;
    Enqueue(MessageType::kCheckpointShip, EncodeShipBytes(out));
  };

  core::PolicySuiteConfig suite;
  suite.seed = msg.suite_seed;
  LACB_ASSIGN_OR_RETURN(
      auto service,
      serve::AssignmentService::Create(
          msg.config,
          core::SuitePolicyFactory(msg.config, suite, msg.policy_index),
          opts));
  LACB_RETURN_NOT_OK(service->Start());

  RangeReady ready;
  ready.range = range;
  const serve::RestoreInfo& info = service->restore_info();
  ready.restored = info.restored;
  ready.day = info.day;
  ready.day_open = info.day_open;
  ready.commits_today = info.batches_committed_today;
  ready.replayed_batches = info.replayed_batches;
  ready.replay_log = service->replay_log();
  ready.replayed_day_closes = service->replayed_day_closes();
  ready.carryover_ids = service->CarryoverRequestIds();
  (void)adopt;  // adoption differs only in what checkpoint_dir points at

  {
    std::lock_guard<std::mutex> lock(ranges_mu_);
    RangeRuntime& rt = ranges_[range];
    rt.range = range;
    rt.service = std::move(service);
  }
  Enqueue(MessageType::kRangeReady, EncodeRangeReady(ready));
  return Status::OK();
}

Status ShardServer::HandleOpenDay(const std::string& payload) {
  LACB_ASSIGN_OR_RETURN(auto pair, DecodePair(payload));
  RangeRuntime* rt = FindRange(pair.first);
  if (rt == nullptr) {
    return Status::NotFound("kOpenDay for unhosted range " +
                            std::to_string(pair.first));
  }
  return rt->service->OpenDay(pair.second);
}

Status ShardServer::HandleSubmitBatch(const std::string& payload) {
  LACB_ASSIGN_OR_RETURN(SubmitBatch msg, DecodeSubmitBatch(payload));
  RangeRuntime* rt = FindRange(msg.range);
  if (rt == nullptr) {
    return Status::NotFound("kSubmitBatch for unhosted range " +
                            std::to_string(msg.range));
  }
  TicketDone done;
  done.range = msg.range;
  done.ticket = msg.ticket;
  for (const sim::Request& request : msg.requests) {
    if (!rt->service->Submit(request)) done.shed_ids.push_back(request.id);
  }
  rt->service->Flush();
  LACB_RETURN_NOT_OK(rt->service->WaitIdle());
  LACB_RETURN_NOT_OK(rt->service->MaybeCheckpoint());
  // Every disposition of this ticket is already in the outbox (the sink
  // fires before the batch's units retire, i.e. before WaitIdle returned),
  // so the FIFO socket delivers them ahead of this kTicketDone.
  Enqueue(MessageType::kTicketDone, EncodeTicketDone(done));
  return Status::OK();
}

Status ShardServer::HandleCloseDay(const std::string& payload) {
  LACB_ASSIGN_OR_RETURN(auto pair, DecodePair(payload));
  RangeRuntime* rt = FindRange(pair.first);
  if (rt == nullptr) {
    return Status::NotFound("kCloseDay for unhosted range " +
                            std::to_string(pair.first));
  }
  LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, rt->service->CloseDay());
  DayClosed closed;
  closed.range = pair.first;
  closed.day = pair.second;
  closed.utility = outcome.realized_utility;
  closed.appeals = outcome.appeals;
  Enqueue(MessageType::kDayClosed, EncodeDayClosed(closed));
  return Status::OK();
}

Status ShardServer::HandleChurnEvent(const std::string& payload) {
  LACB_ASSIGN_OR_RETURN(ChurnMsg msg, DecodeChurnMsg(payload));
  RangeRuntime* rt = FindRange(msg.range);
  if (rt == nullptr) {
    return Status::NotFound("kChurnEvent for unhosted range " +
                            std::to_string(msg.range));
  }
  scenario::ChurnEvent event;
  event.day = msg.day;
  event.batch_offset = msg.batch_offset;
  event.broker = msg.broker;
  event.kind = static_cast<scenario::ChurnKind>(msg.kind);
  event.cold_capacity = msg.cold_capacity;
  return rt->service->ApplyChurn(event);
}

Status ShardServer::HandleRequestState(const std::string& payload) {
  LACB_ASSIGN_OR_RETURN(auto pair, DecodePair(payload));
  RangeRuntime* rt = FindRange(pair.first);
  if (rt == nullptr) {
    return Status::NotFound("kRequestState for unhosted range " +
                            std::to_string(pair.first));
  }
  StateDump dump;
  dump.range = pair.first;
  LACB_ASSIGN_OR_RETURN(dump.platform_state,
                        rt->service->SerializePlatformState());
  LACB_ASSIGN_OR_RETURN(dump.replica_state,
                        rt->service->SerializeReplicaState(0));
  Enqueue(MessageType::kStateDump, EncodeStateDump(dump));
  return Status::OK();
}

Status ShardServer::HandleShutdown() {
  {
    std::lock_guard<std::mutex> lock(ranges_mu_);
    for (auto& [range, rt] : ranges_) {
      if (rt.service != nullptr) rt.service->Shutdown();
    }
  }
  Enqueue(MessageType::kShutdownAck, EncodePair(options_.shard_id, 0));
  stopping_.store(true, std::memory_order_release);
  return Status::OK();
}

Status ShardServer::Run() {
  LACB_ASSIGN_OR_RETURN(fd_, ConnectLoopback(options_.coordinator_port,
                                             ConnectRetry{}));
  Hello hello;
  hello.shard_id = options_.shard_id;
  hello.pid = static_cast<uint64_t>(::getpid());
  LACB_RETURN_NOT_OK(SendFrame(fd_, static_cast<uint8_t>(MessageType::kHello),
                               EncodeHello(hello)));
  outbox_thread_ = std::thread([this] { OutboxLoop(); });
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });

  Status result = Status::OK();
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Frame> frame = ReadFrame(fd_);
    if (!frame.ok()) {
      result = frame.status();
      break;
    }
    Status s = Status::OK();
    switch (static_cast<MessageType>(frame->type)) {
      case MessageType::kAssignRange:
        s = HandleAssignRange(frame->payload, /*adopt=*/false);
        break;
      case MessageType::kAdoptRange:
        s = HandleAssignRange(frame->payload, /*adopt=*/true);
        break;
      case MessageType::kOpenDay:
        s = HandleOpenDay(frame->payload);
        break;
      case MessageType::kSubmitBatch:
        s = HandleSubmitBatch(frame->payload);
        break;
      case MessageType::kCloseDay:
        s = HandleCloseDay(frame->payload);
        break;
      case MessageType::kChurnEvent:
        s = HandleChurnEvent(frame->payload);
        break;
      case MessageType::kRequestState:
        s = HandleRequestState(frame->payload);
        break;
      case MessageType::kShutdown:
        s = HandleShutdown();
        break;
      default:
        s = Status::InvalidArgument("unexpected frame type " +
                                    std::to_string(frame->type));
        break;
    }
    if (!s.ok()) {
      result = s;
      break;
    }
  }

  stopping_.store(true, std::memory_order_release);
  // Drain the outbox before closing the socket: the kShutdownAck (and any
  // final dispositions) must reach the coordinator on a clean exit.
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_closed_ = true;
  }
  outbox_cv_.notify_all();
  if (outbox_thread_.joinable()) outbox_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  CloseFd(fd_);
  fd_ = -1;
  return result;
}

}  // namespace lacb::cluster

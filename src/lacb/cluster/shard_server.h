// Shard process runtime (docs/sharding.md): connects to the coordinator,
// hosts one embedded AssignmentService per assigned/adopted broker range,
// forwards dispositions + WAL/checkpoint shipping frames through an
// ordered outbox, and heartbeats its aggregated health.
//
// The control loop is intentionally serial: frames from the coordinator
// are processed in FIFO order on one thread, so kOpenDay is always fully
// applied before the day's first kSubmitBatch, and a kSubmitBatch's
// Submit → Flush → WaitIdle completes before the next frame is read.
// Cross-shard parallelism comes from the coordinator pumping all shards
// concurrently, not from intra-shard pipelining.
//
// Any internal failure exits the process non-zero: the coordinator
// observes the EOF and runs the same death/failover path as for a
// SIGKILL, which is exactly the robustness contract under test.

#ifndef LACB_CLUSTER_SHARD_SERVER_H_
#define LACB_CLUSTER_SHARD_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "lacb/cluster/protocol.h"
#include "lacb/common/status.h"
#include "lacb/serve/service.h"

namespace lacb::cluster {

/// \brief Shard runtime knobs (the rest of the configuration arrives over
/// the wire in kAssignRange).
struct ShardServerOptions {
  int coordinator_port = 0;
  uint64_t shard_id = 0;
  std::chrono::milliseconds heartbeat_period{100};
};

/// \brief One shard process: run by lacb_shard's main(), blocking until
/// the coordinator orders shutdown or the connection drops.
class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// \brief Connects, sends kHello, and serves the control loop. Returns
  /// OK after a clean kShutdown handshake; any error means the process
  /// should exit non-zero (the coordinator treats the EOF as a death).
  Status Run();

 private:
  /// One hosted range: the embedded service plus its wire identity.
  struct RangeRuntime {
    uint64_t range = 0;
    std::unique_ptr<serve::AssignmentService> service;
  };

  Status HandleAssignRange(const std::string& payload, bool adopt);
  Status HandleOpenDay(const std::string& payload);
  Status HandleSubmitBatch(const std::string& payload);
  Status HandleCloseDay(const std::string& payload);
  Status HandleChurnEvent(const std::string& payload);
  Status HandleRequestState(const std::string& payload);
  Status HandleShutdown();

  /// Enqueues a frame on the ordered outbox (thread-safe; sinks call this
  /// from worker threads under the service's environment mutex, so it
  /// must never block on the socket).
  void Enqueue(MessageType type, std::string payload);
  void OutboxLoop();
  void HeartbeatLoop();

  RangeRuntime* FindRange(uint64_t range);

  ShardServerOptions options_;
  int fd_ = -1;

  // ranges_mu_ orders control-loop inserts against the heartbeat thread's
  // health sweep; the services themselves are internally synchronized.
  mutable std::mutex ranges_mu_;
  std::map<uint64_t, RangeRuntime> ranges_;

  std::mutex outbox_mu_;
  std::condition_variable outbox_cv_;
  std::deque<std::pair<uint8_t, std::string>> outbox_;
  bool outbox_closed_ = false;
  bool outbox_failed_ = false;
  std::thread outbox_thread_;

  std::atomic<bool> stopping_{false};
  std::thread heartbeat_thread_;
};

}  // namespace lacb::cluster

#endif  // LACB_CLUSTER_SHARD_SERVER_H_

// DiscreteSampler: O(log n) repeated sampling from a fixed categorical
// distribution via a precomputed cumulative table. Use this instead of
// Rng::Categorical / Rng::Zipf when drawing many times from one
// distribution (e.g. request popularity over brokers).

#ifndef LACB_COMMON_DISCRETE_SAMPLER_H_
#define LACB_COMMON_DISCRETE_SAMPLER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "lacb/common/rng.h"

namespace lacb {

/// \brief Samples indices from a fixed non-negative weight vector.
class DiscreteSampler {
 public:
  /// \brief Builds the cumulative table. Zero-total weights degrade to
  /// uniform sampling.
  explicit DiscreteSampler(const std::vector<double>& weights) {
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      acc += std::max(0.0, w);
      cdf_.push_back(acc);
    }
    uniform_fallback_ = (acc <= 0.0);
  }

  /// \brief Builds a Zipf(s) sampler over n ranks (rank 0 most likely).
  static DiscreteSampler Zipf(size_t n, double s) {
    std::vector<double> w(n);
    for (size_t k = 0; k < n; ++k) {
      w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    }
    return DiscreteSampler(w);
  }

  /// \brief Draws one index in [0, size()).
  size_t Sample(Rng* rng) const {
    if (cdf_.empty()) return 0;
    if (uniform_fallback_) {
      return static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(cdf_.size()) - 1));
    }
    double target = rng->Uniform() * cdf_.back();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<size_t>(it - cdf_.begin());
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  bool uniform_fallback_ = false;
};

}  // namespace lacb

#endif  // LACB_COMMON_DISCRETE_SAMPLER_H_

#include "lacb/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace lacb {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// "2026-08-07 13:45:12.345" in UTC (fixed width, no locale).
void FormatTimestamp(char* buf, size_t size) {
  using Clock = std::chrono::system_clock;
  Clock::time_point now = Clock::now();
  std::time_t seconds = Clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &seconds);
#else
  gmtime_r(&seconds, &tm_utc);
#endif
  std::snprintf(buf, size, "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : enabled_(fatal || level >= GetLogLevel()), fatal_(fatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    char ts[64];
    FormatTimestamp(ts, sizeof(ts));
    stream_ << "[" << ts << " " << LevelName(level) << " " << base << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Pre-format the whole record and emit it as a single write so lines
    // from concurrent threads never shear mid-record. fwrite on a stderr
    // FILE* is locked per call (C11/POSIX), unlike operator<< chains.
    std::string record = stream_.str();
    record.push_back('\n');
    std::fwrite(record.data(), 1, record.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace lacb

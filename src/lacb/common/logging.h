// Minimal leveled logging plus CHECK macros for internal invariants.
//
// Library code uses LACB_CHECK only for conditions that indicate a bug in
// the library itself (never for user input — user input errors are reported
// via Status). Logging defaults to kInfo and writes to stderr.

#ifndef LACB_COMMON_LOGGING_H_
#define LACB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lacb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  bool enabled_;
  bool fatal_;
};

}  // namespace internal
}  // namespace lacb

#define LACB_LOG(level)                                                 \
  ::lacb::internal::LogMessage(::lacb::LogLevel::k##level, __FILE__,    \
                               __LINE__)

// Invariant check: aborts with a message when `cond` is false. For internal
// bugs only; never triggered by user input. The do-while(0) wrapper and the
// parenthesized condition make the macro behave as a single statement, so
// `if (x) LACB_CHECK(y); else ...` binds the else to the outer if and a
// condition like `a == b` cannot reassociate with surrounding tokens.
#define LACB_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::lacb::internal::LogMessage(::lacb::LogLevel::kError, __FILE__,     \
                                   __LINE__, true)                         \
          << "Check failed: " #cond " ";                                   \
    }                                                                      \
  } while (0)

#define LACB_CHECK_GE(a, b) LACB_CHECK((a) >= (b))
#define LACB_CHECK_GT(a, b) LACB_CHECK((a) > (b))
#define LACB_CHECK_LE(a, b) LACB_CHECK((a) <= (b))
#define LACB_CHECK_LT(a, b) LACB_CHECK((a) < (b))
#define LACB_CHECK_EQ(a, b) LACB_CHECK((a) == (b))

#endif  // LACB_COMMON_LOGGING_H_

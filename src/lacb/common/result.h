// Result<T>: value-or-Status, the return type for fallible producers.

#ifndef LACB_COMMON_RESULT_H_
#define LACB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "lacb/common/status.h"

namespace lacb {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Constructing a Result from an OK Status is a programming error (there
/// would be no value to return); it is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Implicit from value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// \brief The error status, or OK if a value is present.
  const Status& status() const { return status_; }

  /// \brief The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// \brief Assigns a Result's value to `lhs`, or returns its error status.
#define LACB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define LACB_ASSIGN_OR_RETURN(lhs, expr) \
  LACB_ASSIGN_OR_RETURN_IMPL(            \
      LACB_CONCAT_(_result_, __LINE__), lhs, expr)

#define LACB_CONCAT_INNER_(a, b) a##b
#define LACB_CONCAT_(a, b) LACB_CONCAT_INNER_(a, b)

}  // namespace lacb

#endif  // LACB_COMMON_RESULT_H_

#include "lacb/common/rng.h"

#include <cmath>
#include <sstream>

namespace lacb {

std::string Rng::SaveState() const {
  std::ostringstream os;
  os << seed_ << ' ' << engine_;
  return os.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream is(state);
  uint64_t seed = 0;
  std::mt19937_64 engine;
  if (!(is >> seed >> engine)) {
    return Status::InvalidArgument("malformed Rng state");
  }
  seed_ = seed;
  engine_ = engine;
  return Status::OK();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  // Inverse-CDF on the truncated harmonic series. n is small enough in our
  // simulations (brokers per city) that a linear scan is fine; the loop is
  // dominated by the categorical draw it replaces.
  double h = 0.0;
  for (size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double target = Uniform() * h;
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (target < acc) return k - 1;
  }
  return n - 1;
}

}  // namespace lacb

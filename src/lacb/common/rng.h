// Deterministic random number generation.
//
// Every stochastic component in the library draws from an Rng that is
// explicitly seeded by the caller, so simulations, tests, and benchmarks are
// reproducible run-to-run. Rng also supports cheap forking: `Fork(tag)`
// derives an independent child stream, so per-broker/per-batch randomness
// does not depend on iteration order.

#ifndef LACB_COMMON_RNG_H_
#define LACB_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "lacb/common/status.h"

namespace lacb {

/// \brief Seeded pseudo-random source used throughout the library.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// \brief Derives an independent child generator from this seed and a tag.
  ///
  /// Forking does not consume state from the parent, so the child stream is
  /// stable regardless of how much the parent has been used.
  Rng Fork(uint64_t tag) const {
    // SplitMix64 finalizer mixes seed and tag into a well-spread child seed.
    uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (tag + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// \brief Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// \brief Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// \brief Normal deviate with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// \brief Log-normal deviate (parameters of the underlying normal).
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// \brief Poisson deviate with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// \brief Index in [0, weights.size()) drawn proportionally to weights.
  ///
  /// Weights must be non-negative; if they sum to zero the draw is uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// \brief Zipf-distributed rank in [0, n) with exponent s (s > 0).
  ///
  /// Rank 0 is the most likely outcome; used to model long-tail popularity.
  size_t Zipf(size_t n, double s);

  /// \brief Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

  /// \brief Serializes the full generator state (seed + engine position) as
  /// text; `LoadState` restores it exactly, so a checkpointed Rng resumes
  /// the identical stream. mt19937_64's stream operators are lossless.
  std::string SaveState() const;
  Status LoadState(const std::string& state);

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace lacb

#endif  // LACB_COMMON_RNG_H_

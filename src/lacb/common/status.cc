#include "lacb/common/status.h"

namespace lacb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace lacb

// Status: error-handling primitive for the LACB library.
//
// Library code does not throw exceptions across API boundaries. Fallible
// operations return a Status (or a Result<T>, see result.h) in the style of
// Apache Arrow and RocksDB. A Status is cheap to copy in the OK case (a
// single null pointer) and carries a code plus message otherwise.

#ifndef LACB_COMMON_STATUS_H_
#define LACB_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lacb {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIoError = 8,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Propagates a non-OK Status to the caller.
#define LACB_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::lacb::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace lacb

#endif  // LACB_COMMON_STATUS_H_

// Wall-clock stopwatch used by the engine to time assignment batches.

#ifndef LACB_COMMON_STOPWATCH_H_
#define LACB_COMMON_STOPWATCH_H_

#include <chrono>

namespace lacb {

/// \brief Monotonic wall-clock timer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lacb

#endif  // LACB_COMMON_STOPWATCH_H_

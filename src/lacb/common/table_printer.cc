#include "lacb/common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace lacb {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

Status TablePrinter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::InvalidArgument("row width does not match header width");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lacb

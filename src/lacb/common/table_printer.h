// TablePrinter / CsvWriter: formatting helpers for benchmark output.
//
// Every bench binary prints the series a paper figure plots, in two forms:
// an aligned human-readable table and (optionally) CSV rows suitable for
// re-plotting. These helpers keep that output consistent across benches.

#ifndef LACB_COMMON_TABLE_PRINTER_H_
#define LACB_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "lacb/common/status.h"

namespace lacb {

/// \brief Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// \brief Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends a data row; its width must match the header.
  Status AddRow(std::vector<std::string> row);

  /// \brief Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  /// \brief Writes the aligned table to `os`.
  void Print(std::ostream& os) const;

  /// \brief Writes the table as CSV to `os`.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lacb

#endif  // LACB_COMMON_TABLE_PRINTER_H_

#include "lacb/core/engine.h"

#include <algorithm>

#include "lacb/common/stopwatch.h"

namespace lacb::core {

Result<PolicyRunResult> RunPolicy(const sim::DatasetConfig& config,
                                  policy::AssignmentPolicy* policy) {
  if (policy == nullptr) {
    return Status::InvalidArgument("RunPolicy requires a policy");
  }
  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(config));

  PolicyRunResult result;
  result.policy = policy->name();
  result.dataset = config.name;
  size_t n = platform.num_brokers();
  result.broker_utility.assign(n, 0.0);
  result.broker_requests.assign(n, 0.0);
  result.broker_peak_workload.assign(n, 0.0);
  result.broker_mean_workload.assign(n, 0.0);

  LACB_RETURN_NOT_OK(policy->Initialize(platform));

  size_t days = platform.num_days();
  for (size_t day = 0; day < days; ++day) {
    LACB_RETURN_NOT_OK(platform.StartDay(day));
    Stopwatch day_timer;
    double policy_time = 0.0;

    {
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->BeginDay(platform, day));
      policy_time += sw.ElapsedSeconds();
    }

    size_t batches = platform.NumBatchesToday();
    for (size_t batch = 0; batch < batches; ++batch) {
      LACB_ASSIGN_OR_RETURN(std::vector<sim::Request> requests,
                            platform.BatchRequests(batch));
      LACB_ASSIGN_OR_RETURN(la::Matrix utility, platform.BatchUtility(batch));
      policy::BatchInput input;
      input.requests = &requests;
      input.utility = &utility;
      input.workloads = &platform.workloads_today();
      input.day = day;
      input.batch = batch;

      Stopwatch sw;
      LACB_ASSIGN_OR_RETURN(std::vector<int64_t> assignment,
                            policy->AssignBatch(input));
      policy_time += sw.ElapsedSeconds();

      LACB_RETURN_NOT_OK(platform.CommitAssignment(batch, assignment));
    }

    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, platform.EndDay());
    {
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->EndDay(outcome));
      policy_time += sw.ElapsedSeconds();
    }

    result.daily_utility.push_back(outcome.realized_utility);
    result.daily_policy_seconds.push_back(policy_time);
    result.total_utility += outcome.realized_utility;
    result.policy_seconds += policy_time;
    result.total_appeals += outcome.appeals;
    for (size_t b = 0; b < n; ++b) {
      result.broker_utility[b] += outcome.per_broker_utility[b];
      double w = outcome.per_broker_workload[b];
      result.broker_requests[b] += w;
      result.broker_peak_workload[b] =
          std::max(result.broker_peak_workload[b], w);
      double knee = platform.brokers()[b].latent.true_capacity;
      if (w > knee) {
        ++result.overloaded_broker_days;
        result.overload_excess += w - knee;
      }
    }
  }
  double d = static_cast<double>(std::max<size_t>(1, days));
  for (size_t b = 0; b < n; ++b) {
    result.broker_mean_workload[b] = result.broker_requests[b] / d;
  }
  return result;
}

}  // namespace lacb::core

#include "lacb/core/engine.h"

#include <algorithm>
#include <cmath>

#include "lacb/common/stopwatch.h"
#include "lacb/core/metrics.h"
#include "lacb/matching/assignment.h"
#include "lacb/obs/obs.h"
#include "lacb/policy/lacb_policy.h"

namespace lacb::core {

Result<PolicyRunResult> RunPolicy(const sim::DatasetConfig& config,
                                  policy::AssignmentPolicy* policy) {
  if (policy == nullptr) {
    return Status::InvalidArgument("RunPolicy requires a policy");
  }
  // Every instrumented call site below this frame (policy, matching,
  // bandit layers) writes into this run-scoped context, so the captured
  // snapshot covers exactly one policy × dataset run.
  obs::ScopedTelemetry telemetry;
  obs::Counter& batches_counter =
      telemetry.registry().GetCounter("engine.batches");
  obs::Counter& requests_counter =
      telemetry.registry().GetCounter("engine.requests");
  obs::Counter& assigned_counter =
      telemetry.registry().GetCounter("engine.assigned_requests");
  obs::Histogram& batch_latency =
      telemetry.registry().GetHistogram("engine.batch_assign_seconds");

  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(config));

  PolicyRunResult result;
  result.policy = policy->name();
  result.dataset = config.name;
  size_t n = platform.num_brokers();
  result.broker_utility.assign(n, 0.0);
  result.broker_requests.assign(n, 0.0);
  result.broker_peak_workload.assign(n, 0.0);
  result.broker_mean_workload.assign(n, 0.0);

  LACB_RETURN_NOT_OK(policy->Initialize(platform));

  size_t days = platform.num_days();
  for (size_t day = 0; day < days; ++day) {
    LACB_TRACE_SPAN("day");
    {
      LACB_TRACE_SPAN("env_step");
      LACB_RETURN_NOT_OK(platform.StartDay(day));
    }
    double policy_time = 0.0;

    {
      LACB_TRACE_SPAN("policy_begin_day");
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->BeginDay(platform, day));
      policy_time += sw.ElapsedSeconds();
    }

    size_t batches = platform.NumBatchesToday();
    batches_counter.Increment(batches);
    for (size_t batch = 0; batch < batches; ++batch) {
      std::vector<sim::Request> requests;
      la::Matrix utility;
      {
        LACB_TRACE_SPAN("env_step");
        LACB_ASSIGN_OR_RETURN(requests, platform.BatchRequests(batch));
        LACB_ASSIGN_OR_RETURN(utility, platform.BatchUtility(batch));
      }
      policy::BatchInput input;
      input.requests = &requests;
      input.utility = &utility;
      input.workloads = &platform.workloads_today();
      input.day = day;
      input.batch = batch;
      requests_counter.Increment(requests.size());

      std::vector<int64_t> assignment;
      {
        LACB_TRACE_SPAN("assign_batch");
        Stopwatch sw;
        LACB_ASSIGN_OR_RETURN(assignment, policy->AssignBatch(input));
        double elapsed = sw.ElapsedSeconds();
        policy_time += elapsed;
        batch_latency.Record(elapsed);
      }
      for (int64_t a : assignment) {
        if (a != matching::kUnmatched) assigned_counter.Increment();
      }

      {
        LACB_TRACE_SPAN("env_step");
        LACB_RETURN_NOT_OK(platform.CommitAssignment(batch, assignment));
      }
    }

    sim::DayOutcome outcome;
    {
      LACB_TRACE_SPAN("env_step");
      LACB_ASSIGN_OR_RETURN(outcome, platform.EndDay());
    }
    {
      LACB_TRACE_SPAN("policy_end_day");
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->EndDay(outcome));
      policy_time += sw.ElapsedSeconds();
    }

    result.daily_utility.push_back(outcome.realized_utility);
    result.daily_policy_seconds.push_back(policy_time);
    result.total_utility += outcome.realized_utility;
    result.policy_seconds += policy_time;
    result.total_appeals += outcome.appeals;
    for (size_t b = 0; b < n; ++b) {
      result.broker_utility[b] += outcome.per_broker_utility[b];
      double w = outcome.per_broker_workload[b];
      result.broker_requests[b] += w;
      result.broker_peak_workload[b] =
          std::max(result.broker_peak_workload[b], w);
      double knee = platform.brokers()[b].latent.true_capacity;
      if (w > knee) {
        ++result.overloaded_broker_days;
        result.overload_excess += w - knee;
      }
    }

    // Per-day trajectory gauges: the end-of-run snapshot keeps only their
    // final value, but an attached TimeSeriesSampler (ticked below, one
    // sample per simulated day) turns them into the convergence curves the
    // paper plots — capacity-estimate error shrinking, overload
    // concentration (Gini) flattening under capacity-aware policies.
    obs::MetricRegistry& reg = telemetry.registry();
    reg.GetGauge("engine.day_utility").Set(outcome.realized_utility);
    reg.GetGauge("engine.workload_gini")
        .Set(GiniCoefficient(outcome.per_broker_workload));
    if (auto* lacb = dynamic_cast<policy::LacbPolicy*>(policy);
        lacb != nullptr && lacb->capacities().size() == n) {
      double abs_err = 0.0;
      for (size_t b = 0; b < n; ++b) {
        abs_err += std::abs(lacb->capacities()[b] -
                            platform.brokers()[b].latent.true_capacity);
      }
      reg.GetGauge("engine.capacity_mae")
          .Set(abs_err / static_cast<double>(std::max<size_t>(1, n)));
    }
    if (obs::TimeSeriesSampler* sampler = obs::ActiveSampler();
        sampler != nullptr) {
      sampler->Sample(static_cast<double>(day), reg);
    }
  }
  double d = static_cast<double>(std::max<size_t>(1, days));
  for (size_t b = 0; b < n; ++b) {
    result.broker_mean_workload[b] = result.broker_requests[b] / d;
  }

  if (obs::CollectionEnabled()) {
    std::map<std::string, std::string> meta;
    meta["policy"] = result.policy;
    meta["dataset"] = result.dataset;
    meta["num_brokers"] = std::to_string(platform.num_brokers());
    meta["num_days"] = std::to_string(days);
    meta["policy_seconds"] = std::to_string(result.policy_seconds);
    obs::RunTelemetry captured = obs::CaptureRun(
        telemetry.registry(), telemetry.tracer(), std::move(meta));
    if (obs::TimeSeriesSampler* sampler = obs::ActiveSampler();
        sampler != nullptr) {
      captured.series = sampler->Series();
    }
    result.telemetry =
        std::make_shared<obs::RunTelemetry>(std::move(captured));
  }
  return result;
}

}  // namespace lacb::core

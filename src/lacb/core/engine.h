// Engine: runs one assignment policy through a simulated matching instance
// and collects the metrics every paper figure is built from.
//
// A fresh Platform is created per run from the dataset configuration, so
// every compared policy faces the *same* brokers, requests, and ground
// truth (paired comparison). Timing covers policy compute only (BeginDay +
// AssignBatch), mirroring the paper's "running time" axis which measures
// the assignment algorithms, not the environment.

#ifndef LACB_CORE_ENGINE_H_
#define LACB_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "lacb/obs/snapshot.h"
#include "lacb/policy/assignment_policy.h"
#include "lacb/sim/dataset.h"
#include "lacb/sim/platform.h"

namespace lacb::core {

/// \brief Everything measured over one policy × dataset run.
struct PolicyRunResult {
  std::string policy;
  std::string dataset;

  /// Σ realized utility (u_{r,b} × quality at the broker's daily workload).
  double total_utility = 0.0;
  /// Policy compute time (seconds) across the whole horizon.
  double policy_seconds = 0.0;

  /// Per-day series (cumulative forms are derived by benches).
  std::vector<double> daily_utility;
  std::vector<double> daily_policy_seconds;

  /// Per-broker aggregates over the horizon.
  std::vector<double> broker_utility;
  std::vector<double> broker_requests;       // total served
  std::vector<double> broker_peak_workload;  // max daily workload
  std::vector<double> broker_mean_workload;  // mean daily workload

  /// Broker-days on which the daily workload exceeded the broker's latent
  /// capacity knee (ground-truth overload count; evaluation-only metric).
  size_t overloaded_broker_days = 0;
  /// Σ over broker-days of max(0, workload − latent knee): overload
  /// *severity*, which separates one broker being buried (top-k) from many
  /// brokers being nudged slightly past their knees.
  double overload_excess = 0.0;
  size_t total_appeals = 0;

  /// Serving-path summary (zero for offline engine runs): requests refused
  /// at admission control, and the p99 of per-batch assignment latency in
  /// seconds. Populated by serve::RunPolicyServed so BenchTelemetryLog
  /// serializes offline and served runs uniformly.
  size_t shed_requests = 0;
  double p99_batch_latency = 0.0;
  /// Fault-tolerance ledger of a served run (zero offline): batches that
  /// fell back to the greedy degradation solve, and requests whose commit
  /// exhausted its retry budget (see docs/robustness.md).
  size_t degraded_batches = 0;
  size_t failed_requests = 0;

  /// Structured run telemetry: metrics + span tree collected while this
  /// run executed (see docs/observability.md). Null when collection was
  /// disabled via obs::SetCollectionEnabled(false). Shared so copies of
  /// the result stay cheap.
  std::shared_ptr<const obs::RunTelemetry> telemetry;
};

/// \brief Runs `policy` over a fresh instance of `config`.
Result<PolicyRunResult> RunPolicy(const sim::DatasetConfig& config,
                                  policy::AssignmentPolicy* policy);

}  // namespace lacb::core

#endif  // LACB_CORE_ENGINE_H_

#include "lacb/core/metrics.h"

#include <algorithm>

namespace lacb::core {

Result<ImprovementStats> CompareBrokerUtility(
    const std::vector<double>& candidate,
    const std::vector<double>& baseline) {
  if (candidate.size() != baseline.size()) {
    return Status::InvalidArgument(
        "CompareBrokerUtility: vectors differ in length");
  }
  ImprovementStats stats;
  size_t improved = 0;
  size_t worsened = 0;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] == 0.0 && baseline[i] == 0.0) continue;
    ++stats.considered;
    if (candidate[i] > baseline[i] + 1e-12) ++improved;
    if (candidate[i] < baseline[i] - 1e-12) ++worsened;
  }
  if (stats.considered > 0) {
    stats.improved_fraction =
        static_cast<double>(improved) / static_cast<double>(stats.considered);
    stats.worsened_fraction =
        static_cast<double>(worsened) / static_cast<double>(stats.considered);
  }
  return stats;
}

std::vector<double> TopNDescending(const std::vector<double>& values,
                                   size_t n) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

double MaxToMeanRatio(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double max = values.front();
  for (double v : values) {
    sum += v;
    max = std::max(max, v);
  }
  double mean = sum / static_cast<double>(values.size());
  return mean > 0.0 ? max / mean : 0.0;
}

std::vector<double> CumulativeSeries(const std::vector<double>& daily) {
  std::vector<double> out;
  out.reserve(daily.size());
  double acc = 0.0;
  for (double v : daily) {
    acc += v;
    out.push_back(acc);
  }
  return out;
}

double GiniCoefficient(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  double weighted = 0.0;
  double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    weighted += (static_cast<double>(i) + 1.0) * sorted[i];
  }
  if (total <= 0.0) return 0.0;
  // G = (2 Σ i·x_(i) / (n Σ x)) − (n+1)/n, with 1-based ranks.
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

std::vector<double> LorenzCurve(const std::vector<double>& values,
                                size_t points) {
  std::vector<double> curve;
  if (values.empty() || points == 0) return curve;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double v : sorted) total += v;
  curve.reserve(points);
  double acc = 0.0;
  size_t idx = 0;
  for (size_t p = 1; p <= points; ++p) {
    size_t upto = sorted.size() * p / points;
    for (; idx < upto; ++idx) acc += sorted[idx];
    curve.push_back(total > 0.0 ? acc / total : 0.0);
  }
  return curve;
}

}  // namespace lacb::core

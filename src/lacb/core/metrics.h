// Metric helpers shared by the figure-reproduction benches.

#ifndef LACB_CORE_METRICS_H_
#define LACB_CORE_METRICS_H_

#include <vector>

#include "lacb/common/result.h"
#include "lacb/core/engine.h"

namespace lacb::core {

/// \brief Fractions of brokers whose utility improved / worsened vs a
/// baseline run (paper Sec. VII-C: "80.8% brokers in LACB have an
/// improvement in utility compared with Top-K"). Brokers with zero utility
/// under both policies are excluded.
struct ImprovementStats {
  double improved_fraction = 0.0;
  double worsened_fraction = 0.0;
  size_t considered = 0;
};
Result<ImprovementStats> CompareBrokerUtility(
    const std::vector<double>& candidate,
    const std::vector<double>& baseline);

/// \brief The `n` largest values, descending (per-broker utility/workload
/// distributions of Figs. 4, 9, 10).
std::vector<double> TopNDescending(const std::vector<double>& values,
                                   size_t n);

/// \brief Ratio of the maximum value to the mean (the paper's "top-1
/// broker's workload is 12.03× larger than the average" statistic).
/// Zero-mean inputs return 0.
double MaxToMeanRatio(const std::vector<double>& values);

/// \brief Cumulative sums of a per-day series (Fig. 11 running-time axes).
std::vector<double> CumulativeSeries(const std::vector<double>& daily);

/// \brief Gini coefficient of a non-negative distribution in [0, 1]:
/// 0 = perfectly equal, →1 = fully concentrated. Quantifies the Matthew
/// effect the paper describes (top brokers occupying most requests).
/// Returns 0 for empty or all-zero input.
double GiniCoefficient(const std::vector<double>& values);

/// \brief Lorenz curve sampled at `points` evenly spaced population
/// fractions: entry i is the share of the total held by the bottom
/// (i+1)/points of the population. Empty input yields an empty curve.
std::vector<double> LorenzCurve(const std::vector<double>& values,
                                size_t points);

}  // namespace lacb::core

#endif  // LACB_CORE_METRICS_H_

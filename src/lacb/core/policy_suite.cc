#include "lacb/core/policy_suite.h"

namespace lacb::core {

bandit::NeuralUcbConfig DefaultBanditConfig(const sim::DatasetConfig& dataset,
                                            uint64_t seed) {
  bandit::NeuralUcbConfig cfg;
  cfg.arm_values = dataset.capacity_candidates;
  cfg.context_dim = sim::Broker::kContextDim;
  cfg.hidden_sizes = {32, 16};  // 3-layer MLP (paper Sec. V-E discussion)
  // The paper reports α=0.001 on its production feature scales; on our
  // normalized synthetic features that bonus is too small to escape the
  // untrained network's argmax (no arm ever gets explored). 0.5 restores
  // meaningful optimism that decays as D accumulates gradient mass.
  cfg.alpha = 0.5;
  cfg.lambda = 0.001;
  cfg.batch_size = 16;
  cfg.train_epochs = 30;
  cfg.learning_rate = 0.05;
  // Normalize the capacity input onto the [0,1] scale of the context.
  double max_arm = 1.0;
  for (double v : cfg.arm_values) max_arm = std::max(max_arm, v);
  cfg.value_scale = 1.0 / max_arm;
  cfg.covariance = bandit::CovarianceMode::kDiagonal;
  cfg.seed = seed;
  return cfg;
}

policy::LacbPolicyConfig DefaultLacbConfig(const sim::DatasetConfig& dataset,
                                           const PolicySuiteConfig& suite,
                                           bool use_cbs) {
  policy::LacbPolicyConfig cfg;
  // Share the estimator seed with the AN baseline (suite.seed + 7): the
  // capacity bandit's learning trajectory carries substantial variance at
  // small scale, and a paired LACB-vs-AN comparison should isolate the
  // value-function/personalization delta, not redraw the bandit.
  cfg.estimator.bandit = DefaultBanditConfig(dataset, suite.seed + 7);
  // Transfer after ~a month of per-broker observations (see the estimator
  // config docs); shorter horizons run on the generic base, like the
  // paper's early deployment days.
  cfg.estimator.personalization_threshold = 30;
  cfg.td_learning_rate = 0.25;
  cfg.td_discount = 0.9;
  cfg.capacity_hit_threshold = 0.8;
  cfg.use_cbs = use_cbs;
  cfg.pad_to_square = suite.pad_to_square;
  cfg.seed = suite.seed + (use_cbs ? 23 : 13);
  return cfg;
}

Result<std::vector<std::unique_ptr<policy::AssignmentPolicy>>>
MakePolicySuite(const sim::DatasetConfig& dataset,
                const PolicySuiteConfig& suite) {
  std::vector<std::unique_ptr<policy::AssignmentPolicy>> out;
  out.push_back(std::make_unique<policy::TopKPolicy>(1, suite.seed + 1));
  out.push_back(std::make_unique<policy::TopKPolicy>(3, suite.seed + 2));
  out.push_back(
      std::make_unique<policy::RandomizedRecommendationPolicy>(suite.seed + 3));
  out.push_back(std::make_unique<policy::ConstrainedTopKPolicy>(
      1, suite.ctopk_capacity, suite.seed + 4));
  out.push_back(std::make_unique<policy::ConstrainedTopKPolicy>(
      3, suite.ctopk_capacity, suite.seed + 5));
  if (suite.include_cubic) {
    out.push_back(std::make_unique<policy::KmPolicy>(suite.pad_to_square));
    policy::AnPolicyConfig an;
    an.bandit = DefaultBanditConfig(dataset, suite.seed + 7);
    an.pad_to_square = suite.pad_to_square;
    LACB_ASSIGN_OR_RETURN(std::unique_ptr<policy::AnPolicy> an_policy,
                          policy::AnPolicy::Create(an));
    out.push_back(std::move(an_policy));
    LACB_ASSIGN_OR_RETURN(
        std::unique_ptr<policy::LacbPolicy> lacb,
        policy::LacbPolicy::Create(DefaultLacbConfig(dataset, suite, false)));
    out.push_back(std::move(lacb));
  }
  LACB_ASSIGN_OR_RETURN(
      std::unique_ptr<policy::LacbPolicy> lacb_opt,
      policy::LacbPolicy::Create(DefaultLacbConfig(dataset, suite, true)));
  out.push_back(std::move(lacb_opt));
  return out;
}

Result<std::unique_ptr<policy::AssignmentPolicy>> MakeSuitePolicy(
    const sim::DatasetConfig& dataset, const PolicySuiteConfig& suite,
    size_t index) {
  LACB_ASSIGN_OR_RETURN(auto policies, MakePolicySuite(dataset, suite));
  if (index >= policies.size()) {
    return Status::OutOfRange("suite policy index out of range");
  }
  return std::move(policies[index]);
}

policy::PolicyFactory SuitePolicyFactory(const sim::DatasetConfig& dataset,
                                         const PolicySuiteConfig& suite,
                                         size_t index) {
  return [dataset, suite, index] {
    return MakeSuitePolicy(dataset, suite, index);
  };
}

}  // namespace lacb::core

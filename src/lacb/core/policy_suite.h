// Factory for the paper's compared-algorithm suite (Sec. VII-A):
// Top-1, Top-3, RR, KM, CTop-1, CTop-3, AN, LACB, LACB-Opt.

#ifndef LACB_CORE_POLICY_SUITE_H_
#define LACB_CORE_POLICY_SUITE_H_

#include <memory>
#include <vector>

#include "lacb/policy/an_policy.h"
#include "lacb/policy/km_policy.h"
#include "lacb/policy/lacb_policy.h"
#include "lacb/policy/recommendation.h"
#include "lacb/sim/dataset.h"

namespace lacb::core {

/// \brief Suite-wide knobs.
struct PolicySuiteConfig {
  /// Empirical city-wide capacity for CTop-K (paper: 45/55/40 for A/B/C).
  double ctopk_capacity = 45.0;
  /// Padded (O(|B|³)) KM for the KM-based policies, as in the paper.
  bool pad_to_square = true;
  /// Include the cubic-time policies (KM, AN, LACB); benches at very large
  /// |B| may drop them exactly like the paper's timeout handling.
  bool include_cubic = true;
  uint64_t seed = 99;
};

/// \brief NeuralUCB configuration shared by AN and LACB for a dataset:
/// paper constants (α=0.001, λ=0.001, batchSize=16, 3-layer MLP), arms from
/// the dataset's candidate capacities, diagonal covariance.
bandit::NeuralUcbConfig DefaultBanditConfig(const sim::DatasetConfig& dataset,
                                            uint64_t seed);

/// \brief LACB configuration with the paper's β=0.25, γ=0.9, δ=0.8.
policy::LacbPolicyConfig DefaultLacbConfig(const sim::DatasetConfig& dataset,
                                           const PolicySuiteConfig& suite,
                                           bool use_cbs);

/// \brief Builds the full compared suite in the paper's order.
Result<std::vector<std::unique_ptr<policy::AssignmentPolicy>>>
MakePolicySuite(const sim::DatasetConfig& dataset,
                const PolicySuiteConfig& suite);

/// \brief Builds just the `index`-th policy of the suite (the serving
/// layer creates one replica per worker this way). Indices follow the
/// suite order; OutOfRange past the end.
Result<std::unique_ptr<policy::AssignmentPolicy>> MakeSuitePolicy(
    const sim::DatasetConfig& dataset, const PolicySuiteConfig& suite,
    size_t index);

/// \brief Factory producing bit-identical replicas of suite policy
/// `index` (see policy::PolicyFactory).
policy::PolicyFactory SuitePolicyFactory(const sim::DatasetConfig& dataset,
                                         const PolicySuiteConfig& suite,
                                         size_t index);

}  // namespace lacb::core

#endif  // LACB_CORE_POLICY_SUITE_H_

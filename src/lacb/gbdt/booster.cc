#include "lacb/gbdt/booster.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace lacb::gbdt {

Result<Booster> Booster::Fit(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets,
                             const BoosterConfig& config) {
  if (features.empty() || features.size() != targets.size()) {
    return Status::InvalidArgument(
        "booster fit needs non-empty, equal-length features and targets");
  }
  if (config.num_rounds == 0) {
    return Status::InvalidArgument("num_rounds must be positive");
  }
  if (config.shrinkage <= 0.0 || config.shrinkage > 1.0) {
    return Status::InvalidArgument("shrinkage must be in (0,1]");
  }
  if (config.subsample <= 0.0 || config.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0,1]");
  }
  if (config.early_stopping_rounds > 0 &&
      (config.validation_fraction <= 0.0 ||
       config.validation_fraction >= 1.0)) {
    return Status::InvalidArgument(
        "early stopping requires a validation fraction in (0,1)");
  }

  Rng rng(config.seed);
  size_t n = features.size();
  // Train/validation split (shuffled).
  std::vector<size_t> index(n);
  std::iota(index.begin(), index.end(), 0);
  rng.Shuffle(&index);
  size_t val_n = static_cast<size_t>(config.validation_fraction *
                                     static_cast<double>(n));
  std::vector<size_t> val_rows(index.begin(),
                               index.begin() + static_cast<long>(val_n));
  std::vector<size_t> train_rows(index.begin() + static_cast<long>(val_n),
                                 index.end());
  if (train_rows.empty()) {
    return Status::InvalidArgument("validation fraction leaves no train data");
  }

  double base = 0.0;
  for (size_t r : train_rows) base += targets[r];
  base /= static_cast<double>(train_rows.size());

  std::vector<double> prediction(n, base);
  std::vector<RegressionTree> trees;
  double best_val = std::numeric_limits<double>::infinity();
  size_t best_round = 0;
  size_t rounds_since_best = 0;

  for (size_t round = 0; round < config.num_rounds; ++round) {
    // Residual targets over a (sub)sample of the training rows.
    std::vector<size_t> rows;
    if (config.subsample >= 1.0) {
      rows = train_rows;
    } else {
      for (size_t r : train_rows) {
        if (rng.Bernoulli(config.subsample)) rows.push_back(r);
      }
      if (rows.size() < 2 * config.tree.min_samples_per_leaf) {
        rows = train_rows;
      }
    }
    std::vector<std::vector<double>> sub_features;
    std::vector<double> residuals;
    sub_features.reserve(rows.size());
    residuals.reserve(rows.size());
    for (size_t r : rows) {
      sub_features.push_back(features[r]);
      residuals.push_back(targets[r] - prediction[r]);
    }
    LACB_ASSIGN_OR_RETURN(RegressionTree tree,
                          RegressionTree::Fit(sub_features, residuals,
                                              config.tree));
    // Update cached predictions for all rows.
    for (size_t r = 0; r < n; ++r) {
      LACB_ASSIGN_OR_RETURN(double t, tree.Predict(features[r]));
      prediction[r] += config.shrinkage * t;
    }
    trees.push_back(std::move(tree));

    if (config.early_stopping_rounds > 0 && !val_rows.empty()) {
      double val_mse = 0.0;
      for (size_t r : val_rows) {
        double e = prediction[r] - targets[r];
        val_mse += e * e;
      }
      val_mse /= static_cast<double>(val_rows.size());
      if (val_mse + 1e-12 < best_val) {
        best_val = val_mse;
        best_round = trees.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= config.early_stopping_rounds) {
        trees.erase(trees.begin() + static_cast<long>(best_round),
                    trees.end());
        break;
      }
    }
  }
  return Booster(base, config.shrinkage, std::move(trees));
}

Result<double> Booster::Predict(const std::vector<double>& row) const {
  double out = base_score_;
  for (const RegressionTree& tree : trees_) {
    LACB_ASSIGN_OR_RETURN(double t, tree.Predict(row));
    out += shrinkage_ * t;
  }
  return out;
}

Result<double> Booster::MeanSquaredError(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets) const {
  if (features.size() != targets.size() || features.empty()) {
    return Status::InvalidArgument("MSE needs equal-length non-empty data");
  }
  double mse = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    LACB_ASSIGN_OR_RETURN(double p, Predict(features[i]));
    double e = p - targets[i];
    mse += e * e;
  }
  return mse / static_cast<double>(features.size());
}

}  // namespace lacb::gbdt

// Gradient-boosted regression trees (squared loss), the "XGBoost-style"
// learner the paper's production utility model uses.
//
// Standard boosting on the squared loss: each round fits a regression tree
// to the current residuals and adds it with a shrinkage factor. Supports
// row subsampling (stochastic gradient boosting) and early stopping on a
// validation split.

#ifndef LACB_GBDT_BOOSTER_H_
#define LACB_GBDT_BOOSTER_H_

#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/rng.h"
#include "lacb/gbdt/tree.h"

namespace lacb::gbdt {

/// \brief Training options for the boosted ensemble.
struct BoosterConfig {
  TreeConfig tree;
  size_t num_rounds = 100;
  /// Shrinkage (learning rate) applied to each tree's contribution.
  double shrinkage = 0.1;
  /// Fraction of rows sampled per round (1.0 = no subsampling).
  double subsample = 1.0;
  /// Rounds without validation improvement before stopping (0 disables;
  /// requires a validation fraction > 0).
  size_t early_stopping_rounds = 0;
  /// Fraction of the data held out for early stopping.
  double validation_fraction = 0.0;
  uint64_t seed = 1;
};

/// \brief A trained gradient-boosted tree ensemble.
class Booster {
 public:
  /// \brief Fits the ensemble; `features` is num_rows × num_features.
  static Result<Booster> Fit(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets,
                             const BoosterConfig& config);

  /// \brief Predicted value for one feature row.
  Result<double> Predict(const std::vector<double>& row) const;

  /// \brief Mean squared error over a dataset.
  Result<double> MeanSquaredError(
      const std::vector<std::vector<double>>& features,
      const std::vector<double>& targets) const;

  size_t num_trees() const { return trees_.size(); }
  double base_score() const { return base_score_; }

 private:
  Booster(double base_score, double shrinkage,
          std::vector<RegressionTree> trees)
      : base_score_(base_score),
        shrinkage_(shrinkage),
        trees_(std::move(trees)) {}

  double base_score_;
  double shrinkage_;
  std::vector<RegressionTree> trees_;
};

}  // namespace lacb::gbdt

#endif  // LACB_GBDT_BOOSTER_H_

#include "lacb/gbdt/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lacb::gbdt {

namespace {

struct Builder {
  const std::vector<std::vector<double>>& features;
  const std::vector<double>& targets;
  const TreeConfig& config;
  std::vector<int32_t> nodes_feature;
  std::vector<double> nodes_threshold;
  std::vector<int32_t> nodes_left;
  std::vector<int32_t> nodes_right;
  std::vector<double> nodes_value;

  int32_t NewNode() {
    nodes_feature.push_back(-1);
    nodes_threshold.push_back(0.0);
    nodes_left.push_back(-1);
    nodes_right.push_back(-1);
    nodes_value.push_back(0.0);
    return static_cast<int32_t>(nodes_feature.size()) - 1;
  }

  double LeafValue(const std::vector<size_t>& rows) const {
    double sum = 0.0;
    for (size_t r : rows) sum += targets[r];
    return sum / (static_cast<double>(rows.size()) + config.leaf_l2);
  }

  // Best split of `rows` on one feature by exact sorted scan; returns the
  // SSE-reduction gain (negative if no valid split).
  struct Split {
    double gain = -1.0;
    size_t feature = 0;
    double threshold = 0.0;
  };

  Split BestSplit(const std::vector<size_t>& rows) const {
    Split best;
    size_t n = rows.size();
    double total_sum = 0.0;
    for (size_t r : rows) total_sum += targets[r];
    double parent_score = total_sum * total_sum / static_cast<double>(n);

    size_t num_features = features.front().size();
    std::vector<size_t> order(rows);
    for (size_t f = 0; f < num_features; ++f) {
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return features[a][f] < features[b][f];
      });
      double left_sum = 0.0;
      for (size_t i = 0; i + 1 < n; ++i) {
        left_sum += targets[order[i]];
        size_t left_n = i + 1;
        size_t right_n = n - left_n;
        // Splits between equal feature values are not realizable.
        if (features[order[i]][f] == features[order[i + 1]][f]) continue;
        if (left_n < config.min_samples_per_leaf ||
            right_n < config.min_samples_per_leaf) {
          continue;
        }
        double right_sum = total_sum - left_sum;
        double score = left_sum * left_sum / static_cast<double>(left_n) +
                       right_sum * right_sum / static_cast<double>(right_n);
        double gain = score - parent_score;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = 0.5 * (features[order[i]][f] +
                                  features[order[i + 1]][f]);
        }
      }
    }
    return best;
  }

  int32_t Build(const std::vector<size_t>& rows, size_t depth) {
    int32_t node = NewNode();
    if (depth >= config.max_depth ||
        rows.size() < 2 * config.min_samples_per_leaf) {
      nodes_value[node] = LeafValue(rows);
      return node;
    }
    Split split = BestSplit(rows);
    if (split.gain < config.min_split_gain) {
      nodes_value[node] = LeafValue(rows);
      return node;
    }
    std::vector<size_t> left_rows;
    std::vector<size_t> right_rows;
    for (size_t r : rows) {
      (features[r][split.feature] < split.threshold ? left_rows : right_rows)
          .push_back(r);
    }
    nodes_feature[node] = static_cast<int32_t>(split.feature);
    nodes_threshold[node] = split.threshold;
    nodes_left[node] = Build(left_rows, depth + 1);
    nodes_right[node] = Build(right_rows, depth + 1);
    return node;
  }
};

}  // namespace

Result<RegressionTree> RegressionTree::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, const TreeConfig& config) {
  if (features.empty() || features.size() != targets.size()) {
    return Status::InvalidArgument(
        "tree fit needs non-empty, equal-length features and targets");
  }
  size_t num_features = features.front().size();
  if (num_features == 0) {
    return Status::InvalidArgument("tree fit needs at least one feature");
  }
  for (const auto& row : features) {
    if (row.size() != num_features) {
      return Status::InvalidArgument("tree fit: ragged feature rows");
    }
  }
  if (config.min_samples_per_leaf == 0) {
    return Status::InvalidArgument("min_samples_per_leaf must be positive");
  }

  Builder builder{features, targets, config, {}, {}, {}, {}, {}};
  std::vector<size_t> all(features.size());
  std::iota(all.begin(), all.end(), 0);
  builder.Build(all, 0);

  std::vector<Node> nodes(builder.nodes_feature.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].feature = builder.nodes_feature[i];
    nodes[i].threshold = builder.nodes_threshold[i];
    nodes[i].left = builder.nodes_left[i];
    nodes[i].right = builder.nodes_right[i];
    nodes[i].value = builder.nodes_value[i];
  }
  return RegressionTree(std::move(nodes), num_features);
}

Result<double> RegressionTree::Predict(const std::vector<double>& row) const {
  if (row.size() != num_features_) {
    return Status::InvalidArgument("tree predict: feature-count mismatch");
  }
  int32_t node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[static_cast<size_t>(n.feature)] < n.threshold ? n.left
                                                             : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace lacb::gbdt

// Regression tree for the gradient-boosting substrate.
//
// The paper's utility input u_{r,b} is produced in production by an
// XGBoost model over (request, broker) features (Sec. III: "can be learned
// from historical assignments using models such as XGBoost"). This module
// provides the tree learner that lacb::gbdt::Booster stacks: binary trees
// grown greedily on variance reduction with exact split search over
// pre-sorted features, depth/leaf-size limits, and optional L2 leaf
// shrinkage à la XGBoost.

#ifndef LACB_GBDT_TREE_H_
#define LACB_GBDT_TREE_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"

namespace lacb::gbdt {

/// \brief Training options for one regression tree.
struct TreeConfig {
  size_t max_depth = 4;
  size_t min_samples_per_leaf = 8;
  /// L2 regularization on leaf values (XGBoost's λ): leaf = Σr / (n + λ).
  double leaf_l2 = 1.0;
  /// Minimum total gain (SSE reduction) to accept a split.
  double min_split_gain = 1e-7;
};

/// \brief A trained binary regression tree over dense feature rows.
class RegressionTree {
 public:
  /// \brief Fits a tree to `targets` over row-major `features`
  /// (num_rows × num_features).
  static Result<RegressionTree> Fit(const std::vector<std::vector<double>>& features,
                                    const std::vector<double>& targets,
                                    const TreeConfig& config);

  /// \brief Predicted value for one feature row.
  Result<double> Predict(const std::vector<double>& row) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_features() const { return num_features_; }

 private:
  struct Node {
    // Internal nodes: split on features[feature] < threshold.
    int32_t feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;  // leaf prediction
  };

  RegressionTree(std::vector<Node> nodes, size_t num_features)
      : nodes_(std::move(nodes)), num_features_(num_features) {}

  std::vector<Node> nodes_;
  size_t num_features_;
};

}  // namespace lacb::gbdt

#endif  // LACB_GBDT_TREE_H_

#include "lacb/la/linalg.h"

#include <cmath>

namespace lacb::la {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 1e-12) {
          return Status::FailedPrecondition(
              "Cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Result<Vector> CholeskySolve(const Matrix& l, const Vector& b) {
  size_t n = l.rows();
  if (l.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve shape mismatch");
  }
  // Forward solve L y = b.
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back solve Lᵀ x = y.
  Vector x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<Matrix> SpdInverse(const Matrix& a) {
  LACB_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  size_t n = a.rows();
  Matrix inv(n, n, 0.0);
  Vector e(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    LACB_ASSIGN_OR_RETURN(Vector col, CholeskySolve(l, e));
    e[j] = 0.0;
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

Result<ShermanMorrisonInverse> ShermanMorrisonInverse::Create(size_t dim,
                                                              double lambda) {
  if (dim == 0) {
    return Status::InvalidArgument("covariance dimension must be positive");
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("covariance ridge lambda must be positive");
  }
  return ShermanMorrisonInverse(Matrix::Identity(dim, 1.0 / lambda));
}

Status ShermanMorrisonInverse::RankOneUpdate(const Vector& g) {
  if (g.size() != inv_.rows()) {
    return Status::InvalidArgument("RankOneUpdate dimension mismatch");
  }
  LACB_ASSIGN_OR_RETURN(Vector dg, inv_.MatVec(g));
  double denom = 1.0 + Dot(g, dg);
  // D is SPD so denom >= 1; this guards numerical drift only.
  if (denom <= 1e-12) {
    return Status::Internal("Sherman-Morrison update became singular");
  }
  LACB_RETURN_NOT_OK(inv_.AddOuter(dg, -1.0 / denom));
  return Status::OK();
}

Result<double> ShermanMorrisonInverse::QuadraticForm(const Vector& g) const {
  if (g.size() != inv_.rows()) {
    return Status::InvalidArgument("QuadraticForm dimension mismatch");
  }
  LACB_ASSIGN_OR_RETURN(Vector dg, inv_.MatVec(g));
  return Dot(g, dg);
}

Result<DiagonalInverse> DiagonalInverse::Create(size_t dim, double lambda) {
  if (dim == 0) {
    return Status::InvalidArgument("covariance dimension must be positive");
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("covariance ridge lambda must be positive");
  }
  return DiagonalInverse(Vector(dim, lambda));
}

Status DiagonalInverse::RankOneUpdate(const Vector& g) {
  if (g.size() != diag_.size()) {
    return Status::InvalidArgument("RankOneUpdate dimension mismatch");
  }
  for (size_t i = 0; i < g.size(); ++i) diag_[i] += g[i] * g[i];
  return Status::OK();
}

Result<double> DiagonalInverse::QuadraticForm(const Vector& g) const {
  if (g.size() != diag_.size()) {
    return Status::InvalidArgument("QuadraticForm dimension mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < g.size(); ++i) acc += g[i] * g[i] / diag_[i];
  return acc;
}

}  // namespace lacb::la

// Factorizations and incremental inverses for SPD matrices.
//
// The bandit covariance matrix D = λI + Σ g gᵀ is symmetric positive
// definite. The UCB confidence width needs the quadratic form gᵀ D⁻¹ g on
// every arm evaluation, so we maintain D⁻¹ incrementally with the
// Sherman–Morrison identity; Cholesky is provided for batch solves and as
// an independent oracle in tests.

#ifndef LACB_LA_LINALG_H_
#define LACB_LA_LINALG_H_

#include "lacb/la/matrix.h"

namespace lacb::la {

/// \brief Cholesky factorization A = L Lᵀ of an SPD matrix.
///
/// Returns InvalidArgument for non-square input and FailedPrecondition when
/// the matrix is not positive definite (within a small pivot tolerance).
Result<Matrix> CholeskyFactor(const Matrix& a);

/// \brief Solves A x = b given the Cholesky factor L of A.
Result<Vector> CholeskySolve(const Matrix& l, const Vector& b);

/// \brief Full inverse of an SPD matrix via Cholesky.
Result<Matrix> SpdInverse(const Matrix& a);

/// \brief Maintains D⁻¹ under rank-1 updates D ← D + g gᵀ.
///
/// Sherman–Morrison: (D + ggᵀ)⁻¹ = D⁻¹ − (D⁻¹g)(D⁻¹g)ᵀ / (1 + gᵀD⁻¹g).
/// Each update and each quadratic-form query is O(d²).
class ShermanMorrisonInverse {
 public:
  /// \brief Starts from D = λ I (λ > 0 keeps D invertible).
  static Result<ShermanMorrisonInverse> Create(size_t dim, double lambda);

  /// \brief Rehydrates from a previously exported inverse() matrix
  /// (checkpoint restore); the matrix must be square and non-empty.
  static Result<ShermanMorrisonInverse> FromInverse(Matrix inv) {
    if (inv.rows() == 0 || inv.rows() != inv.cols()) {
      return Status::InvalidArgument("inverse must be square and non-empty");
    }
    return ShermanMorrisonInverse(std::move(inv));
  }

  /// \brief Applies D ← D + g gᵀ; g must have the right dimension.
  Status RankOneUpdate(const Vector& g);

  /// \brief Computes gᵀ D⁻¹ g (the squared UCB width); checked dimension.
  Result<double> QuadraticForm(const Vector& g) const;

  /// \brief Current D⁻¹ (for tests and batch use).
  const Matrix& inverse() const { return inv_; }

  size_t dim() const { return inv_.rows(); }

 private:
  explicit ShermanMorrisonInverse(Matrix inv) : inv_(std::move(inv)) {}
  Matrix inv_;
};

/// \brief Diagonal approximation of the covariance: D ≈ diag(λ + Σ gᵢ²).
///
/// The standard NeuralUCB practice for large networks: O(d) per update and
/// per query instead of O(d²). Trades confidence-width fidelity for speed;
/// compared against the full matrix in the ablation bench.
class DiagonalInverse {
 public:
  static Result<DiagonalInverse> Create(size_t dim, double lambda);

  /// \brief Rehydrates from a previously exported diagonal() vector.
  static Result<DiagonalInverse> FromDiagonal(Vector diag) {
    if (diag.empty()) {
      return Status::InvalidArgument("diagonal must be non-empty");
    }
    return DiagonalInverse(std::move(diag));
  }

  Status RankOneUpdate(const Vector& g);

  Result<double> QuadraticForm(const Vector& g) const;

  size_t dim() const { return diag_.size(); }
  const Vector& diagonal() const { return diag_; }

 private:
  explicit DiagonalInverse(Vector diag) : diag_(std::move(diag)) {}
  Vector diag_;  // diagonal entries of D (not its inverse)
};

}  // namespace lacb::la

#endif  // LACB_LA_LINALG_H_

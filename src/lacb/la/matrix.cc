#include "lacb/la/matrix.h"

#include <cmath>

namespace lacb::la {

Matrix Matrix::Identity(size_t n, double scale) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = scale;
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Result<Matrix> Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("MatMul shape mismatch");
  }
  Matrix out(rows_, other.cols_, 0.0);
  // i-k-j order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Result<Vector> Matrix::MatVec(const Vector& v) const {
  if (v.size() != cols_) {
    return Status::InvalidArgument("MatVec shape mismatch");
  }
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Result<Vector> Matrix::TransposeMatVec(const Vector& v) const {
  if (v.size() != rows_) {
    return Status::InvalidArgument("TransposeMatVec shape mismatch");
  }
  Vector out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double a = v[i];
    if (a == 0.0) continue;
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out[j] += a * row[j];
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Status Matrix::AddOuter(const Vector& v, double scale) {
  if (rows_ != cols_ || v.size() != rows_) {
    return Status::InvalidArgument("AddOuter requires square matrix and matching vector");
  }
  for (size_t i = 0; i < rows_; ++i) {
    double a = scale * v[i];
    if (a == 0.0) continue;
    double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) row[j] += a * v[j];
  }
  return Status::OK();
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

Status Matrix::AddInPlace(const Matrix& other, double scale) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("AddInPlace shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
  return Status::OK();
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::OperatorNormEstimate(size_t iters) const {
  if (empty()) return 0.0;
  // Power iteration on AᵀA: x <- normalize(Aᵀ(Ax)); σ_max = ‖Ax‖.
  Vector x(cols_, 1.0 / std::sqrt(static_cast<double>(cols_)));
  double sigma = 0.0;
  for (size_t it = 0; it < iters; ++it) {
    Vector ax = MatVec(x).value();
    sigma = Norm2(ax);
    Vector atax = TransposeMatVec(ax).value();
    double n = Norm2(atax);
    if (n <= 0.0) return 0.0;
    for (double& v : atax) v /= n;
    x = std::move(atax);
  }
  return sigma;
}

double Dot(const Vector& a, const Vector& b) {
  LACB_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double scale, const Vector& x, Vector* y) {
  LACB_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += scale * x[i];
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

}  // namespace lacb::la

// Dense row-major matrix and vector helpers.
//
// This is the numeric substrate shared by the neural-network module (layer
// weights, batched matmul) and the bandit module (covariance matrices).
// Sizes in this library are small (hundreds to a few thousand), so a simple
// cache-friendly row-major implementation is sufficient and keeps the code
// auditable.

#ifndef LACB_LA_MATRIX_H_
#define LACB_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "lacb/common/logging.h"
#include "lacb/common/result.h"
#include "lacb/common/rng.h"

namespace lacb::la {

using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// \brief Identity matrix scaled by `scale`.
  static Matrix Identity(size_t n, double scale = 1.0);

  /// \brief Matrix with i.i.d. Gaussian entries.
  static Matrix Gaussian(size_t rows, size_t cols, double stddev, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    LACB_CHECK_LT(r, rows_);
    LACB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    LACB_CHECK_LT(r, rows_);
    LACB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// \brief Unchecked access for hot loops.
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }

  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

  /// \brief this * other; InvalidArgument on shape mismatch.
  Result<Matrix> MatMul(const Matrix& other) const;

  /// \brief this * v (v of length cols()); InvalidArgument on mismatch.
  Result<Vector> MatVec(const Vector& v) const;

  /// \brief thisᵀ * v (v of length rows()); InvalidArgument on mismatch.
  Result<Vector> TransposeMatVec(const Vector& v) const;

  Matrix Transposed() const;

  /// \brief Adds `scale * v vᵀ` to this square matrix (rank-1 update).
  Status AddOuter(const Vector& v, double scale = 1.0);

  /// \brief Element-wise in-place scaling.
  void Scale(double s);

  /// \brief Element-wise in-place addition; shapes must match.
  Status AddInPlace(const Matrix& other, double scale = 1.0);

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Largest singular value estimated by power iteration on AᵀA.
  ///
  /// Used to check the ‖W‖_op ≤ ξ assumption of Theorem 1.
  double OperatorNormEstimate(size_t iters = 50) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vector data_;
};

/// \brief Dot product; lengths must match (checked).
double Dot(const Vector& a, const Vector& b);

/// \brief y += scale * x (lengths must match, checked).
void Axpy(double scale, const Vector& x, Vector* y);

/// \brief Euclidean norm.
double Norm2(const Vector& v);

}  // namespace lacb::la

#endif  // LACB_LA_MATRIX_H_

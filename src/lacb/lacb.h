// Umbrella header: the full public API of the LACB library.
//
// LACB reproduces "Towards Capacity-Aware Broker Matching: From
// Recommendation to Assignment" (ICDE 2023). Typical use:
//
//   #include "lacb/lacb.h"
//
//   lacb::sim::DatasetConfig data = lacb::sim::SyntheticDefault();
//   lacb::core::PolicySuiteConfig suite;
//   auto policy = lacb::policy::LacbPolicy::Create(
//       lacb::core::DefaultLacbConfig(data, suite, /*use_cbs=*/true));
//   auto run = lacb::core::RunPolicy(data, policy.value().get());
//   std::cout << run->total_utility << "\n";

#ifndef LACB_LACB_H_
#define LACB_LACB_H_

#include "lacb/bandit/contextual_bandit.h"
#include "lacb/bandit/eps_greedy.h"
#include "lacb/bandit/lin_ucb.h"
#include "lacb/bandit/neural_ucb.h"
#include "lacb/bandit/thompson.h"
#include "lacb/capacity/personalized_estimator.h"
#include "lacb/common/discrete_sampler.h"
#include "lacb/common/logging.h"
#include "lacb/common/result.h"
#include "lacb/common/rng.h"
#include "lacb/common/status.h"
#include "lacb/common/stopwatch.h"
#include "lacb/common/table_printer.h"
#include "lacb/core/engine.h"
#include "lacb/gbdt/booster.h"
#include "lacb/gbdt/tree.h"
#include "lacb/core/metrics.h"
#include "lacb/core/policy_suite.h"
#include "lacb/la/linalg.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/assignment.h"
#include "lacb/matching/auction.h"
#include "lacb/matching/hopcroft_karp.h"
#include "lacb/matching/min_cost_flow.h"
#include "lacb/matching/selection.h"
#include "lacb/matching/two_sided.h"
#include "lacb/nn/mlp.h"
#include "lacb/nn/optimizer.h"
#include "lacb/obs/obs.h"
#include "lacb/policy/an_policy.h"
#include "lacb/policy/assignment_policy.h"
#include "lacb/policy/flow_policy.h"
#include "lacb/policy/greedy_policy.h"
#include "lacb/policy/km_policy.h"
#include "lacb/policy/lacb_policy.h"
#include "lacb/policy/recommendation.h"
#include "lacb/policy/value_function.h"
#include "lacb/scenario/engine.h"
#include "lacb/scenario/runner.h"
#include "lacb/scenario/spec.h"
#include "lacb/serve/serve.h"
#include "lacb/sim/broker.h"
#include "lacb/sim/dataset.h"
#include "lacb/sim/platform.h"
#include "lacb/sim/learned_utility.h"
#include "lacb/sim/request.h"
#include "lacb/sim/signup_model.h"
#include "lacb/sim/trace_io.h"
#include "lacb/sim/utility_model.h"
#include "lacb/stats/descriptive.h"
#include "lacb/stats/correlation.h"
#include "lacb/stats/hypothesis.h"
#include "lacb/stats/kde.h"

#endif  // LACB_LACB_H_

#include "lacb/matching/approx/parallel_bmatch.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "lacb/common/stopwatch.h"
#include "lacb/matching/assignment.h"
#include "lacb/obs/obs.h"

namespace lacb::matching::approx {

namespace {

// --- Packed suitor keys ---------------------------------------------------
//
// A slot holds (monotone float32 score bits << 32) | ~row. Bigger packed
// value = better suitor: higher score wins, equal scores break toward the
// lower request row (~row inverts the order). Zero is the empty slot; any
// real proposal (finite or infinite score) packs to a non-zero key because
// the monotone mapping keeps the top bit region above zero for every
// non-NaN float.

inline uint32_t MonotoneFloatBits(float f) {
  uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  return (b & 0x80000000u) != 0 ? ~b : (b | 0x80000000u);
}

inline uint64_t PackKey(float score, uint32_t row) {
  return (static_cast<uint64_t>(MonotoneFloatBits(score)) << 32) |
         static_cast<uint64_t>(~row);
}

inline uint32_t KeyRow(uint64_t key) {
  return ~static_cast<uint32_t>(key & 0xffffffffu);
}

inline void AtomicMax(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (cur < v && !a->compare_exchange_weak(cur, v,
                                              std::memory_order_relaxed)) {
  }
}

// --- Round barrier --------------------------------------------------------

class RoundBarrier {
 public:
  explicit RoundBarrier(size_t parties) : parties_(parties) {}

  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t parties_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

// --- Solver state ---------------------------------------------------------

struct SolveState {
  const ScoreMatrix& scores;
  const std::vector<int64_t>& caps;
  size_t num_threads;
  size_t max_rounds;

  std::vector<size_t> slot_offset;            // per column, into slots
  std::vector<std::atomic<uint64_t>> slots;   // packed suitor keys, 0=empty
  // Cached lower bound on each column's weakest accepted key; monotone
  // non-decreasing, so a stale read can only cause a redundant proposal
  // attempt, never a wrongly skipped one.
  std::vector<std::atomic<uint64_t>> thresholds;

  std::vector<uint32_t> pending;              // this round's proposers
  std::vector<size_t> chunk_begin;            // T+1 chunk boundaries
  std::vector<std::atomic<size_t>> cursors;   // per-chunk claim cursor
  std::vector<std::vector<uint32_t>> evicted; // per-thread next-round queue
  std::vector<uint64_t> proposals;            // per-thread counters
  std::vector<uint64_t> steals;

  RoundBarrier barrier;
  std::atomic<bool> done{false};
  uint64_t rounds = 0;                        // thread 0, between barriers

  SolveState(const ScoreMatrix& s, const std::vector<int64_t>& c, size_t t,
             size_t max_r)
      : scores(s),
        caps(c),
        num_threads(t),
        max_rounds(max_r),
        cursors(t),
        evicted(t),
        proposals(t, 0),
        steals(t, 0),
        barrier(t) {}
};

// One proposal walk for request `row`: find the best column whose
// admission threshold the request beats, CAS into that column's weakest
// slot, and re-queue whoever it displaced. Loops until the request is
// accepted somewhere or no column will have it.
void Propose(SolveState* st, uint32_t row, size_t thread_index) {
  const float* score_row = st->scores.RowPtr(row);
  const size_t cols = st->scores.cols;
  for (;;) {
    int64_t best_col = -1;
    float best_score = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      const float w = score_row[c];
      if (!(w == w)) continue;  // NaN: missing edge
      if (st->caps[c] == 0) continue;
      if (best_col >= 0 && !(w > best_score)) continue;  // strict: ties
                                                         // keep lower col
      const uint64_t key = PackKey(w, row);
      if (key <= st->thresholds[c].load(std::memory_order_relaxed)) continue;
      best_col = static_cast<int64_t>(c);
      best_score = w;
    }
    if (best_col < 0) return;  // no column admits this request

    ++st->proposals[thread_index];
    const size_t c = static_cast<size_t>(best_col);
    const uint64_t key = PackKey(best_score, row);
    std::atomic<uint64_t>* slot = st->slots.data() + st->slot_offset[c];
    const size_t cap = static_cast<size_t>(st->caps[c]);
    for (;;) {
      size_t min_i = 0;
      uint64_t min_v = slot[0].load(std::memory_order_relaxed);
      for (size_t i = 1; i < cap; ++i) {
        const uint64_t v = slot[i].load(std::memory_order_relaxed);
        if (v < min_v) {
          min_v = v;
          min_i = i;
        }
      }
      if (key <= min_v) {
        // Lost to the incumbents. Publish the floor we observed so later
        // scans skip this column cheaply, then look for the next column.
        AtomicMax(&st->thresholds[c], min_v);
        break;
      }
      if (slot[min_i].compare_exchange_weak(min_v, key,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        // Refresh the cached floor: every observed value is a historical
        // slot value and slots only grow, so the min stays a lower bound.
        uint64_t floor = slot[0].load(std::memory_order_relaxed);
        for (size_t i = 1; i < cap; ++i) {
          floor = std::min(floor, slot[i].load(std::memory_order_relaxed));
        }
        AtomicMax(&st->thresholds[c], floor);
        if (min_v != 0) {
          st->evicted[thread_index].push_back(KeyRow(min_v));
        }
        return;
      }
      // CAS raced with another proposal; re-scan the slots.
    }
  }
}

// Claims items from chunk `chunk` until its cursor runs past the end.
// Returns the number of items processed.
size_t DrainChunk(SolveState* st, size_t chunk, size_t thread_index) {
  const size_t begin = st->chunk_begin[chunk];
  const size_t len = st->chunk_begin[chunk + 1] - begin;
  size_t processed = 0;
  for (;;) {
    const size_t i =
        st->cursors[chunk].fetch_add(1, std::memory_order_relaxed);
    if (i >= len) break;
    Propose(st, st->pending[begin + i], thread_index);
    ++processed;
  }
  return processed;
}

void PartitionPending(SolveState* st) {
  const size_t t = st->num_threads;
  const size_t n = st->pending.size();
  st->chunk_begin.assign(t + 1, 0);
  for (size_t i = 0; i <= t; ++i) st->chunk_begin[i] = i * n / t;
  for (auto& cursor : st->cursors) {
    cursor.store(0, std::memory_order_relaxed);
  }
}

void WorkerLoop(SolveState* st, size_t thread_index) {
  const size_t t = st->num_threads;
  for (;;) {
    // Phase A: drain the own chunk, then steal from the others.
    DrainChunk(st, thread_index, thread_index);
    for (size_t k = 1; k < t; ++k) {
      const size_t victim = (thread_index + k) % t;
      st->steals[thread_index] += DrainChunk(st, victim, thread_index);
    }
    st->barrier.Arrive();
    // Phase B: thread 0 folds the evictions into the next round.
    if (thread_index == 0) {
      ++st->rounds;
      st->pending.clear();
      for (auto& q : st->evicted) {
        st->pending.insert(st->pending.end(), q.begin(), q.end());
        q.clear();
      }
      const bool out_of_rounds =
          st->max_rounds != 0 && st->rounds >= st->max_rounds;
      st->done.store(st->pending.empty() || out_of_rounds,
                     std::memory_order_relaxed);
      PartitionPending(st);
    }
    st->barrier.Arrive();
    if (st->done.load(std::memory_order_relaxed)) return;
  }
}

}  // namespace

Result<BMatchResult> ParallelBMatch(const ScoreMatrix& scores,
                                    const std::vector<int64_t>& capacities,
                                    const BMatchOptions& options,
                                    SolveStats* stats) {
  const size_t rows = scores.rows;
  const size_t cols = scores.cols;
  if (capacities.size() != cols) {
    return Status::InvalidArgument(
        "capacities must have one entry per column");
  }
  for (int64_t cap : capacities) {
    if (cap < 0) return Status::InvalidArgument("negative column capacity");
  }
  if (rows >= std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("too many rows to pack into suitor keys");
  }
  LACB_TRACE_SPAN("bmatch_solve");
  Stopwatch total_sw;
  Stopwatch phase_sw;

  BMatchResult result;
  result.col_of_row.assign(rows, kUnmatched);
  const size_t num_threads = std::max<size_t>(1, options.num_threads);

  size_t total_slots = 0;
  std::vector<size_t> slot_offset(cols, 0);
  for (size_t c = 0; c < cols; ++c) {
    slot_offset[c] = total_slots;
    total_slots += static_cast<size_t>(capacities[c]);
  }
  if (rows == 0 || cols == 0 || total_slots == 0) {
    if (stats != nullptr) {
      SolveStats one;
      one.solver = "bmatch";
      one.rows = rows;
      one.cols = cols;
      one.solves = 1;
      one.total_seconds = total_sw.ElapsedSeconds();
      stats->MergeFrom(one);
    }
    return result;
  }

  SolveState st(scores, capacities, num_threads, options.max_rounds);
  st.slot_offset = std::move(slot_offset);
  st.slots = std::vector<std::atomic<uint64_t>>(total_slots);
  st.thresholds = std::vector<std::atomic<uint64_t>>(cols);
  st.pending.resize(rows);
  for (size_t r = 0; r < rows; ++r) st.pending[r] = static_cast<uint32_t>(r);
  PartitionPending(&st);
  const double build_seconds = phase_sw.ElapsedSeconds();

  phase_sw.Restart();
  if (num_threads == 1) {
    WorkerLoop(&st, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      pool.emplace_back(WorkerLoop, &st, t);
    }
    for (auto& th : pool) th.join();
  }
  const double search_seconds = phase_sw.ElapsedSeconds();

  // Extraction in fixed (column, then ascending row) order keeps both the
  // assignment and the floating-point objective bit-deterministic.
  phase_sw.Restart();
  std::vector<uint32_t> matched_rows;
  for (size_t c = 0; c < cols; ++c) {
    matched_rows.clear();
    const size_t cap = static_cast<size_t>(capacities[c]);
    for (size_t i = 0; i < cap; ++i) {
      const uint64_t v =
          st.slots[st.slot_offset[c] + i].load(std::memory_order_relaxed);
      if (v != 0) matched_rows.push_back(KeyRow(v));
    }
    std::sort(matched_rows.begin(), matched_rows.end());
    for (uint32_t r : matched_rows) {
      result.col_of_row[r] = static_cast<int64_t>(c);
      result.total_weight += static_cast<double>(scores.At(r, c));
    }
  }
  const double update_seconds = phase_sw.ElapsedSeconds();

  result.rounds = st.rounds;
  for (size_t t = 0; t < num_threads; ++t) {
    result.proposals += st.proposals[t];
    result.steals += st.steals[t];
  }

  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("matching.bmatch.solves").Increment();
  registry.GetCounter("matching.bmatch.rounds").Increment(result.rounds);
  registry.GetCounter("matching.bmatch.proposals")
      .Increment(result.proposals);

  if (stats != nullptr) {
    SolveStats one;
    one.solver = "bmatch";
    one.rows = rows;
    one.cols = cols;
    one.solves = 1;
    one.iterations = result.proposals;
    one.objective = result.total_weight;
    one.rounds = result.rounds;
    one.proposals = result.proposals;
    one.steals = result.steals;
    for (int64_t col : result.col_of_row) {
      if (col != kUnmatched) ++one.augmenting_paths;
    }
    one.phase_build_seconds = build_seconds;
    one.phase_search_seconds = search_seconds;
    one.phase_update_seconds = update_seconds;
    one.total_seconds = total_sw.ElapsedSeconds();
    stats->MergeFrom(one);
  }
  return result;
}

Result<BMatchResult> ParallelBMatch(const la::Matrix& weights,
                                    const std::vector<int64_t>& capacities,
                                    const BMatchOptions& options,
                                    SolveStats* stats) {
  Stopwatch convert_sw;
  ScoreMatrix scores;
  ToScoreMatrix(weights, &scores);
  const double convert_seconds = convert_sw.ElapsedSeconds();
  LACB_ASSIGN_OR_RETURN(BMatchResult result,
                        ParallelBMatch(scores, capacities, options, stats));
  if (stats != nullptr) {
    stats->phase_build_seconds += convert_seconds;
    stats->total_seconds += convert_seconds;
  }
  return result;
}

}  // namespace lacb::matching::approx

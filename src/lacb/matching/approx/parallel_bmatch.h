// Deterministic multi-threaded ½-approximate b-matching.
//
// The capacity-aware batch assignment is a bipartite b-matching: requests
// (rows, degree ≤ 1) against brokers (columns, degree ≤ capacity b). This
// solver computes the *locally-dominant* matching — the matching produced
// by greedily accepting edges in decreasing weight order — which carries
// the classical ½-approximation guarantee for maximum-weight b-matching,
// via the suitor/adoration proposal scheme (Manne–Halappanavar; Khan et
// al.'s b-Suitor):
//
//   * Every broker column owns `capacity` *suitor slots*, each a single
//     64-bit atomic packing (monotone float32 score bits << 32) | ~row, so
//     "better suitor" is one integer compare and admission is one CAS.
//   * Unmatched requests scan their score row for the best column whose
//     cached admission threshold they beat, then CAS into that column's
//     weakest slot; the evicted suitor re-enters the next proposal round.
//   * Rounds are barrier-synchronized; within a round, threads drain
//     per-thread chunks of the pending queue and work-steal from other
//     chunks through atomic cursors when their own runs dry.
//
// Determinism: the locally-dominant matching is *unique* given a strict
// total order on edges — here (score desc, column asc, row asc), with
// scores compared as float32 — and the suitor scheme converges to it under
// any execution schedule. The returned assignment (and its objective,
// accumulated in a fixed order) is therefore bit-identical across runs and
// across thread counts; only the diagnostic work counters (proposals,
// steals, rounds) and timings vary with scheduling.

#ifndef LACB_MATCHING_APPROX_PARALLEL_BMATCH_H_
#define LACB_MATCHING_APPROX_PARALLEL_BMATCH_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/approx/scoring.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching::approx {

/// \brief Parallel solver configuration.
struct BMatchOptions {
  /// Worker threads. The assignment is bit-identical at any value; 1 runs
  /// inline on the calling thread (no spawns, no atomic contention).
  size_t num_threads = 1;
  /// Safety valve on proposal rounds; 0 = until convergence (the scheme
  /// always terminates: admission thresholds only rise).
  size_t max_rounds = 0;
};

/// \brief One solve's result.
struct BMatchResult {
  /// col_of_row[r] = matched column of request r, or matching::kUnmatched.
  std::vector<int64_t> col_of_row;
  /// Objective: Σ matched float32 scores, accumulated in (column, row)
  /// order so the double sum is deterministic too.
  double total_weight = 0.0;
  /// Barrier-synchronized proposal rounds until convergence.
  uint64_t rounds = 0;
  /// Proposal attempts across all threads (schedule-dependent).
  uint64_t proposals = 0;
  /// Work items claimed from another thread's chunk (schedule-dependent).
  uint64_t steals = 0;
};

/// \brief ½-approx maximum-weight b-matching of `scores` (rows = requests,
/// cols = brokers) under per-column `capacities` (entries ≥ 0).
///
/// NaN scores are treated as missing edges. Negative edges are matchable
/// (mirroring the exact assignment path, which also commits negative
/// refined utilities); the ½-approximation guarantee is stated against
/// instances with non-negative weights. When `stats` is non-null the solve
/// is described into it (backend "bmatch": rounds/proposals/steals,
/// phase timings, objective).
Result<BMatchResult> ParallelBMatch(const ScoreMatrix& scores,
                                    const std::vector<int64_t>& capacities,
                                    const BMatchOptions& options = {},
                                    SolveStats* stats = nullptr);

/// \brief Convenience overload: converts `weights` to the float score
/// domain first (the conversion is attributed to the build phase).
Result<BMatchResult> ParallelBMatch(const la::Matrix& weights,
                                    const std::vector<int64_t>& capacities,
                                    const BMatchOptions& options = {},
                                    SolveStats* stats = nullptr);

}  // namespace lacb::matching::approx

#endif  // LACB_MATCHING_APPROX_PARALLEL_BMATCH_H_

#include "lacb/matching/approx/scoring.h"

namespace lacb::matching::approx {

namespace {

Status CheckEligible(const la::Matrix& utility,
                     const std::vector<size_t>& eligible) {
  for (size_t c : eligible) {
    if (c >= utility.cols()) {
      return Status::OutOfRange("eligible broker column out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Status GatherColumns(const la::Matrix& utility,
                     const std::vector<size_t>& eligible, la::Matrix* out) {
  LACB_RETURN_NOT_OK(CheckEligible(utility, eligible));
  *out = la::Matrix(utility.rows(), eligible.size());
  const size_t m = eligible.size();
  const size_t* idx = eligible.data();
  for (size_t r = 0; r < utility.rows(); ++r) {
    const double* src = utility.RowPtr(r);
    double* dst = out->RowPtr(r);
    for (size_t i = 0; i < m; ++i) dst[i] = src[idx[i]];
  }
  return Status::OK();
}

Status GatherColumnsTransposed(const la::Matrix& utility,
                               const std::vector<size_t>& eligible,
                               la::Matrix* out) {
  LACB_RETURN_NOT_OK(CheckEligible(utility, eligible));
  *out = la::Matrix(eligible.size(), utility.rows());
  const size_t n = utility.rows();
  for (size_t i = 0; i < eligible.size(); ++i) {
    const size_t c = eligible[i];
    double* dst = out->RowPtr(i);
    // Strided source walk; the contiguous store is what vectorizes.
    for (size_t r = 0; r < n; ++r) dst[r] = utility(r, c);
  }
  return Status::OK();
}

Status GatherRefinedColumns(const la::Matrix& utility,
                            const std::vector<size_t>& eligible,
                            const std::vector<double>& column_delta,
                            la::Matrix* out) {
  if (column_delta.size() != eligible.size()) {
    return Status::InvalidArgument(
        "column_delta must have one entry per eligible column");
  }
  LACB_RETURN_NOT_OK(CheckEligible(utility, eligible));
  *out = la::Matrix(utility.rows(), eligible.size());
  const size_t m = eligible.size();
  const size_t* idx = eligible.data();
  const double* delta = column_delta.data();
  for (size_t r = 0; r < utility.rows(); ++r) {
    const double* src = utility.RowPtr(r);
    double* dst = out->RowPtr(r);
    for (size_t i = 0; i < m; ++i) dst[i] = src[idx[i]] + delta[i];
  }
  return Status::OK();
}

Status BuildScoreMatrix(const la::Matrix& utility,
                        const std::vector<size_t>& eligible,
                        const std::vector<double>* column_delta,
                        ScoreMatrix* out) {
  if (column_delta != nullptr && column_delta->size() != eligible.size()) {
    return Status::InvalidArgument(
        "column_delta must have one entry per eligible column");
  }
  LACB_RETURN_NOT_OK(CheckEligible(utility, eligible));
  out->Reset(utility.rows(), eligible.size());
  const size_t m = eligible.size();
  const size_t* idx = eligible.data();
  for (size_t r = 0; r < utility.rows(); ++r) {
    const double* src = utility.RowPtr(r);
    float* dst = out->RowPtr(r);
    if (column_delta == nullptr) {
      for (size_t i = 0; i < m; ++i) {
        dst[i] = static_cast<float>(src[idx[i]]);
      }
    } else {
      const double* delta = column_delta->data();
      for (size_t i = 0; i < m; ++i) {
        dst[i] = static_cast<float>(src[idx[i]] + delta[i]);
      }
    }
  }
  return Status::OK();
}

void ToScoreMatrix(const la::Matrix& weights, ScoreMatrix* out) {
  out->Reset(weights.rows(), weights.cols());
  const double* src = weights.data().data();
  float* dst = out->data.data();
  const size_t total = weights.rows() * weights.cols();
  for (size_t i = 0; i < total; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace lacb::matching::approx

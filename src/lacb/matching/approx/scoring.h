// Batched affinity scoring into contiguous row-major matrices.
//
// Every matching backend starts from the same construction: gather the
// eligible broker columns of the batch utility matrix (optionally adding a
// per-column refinement delta — LACB's Eq. 15 scarcity price) into a dense
// row-major score matrix. These kernels centralize that construction so the
// exact-KM path, the parallel approximate path, and the policies all share
// one auto-vectorizable inner loop instead of three hand-rolled copies.
//
// Two output domains:
//   * la::Matrix (double)  — the exact solvers' comparison domain.
//   * ScoreMatrix (float)  — the parallel b-matching solver's domain: a
//     float32 score packs with a request index into one 64-bit word, which
//     is what makes the solver's lock-free CAS slots (and therefore its
//     thread-count-independent determinism) possible.

#ifndef LACB_MATCHING_APPROX_SCORING_H_
#define LACB_MATCHING_APPROX_SCORING_H_

#include <cstddef>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"

namespace lacb::matching::approx {

/// \brief Dense row-major float32 affinity matrix (the approximate
/// solver's comparison domain).
struct ScoreMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> data;

  void Reset(size_t r, size_t c) {
    rows = r;
    cols = c;
    data.assign(r * c, 0.0f);
  }
  float* RowPtr(size_t r) { return data.data() + r * cols; }
  const float* RowPtr(size_t r) const { return data.data() + r * cols; }
  float At(size_t r, size_t c) const { return data[r * cols + c]; }
  float& At(size_t r, size_t c) { return data[r * cols + c]; }
};

/// \brief Gathers eligible columns: out(r, i) = utility(r, eligible[i]).
/// OutOfRange when an eligible column exceeds the utility width.
Status GatherColumns(const la::Matrix& utility,
                     const std::vector<size_t>& eligible, la::Matrix* out);

/// \brief Transposed gather: out(i, r) = utility(r, eligible[i]) — the
/// fewer-brokers-than-requests orientation of the exact solvers.
Status GatherColumnsTransposed(const la::Matrix& utility,
                               const std::vector<size_t>& eligible,
                               la::Matrix* out);

/// \brief Fused gather + per-column additive refinement:
/// out(r, i) = utility(r, eligible[i]) + column_delta[i].
/// column_delta must have one entry per eligible column.
Status GatherRefinedColumns(const la::Matrix& utility,
                            const std::vector<size_t>& eligible,
                            const std::vector<double>& column_delta,
                            la::Matrix* out);

/// \brief Same gather into the float score domain. `column_delta` may be
/// null (no refinement); the add happens in double before the rounding so
/// the float path sees the identical refined value.
Status BuildScoreMatrix(const la::Matrix& utility,
                        const std::vector<size_t>& eligible,
                        const std::vector<double>* column_delta,
                        ScoreMatrix* out);

/// \brief Plain dense conversion of a prebuilt weight matrix.
void ToScoreMatrix(const la::Matrix& weights, ScoreMatrix* out);

}  // namespace lacb::matching::approx

#endif  // LACB_MATCHING_APPROX_SCORING_H_

#include "lacb/matching/approx/solver_select.h"

#include <algorithm>
#include <mutex>

#include "lacb/common/rng.h"

namespace lacb::matching::approx {

namespace {

double KmOps(size_t rows, size_t cols) {
  return static_cast<double>(rows) * static_cast<double>(rows) *
         static_cast<double>(cols);
}

double ApproxOps(size_t rows, size_t cols) {
  return static_cast<double>(rows) * static_cast<double>(cols);
}

// Least-squares slope through the origin: t ≈ c · ops.
double FitCoefficient(const std::vector<SolveStats>& probes,
                      double (*ops)(size_t, size_t)) {
  double num = 0.0;
  double den = 0.0;
  for (const SolveStats& p : probes) {
    const double u = ops(p.rows, p.cols);
    if (u <= 0.0 || p.total_seconds <= 0.0) continue;
    num += p.total_seconds * u;
    den += u * u;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double CostModel::PredictKmSeconds(size_t rows, size_t cols) const {
  return km_seconds_per_op * KmOps(rows, cols);
}

double CostModel::PredictApproxSeconds(size_t rows, size_t cols,
                                       size_t threads) const {
  const double t = static_cast<double>(std::max<size_t>(1, threads));
  return approx_seconds_per_op * ApproxOps(rows, cols) / t;
}

CostModel FitCostModel(const std::vector<SolveStats>& km_probes,
                       const std::vector<SolveStats>& approx_probes) {
  CostModel model;
  model.km_seconds_per_op = FitCoefficient(km_probes, KmOps);
  model.approx_seconds_per_op = FitCoefficient(approx_probes, ApproxOps);
  model.fitted =
      model.km_seconds_per_op > 0.0 && model.approx_seconds_per_op > 0.0;
  return model;
}

const CostModel& CalibratedCostModel() {
  static CostModel model;
  static std::once_flag once;
  std::call_once(once, [] {
    // Probe ladder: small square-ish instances solved through both
    // backends with stats collection on; the fit extrapolates each
    // backend's asymptotic term. Sizes stay small enough that startup
    // calibration costs a few milliseconds.
    Rng rng(20260809);
    std::vector<SolveStats> km_probes;
    std::vector<SolveStats> approx_probes;
    for (size_t n : {32u, 64u, 96u, 128u}) {
      la::Matrix w(n, n + n / 4);
      for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
          w(r, c) = rng.Uniform();
        }
      }
      SolveStats km_stats;
      if (MaxWeightAssignment(w, &km_stats).ok()) {
        km_probes.push_back(km_stats);
      }
      SolveStats bx_stats;
      std::vector<int64_t> caps(w.cols(), 1);
      BMatchOptions opts;
      opts.num_threads = 1;
      if (ParallelBMatch(w, caps, opts, &bx_stats).ok()) {
        approx_probes.push_back(bx_stats);
      }
    }
    model = FitCostModel(km_probes, approx_probes);
  });
  return model;
}

SolverChoice ChooseBackend(const SolverConfig& config, const CostModel& model,
                           size_t rows, size_t cols) {
  switch (config.choice) {
    case SolverChoice::kExactKm:
      return SolverChoice::kExactKm;
    case SolverChoice::kApprox:
      return SolverChoice::kApprox;
    case SolverChoice::kAuto:
      break;
  }
  if (rows < config.auto_min_rows) return SolverChoice::kExactKm;
  if (!model.fitted) {
    // No calibration available: fall back to the size floor alone.
    return SolverChoice::kApprox;
  }
  const double km_predicted = model.PredictKmSeconds(rows, cols);
  return km_predicted > config.auto_km_budget_seconds
             ? SolverChoice::kApprox
             : SolverChoice::kExactKm;
}

SolverChoice ResolveChoice(const SolverConfig& config, size_t rows,
                           size_t cols, SolveStats* stats) {
  if (config.choice != SolverChoice::kAuto) {
    return ChooseBackend(config, CostModel{}, rows, cols);
  }
  const SolverChoice choice =
      ChooseBackend(config, CalibratedCostModel(), rows, cols);
  if (stats != nullptr) {
    SolveStats decision;
    if (choice == SolverChoice::kApprox) {
      decision.auto_approx_selected = 1;
    } else {
      decision.auto_km_selected = 1;
    }
    stats->MergeFrom(decision);
  }
  return choice;
}

Result<Assignment> SolveDenseAssignment(const la::Matrix& weights,
                                        bool pad_to_square,
                                        const SolverConfig& config,
                                        SolveStats* stats) {
  const size_t rows = weights.rows();
  const size_t cols = weights.cols();
  const SolverChoice choice =
      ResolveChoice(config, std::min(rows, cols), std::max(rows, cols),
                    stats);
  if (choice == SolverChoice::kApprox) {
    std::vector<int64_t> caps(cols, 1);
    BMatchOptions opts;
    opts.num_threads = config.approx_threads;
    LACB_ASSIGN_OR_RETURN(BMatchResult bm,
                          ParallelBMatch(weights, caps, opts, stats));
    Assignment out;
    out.col_of_row = std::move(bm.col_of_row);
    // Objective re-accumulated from the double weights in row order so
    // the assignment's reported weight matches the exact path's domain.
    for (size_t r = 0; r < rows; ++r) {
      if (out.col_of_row[r] != kUnmatched) {
        out.total_weight +=
            weights(r, static_cast<size_t>(out.col_of_row[r]));
      }
    }
    return out;
  }
  if (rows > cols) {
    return Status::InvalidArgument(
        "SolveDenseAssignment exact route requires rows <= cols");
  }
  if (pad_to_square) {
    LACB_ASSIGN_OR_RETURN(la::Matrix square, PadToSquare(weights));
    LACB_ASSIGN_OR_RETURN(Assignment a, MaxWeightAssignment(square, stats));
    a.col_of_row.resize(rows);
    return a;
  }
  return MaxWeightAssignment(weights, stats);
}

int BackendGaugeCode(const std::string& solver_name) {
  if (solver_name == "km") return 0;
  if (solver_name == "bmatch") return 1;
  if (solver_name == "greedy") return 2;
  if (solver_name == "mixed") return 3;
  return 4;
}

}  // namespace lacb::matching::approx

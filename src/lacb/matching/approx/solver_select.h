// Adaptive per-batch solver selection: exact KM vs parallel ½-approx.
//
// The exact Kuhn–Munkres solve is O(rows²·cols) and single-threaded; the
// parallel b-matching solve is ~O(rows·cols) per proposal round with a
// bounded utility loss. Which one a batch should get depends on the batch
// size the serving layer actually produces, so the choice is made per
// batch from a cost model calibrated at startup: probe solves run through
// both backends, their SolveStats are fitted to the backends' asymptotic
// work terms, and `kAuto` routes each batch to whichever backend the model
// predicts inside the latency budget — small batches keep the exact
// solver, large batches go wide.
//
// The default configuration is `kExactKm`, which routes every call through
// the identical pre-existing KM code path — byte-identical results.

#ifndef LACB_MATCHING_APPROX_SOLVER_SELECT_H_
#define LACB_MATCHING_APPROX_SOLVER_SELECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/assignment.h"
#include "lacb/matching/approx/parallel_bmatch.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching::approx {

/// \brief Which matching backend solves a batch.
enum class SolverChoice {
  kExactKm = 0,  ///< Always the exact Kuhn–Munkres path (the default).
  kApprox = 1,   ///< Always the parallel ½-approx b-matching solver.
  kAuto = 2,     ///< Per-batch routing through the calibrated cost model.
};

/// \brief Solver routing configuration carried by policies and ServeOptions.
struct SolverConfig {
  SolverChoice choice = SolverChoice::kExactKm;
  /// Threads of the approximate solver (results identical at any count).
  size_t approx_threads = 4;
  /// kAuto: batches whose predicted exact-KM latency exceeds this budget
  /// are routed to the approximate solver.
  double auto_km_budget_seconds = 0.010;
  /// kAuto: batches with fewer requests than this always stay exact —
  /// quality first where exact is cheap regardless of the model.
  size_t auto_min_rows = 128;
};

/// \brief Calibrated per-backend latency model. Units follow the backends'
/// asymptotic work terms: KM ≈ c_km · rows²·cols, approx ≈ c_bx · rows·cols
/// (single-thread; threads divide the scan work).
struct CostModel {
  double km_seconds_per_op = 0.0;
  double approx_seconds_per_op = 0.0;
  bool fitted = false;

  double PredictKmSeconds(size_t rows, size_t cols) const;
  double PredictApproxSeconds(size_t rows, size_t cols,
                              size_t threads) const;
};

/// \brief Least-squares fit of the per-op coefficients from probe-solve
/// SolveStats (each probe carries its problem size and measured seconds).
CostModel FitCostModel(const std::vector<SolveStats>& km_probes,
                       const std::vector<SolveStats>& approx_probes);

/// \brief Process-wide cost model, fitted once (thread-safe) from a ladder
/// of probe solves run through both backends on first use.
const CostModel& CalibratedCostModel();

/// \brief Resolves a config to the backend a rows×cols batch should get.
/// kAuto consults `model`; rows/cols describe the bipartite instance with
/// rows = the smaller side the exact solver would actually iterate.
SolverChoice ChooseBackend(const SolverConfig& config, const CostModel& model,
                           size_t rows, size_t cols);

/// \brief Like ChooseBackend with the process-wide calibrated model, and
/// records the decision into `stats` (auto_km_selected /
/// auto_approx_selected) when `config.choice == kAuto` and stats != null.
SolverChoice ResolveChoice(const SolverConfig& config, size_t rows,
                           size_t cols, SolveStats* stats);

/// \brief Dense assignment (every column capacity 1) routed per `config`.
///
/// The exact route reproduces the historical KM call shape byte-for-byte:
/// with `pad_to_square` the matrix is dummy-padded before the solve and
/// the result truncated back to `weights.rows()` rows. The approx route
/// runs ParallelBMatch with unit capacities (rows > cols is fine there;
/// surplus rows stay unmatched). Gauge code for the backend that actually
/// ran is in the returned stats' `solver` field.
Result<Assignment> SolveDenseAssignment(const la::Matrix& weights,
                                        bool pad_to_square,
                                        const SolverConfig& config,
                                        SolveStats* stats = nullptr);

/// \brief Stable numeric code of a backend name for gauge exposition:
/// "km"=0, "bmatch"=1, "greedy"=2, "mixed"=3, anything else 4.
int BackendGaugeCode(const std::string& solver_name);

}  // namespace lacb::matching::approx

#endif  // LACB_MATCHING_APPROX_SOLVER_SELECT_H_

#include "lacb/matching/assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lacb/common/stopwatch.h"
#include "lacb/obs/obs.h"

namespace lacb::matching {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Potential-based shortest-augmenting-path Kuhn–Munkres, minimizing total
// cost; rows are 1..n, columns 1..m, n <= m. Every row gets a column.
// Classic formulation (e.g. e-maxx); O(n²m). `scan_steps` (when non-null)
// accumulates the Dijkstra-like column scans — the quantity that actually
// grows cubically and that perf PRs need to watch. `stats` (when non-null)
// additionally collects phase timings and dual-update counts; both outputs
// are gated so the null path adds no clock reads to the inner loops.
Assignment SolveMinCost(const la::Matrix& cost, uint64_t* scan_steps,
                        SolveStats* stats) {
  size_t n = cost.rows();
  size_t m = cost.cols();
  const bool collect = stats != nullptr;
  uint64_t steps = 0;
  Stopwatch phase_sw;
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0), way(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    uint64_t steps_before = steps;
    if (collect) phase_sw.Restart();
    do {
      ++steps;
      used[j0] = true;
      size_t i0 = p[j0];
      size_t j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    if (collect) {
      stats->phase_search_seconds += phase_sw.ElapsedSeconds();
      // Scan step s of this row applies a (u, v) dual adjustment to every
      // column marked used so far — exactly s of them — so a row that took
      // S steps performed S(S+1)/2 adjustments in total.
      uint64_t s = steps - steps_before;
      stats->dual_updates += s * (s + 1) / 2;
      phase_sw.Restart();
    }
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
    if (collect) {
      stats->phase_update_seconds += phase_sw.ElapsedSeconds();
      ++stats->augmenting_paths;
    }
  }
  if (collect) stats->iterations += steps;
  Assignment out;
  out.col_of_row.assign(n, kUnmatched);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) {
      out.col_of_row[p[j] - 1] = static_cast<int64_t>(j - 1);
      out.total_weight += cost(p[j] - 1, j - 1);
    }
  }
  if (scan_steps != nullptr) *scan_steps += steps;
  return out;
}

}  // namespace

Result<Assignment> MaxWeightAssignment(const la::Matrix& weights,
                                       SolveStats* stats) {
  if (weights.rows() == 0) return Assignment{};
  if (weights.rows() > weights.cols()) {
    return Status::InvalidArgument(
        "MaxWeightAssignment requires rows <= cols");
  }
  LACB_TRACE_SPAN("km_solve");
  Stopwatch total_sw;
  Stopwatch build_sw;
  la::Matrix cost(weights.rows(), weights.cols());
  for (size_t i = 0; i < weights.rows(); ++i) {
    for (size_t j = 0; j < weights.cols(); ++j) {
      cost(i, j) = -weights(i, j);
    }
  }
  double build_seconds = build_sw.ElapsedSeconds();
  uint64_t scan_steps = 0;
  Assignment a = SolveMinCost(cost, &scan_steps, stats);
  a.total_weight = -a.total_weight;
  if (stats != nullptr) {
    SolveStats one;
    one.solver = "km";
    one.rows = weights.rows();
    one.cols = weights.cols();
    one.solves = 1;
    one.objective = a.total_weight;
    one.phase_build_seconds = build_seconds;
    one.total_seconds = total_sw.ElapsedSeconds();
    // SolveMinCost already accumulated iterations / paths / duals / phase
    // timings directly into `stats`; fold in the per-call envelope.
    stats->MergeFrom(one);
  }
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("matching.km.solves").Increment();
  registry.GetCounter("matching.km.rows").Increment(weights.rows());
  registry.GetCounter("matching.km.scan_steps").Increment(scan_steps);
  return a;
}

Result<Assignment> MaxWeightAssignmentAllowSkip(const la::Matrix& weights,
                                                SolveStats* stats) {
  if (weights.rows() == 0) return Assignment{};
  size_t n = weights.rows();
  size_t m = weights.cols();
  // Append n zero-weight "skip" columns: a row matched to one of them is
  // effectively unmatched, so no row is ever forced onto a negative edge.
  la::Matrix augmented(n, m + n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) augmented(i, j) = weights(i, j);
  }
  LACB_ASSIGN_OR_RETURN(Assignment a, MaxWeightAssignment(augmented, stats));
  Assignment out;
  out.col_of_row.assign(n, kUnmatched);
  for (size_t i = 0; i < n; ++i) {
    int64_t j = a.col_of_row[i];
    if (j >= 0 && static_cast<size_t>(j) < m) {
      out.col_of_row[i] = j;
      out.total_weight += weights(i, static_cast<size_t>(j));
    }
  }
  // The inner solve reported the augmented objective (which counts skip
  // columns as zero, so it already equals the clamped total); keep the
  // returned objective consistent with the assignment we hand back.
  if (stats != nullptr) stats->objective += out.total_weight - a.total_weight;
  return out;
}

Result<la::Matrix> PadToSquare(const la::Matrix& weights) {
  if (weights.rows() > weights.cols()) {
    return Status::InvalidArgument("PadToSquare requires rows <= cols");
  }
  obs::ActiveRegistry()
      .GetCounter("matching.pad.dummy_rows")
      .Increment(weights.cols() - weights.rows());
  la::Matrix out(weights.cols(), weights.cols(), 0.0);
  for (size_t i = 0; i < weights.rows(); ++i) {
    for (size_t j = 0; j < weights.cols(); ++j) {
      out(i, j) = weights(i, j);
    }
  }
  return out;
}

Result<Assignment> GreedyAssignment(const la::Matrix& weights) {
  LACB_TRACE_SPAN("greedy_solve");
  obs::ActiveRegistry().GetCounter("matching.greedy.solves").Increment();
  struct Edge {
    double w;
    size_t r;
    size_t c;
  };
  std::vector<Edge> edges;
  edges.reserve(weights.rows() * weights.cols());
  for (size_t r = 0; r < weights.rows(); ++r) {
    for (size_t c = 0; c < weights.cols(); ++c) {
      edges.push_back(Edge{weights(r, c), r, c});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w > b.w; });
  Assignment out;
  out.col_of_row.assign(weights.rows(), kUnmatched);
  std::vector<bool> col_used(weights.cols(), false);
  size_t matched = 0;
  for (const Edge& e : edges) {
    if (matched == weights.rows()) break;
    if (out.col_of_row[e.r] != kUnmatched || col_used[e.c]) continue;
    out.col_of_row[e.r] = static_cast<int64_t>(e.c);
    col_used[e.c] = true;
    out.total_weight += e.w;
    ++matched;
  }
  return out;
}

namespace {

void BruteForceRecurse(const la::Matrix& w, size_t row,
                       std::vector<int64_t>* current, double current_weight,
                       std::vector<bool>* col_used, Assignment* best) {
  if (row == w.rows()) {
    if (current_weight > best->total_weight) {
      best->total_weight = current_weight;
      best->col_of_row = *current;
    }
    return;
  }
  for (size_t c = 0; c < w.cols(); ++c) {
    if ((*col_used)[c]) continue;
    (*col_used)[c] = true;
    (*current)[row] = static_cast<int64_t>(c);
    BruteForceRecurse(w, row + 1, current, current_weight + w(row, c),
                      col_used, best);
    (*col_used)[c] = false;
  }
  (*current)[row] = kUnmatched;
}

}  // namespace

Result<Assignment> BruteForceAssignment(const la::Matrix& weights) {
  if (weights.rows() > weights.cols()) {
    return Status::InvalidArgument(
        "BruteForceAssignment requires rows <= cols");
  }
  if (weights.rows() > 9) {
    return Status::InvalidArgument(
        "BruteForceAssignment is a test oracle; rows must be <= 9");
  }
  Assignment best;
  best.col_of_row.assign(weights.rows(), kUnmatched);
  best.total_weight = -kInf;
  std::vector<int64_t> current(weights.rows(), kUnmatched);
  std::vector<bool> col_used(weights.cols(), false);
  BruteForceRecurse(weights, 0, &current, 0.0, &col_used, &best);
  if (weights.rows() == 0) best.total_weight = 0.0;
  return best;
}

}  // namespace lacb::matching

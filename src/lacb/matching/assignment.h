// Bipartite assignment primitives.
//
// The paper's VFGA (Alg. 2) runs the Kuhn–Munkres algorithm each batch on a
// dummy-padded balanced bipartite graph of requests × brokers. We implement
// the potential-based shortest-augmenting-path formulation (Jonker–Volgenant
// style), which is the classical O(n²m) KM and directly supports rectangular
// instances (rows ≤ cols) — equivalent to padding the request side with
// |B| − |R| dummy vertices of weight 0 (the paper's Sec. VI-B discussion;
// the equivalence is unit-tested). A greedy matcher and an explicit padding
// helper are provided alongside.

#ifndef LACB_MATCHING_ASSIGNMENT_H_
#define LACB_MATCHING_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching {

/// \brief Marker for an unmatched row/column.
inline constexpr int64_t kUnmatched = -1;

/// \brief Result of a bipartite assignment.
struct Assignment {
  /// col_of_row[r] = column matched to row r, or kUnmatched.
  std::vector<int64_t> col_of_row;
  /// Total weight of the matched edges.
  double total_weight = 0.0;
};

/// \brief Maximum-weight assignment of every row to a distinct column.
///
/// `weights` is rows×cols with rows <= cols; every row is matched (the
/// paper's complete-bipartite setting — edges may carry negative refined
/// utilities and are still usable). O(rows²·cols) time. When `stats` is
/// non-null, per-solve introspection (scan steps, dual updates, phase
/// timings) is merged into it; the null default skips all bookkeeping.
Result<Assignment> MaxWeightAssignment(const la::Matrix& weights,
                                       SolveStats* stats = nullptr);

/// \brief Same, but rows may be left unmatched when every remaining edge
/// would decrease the total (achieved by clamping gains at zero via a
/// virtual skip column per row).
Result<Assignment> MaxWeightAssignmentAllowSkip(const la::Matrix& weights,
                                                SolveStats* stats = nullptr);

/// \brief Pads a rows×cols weight matrix (rows <= cols) with zero-weight
/// dummy rows to a square cols×cols matrix — the paper's construction.
Result<la::Matrix> PadToSquare(const la::Matrix& weights);

/// \brief Greedy matcher: repeatedly takes the heaviest remaining edge whose
/// endpoints are both free. O(E log E); a fast inexact baseline.
Result<Assignment> GreedyAssignment(const la::Matrix& weights);

/// \brief Exhaustive matcher over all row permutations; test oracle only
/// (rows <= 9 or so).
Result<Assignment> BruteForceAssignment(const la::Matrix& weights);

}  // namespace lacb::matching

#endif  // LACB_MATCHING_ASSIGNMENT_H_

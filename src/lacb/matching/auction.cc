#include "lacb/matching/auction.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "lacb/common/stopwatch.h"
#include "lacb/obs/obs.h"

namespace lacb::matching {

Result<Assignment> AuctionAssignment(const la::Matrix& weights,
                                     const AuctionOptions& options,
                                     SolveStats* stats) {
  size_t rows = weights.rows();
  size_t cols = weights.cols();
  if (rows == 0) return Assignment{};
  if (rows > cols) {
    return Status::InvalidArgument("AuctionAssignment requires rows <= cols");
  }
  if (options.epsilon <= 0.0 || options.scaling <= 1.0) {
    return Status::InvalidArgument(
        "AuctionAssignment needs epsilon > 0 and scaling > 1");
  }
  LACB_TRACE_SPAN("auction_solve");
  if (rows < cols) {
    // ε-scaling with persistent prices is only sound when every column ends
    // up assigned (otherwise stale prices on finally-unassigned columns
    // break ε-complementary slackness). Reduce to the symmetric case with
    // zero-weight dummy rows; the optimum over the real rows is unchanged.
    LACB_ASSIGN_OR_RETURN(la::Matrix square, PadToSquare(weights));
    LACB_ASSIGN_OR_RETURN(Assignment padded,
                          AuctionAssignment(square, options, stats));
    Assignment out;
    out.col_of_row.assign(rows, kUnmatched);
    for (size_t r = 0; r < rows; ++r) {
      out.col_of_row[r] = padded.col_of_row[r];
      if (out.col_of_row[r] != kUnmatched) {
        out.total_weight +=
            weights(r, static_cast<size_t>(out.col_of_row[r]));
      }
    }
    // The recursive call recorded the padded square's objective; dummy rows
    // carry zero weight, so align the record with the value we return.
    if (stats != nullptr) {
      stats->objective += out.total_weight - padded.total_weight;
    }
    return out;
  }
  Stopwatch total_sw;
  Stopwatch build_sw;

  double w_min = weights(0, 0);
  double w_max = weights(0, 0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      w_min = std::min(w_min, weights(r, c));
      w_max = std::max(w_max, weights(r, c));
    }
  }
  double range = std::max(1e-12, w_max - w_min);
  double build_seconds = build_sw.ElapsedSeconds();

  std::vector<double> price(cols, 0.0);
  std::vector<int64_t> row_of_col(cols, kUnmatched);
  std::vector<int64_t> col_of_row(rows, kUnmatched);

  double eps = std::max(options.epsilon,
                        range * options.initial_epsilon_fraction);
  Stopwatch search_sw;
  size_t iterations = 0;
  while (true) {
    // Each phase restarts the assignment but keeps prices (ε-scaling).
    std::fill(row_of_col.begin(), row_of_col.end(), kUnmatched);
    std::fill(col_of_row.begin(), col_of_row.end(), kUnmatched);
    std::deque<size_t> unassigned;
    for (size_t r = 0; r < rows; ++r) unassigned.push_back(r);

    while (!unassigned.empty()) {
      if (++iterations > options.max_iterations) {
        return Status::Internal("auction exceeded its iteration budget");
      }
      size_t r = unassigned.front();
      unassigned.pop_front();
      // Find the best and second-best net value for bidder r.
      double best = -std::numeric_limits<double>::infinity();
      double second = best;
      size_t best_col = 0;
      for (size_t c = 0; c < cols; ++c) {
        double net = weights(r, c) - price[c];
        if (net > best) {
          second = best;
          best = net;
          best_col = c;
        } else if (net > second) {
          second = net;
        }
      }
      // Bid: raise the price by the margin plus ε (ε ensures progress).
      double increment =
          (second == -std::numeric_limits<double>::infinity()
               ? range
               : best - second) +
          eps;
      price[best_col] += increment;
      int64_t displaced = row_of_col[best_col];
      row_of_col[best_col] = static_cast<int64_t>(r);
      col_of_row[r] = static_cast<int64_t>(best_col);
      if (displaced != kUnmatched) {
        col_of_row[static_cast<size_t>(displaced)] = kUnmatched;
        unassigned.push_back(static_cast<size_t>(displaced));
      }
    }
    if (eps <= options.epsilon) break;
    eps = std::max(options.epsilon, eps / options.scaling);
  }

  Assignment out;
  out.col_of_row = col_of_row;
  for (size_t r = 0; r < rows; ++r) {
    out.total_weight += weights(r, static_cast<size_t>(col_of_row[r]));
  }
  if (stats != nullptr) {
    SolveStats one;
    one.solver = "auction";
    one.rows = rows;
    one.cols = cols;
    one.solves = 1;
    // Every bid raises exactly one price, so bids double as dual updates.
    one.iterations = iterations;
    one.dual_updates = iterations;
    one.augmenting_paths = rows;
    one.objective = out.total_weight;
    one.phase_build_seconds = build_seconds;
    one.phase_search_seconds = search_sw.ElapsedSeconds();
    one.total_seconds = total_sw.ElapsedSeconds();
    stats->MergeFrom(one);
  }
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("matching.auction.solves").Increment();
  registry.GetCounter("matching.auction.bids").Increment(iterations);
  return out;
}

}  // namespace lacb::matching

// Bertsekas auction algorithm for maximum-weight assignment.
//
// An independent combinatorial solver with very different mechanics from
// the potential-based Kuhn–Munkres: bidders (rows) repeatedly bid on their
// best column at current prices; ε-scaling drives the final assignment to
// within rows·ε of optimal (exact for ε < gap/rows on generic instances).
// Used as a third cross-check oracle in tests and contrasted against KM in
// the matching microbenchmarks.

#ifndef LACB_MATCHING_AUCTION_H_
#define LACB_MATCHING_AUCTION_H_

#include "lacb/matching/assignment.h"

namespace lacb::matching {

/// \brief Options for the auction solver.
struct AuctionOptions {
  /// Final ε of the scaling schedule; the result is within rows·ε of the
  /// optimum. The default is tight enough for exactness on inputs whose
  /// optimal solutions are separated by more than rows·ε.
  double epsilon = 1e-7;
  /// ε-scaling factor per phase (prices warm-start each phase).
  double scaling = 5.0;
  /// Starting ε as a fraction of the weight range.
  double initial_epsilon_fraction = 0.25;
  /// Safety cap on total bids (guards pathological inputs).
  size_t max_iterations = 50'000'000;
};

/// \brief Maximum-weight assignment of every row to a distinct column via
/// ε-scaled auction. Requires rows <= cols. Within rows·ε of optimal.
/// When `stats` is non-null, per-solve introspection (bids, price raises,
/// phase timings) is merged into it.
Result<Assignment> AuctionAssignment(const la::Matrix& weights,
                                     const AuctionOptions& options = {},
                                     SolveStats* stats = nullptr);

}  // namespace lacb::matching

#endif  // LACB_MATCHING_AUCTION_H_

#include "lacb/matching/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "lacb/common/stopwatch.h"

namespace lacb::matching {

namespace {
constexpr size_t kInf = std::numeric_limits<size_t>::max();
}

HopcroftKarp::HopcroftKarp(size_t left, size_t right)
    : left_(left),
      right_(right),
      adjacency_(left),
      match_left_(left, -1),
      match_right_(right, -1),
      dist_(left, kInf) {}

Status HopcroftKarp::AddEdge(size_t u, size_t v) {
  if (u >= left_ || v >= right_) {
    return Status::OutOfRange("HopcroftKarp edge endpoint out of range");
  }
  adjacency_[u].push_back(v);
  return Status::OK();
}

bool HopcroftKarp::Bfs() {
  std::queue<size_t> queue;
  for (size_t u = 0; u < left_; ++u) {
    if (match_left_[u] == -1) {
      dist_[u] = 0;
      queue.push(u);
    } else {
      dist_[u] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop();
    for (size_t v : adjacency_[u]) {
      int64_t w = match_right_[v];
      if (w == -1) {
        found_augmenting = true;
      } else if (dist_[static_cast<size_t>(w)] == kInf) {
        dist_[static_cast<size_t>(w)] = dist_[u] + 1;
        queue.push(static_cast<size_t>(w));
      }
    }
  }
  return found_augmenting;
}

bool HopcroftKarp::Dfs(size_t u) {
  for (size_t v : adjacency_[u]) {
    int64_t w = match_right_[v];
    if (w == -1 ||
        (dist_[static_cast<size_t>(w)] == dist_[u] + 1 &&
         Dfs(static_cast<size_t>(w)))) {
      match_left_[u] = static_cast<int64_t>(v);
      match_right_[v] = static_cast<int64_t>(u);
      return true;
    }
  }
  dist_[u] = kInf;
  return false;
}

size_t HopcroftKarp::Solve(SolveStats* stats) {
  const bool collect = stats != nullptr;
  Stopwatch total_sw;
  Stopwatch phase_sw;
  uint64_t bfs_phases = 0;
  uint64_t augmenting = 0;
  double bfs_seconds = 0.0;
  double dfs_seconds = 0.0;
  size_t matching = 0;
  while (true) {
    if (collect) phase_sw.Restart();
    bool layered = Bfs();
    if (collect) bfs_seconds += phase_sw.ElapsedSeconds();
    if (!layered) break;
    ++bfs_phases;
    if (collect) phase_sw.Restart();
    for (size_t u = 0; u < left_; ++u) {
      if (match_left_[u] == -1 && Dfs(u)) {
        ++matching;
        ++augmenting;
      }
    }
    if (collect) dfs_seconds += phase_sw.ElapsedSeconds();
  }
  if (collect) {
    SolveStats one;
    one.solver = "hk";
    one.rows = left_;
    one.cols = right_;
    one.solves = 1;
    one.iterations = bfs_phases;
    one.augmenting_paths = augmenting;
    one.dual_updates = 0;
    one.objective = static_cast<double>(matching);
    // BFS layers the residual graph (the build work); DFS extracts the
    // augmenting-path set (the search work).
    one.phase_build_seconds = bfs_seconds;
    one.phase_search_seconds = dfs_seconds;
    one.total_seconds = total_sw.ElapsedSeconds();
    stats->MergeFrom(one);
  }
  return matching;
}

}  // namespace lacb::matching

// Hopcroft–Karp maximum-cardinality bipartite matching.
//
// O(E√V) matching on an unweighted bipartite graph. Used for feasibility
// analysis on capacity-filtered eligibility graphs (can every request get
// *some* broker below capacity?) and as a cardinality oracle in tests.

#ifndef LACB_MATCHING_HOPCROFT_KARP_H_
#define LACB_MATCHING_HOPCROFT_KARP_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching {

/// \brief Maximum-cardinality matching on a bipartite adjacency list.
class HopcroftKarp {
 public:
  /// \brief `left` and `right` are the two partition sizes.
  HopcroftKarp(size_t left, size_t right);

  /// \brief Adds an edge between left vertex u and right vertex v.
  Status AddEdge(size_t u, size_t v);

  /// \brief Computes the maximum matching; returns its cardinality. When
  /// `stats` is non-null, per-solve introspection (BFS phases, augmenting
  /// paths, phase timings) is merged into it.
  size_t Solve(SolveStats* stats = nullptr);

  /// \brief After Solve: matched right vertex per left vertex (-1 if none).
  const std::vector<int64_t>& right_of_left() const { return match_left_; }
  const std::vector<int64_t>& left_of_right() const { return match_right_; }

 private:
  bool Bfs();
  bool Dfs(size_t u);

  size_t left_;
  size_t right_;
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<int64_t> match_left_;
  std::vector<int64_t> match_right_;
  std::vector<size_t> dist_;
};

}  // namespace lacb::matching

#endif  // LACB_MATCHING_HOPCROFT_KARP_H_

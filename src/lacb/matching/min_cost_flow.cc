#include "lacb/matching/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "lacb/common/stopwatch.h"
#include "lacb/obs/obs.h"

namespace lacb::matching {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(size_t num_nodes) : graph_(num_nodes) {}

Result<size_t> MinCostFlow::AddEdge(size_t from, size_t to, int64_t capacity,
                                    double cost) {
  if (from >= graph_.size() || to >= graph_.size()) {
    return Status::OutOfRange("MinCostFlow::AddEdge node out of range");
  }
  if (capacity < 0) {
    return Status::InvalidArgument("MinCostFlow capacity must be >= 0");
  }
  size_t fwd_index = graph_[from].size();
  graph_[from].push_back(Edge{to, capacity, cost, graph_[to].size()});
  graph_[to].push_back(Edge{from, 0, -cost, fwd_index});
  edge_locator_.emplace_back(from, fwd_index);
  original_capacity_.push_back(capacity);
  return edge_locator_.size() - 1;
}

Result<MinCostFlow::FlowResult> MinCostFlow::Solve(size_t source, size_t sink,
                                                   int64_t max_flow,
                                                   SolveStats* stats) {
  if (source >= graph_.size() || sink >= graph_.size()) {
    return Status::OutOfRange("MinCostFlow::Solve node out of range");
  }
  if (source == sink) {
    return Status::InvalidArgument("source and sink must differ");
  }
  Stopwatch total_sw;
  Stopwatch build_sw;
  size_t n = graph_.size();
  std::vector<double> potential(n, 0.0);

  // Bellman–Ford establishes valid potentials when negative costs exist.
  {
    std::vector<double> dist(n, kInf);
    dist[source] = 0.0;
    for (size_t iter = 0; iter + 1 < n; ++iter) {
      bool changed = false;
      for (size_t u = 0; u < n; ++u) {
        if (dist[u] == kInf) continue;
        for (const Edge& e : graph_[u]) {
          if (e.capacity <= 0) continue;
          double nd = dist[u] + e.cost;
          if (nd < dist[e.to] - 1e-12) {
            dist[e.to] = nd;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    for (size_t u = 0; u < n; ++u) {
      potential[u] = dist[u] == kInf ? 0.0 : dist[u];
    }
  }

  LACB_TRACE_SPAN("flow_solve");
  double build_seconds = build_sw.ElapsedSeconds();
  Stopwatch search_sw;
  FlowResult result;
  uint64_t augmentations = 0;
  uint64_t queue_pops = 0;
  uint64_t potential_updates = 0;
  std::vector<double> dist(n);
  std::vector<size_t> prev_node(n), prev_edge(n);
  std::vector<bool> reachable(n);
  while (result.flow < max_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(reachable.begin(), reachable.end(), false);
    using Item = std::pair<double, size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist[source] = 0.0;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      ++queue_pops;
      if (d > dist[u] + 1e-12) continue;
      reachable[u] = true;
      for (size_t ei = 0; ei < graph_[u].size(); ++ei) {
        const Edge& e = graph_[u][ei];
        if (e.capacity <= 0) continue;
        double reduced = e.cost + potential[u] - potential[e.to];
        double nd = dist[u] + reduced;
        if (nd < dist[e.to] - 1e-12) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = ei;
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[sink] == kInf) break;
    for (size_t u = 0; u < n; ++u) {
      if (dist[u] < kInf) {
        potential[u] += dist[u];
        ++potential_updates;
      }
    }
    // Bottleneck along the augmenting path.
    int64_t push = max_flow - result.flow;
    for (size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_edge[v]].capacity);
    }
    for (size_t v = sink; v != source; v = prev_node[v]) {
      Edge& e = graph_[prev_node[v]][prev_edge[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += e.cost * static_cast<double>(push);
    }
    result.flow += push;
    ++augmentations;
  }
  if (stats != nullptr) {
    SolveStats one;
    one.solver = "mcf";
    one.rows = n;
    one.cols = edge_locator_.size();
    one.solves = 1;
    one.iterations = queue_pops;
    one.augmenting_paths = augmentations;
    one.dual_updates = potential_updates;
    one.objective = result.cost;
    one.phase_build_seconds = build_seconds;
    one.phase_search_seconds = search_sw.ElapsedSeconds();
    one.total_seconds = total_sw.ElapsedSeconds();
    stats->MergeFrom(one);
  }
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  registry.GetCounter("matching.mcf.solves").Increment();
  registry.GetCounter("matching.mcf.augmentations").Increment(augmentations);
  return result;
}

Result<int64_t> MinCostFlow::FlowOn(size_t edge_id) const {
  if (edge_id >= edge_locator_.size()) {
    return Status::OutOfRange("MinCostFlow::FlowOn edge out of range");
  }
  auto [node, index] = edge_locator_[edge_id];
  return original_capacity_[edge_id] - graph_[node][index].capacity;
}

}  // namespace lacb::matching

// Successive-shortest-path min-cost max-flow.
//
// An independent combinatorial solver used two ways: (i) as a test oracle
// cross-checking the Kuhn–Munkres implementation on random instances, and
// (ii) to solve capacity-constrained assignment exactly when a broker may
// take several requests per batch (an extension beyond the paper's
// one-request-per-broker-per-batch KM formulation).
//
// Costs may be negative on first use (utilities enter negated); the first
// potential initialization runs Bellman–Ford, subsequent iterations use
// Dijkstra with Johnson potentials.

#ifndef LACB_MATCHING_MIN_COST_FLOW_H_
#define LACB_MATCHING_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching {

/// \brief Min-cost max-flow network on integer capacities and real costs.
class MinCostFlow {
 public:
  explicit MinCostFlow(size_t num_nodes);

  /// \brief Adds a directed edge; returns its id (for flow queries).
  Result<size_t> AddEdge(size_t from, size_t to, int64_t capacity,
                         double cost);

  /// \brief Sends up to `max_flow` units from `source` to `sink` at minimum
  /// total cost. Lower `max_flow` bounds allow partial-flow use; pass
  /// INT64_MAX for a full max-flow. When `stats` is non-null, per-solve
  /// introspection (queue pops, augmentations, potential updates, phase
  /// timings) is merged into it; rows/cols report nodes/edges.
  struct FlowResult {
    int64_t flow = 0;
    double cost = 0.0;
  };
  Result<FlowResult> Solve(size_t source, size_t sink,
                           int64_t max_flow = INT64_MAX,
                           SolveStats* stats = nullptr);

  /// \brief Flow currently on edge `edge_id` (after Solve).
  Result<int64_t> FlowOn(size_t edge_id) const;

  size_t num_nodes() const { return graph_.size(); }

 private:
  struct Edge {
    size_t to;
    int64_t capacity;  // residual
    double cost;
    size_t rev;  // index of reverse edge in graph_[to]
  };

  std::vector<std::vector<Edge>> graph_;
  // (node, index-within-node) locator for each added forward edge.
  std::vector<std::pair<size_t, size_t>> edge_locator_;
  std::vector<int64_t> original_capacity_;
};

}  // namespace lacb::matching

#endif  // LACB_MATCHING_MIN_COST_FLOW_H_

#include "lacb/matching/selection.h"

#include <algorithm>

namespace lacb::matching {

namespace {

// Core of Alg. 3 on an index set. Iterative form of the paper's recursion
// with a three-way partition around a random pivot value: elements strictly
// heavier than the pivot must all be kept or recursed into; pivot-equal
// elements are interchangeable and fill any remainder; strictly lighter
// elements are only consulted when the heavy+equal sides fall short.
void SelectTopKIndices(const std::vector<double>& utilities,
                       std::vector<size_t> pool, size_t k, Rng* rng,
                       std::vector<size_t>* out) {
  while (k > 0) {
    if (pool.size() <= k) {
      out->insert(out->end(), pool.begin(), pool.end());
      return;
    }
    size_t pivot_pos = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
    double p = utilities[pool[pivot_pos]];
    std::vector<size_t> heavy;
    std::vector<size_t> equal;
    std::vector<size_t> light;
    for (size_t idx : pool) {
      if (utilities[idx] > p) {
        heavy.push_back(idx);
      } else if (utilities[idx] < p) {
        light.push_back(idx);
      } else {
        equal.push_back(idx);
      }
    }
    if (heavy.size() >= k) {
      pool = std::move(heavy);
      continue;
    }
    out->insert(out->end(), heavy.begin(), heavy.end());
    k -= heavy.size();
    if (equal.size() >= k) {
      // Pivot-equal elements are interchangeable: any k complete a top-k.
      out->insert(out->end(), equal.begin(), equal.begin() + k);
      return;
    }
    out->insert(out->end(), equal.begin(), equal.end());
    k -= equal.size();
    pool = std::move(light);
  }
}

}  // namespace

Result<std::vector<size_t>> SelectTopK(const std::vector<double>& utilities,
                                       size_t k, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("SelectTopK requires an Rng");
  }
  std::vector<size_t> out;
  if (k == 0) return out;
  std::vector<size_t> pool(utilities.size());
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  SelectTopKIndices(utilities, std::move(pool), k, rng, &out);
  return out;
}

Result<std::vector<size_t>> CandidateColumns(const la::Matrix& utility,
                                             Rng* rng) {
  size_t num_rows = utility.rows();
  size_t num_cols = utility.cols();
  std::vector<bool> keep(num_cols, false);
  std::vector<double> row(num_cols);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) row[c] = utility(r, c);
    LACB_ASSIGN_OR_RETURN(std::vector<size_t> top,
                          SelectTopK(row, num_rows, rng));
    for (size_t c : top) keep[c] = true;
  }
  std::vector<size_t> out;
  for (size_t c = 0; c < num_cols; ++c) {
    if (keep[c]) out.push_back(c);
  }
  return out;
}

Result<la::Matrix> RestrictColumns(const la::Matrix& utility,
                                   const std::vector<size_t>& columns) {
  la::Matrix out(utility.rows(), columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] >= utility.cols()) {
      return Status::OutOfRange("RestrictColumns column out of range");
    }
  }
  for (size_t r = 0; r < utility.rows(); ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      out(r, c) = utility(r, columns[c]);
    }
  }
  return out;
}

}  // namespace lacb::matching

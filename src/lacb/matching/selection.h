// Candidate Broker Selection (paper Alg. 3) and its batch-level wrapper.
//
// Theorem 2 of the paper shows a maximum-weight assignment never needs more
// than the |R| heaviest neighbours of each request; CBS extracts that
// candidate set with a randomized quickselect in expected O(|B|) per
// request, so each batch's KM can run on an |R| × O(|R|²) graph instead of
// the full |B|-vertex one.

#ifndef LACB_MATCHING_SELECTION_H_
#define LACB_MATCHING_SELECTION_H_

#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/rng.h"
#include "lacb/la/matrix.h"

namespace lacb::matching {

/// \brief Indices of the k largest entries of `utilities` (unordered).
///
/// Randomized quickselect per Alg. 3: partition around a random pivot value
/// drawn from the data, recurse into the heavy side. If k >= size, all
/// indices are returned. Expected O(n).
Result<std::vector<size_t>> SelectTopK(const std::vector<double>& utilities,
                                       size_t k, Rng* rng);

/// \brief Union over requests of each request's top-|R| candidate columns.
///
/// `utility` is |R| × |B|. Returns a sorted list of distinct column indices
/// sufficient for an optimal assignment (Corollary 1); its size is at most
/// |R|². Expected O(|R||B|).
Result<std::vector<size_t>> CandidateColumns(const la::Matrix& utility,
                                             Rng* rng);

/// \brief Restriction of `utility` to the given columns (in order).
Result<la::Matrix> RestrictColumns(const la::Matrix& utility,
                                   const std::vector<size_t>& columns);

}  // namespace lacb::matching

#endif  // LACB_MATCHING_SELECTION_H_

// Per-solve introspection record shared by all matching backends.
//
// Every solver (Kuhn–Munkres, auction, min-cost flow, Hopcroft–Karp) can
// optionally fill one of these describing the problem it solved and the
// work it did — the evidence a per-batch solver auto-selector needs and
// the payload behind the serve.solver_* instruments. Collection is opt-in
// via a nullable out-parameter so the default solve path does no extra
// clock reads or bookkeeping.

#ifndef LACB_MATCHING_SOLVE_STATS_H_
#define LACB_MATCHING_SOLVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace lacb::matching {

/// \brief Diagnostics for one solver invocation (or a merged aggregate).
struct SolveStats {
  /// Which backend produced this record ("km", "auction", "mcf", "hk",
  /// "greedy", or "mixed" after merging across backends).
  std::string solver;
  /// Problem size. For bipartite solvers: rows × cols of the weight matrix
  /// actually solved (after any padding). For min-cost flow: nodes × edges.
  size_t rows = 0;
  size_t cols = 0;
  /// Number of merged invocations (1 for a single solve).
  uint64_t solves = 0;
  /// Backend-specific unit of inner work: KM column scans, auction bids,
  /// Dijkstra queue pops (flow), BFS phases (Hopcroft–Karp).
  uint64_t iterations = 0;
  /// Augmenting paths / assignments completed.
  uint64_t augmenting_paths = 0;
  /// Dual-variable (potential / price) adjustments applied.
  uint64_t dual_updates = 0;
  /// Objective of the returned solution (total weight, flow cost, or
  /// matching cardinality depending on the backend).
  double objective = 0.0;
  /// Parallel approximate backend ("bmatch"): barrier-synchronized
  /// proposal rounds, proposal attempts across all threads, and work items
  /// claimed from another thread's queue chunk.
  uint64_t rounds = 0;
  uint64_t proposals = 0;
  uint64_t steals = 0;
  /// kAuto selector decisions folded into this record (how many solves
  /// the cost model routed to each backend).
  uint64_t auto_km_selected = 0;
  uint64_t auto_approx_selected = 0;
  /// Wall-clock attribution. Phases are disjoint slices of the solve, so
  /// build + search + update <= total (the remainder is glue).
  double total_seconds = 0.0;
  double phase_build_seconds = 0.0;
  double phase_search_seconds = 0.0;
  double phase_update_seconds = 0.0;

  /// \brief Folds `other` into this record (for per-batch aggregation over
  /// several solver calls). Sizes keep the componentwise max so the merged
  /// record still describes the largest subproblem.
  void MergeFrom(const SolveStats& other) {
    if (other.solves == 0 && other.solver.empty() &&
        other.auto_km_selected == 0 && other.auto_approx_selected == 0) {
      return;
    }
    if (solver.empty()) {
      solver = other.solver;
    } else if (!other.solver.empty() && solver != other.solver) {
      solver = "mixed";
    }
    rows = rows > other.rows ? rows : other.rows;
    cols = cols > other.cols ? cols : other.cols;
    solves += other.solves;
    iterations += other.iterations;
    augmenting_paths += other.augmenting_paths;
    dual_updates += other.dual_updates;
    objective += other.objective;
    rounds += other.rounds;
    proposals += other.proposals;
    steals += other.steals;
    auto_km_selected += other.auto_km_selected;
    auto_approx_selected += other.auto_approx_selected;
    total_seconds += other.total_seconds;
    phase_build_seconds += other.phase_build_seconds;
    phase_search_seconds += other.phase_search_seconds;
    phase_update_seconds += other.phase_update_seconds;
  }
};

}  // namespace lacb::matching

#endif  // LACB_MATCHING_SOLVE_STATS_H_

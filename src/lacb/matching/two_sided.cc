#include "lacb/matching/two_sided.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lacb/matching/approx/parallel_bmatch.h"
#include "lacb/matching/assignment.h"

namespace lacb::matching {
namespace {

// Sentinel far below any real utility; the skip column (weight 0) always
// beats it, so an ineligible edge can never be matched by the exact path.
constexpr double kIneligible = -1e18;

bool Eligible(const TwoSidedParams& p, size_t row, size_t col) {
  return p.costs[col] <= p.budgets[row];
}

// Deterministic budget truncation shared by both backends: keep matched
// brokers per request in (utility desc, broker asc) order while the
// cumulative cost fits the budget, then emit them sorted ascending.
TwoSidedAssignment Truncate(const la::Matrix& weights,
                            const TwoSidedParams& params,
                            std::vector<std::vector<int64_t>> raw) {
  TwoSidedAssignment out;
  out.brokers_of_row.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    std::vector<int64_t>& edges = raw[i];
    std::sort(edges.begin(), edges.end(), [&](int64_t a, int64_t b) {
      double wa = weights(i, static_cast<size_t>(a));
      double wb = weights(i, static_cast<size_t>(b));
      if (wa != wb) return wa > wb;
      return a < b;
    });
    double spent = 0.0;
    std::vector<int64_t>& kept = out.brokers_of_row[i];
    for (int64_t b : edges) {
      double cost = params.costs[static_cast<size_t>(b)];
      if (spent + cost > params.budgets[i] ||
          kept.size() >= static_cast<size_t>(params.limits[i])) {
        ++out.truncated_edges;
        continue;
      }
      spent += cost;
      kept.push_back(b);
      out.total_weight += weights(i, static_cast<size_t>(b));
    }
    std::sort(kept.begin(), kept.end());
  }
  return out;
}

}  // namespace

Status ValidateTwoSidedParams(const la::Matrix& weights,
                              const TwoSidedParams& params) {
  if (params.budgets.size() != weights.rows() ||
      params.limits.size() != weights.rows()) {
    return Status::InvalidArgument(
        "two-sided budgets/limits must have one entry per request row");
  }
  if (params.costs.size() != weights.cols()) {
    return Status::InvalidArgument(
        "two-sided costs must have one entry per broker column");
  }
  for (size_t i = 0; i < params.limits.size(); ++i) {
    if (params.limits[i] < 1) {
      return Status::InvalidArgument("two-sided matching limit must be >= 1");
    }
    if (!(params.budgets[i] >= 0.0)) {  // also rejects NaN
      return Status::InvalidArgument("two-sided budget must be >= 0");
    }
  }
  for (double c : params.costs) {
    if (!(c >= 0.0)) {
      return Status::InvalidArgument("two-sided broker cost must be >= 0");
    }
  }
  return Status::OK();
}

Result<TwoSidedAssignment> TwoSidedExact(const la::Matrix& weights,
                                         const TwoSidedParams& params,
                                         SolveStats* stats) {
  LACB_RETURN_NOT_OK(ValidateTwoSidedParams(weights, params));
  const size_t n = weights.rows();
  const size_t m = weights.cols();
  if (n == 0 || m == 0) {
    TwoSidedAssignment empty;
    empty.brokers_of_row.resize(n);
    return empty;
  }
  // Row expansion: request i contributes limits[i] identical rows, each of
  // which KM matches to a *distinct* column — exactly the degree-≤ℓ_i
  // request side. Ineligible edges get the sentinel so the zero-weight
  // skip column always wins over them.
  size_t total_rows = 0;
  for (int64_t l : params.limits) total_rows += static_cast<size_t>(l);
  la::Matrix expanded(total_rows, m, kIneligible);
  std::vector<size_t> row_of_expanded(total_rows);
  size_t er = 0;
  for (size_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < params.limits[i]; ++k, ++er) {
      row_of_expanded[er] = i;
      for (size_t j = 0; j < m; ++j) {
        if (Eligible(params, i, j)) expanded(er, j) = weights(i, j);
      }
    }
  }
  LACB_ASSIGN_OR_RETURN(Assignment solved,
                        MaxWeightAssignmentAllowSkip(expanded, stats));
  std::vector<std::vector<int64_t>> raw(n);
  for (size_t r = 0; r < total_rows; ++r) {
    int64_t j = solved.col_of_row[r];
    if (j == kUnmatched) continue;
    // Skip-column filtering happened inside AllowSkip; a matched edge at
    // the sentinel weight is impossible but guard against it anyway.
    if (expanded(r, static_cast<size_t>(j)) <= kIneligible) continue;
    raw[row_of_expanded[r]].push_back(j);
  }
  return Truncate(weights, params, std::move(raw));
}

Result<TwoSidedAssignment> TwoSidedApprox(const la::Matrix& weights,
                                          const TwoSidedParams& params,
                                          size_t num_threads,
                                          SolveStats* stats) {
  LACB_RETURN_NOT_OK(ValidateTwoSidedParams(weights, params));
  const size_t n = weights.rows();
  const size_t m = weights.cols();
  if (n == 0 || m == 0) {
    TwoSidedAssignment empty;
    empty.brokers_of_row.resize(n);
    return empty;
  }
  // Transposed orientation: brokers are the degree-≤1 rows (batch-level
  // broker uniqueness), requests the columns with capacity ℓ_i.
  // Ineligible edges are NaN = missing.
  la::Matrix transposed(m, n, std::numeric_limits<double>::quiet_NaN());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (Eligible(params, i, j)) transposed(j, i) = weights(i, j);
    }
  }
  approx::BMatchOptions opts;
  opts.num_threads = num_threads == 0 ? 1 : num_threads;
  LACB_ASSIGN_OR_RETURN(
      approx::BMatchResult solved,
      approx::ParallelBMatch(transposed, params.limits, opts, stats));
  std::vector<std::vector<int64_t>> raw(n);
  for (size_t j = 0; j < m; ++j) {
    int64_t i = solved.col_of_row[j];
    if (i == kUnmatched) continue;
    raw[static_cast<size_t>(i)].push_back(static_cast<int64_t>(j));
  }
  return Truncate(weights, params, std::move(raw));
}

Status CheckTwoSidedFeasible(const la::Matrix& weights,
                             const TwoSidedParams& params,
                             const TwoSidedAssignment& assignment) {
  LACB_RETURN_NOT_OK(ValidateTwoSidedParams(weights, params));
  if (assignment.brokers_of_row.size() != weights.rows()) {
    return Status::InvalidArgument("assignment row count mismatch");
  }
  std::vector<uint8_t> used(weights.cols(), 0);
  for (size_t i = 0; i < assignment.brokers_of_row.size(); ++i) {
    const std::vector<int64_t>& edges = assignment.brokers_of_row[i];
    if (edges.size() > static_cast<size_t>(params.limits[i])) {
      return Status::InvalidArgument("matching limit exceeded");
    }
    double spent = 0.0;
    for (int64_t b : edges) {
      if (b < 0 || static_cast<size_t>(b) >= weights.cols()) {
        return Status::InvalidArgument("broker index out of range");
      }
      if (used[static_cast<size_t>(b)]) {
        return Status::InvalidArgument("broker engaged by two requests");
      }
      used[static_cast<size_t>(b)] = 1;
      if (!Eligible(params, i, static_cast<size_t>(b))) {
        return Status::InvalidArgument("ineligible edge (cost > budget)");
      }
      spent += params.costs[static_cast<size_t>(b)];
    }
    if (spent > params.budgets[i] + 1e-9) {
      return Status::InvalidArgument("request budget exceeded");
    }
  }
  return Status::OK();
}

namespace {

// Recursion over columns: broker j is either unengaged or engaged by one
// request whose limit and budget still admit it.
void BruteRecurse(const la::Matrix& weights, const TwoSidedParams& params,
                  size_t j, std::vector<int64_t>* owner,
                  std::vector<size_t>* degree, std::vector<double>* spent,
                  double weight, double* best_weight,
                  std::vector<int64_t>* best_owner) {
  if (j == weights.cols()) {
    if (weight > *best_weight + 1e-12) {
      *best_weight = weight;
      *best_owner = *owner;
    }
    return;
  }
  (*owner)[j] = kUnmatched;
  BruteRecurse(weights, params, j + 1, owner, degree, spent, weight,
               best_weight, best_owner);
  for (size_t i = 0; i < weights.rows(); ++i) {
    if ((*degree)[i] >= static_cast<size_t>(params.limits[i])) continue;
    if ((*spent)[i] + params.costs[j] > params.budgets[i]) continue;
    (*owner)[j] = static_cast<int64_t>(i);
    ++(*degree)[i];
    (*spent)[i] += params.costs[j];
    BruteRecurse(weights, params, j + 1, owner, degree, spent,
                 weight + weights(i, j), best_weight, best_owner);
    --(*degree)[i];
    (*spent)[i] -= params.costs[j];
  }
  (*owner)[j] = kUnmatched;
}

}  // namespace

Result<TwoSidedAssignment> BruteForceTwoSided(const la::Matrix& weights,
                                              const TwoSidedParams& params) {
  LACB_RETURN_NOT_OK(ValidateTwoSidedParams(weights, params));
  if (weights.cols() > 8) {
    return Status::InvalidArgument("BruteForceTwoSided: too many columns");
  }
  std::vector<int64_t> owner(weights.cols(), kUnmatched);
  std::vector<int64_t> best_owner(weights.cols(), kUnmatched);
  std::vector<size_t> degree(weights.rows(), 0);
  std::vector<double> spent(weights.rows(), 0.0);
  double best_weight = 0.0;
  BruteRecurse(weights, params, 0, &owner, &degree, &spent, 0.0, &best_weight,
               &best_owner);
  TwoSidedAssignment out;
  out.brokers_of_row.resize(weights.rows());
  for (size_t j = 0; j < best_owner.size(); ++j) {
    if (best_owner[j] == kUnmatched) continue;
    out.brokers_of_row[static_cast<size_t>(best_owner[j])].push_back(
        static_cast<int64_t>(j));
    out.total_weight += weights(static_cast<size_t>(best_owner[j]), j);
  }
  return out;
}

}  // namespace lacb::matching

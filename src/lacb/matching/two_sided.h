// Two-sided capacitated batch matching (docs/scenarios.md).
//
// The one-sided pipeline constrains only the broker side: each request
// takes at most one broker, each broker a bounded daily workload. Xu's
// two-sided capacitated gig-platform formulation (PAPERS.md) adds a
// *request side* of constraints: request i carries a matching limit
// ℓ_i (it may engage up to ℓ_i distinct brokers in the batch) and a
// budget B_i; broker b carries an engagement cost c_b, and the edge
// set matched to i must satisfy Σ c_b ≤ B_i. Brokers stay unit-capacity
// within the batch (each broker engages at most one request — the
// batch-level analogue of the worker side in the gig formulation; daily
// broker capacity is still enforced downstream by the usual workload
// accounting).
//
// Both backends solve the b-matching relaxation (limits + eligibility
// c_b ≤ B_i, dropping the knapsack coupling) and then apply the same
// deterministic budget truncation: per request, keep matched brokers in
// (utility desc, broker asc) order while the cumulative cost fits the
// budget. The result is always feasible (CheckTwoSidedFeasible gates it
// in tests against a brute-force oracle); when budgets are slack the
// exact backend's relaxation is tight and matches the oracle.
//
//   * TwoSidedExact  — row expansion (request i becomes ℓ_i rows) into
//     the Jonker–Volgenant KM with per-row skip columns
//     (MaxWeightAssignmentAllowSkip accepts rows > cols because the
//     augmented matrix always has n extra skip columns).
//   * TwoSidedApprox — the transposed b-Suitor: brokers are the
//     degree-≤1 rows, requests the capacity-ℓ_i columns, ineligible
//     edges are NaN (missing). Deterministic at any thread count.

#ifndef LACB_MATCHING_TWO_SIDED_H_
#define LACB_MATCHING_TWO_SIDED_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/solve_stats.h"

namespace lacb::matching {

/// \brief Request-side constraints of one batch. Sizes must match the
/// weight matrix: budgets/limits per row (request), costs per column
/// (broker).
struct TwoSidedParams {
  /// B_i: maximum total broker cost request i may engage.
  std::vector<double> budgets;
  /// ℓ_i ≥ 1: maximum number of distinct brokers for request i.
  std::vector<int64_t> limits;
  /// c_b ≥ 0: cost a broker charges any request that engages it.
  std::vector<double> costs;
};

/// \brief A two-sided matching: per request, the engaged brokers.
struct TwoSidedAssignment {
  /// brokers_of_row[i] = broker columns engaged by request i, sorted
  /// ascending; empty when unmatched.
  std::vector<std::vector<int64_t>> brokers_of_row;
  /// Σ utility over all kept edges.
  double total_weight = 0.0;
  /// Edges dropped by the budget-truncation pass (relaxation edges that
  /// did not fit the knapsack).
  size_t truncated_edges = 0;
};

/// \brief Shape/value validation shared by every entry point.
Status ValidateTwoSidedParams(const la::Matrix& weights,
                              const TwoSidedParams& params);

/// \brief Exact-relaxation backend (KM with row expansion + skip).
Result<TwoSidedAssignment> TwoSidedExact(const la::Matrix& weights,
                                         const TwoSidedParams& params,
                                         SolveStats* stats = nullptr);

/// \brief Approximate backend (transposed parallel b-Suitor).
Result<TwoSidedAssignment> TwoSidedApprox(const la::Matrix& weights,
                                          const TwoSidedParams& params,
                                          size_t num_threads = 1,
                                          SolveStats* stats = nullptr);

/// \brief Feasibility oracle: every engaged broker distinct across the
/// whole matching, per-request |edges| ≤ ℓ_i and Σ c ≤ B_i, every edge
/// eligible. Returns InvalidArgument naming the first violation.
Status CheckTwoSidedFeasible(const la::Matrix& weights,
                             const TwoSidedParams& params,
                             const TwoSidedAssignment& assignment);

/// \brief Exhaustive test oracle over all broker→request maps (includes
/// the budget knapsack, unlike the backends' relaxation). Columns ≤ 8.
Result<TwoSidedAssignment> BruteForceTwoSided(const la::Matrix& weights,
                                              const TwoSidedParams& params);

}  // namespace lacb::matching

#endif  // LACB_MATCHING_TWO_SIDED_H_

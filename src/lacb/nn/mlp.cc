#include "lacb/nn/mlp.h"

#include <cmath>
#include <utility>

namespace lacb::nn {

Mlp::Mlp(std::vector<size_t> layer_sizes, bool use_bias, Vector params)
    : layer_sizes_(std::move(layer_sizes)),
      use_bias_(use_bias),
      params_(std::move(params)) {
  size_t offset = 0;
  size_t n_layers = layer_sizes_.size();
  weight_offsets_.resize(n_layers);
  bias_offsets_.resize(n_layers);
  layer_trainable_.assign(n_layers, true);
  for (size_t l = 0; l < n_layers; ++l) {
    weight_offsets_[l] = offset;
    offset += out_dim(l) * in_dim(l);
    bias_offsets_[l] = offset;
    if (use_bias_) offset += out_dim(l);
  }
  LACB_CHECK_EQ(offset, params_.size());
}

size_t Mlp::in_dim(size_t layer) const { return layer_sizes_[layer]; }

size_t Mlp::out_dim(size_t layer) const {
  return layer + 1 < layer_sizes_.size() ? layer_sizes_[layer + 1] : 1;
}

Result<Mlp> Mlp::Create(const MlpConfig& config, Rng* rng) {
  if (config.layer_sizes.empty()) {
    return Status::InvalidArgument("MLP needs at least an input layer size");
  }
  for (size_t s : config.layer_sizes) {
    if (s == 0) return Status::InvalidArgument("MLP layer sizes must be > 0");
  }
  size_t n_layers = config.layer_sizes.size();
  size_t total = 0;
  for (size_t l = 0; l < n_layers; ++l) {
    size_t in = config.layer_sizes[l];
    size_t out = l + 1 < n_layers ? config.layer_sizes[l + 1] : 1;
    total += in * out + (config.use_bias ? out : 0);
  }
  Vector params(total, 0.0);
  // Initialize weights layer by layer (biases stay zero).
  size_t offset = 0;
  for (size_t l = 0; l < n_layers; ++l) {
    size_t in = config.layer_sizes[l];
    size_t out = l + 1 < n_layers ? config.layer_sizes[l + 1] : 1;
    double stddev = config.init_stddev > 0.0
                        ? config.init_stddev
                        : std::sqrt(2.0 / static_cast<double>(in));
    for (size_t i = 0; i < in * out; ++i) {
      params[offset + i] = rng->Normal(0.0, stddev);
    }
    offset += in * out + (config.use_bias ? out : 0);
  }
  return Mlp(config.layer_sizes, config.use_bias, std::move(params));
}

Status Mlp::ForwardWithCache(const Vector& x, ForwardCache* cache) const {
  if (x.size() != input_dim()) {
    return Status::InvalidArgument("MLP forward: input dimension mismatch");
  }
  size_t n_layers = layer_sizes_.size();
  cache->activations.assign(n_layers + 1, {});
  cache->pre.assign(n_layers, {});
  cache->activations[0] = x;
  for (size_t l = 0; l < n_layers; ++l) {
    size_t in = in_dim(l);
    size_t out = out_dim(l);
    const Vector& a = cache->activations[l];
    Vector z(out, 0.0);
    const double* w = params_.data() + weight_offsets_[l];
    for (size_t i = 0; i < out; ++i) {
      const double* row = w + i * in;
      double acc = use_bias_ ? params_[bias_offsets_[l] + i] : 0.0;
      for (size_t j = 0; j < in; ++j) acc += row[j] * a[j];
      z[i] = acc;
    }
    cache->pre[l] = z;
    bool is_output = (l + 1 == n_layers);
    if (is_output) {
      cache->output = z[0];
      cache->activations[l + 1] = std::move(z);
    } else {
      Vector act(out);
      for (size_t i = 0; i < out; ++i) act[i] = z[i] > 0.0 ? z[i] : 0.0;
      cache->activations[l + 1] = std::move(act);
    }
  }
  return Status::OK();
}

Result<double> Mlp::Forward(const Vector& x) const {
  ForwardCache cache;
  LACB_RETURN_NOT_OK(ForwardWithCache(x, &cache));
  return cache.output;
}

void Mlp::AccumulateParamGradient(const ForwardCache& cache, double out_grad,
                                  Vector* grad) const {
  size_t n_layers = layer_sizes_.size();
  // delta holds d(output)/d(pre-activation of current layer), scaled.
  Vector delta(1, out_grad);
  for (size_t li = n_layers; li > 0; --li) {
    size_t l = li - 1;
    size_t in = in_dim(l);
    size_t out = out_dim(l);
    const Vector& a = cache.activations[l];
    double* gw = grad->data() + weight_offsets_[l];
    for (size_t i = 0; i < out; ++i) {
      double d = delta[i];
      if (use_bias_) (*grad)[bias_offsets_[l] + i] += d;
      if (d == 0.0) continue;
      double* row = gw + i * in;
      for (size_t j = 0; j < in; ++j) row[j] += d * a[j];
    }
    if (l == 0) break;
    // Propagate delta to the previous layer through Wᵀ and the ReLU mask.
    const double* w = params_.data() + weight_offsets_[l];
    Vector prev(in, 0.0);
    for (size_t i = 0; i < out; ++i) {
      double d = delta[i];
      if (d == 0.0) continue;
      const double* row = w + i * in;
      for (size_t j = 0; j < in; ++j) prev[j] += d * row[j];
    }
    const Vector& pre_prev = cache.pre[l - 1];
    for (size_t j = 0; j < in; ++j) {
      if (pre_prev[j] <= 0.0) prev[j] = 0.0;
    }
    delta = std::move(prev);
  }
}

Result<Vector> Mlp::ParamGradient(const Vector& x) const {
  ForwardCache cache;
  LACB_RETURN_NOT_OK(ForwardWithCache(x, &cache));
  Vector grad(params_.size(), 0.0);
  AccumulateParamGradient(cache, 1.0, &grad);
  return grad;
}

Result<Vector> Mlp::LossGradient(const std::vector<Example>& batch,
                                 double l2) const {
  Vector grad(params_.size(), 0.0);
  ForwardCache cache;
  for (const Example& ex : batch) {
    LACB_RETURN_NOT_OK(ForwardWithCache(ex.x, &cache));
    double residual = cache.output - ex.target;
    AccumulateParamGradient(cache, 2.0 * residual, &grad);
  }
  if (l2 > 0.0) {
    for (size_t i = 0; i < grad.size(); ++i) grad[i] += 2.0 * l2 * params_[i];
  }
  return grad;
}

Result<double> Mlp::Loss(const std::vector<Example>& batch, double l2) const {
  double loss = 0.0;
  for (const Example& ex : batch) {
    LACB_ASSIGN_OR_RETURN(double y, Forward(ex.x));
    double r = y - ex.target;
    loss += r * r;
  }
  if (l2 > 0.0) loss += l2 * la::Dot(params_, params_);
  return loss;
}

Status Mlp::SetParams(Vector params) {
  if (params.size() != params_.size()) {
    return Status::InvalidArgument("SetParams size mismatch");
  }
  params_ = std::move(params);
  return Status::OK();
}

Status Mlp::SetLayerTrainable(size_t layer, bool trainable) {
  if (layer >= layer_trainable_.size()) {
    return Status::OutOfRange("layer index out of range");
  }
  layer_trainable_[layer] = trainable;
  return Status::OK();
}

Result<Mlp::LayerSpan> Mlp::LayerParamSpan(size_t layer) const {
  if (layer >= layer_sizes_.size()) {
    return Status::OutOfRange("layer index out of range");
  }
  size_t end = layer + 1 < layer_sizes_.size() ? weight_offsets_[layer + 1]
                                               : params_.size();
  return LayerSpan{weight_offsets_[layer], end};
}

void Mlp::MaskFrozen(Vector* grad) const {
  for (size_t l = 0; l < layer_trainable_.size(); ++l) {
    if (layer_trainable_[l]) continue;
    LayerSpan span = LayerParamSpan(l).value();
    for (size_t i = span.begin; i < span.end; ++i) (*grad)[i] = 0.0;
  }
}

Status Mlp::ApplyGradient(const Vector& grad) {
  if (grad.size() != params_.size()) {
    return Status::InvalidArgument("ApplyGradient size mismatch");
  }
  Vector masked = grad;
  MaskFrozen(&masked);
  for (size_t i = 0; i < params_.size(); ++i) params_[i] -= masked[i];
  return Status::OK();
}

double Mlp::MaxLayerOperatorNorm() const {
  double best = 0.0;
  for (size_t l = 0; l < layer_sizes_.size(); ++l) {
    size_t in = in_dim(l);
    size_t out = out_dim(l);
    la::Matrix w(out, in);
    const double* src = params_.data() + weight_offsets_[l];
    for (size_t i = 0; i < out * in; ++i) w.data()[i] = src[i];
    best = std::max(best, w.OperatorNormEstimate());
  }
  return best;
}

}  // namespace lacb::nn

// Fully connected MLP with ReLU activations and a scalar output.
//
// This implements the reward mapping function S_θ(x, c) of the paper's
// Eq. (4). Beyond the usual forward/backward passes, the bandit module
// needs the *parameter* gradient g_θ(x) = ∇_θ S_θ(x) of the scalar output
// (Eq. 5), so the network exposes it directly as a flattened vector. All
// parameters are stored flattened, which makes optimizers, covariance
// matrices over gradients, and layer freezing (Sec. V-D layer transfer)
// straightforward.

#ifndef LACB_NN_MLP_H_
#define LACB_NN_MLP_H_

#include <cstddef>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/rng.h"
#include "lacb/la/matrix.h"

namespace lacb::nn {

using la::Vector;

/// \brief Architecture and initialization of an Mlp.
struct MlpConfig {
  /// Layer widths from input to the last hidden layer; the output layer is
  /// always scalar. E.g. {10, 64, 32} is a 3-layer net 10 -> 64 -> 32 -> 1.
  std::vector<size_t> layer_sizes;
  /// Include bias terms. The paper's Eq. (4) writes none; biases are kept
  /// optional (and on by default) because they materially help training.
  bool use_bias = true;
  /// Stddev of the Gaussian initialization (Alg. 1 line 3). Non-positive
  /// selects He initialization (sqrt(2/fan_in)) per layer.
  double init_stddev = -1.0;
};

/// \brief One training example: input vector and scalar target.
struct Example {
  Vector x;
  double target = 0.0;
};

/// \brief Scalar-output multi-layer perceptron.
class Mlp {
 public:
  /// \brief Builds a randomly initialized network.
  static Result<Mlp> Create(const MlpConfig& config, Rng* rng);

  size_t input_dim() const { return layer_sizes_.front(); }
  size_t num_layers() const { return layer_sizes_.size(); }  // incl. output
  size_t num_params() const { return params_.size(); }

  /// \brief Forward pass; x must have input_dim() entries.
  Result<double> Forward(const Vector& x) const;

  /// \brief Gradient of the scalar output w.r.t. all parameters, flattened
  /// in the same layout as params().
  Result<Vector> ParamGradient(const Vector& x) const;

  /// \brief Gradient of the batch loss Σ (S(x)−t)² + l2·‖θ‖² (paper Eq. 6).
  Result<Vector> LossGradient(const std::vector<Example>& batch,
                              double l2) const;

  /// \brief Batch loss value (for convergence tests).
  Result<double> Loss(const std::vector<Example>& batch, double l2) const;

  const Vector& params() const { return params_; }
  Status SetParams(Vector params);

  /// \brief Marks a layer (0-based, output layer = num_layers()-1) as frozen;
  /// frozen layers receive zero gradient from ApplyGradient.
  Status SetLayerTrainable(size_t layer, bool trainable);

  /// \brief Per-layer trainable flags (checkpoint serialization).
  const std::vector<bool>& trainable_mask() const { return layer_trainable_; }

  /// \brief In-place params ← params − grad ⊙ trainable_mask (the caller
  /// scales grad by the learning rate; see optimizer.h for stateful rules).
  Status ApplyGradient(const Vector& grad);

  /// \brief Zeroes gradient entries of frozen layers (used by optimizers).
  void MaskFrozen(Vector* grad) const;

  /// \brief Parameter index range [begin, end) of a layer's weights+biases.
  struct LayerSpan {
    size_t begin;
    size_t end;
  };
  Result<LayerSpan> LayerParamSpan(size_t layer) const;

  /// \brief Largest per-layer operator norm (the ξ of Theorem 1).
  double MaxLayerOperatorNorm() const;

 private:
  Mlp(std::vector<size_t> layer_sizes, bool use_bias, Vector params);

  // Weight matrix of `layer` has shape out_dim(layer) x in_dim(layer),
  // stored row-major at weight_offsets_[layer]; biases (if any) follow.
  size_t in_dim(size_t layer) const;
  size_t out_dim(size_t layer) const;

  struct ForwardCache {
    // activations[0] = x; activations[l+1] = post-activation of layer l.
    std::vector<Vector> activations;
    // pre[l] = pre-activation of layer l.
    std::vector<Vector> pre;
    double output = 0.0;
  };
  Status ForwardWithCache(const Vector& x, ForwardCache* cache) const;
  // Backprop of d(output); writes flattened gradient scaled by out_grad.
  void AccumulateParamGradient(const ForwardCache& cache, double out_grad,
                               Vector* grad) const;

  std::vector<size_t> layer_sizes_;  // input + hidden widths (output is 1)
  bool use_bias_;
  Vector params_;
  std::vector<size_t> weight_offsets_;
  std::vector<size_t> bias_offsets_;
  std::vector<bool> layer_trainable_;
};

}  // namespace lacb::nn

#endif  // LACB_NN_MLP_H_

#include "lacb/nn/optimizer.h"

#include <cmath>

namespace lacb::nn {

Status Sgd::Step(const Vector& grad, Mlp* net) {
  if (grad.size() != net->num_params()) {
    return Status::InvalidArgument("Sgd::Step gradient size mismatch");
  }
  if (momentum_ == 0.0) {
    Vector update(grad.size());
    for (size_t i = 0; i < grad.size(); ++i) update[i] = lr_ * grad[i];
    return net->ApplyGradient(update);
  }
  if (velocity_.size() != grad.size()) velocity_.assign(grad.size(), 0.0);
  Vector update(grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grad[i];
    update[i] = lr_ * velocity_[i];
  }
  return net->ApplyGradient(update);
}

Status Adam::Step(const Vector& grad, Mlp* net) {
  if (grad.size() != net->num_params()) {
    return Status::InvalidArgument("Adam::Step gradient size mismatch");
  }
  if (m_.size() != grad.size()) {
    m_.assign(grad.size(), 0.0);
    v_.assign(grad.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  Vector update(grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    double mhat = m_[i] / bc1;
    double vhat = v_[i] / bc2;
    update[i] = lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
  return net->ApplyGradient(update);
}

Result<double> TrainFullBatch(const std::vector<Example>& data, double l2,
                              size_t epochs, Optimizer* opt, Mlp* net) {
  if (data.empty()) {
    return Status::InvalidArgument("TrainFullBatch: empty dataset");
  }
  for (size_t e = 0; e < epochs; ++e) {
    LACB_ASSIGN_OR_RETURN(Vector grad, net->LossGradient(data, l2));
    LACB_RETURN_NOT_OK(opt->Step(grad, net));
  }
  return net->Loss(data, l2);
}

}  // namespace lacb::nn

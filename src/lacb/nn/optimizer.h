// First-order optimizers operating on an Mlp's flattened parameters.
//
// Alg. 1 of the paper updates θ by plain gradient descent on the batch loss
// (Eq. 6); SGD reproduces that. Adam is provided because the base-network
// pre-training in the personalization path converges much faster with it.

#ifndef LACB_NN_OPTIMIZER_H_
#define LACB_NN_OPTIMIZER_H_

#include <memory>
#include <utility>

#include "lacb/nn/mlp.h"

namespace lacb::nn {

/// \brief Interface for stateful first-order update rules.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// \brief Applies one step: consumes the raw loss gradient and updates the
  /// network's parameters in place (respecting frozen layers).
  virtual Status Step(const Vector& grad, Mlp* net) = 0;

  /// \brief Resets internal state (moments, step counter).
  virtual void Reset() = 0;
};

/// \brief Plain (optionally momentum) stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0)
      : lr_(learning_rate), momentum_(momentum) {}

  Status Step(const Vector& grad, Mlp* net) override;
  void Reset() override { velocity_.clear(); }

  /// \brief Momentum buffer (empty until the first momentum step); exposed
  /// for checkpoint serialization.
  const Vector& velocity() const { return velocity_; }
  void set_velocity(Vector v) { velocity_ = std::move(v); }

 private:
  double lr_;
  double momentum_;
  Vector velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  Status Step(const Vector& grad, Mlp* net) override;
  void Reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  Vector m_;
  Vector v_;
  int64_t t_ = 0;
};

/// \brief Runs `epochs` full-batch training passes; returns the final loss.
Result<double> TrainFullBatch(const std::vector<Example>& data, double l2,
                              size_t epochs, Optimizer* opt, Mlp* net);

}  // namespace lacb::nn

#endif  // LACB_NN_OPTIMIZER_H_

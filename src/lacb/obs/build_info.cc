#include "lacb/obs/build_info.h"

#include <chrono>
#include <sstream>

namespace lacb::obs {

namespace {

// Process-start epoch, captured during static initialization so uptime is
// truthful from the first scrape onward.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

#ifndef LACB_BUILD_COMMIT
#define LACB_BUILD_COMMIT "unknown"
#endif

// Bumped per milestone; serving-era observability plane.
constexpr char kVersion[] = "0.6.0";

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.version = kVersion;
    b.commit = LACB_BUILD_COMMIT;
    b.compiler = CompilerString();
    return b;
  }();
  return info;
}

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

std::string RenderBuildInfoMetrics() {
  const BuildInfo& info = GetBuildInfo();
  std::ostringstream out;
  out << "# HELP lacb_build_info Build identity (version, git commit, "
         "compiler) as constant-1 labels.\n";
  out << "# TYPE lacb_build_info gauge\n";
  out << "lacb_build_info{version=\"" << EscapeLabel(info.version)
      << "\",commit=\"" << EscapeLabel(info.commit) << "\",compiler=\""
      << EscapeLabel(info.compiler) << "\"} 1\n";
  out << "# HELP lacb_uptime_seconds Seconds since process start.\n";
  out << "# TYPE lacb_uptime_seconds gauge\n";
  out << "lacb_uptime_seconds " << UptimeSeconds() << "\n";
  return out.str();
}

}  // namespace lacb::obs

// Build identity and process uptime for the Prometheus exposition.
//
// `lacb_build_info` is the conventional info-style metric: a constant 1
// whose labels carry the version / commit / compiler, so dashboards can
// join any series against the binary that produced it. `lacb_uptime_seconds`
// measures from process start (static initialization), not first scrape,
// so the very first scrape already reports a truthful age.

#ifndef LACB_OBS_BUILD_INFO_H_
#define LACB_OBS_BUILD_INFO_H_

#include <string>

namespace lacb::obs {

/// \brief Static identity of this binary.
struct BuildInfo {
  std::string version;
  std::string commit;    // short git hash, or "unknown" outside a checkout
  std::string compiler;  // e.g. "gcc 13.2.0"
};

/// \brief The identity baked in at compile time.
const BuildInfo& GetBuildInfo();

/// \brief Seconds since process start (static-init epoch).
double UptimeSeconds();

/// \brief Renders the `lacb_build_info` and `lacb_uptime_seconds` metrics
/// in Prometheus text format (with trailing newline). Prepended to every
/// /metrics response by the exposition server.
std::string RenderBuildInfoMetrics();

}  // namespace lacb::obs

#endif  // LACB_OBS_BUILD_INFO_H_

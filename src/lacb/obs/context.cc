#include "lacb/obs/context.h"

#include <atomic>

namespace lacb::obs {

namespace {

std::atomic<bool> g_enabled{true};

MetricRegistry& GlobalRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

// Sink context used while collection is disabled: writes land somewhere
// valid (no branches at call sites beyond the enabled check) but are never
// snapshotted or exported.
MetricRegistry& SinkRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Tracer& SinkTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

thread_local MetricRegistry* tl_registry = nullptr;
thread_local Tracer* tl_tracer = nullptr;
thread_local EventRecorder* tl_recorder = nullptr;
thread_local TimeSeriesSampler* tl_sampler = nullptr;

}  // namespace

MetricRegistry& ActiveRegistry() {
  if (!g_enabled.load(std::memory_order_relaxed)) return SinkRegistry();
  return tl_registry != nullptr ? *tl_registry : GlobalRegistry();
}

Tracer& ActiveTracer() {
  if (!g_enabled.load(std::memory_order_relaxed)) return SinkTracer();
  return tl_tracer != nullptr ? *tl_tracer : GlobalTracer();
}

EventRecorder* ActiveEventRecorder() {
  if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
  return tl_recorder;
}

TimeSeriesSampler* ActiveSampler() {
  if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
  return tl_sampler;
}

void SetCollectionEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool CollectionEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

ScopedContextAdoption::ScopedContextAdoption(MetricRegistry* registry,
                                             Tracer* tracer,
                                             EventRecorder* recorder)
    : prev_registry_(tl_registry),
      prev_tracer_(tl_tracer),
      prev_recorder_(tl_recorder) {
  tl_registry = registry;
  tl_tracer = tracer;
  tl_recorder = recorder;
}

ScopedContextAdoption::~ScopedContextAdoption() {
  tl_registry = prev_registry_;
  tl_tracer = prev_tracer_;
  tl_recorder = prev_recorder_;
}

ScopedEventRecording::ScopedEventRecording(EventRecorder* recorder)
    : prev_recorder_(tl_recorder) {
  tl_recorder = recorder;
}

ScopedEventRecording::~ScopedEventRecording() { tl_recorder = prev_recorder_; }

ScopedSamplerAttachment::ScopedSamplerAttachment(TimeSeriesSampler* sampler)
    : prev_sampler_(tl_sampler) {
  tl_sampler = sampler;
}

ScopedSamplerAttachment::~ScopedSamplerAttachment() {
  tl_sampler = prev_sampler_;
}

ScopedTelemetry::ScopedTelemetry()
    : registry_(std::make_unique<MetricRegistry>()),
      tracer_(std::make_unique<Tracer>()),
      prev_registry_(tl_registry),
      prev_tracer_(tl_tracer) {
  tl_registry = registry_.get();
  tl_tracer = tracer_.get();
}

ScopedTelemetry::~ScopedTelemetry() {
  tl_registry = prev_registry_;
  tl_tracer = prev_tracer_;
}

}  // namespace lacb::obs

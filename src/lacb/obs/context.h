// Telemetry context: which registry/tracer instrumented call sites write
// to, and the RAII guard that scopes a fresh pair to one run.
//
// Call sites (engine, policies, matching, bandits) never hold a registry —
// they ask for ActiveRegistry()/ActiveTracer() at the point of the event.
// By default both resolve to process-lifetime singletons; RunPolicy
// installs a ScopedTelemetry so each policy run collects into its own
// instruments and the captured snapshot is per-run, not cumulative. The
// active pointers are thread-local: a future parallel runner installs one
// context per worker thread and runs do not bleed into each other.

#ifndef LACB_OBS_CONTEXT_H_
#define LACB_OBS_CONTEXT_H_

#include <memory>

#include "lacb/obs/metrics.h"
#include "lacb/obs/trace.h"

namespace lacb::obs {

class EventRecorder;
class TimeSeriesSampler;

/// \brief Registry that instrumentation on this thread currently targets.
MetricRegistry& ActiveRegistry();

/// \brief Tracer that LACB_TRACE_SPAN on this thread currently targets.
Tracer& ActiveTracer();

/// \brief Event-timeline recorder installed on this thread, or null —
/// unlike the registry/tracer there is no process default: timeline
/// recording is opt-in via ScopedEventRecording (it retains every event,
/// not aggregates, so it is a debugging/profiling plane, not an always-on
/// one). Null while collection is disabled.
EventRecorder* ActiveEventRecorder();

/// \brief Time-series sampler attached to this thread, or null. The
/// engine ticks it once per simulated day (see core::RunPolicy); attach
/// one via ScopedSamplerAttachment around a run to capture per-day
/// trajectories. Null while collection is disabled.
TimeSeriesSampler* ActiveSampler();

/// \brief Process-wide collection switch (default on). When off, spans
/// and metric lookups still resolve but write to a throwaway context that
/// is never exported — flip off to measure instrumentation overhead.
void SetCollectionEnabled(bool enabled);
bool CollectionEnabled();

/// \brief Installs an *existing* registry + tracer (owned elsewhere) as
/// this thread's active context for the guard's lifetime. This is how a
/// worker-thread pool points its threads at the run-scoped telemetry of
/// the thread that launched it (the serve layer's batcher and assignment
/// workers adopt the service's context): both instruments are internally
/// thread-safe, so many threads may adopt the same pair. Null
/// registry/tracer pointers re-select the process-wide default context;
/// the optional event recorder is forwarded as-is (null = no recording on
/// the adopting thread).
class ScopedContextAdoption {
 public:
  ScopedContextAdoption(MetricRegistry* registry, Tracer* tracer,
                        EventRecorder* recorder = nullptr);
  ~ScopedContextAdoption();
  ScopedContextAdoption(const ScopedContextAdoption&) = delete;
  ScopedContextAdoption& operator=(const ScopedContextAdoption&) = delete;

 private:
  MetricRegistry* prev_registry_;
  Tracer* prev_tracer_;
  EventRecorder* prev_recorder_;
};

/// \brief Installs `recorder` as this thread's active event-timeline
/// recorder for the guard's lifetime (restores the previous one on exit).
/// The serving layer captures the recorder active on the Start() caller
/// and forwards it to its batcher/worker threads.
class ScopedEventRecording {
 public:
  explicit ScopedEventRecording(EventRecorder* recorder);
  ~ScopedEventRecording();
  ScopedEventRecording(const ScopedEventRecording&) = delete;
  ScopedEventRecording& operator=(const ScopedEventRecording&) = delete;

 private:
  EventRecorder* prev_recorder_;
};

/// \brief Attaches `sampler` as this thread's active time-series sampler
/// for the guard's lifetime. Install one around core::RunPolicy to get a
/// per-simulated-day sample of the run's registry.
class ScopedSamplerAttachment {
 public:
  explicit ScopedSamplerAttachment(TimeSeriesSampler* sampler);
  ~ScopedSamplerAttachment();
  ScopedSamplerAttachment(const ScopedSamplerAttachment&) = delete;
  ScopedSamplerAttachment& operator=(const ScopedSamplerAttachment&) = delete;

 private:
  TimeSeriesSampler* prev_sampler_;
};

/// \brief Installs a fresh registry + tracer as this thread's active
/// context for the guard's lifetime; restores the previous context on
/// destruction. Non-reentrant data is per-instance, so guards nest.
class ScopedTelemetry {
 public:
  ScopedTelemetry();
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

  MetricRegistry& registry() { return *registry_; }
  Tracer& tracer() { return *tracer_; }

 private:
  std::unique_ptr<MetricRegistry> registry_;
  std::unique_ptr<Tracer> tracer_;
  MetricRegistry* prev_registry_;
  Tracer* prev_tracer_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_CONTEXT_H_

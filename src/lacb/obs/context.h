// Telemetry context: which registry/tracer instrumented call sites write
// to, and the RAII guard that scopes a fresh pair to one run.
//
// Call sites (engine, policies, matching, bandits) never hold a registry —
// they ask for ActiveRegistry()/ActiveTracer() at the point of the event.
// By default both resolve to process-lifetime singletons; RunPolicy
// installs a ScopedTelemetry so each policy run collects into its own
// instruments and the captured snapshot is per-run, not cumulative. The
// active pointers are thread-local: a future parallel runner installs one
// context per worker thread and runs do not bleed into each other.

#ifndef LACB_OBS_CONTEXT_H_
#define LACB_OBS_CONTEXT_H_

#include <memory>

#include "lacb/obs/metrics.h"
#include "lacb/obs/trace.h"

namespace lacb::obs {

/// \brief Registry that instrumentation on this thread currently targets.
MetricRegistry& ActiveRegistry();

/// \brief Tracer that LACB_TRACE_SPAN on this thread currently targets.
Tracer& ActiveTracer();

/// \brief Process-wide collection switch (default on). When off, spans
/// and metric lookups still resolve but write to a throwaway context that
/// is never exported — flip off to measure instrumentation overhead.
void SetCollectionEnabled(bool enabled);
bool CollectionEnabled();

/// \brief Installs an *existing* registry + tracer (owned elsewhere) as
/// this thread's active context for the guard's lifetime. This is how a
/// worker-thread pool points its threads at the run-scoped telemetry of
/// the thread that launched it (the serve layer's batcher and assignment
/// workers adopt the service's context): both instruments are internally
/// thread-safe, so many threads may adopt the same pair. Null pointers
/// re-select the process-wide default context.
class ScopedContextAdoption {
 public:
  ScopedContextAdoption(MetricRegistry* registry, Tracer* tracer);
  ~ScopedContextAdoption();
  ScopedContextAdoption(const ScopedContextAdoption&) = delete;
  ScopedContextAdoption& operator=(const ScopedContextAdoption&) = delete;

 private:
  MetricRegistry* prev_registry_;
  Tracer* prev_tracer_;
};

/// \brief Installs a fresh registry + tracer as this thread's active
/// context for the guard's lifetime; restores the previous context on
/// destruction. Non-reentrant data is per-instance, so guards nest.
class ScopedTelemetry {
 public:
  ScopedTelemetry();
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

  MetricRegistry& registry() { return *registry_; }
  Tracer& tracer() { return *tracer_; }

 private:
  std::unique_ptr<MetricRegistry> registry_;
  std::unique_ptr<Tracer> tracer_;
  MetricRegistry* prev_registry_;
  Tracer* prev_tracer_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_CONTEXT_H_

#include "lacb/obs/event_trace.h"

#include <algorithm>
#include <atomic>

#include "lacb/common/logging.h"
#include "lacb/obs/context.h"
#include "lacb/obs/snapshot.h"

namespace lacb::obs {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

// One-entry thread-local cache mapping the most recent recorder this
// thread wrote to onto its ring. Keyed by a process-unique recorder id so
// a recorder reallocated at a previous recorder's address can never alias
// a stale cache entry.
struct TlsLogCache {
  uint64_t recorder_id = 0;
  void* log = nullptr;
};
thread_local TlsLogCache tls_log_cache;

}  // namespace

// Ring buffer owned by (and written from) exactly one thread; the mutex
// is uncontended on the write path and taken by Snapshot readers only.
struct EventRecorder::ThreadLog {
  explicit ThreadLog(size_t capacity) : ring(capacity) {}

  mutable std::mutex mu;
  std::vector<TraceEvent> ring;
  size_t head = 0;   // oldest retained event
  size_t count = 0;  // retained events (<= ring.size())
  uint64_t dropped = 0;
  uint32_t tid = 0;
};

EventRecorder::EventRecorder(size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

EventRecorder::~EventRecorder() = default;

EventRecorder::ThreadLog* EventRecorder::Log() {
  if (tls_log_cache.recorder_id == recorder_id_) {
    return static_cast<ThreadLog*>(tls_log_cache.log);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto log = std::make_unique<ThreadLog>(capacity_);
  log->tid = static_cast<uint32_t>(logs_.size());
  ThreadLog* raw = log.get();
  logs_.push_back(std::move(log));
  tls_log_cache = {recorder_id_, raw};
  return raw;
}

void EventRecorder::Record(const char* name, EventPhase phase,
                           uint64_t flow_id) {
  ThreadLog* log = Log();
  TraceEvent event;
  event.name = name;
  event.phase = phase;
  event.ts_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  event.tid = log->tid;
  event.flow_id = flow_id;

  std::lock_guard<std::mutex> lock(log->mu);
  if (log->count == log->ring.size()) {
    log->ring[log->head] = event;
    log->head = (log->head + 1) % log->ring.size();
    ++log->dropped;
  } else {
    log->ring[(log->head + log->count) % log->ring.size()] = event;
    ++log->count;
  }
}

uint64_t EventRecorder::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    total += log->dropped;
  }
  return total;
}

TraceSnapshot EventRecorder::Snapshot() const {
  TraceSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->count > 0) ++snap.threads;
    snap.dropped += log->dropped;
    for (size_t i = 0; i < log->count; ++i) {
      snap.events.push_back(log->ring[(log->head + i) % log->ring.size()]);
    }
  }
  // stable_sort keeps each thread's in-ring order between equal
  // timestamps, so begin/end pairs never invert on a coarse clock.
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_micros < b.ts_micros;
                   });
  return snap;
}

ScopedTimelineEvent::ScopedTimelineEvent(const char* name)
    : recorder_(ActiveEventRecorder()), name_(name) {
  if (recorder_ != nullptr) recorder_->Begin(name_);
}

ScopedTimelineEvent::~ScopedTimelineEvent() {
  if (recorder_ != nullptr) recorder_->End(name_);
}

namespace {

JsonValue EventToJson(const TraceEvent& event) {
  JsonValue out = JsonValue::Object();
  out.Set("name", event.name);
  const char* ph = "i";
  switch (event.phase) {
    case EventPhase::kBegin:
      ph = "B";
      break;
    case EventPhase::kEnd:
      ph = "E";
      break;
    case EventPhase::kInstant:
      ph = "i";
      break;
    case EventPhase::kFlowBegin:
      ph = "s";
      break;
    case EventPhase::kFlowStep:
      ph = "t";
      break;
    case EventPhase::kFlowEnd:
      ph = "f";
      break;
  }
  out.Set("ph", ph);
  out.Set("ts", event.ts_micros);
  out.Set("pid", static_cast<int64_t>(1));
  out.Set("tid", static_cast<int64_t>(event.tid));
  if (event.phase == EventPhase::kInstant) {
    out.Set("s", "t");  // thread-scoped instant marker
  }
  if (event.flow_id != 0) {
    out.Set("cat", "flow");
    out.Set("id", static_cast<uint64_t>(event.flow_id));
    if (event.phase == EventPhase::kFlowEnd) {
      out.Set("bp", "e");  // bind the arrow head to the enclosing slice
    }
  }
  return out;
}

}  // namespace

JsonValue ChromeTraceJson(const TraceSnapshot& snapshot,
                          const std::string& process_name) {
  JsonValue events = JsonValue::Array();

  // Process/thread name metadata rows (phase "M") label the tracks.
  JsonValue pname = JsonValue::Object();
  pname.Set("name", "process_name");
  pname.Set("ph", "M");
  pname.Set("pid", static_cast<int64_t>(1));
  JsonValue pargs = JsonValue::Object();
  pargs.Set("name", process_name);
  pname.Set("args", std::move(pargs));
  events.Append(std::move(pname));

  for (const TraceEvent& event : snapshot.events) {
    events.Append(EventToJson(event));
  }

  JsonValue out = JsonValue::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::Object();
  other.Set("dropped_events", snapshot.dropped);
  other.Set("recording_threads", static_cast<uint64_t>(snapshot.threads));
  out.Set("otherData", std::move(other));
  return out;
}

Status WriteChromeTrace(const EventRecorder& recorder, const std::string& path,
                        const std::string& process_name) {
  TraceSnapshot snapshot = recorder.Snapshot();
  if (snapshot.dropped > 0) {
    LACB_LOG(Warning) << "chrome trace " << path << " is truncated: "
                      << snapshot.dropped
                      << " events were dropped (raise the recorder's "
                         "per-thread capacity for a complete timeline)";
  }
  return WriteJsonFile(ChromeTraceJson(snapshot, process_name), path);
}

}  // namespace lacb::obs

// Event-timeline tracing: a lock-light per-thread ring-buffer recorder for
// *individual* begin/end/instant events, exported as Chrome-tracing JSON.
//
// This is the timeline complement to trace.h: ScopedSpan aggregates
// repeated scopes into one tree node (O(distinct call paths), always on),
// while EventRecorder keeps the most recent N events *per thread* with
// timestamps, thread ids, and flow ids, so a single request can be
// followed across the serve pipeline (enqueue on a producer thread →
// micro-batch close on the batcher thread → solve/commit on a worker
// thread) in chrome://tracing or ui.perfetto.dev.
//
// Memory is bounded by construction: each thread writes into its own
// fixed-capacity ring (drop-oldest; drops are counted, never silent).
// Recording takes one uncontended per-thread mutex acquisition — no shared
// write path — so producers, the batcher, and workers never serialize on
// the recorder. Recording is opt-in: call sites consult
// obs::ActiveEventRecorder() (see context.h), which is null unless a
// ScopedEventRecording guard installed a recorder on that thread (the
// serving layer forwards the guard to its internal threads).

#ifndef LACB_OBS_EVENT_TRACE_H_
#define LACB_OBS_EVENT_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/obs/json.h"

namespace lacb::obs {

/// \brief Kind of a timeline event (maps onto Chrome trace phases).
enum class EventPhase : uint8_t {
  kBegin,      ///< Opens a duration slice ("B").
  kEnd,        ///< Closes the innermost slice of the same name ("E").
  kInstant,    ///< A point-in-time marker ("i").
  kFlowBegin,  ///< Starts a flow arrow at the current slice ("s").
  kFlowStep,   ///< Continues a flow on another thread ("t").
  kFlowEnd,    ///< Terminates a flow ("f").
};

/// \brief One recorded timeline event.
struct TraceEvent {
  /// Label; must outlive the recorder (string literals qualify).
  const char* name = nullptr;
  EventPhase phase = EventPhase::kInstant;
  /// Microseconds since the recorder's construction (fractional).
  double ts_micros = 0.0;
  /// Recorder-assigned dense thread index (stable per recording thread).
  uint32_t tid = 0;
  /// Flow identity connecting events across threads; 0 = no flow.
  uint64_t flow_id = 0;
};

/// \brief Point-in-time view of every thread's ring, merged and ordered.
struct TraceSnapshot {
  /// All retained events, ordered by timestamp (per-thread order is
  /// preserved between equal timestamps).
  std::vector<TraceEvent> events;
  /// Events overwritten by drop-oldest across all threads.
  uint64_t dropped = 0;
  /// Number of threads that recorded at least one event.
  size_t threads = 0;
};

/// \brief Fixed-capacity per-thread event collector.
class EventRecorder {
 public:
  /// \brief Each recording thread gets its own ring of `capacity_per_thread`
  /// events; the oldest event is overwritten (and counted) when full.
  explicit EventRecorder(size_t capacity_per_thread = 1 << 16);
  ~EventRecorder();
  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  void Begin(const char* name) { Record(name, EventPhase::kBegin, 0); }
  void End(const char* name) { Record(name, EventPhase::kEnd, 0); }
  void Instant(const char* name, uint64_t flow_id = 0) {
    Record(name, EventPhase::kInstant, flow_id);
  }
  /// \brief Flow events share `flow_id` (non-zero) across threads; the
  /// exporter renders them as arrows connecting the enclosing slices.
  void FlowBegin(const char* name, uint64_t flow_id) {
    Record(name, EventPhase::kFlowBegin, flow_id);
  }
  void FlowStep(const char* name, uint64_t flow_id) {
    Record(name, EventPhase::kFlowStep, flow_id);
  }
  void FlowEnd(const char* name, uint64_t flow_id) {
    Record(name, EventPhase::kFlowEnd, flow_id);
  }

  void Record(const char* name, EventPhase phase, uint64_t flow_id);

  size_t capacity_per_thread() const { return capacity_; }
  /// \brief Total events lost to drop-oldest so far.
  uint64_t dropped() const;
  /// \brief Merges every thread's ring into one time-ordered snapshot.
  TraceSnapshot Snapshot() const;

 private:
  struct ThreadLog;

  /// Resolves (registering on first use) this thread's ring.
  ThreadLog* Log();

  const size_t capacity_;
  const uint64_t recorder_id_;  // process-unique, for thread-local caching
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // guards logs_ registration
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// \brief RAII begin/end pair on the active recorder (no-op when none).
class ScopedTimelineEvent {
 public:
  explicit ScopedTimelineEvent(const char* name);
  ~ScopedTimelineEvent();
  ScopedTimelineEvent(const ScopedTimelineEvent&) = delete;
  ScopedTimelineEvent& operator=(const ScopedTimelineEvent&) = delete;

 private:
  EventRecorder* recorder_;
  const char* name_;
};

/// \brief Renders a snapshot as a Chrome-tracing JSON document (the
/// "JSON Array Format" wrapped in an object), loadable in chrome://tracing
/// and ui.perfetto.dev. `process_name` labels the single pid row.
JsonValue ChromeTraceJson(const TraceSnapshot& snapshot,
                          const std::string& process_name = "lacb");

/// \brief Snapshots `recorder` and writes the Chrome trace JSON to `path`.
Status WriteChromeTrace(const EventRecorder& recorder, const std::string& path,
                        const std::string& process_name = "lacb");

}  // namespace lacb::obs

#endif  // LACB_OBS_EVENT_TRACE_H_

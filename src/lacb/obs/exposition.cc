#include "lacb/obs/exposition.h"

#include "lacb/obs/build_info.h"
#include "lacb/obs/prometheus.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cstring>
#include <string>
#include <utility>

namespace lacb::obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

#if defined(_WIN32)

// The exposition endpoint is POSIX-only; the rest of the obs plane (and
// the offline exporters) work everywhere.
Result<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    SnapshotFn, const ExpositionOptions&) {
  return Status::NotImplemented("ExpositionServer requires POSIX sockets");
}
ExpositionServer::~ExpositionServer() = default;
void ExpositionServer::Stop() {}
void ExpositionServer::AcceptLoop() {}
void ExpositionServer::HandleConnection(int) {}
ExpositionServer::ExpositionServer(SnapshotFn fn,
                                   std::function<HealthReport()> health_fn,
                                   int fd, int port)
    : snapshot_fn_(std::move(fn)),
      health_fn_(std::move(health_fn)),
      listen_fd_(fd),
      port_(port) {}

#else

namespace {

// Full write; EINTR-safe, SIGPIPE suppressed (a scraper that hangs up
// mid-response must not kill the process).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n"
                    "\r\n";
  out += body;
  return out;
}

}  // namespace

Result<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    SnapshotFn snapshot_fn, const ExpositionOptions& options) {
  if (!snapshot_fn) {
    return Status::InvalidArgument(
        "ExpositionServer requires a snapshot callback");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("ExpositionServer: port out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("ExpositionServer: socket() failed");
  }
  // The listener must never leak into forked shard processes (a child
  // holding the fd would keep the port bound after this process exits).
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  // SO_REUSEADDR lets N shards on one host cycle through ephemeral
  // /metrics ports without TIME_WAIT collisions; failure here is a real
  // misconfiguration, not a condition to scrape through silently.
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    ::close(fd);
    return Status::IoError("ExpositionServer: setsockopt(SO_REUSEADDR) failed");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("ExpositionServer: bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("ExpositionServer: cannot bind " +
                           options.bind_address + ":" +
                           std::to_string(options.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("ExpositionServer: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IoError("ExpositionServer: getsockname() failed");
  }
  return std::unique_ptr<ExpositionServer>(
      new ExpositionServer(std::move(snapshot_fn), options.health_fn, fd,
                           static_cast<int>(ntohs(bound.sin_port))));
}

ExpositionServer::ExpositionServer(SnapshotFn snapshot_fn,
                                   std::function<HealthReport()> health_fn,
                                   int listen_fd, int port)
    : snapshot_fn_(std::move(snapshot_fn)),
      health_fn_(std::move(health_fn)),
      listen_fd_(listen_fd),
      port_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ExpositionServer::~ExpositionServer() { Stop(); }

void ExpositionServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() unblocks the accept(2) in flight; close() releases the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void ExpositionServer::AcceptLoop() {
  for (;;) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by Stop()
    }
    ::fcntl(client, F_SETFD, FD_CLOEXEC);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(client);
      return;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void ExpositionServer::HandleConnection(int client_fd) {
  // Read until the end of the request head (or 4 KiB — scrape requests
  // are one line plus a few headers).
  std::string head;
  char buf[1024];
  while (head.size() < 4096 && head.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<size_t>(n));
  }

  // "GET <path> HTTP/1.x"
  size_t sp1 = head.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || head.compare(0, sp1, "GET") != 0) {
    SendAll(client_fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                                    "only GET is supported\n"));
    return;
  }
  std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
  if (size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);
  }

  if (path == "/metrics") {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    // Build identity and uptime lead every response, so they are present
    // from the first scrape regardless of what the registry holds yet.
    SendAll(client_fd,
            HttpResponse(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         RenderBuildInfoMetrics() +
                             RenderPrometheus(snapshot_fn_())));
  } else if (path == "/healthz") {
    if (!health_fn_) {
      // No health source wired: stay a liveness-only 200.
      SendAll(client_fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
    } else {
      HealthReport report = health_fn_();
      std::string body = HealthStateName(report.state);
      if (!report.detail.empty()) body += ": " + report.detail;
      body += "\n";
      if (report.state == HealthState::kUnhealthy) {
        SendAll(client_fd, HttpResponse(503, "Service Unavailable",
                                        "text/plain", body));
      } else {
        SendAll(client_fd, HttpResponse(200, "OK", "text/plain", body));
      }
    }
  } else {
    SendAll(client_fd,
            HttpResponse(404, "Not Found", "text/plain",
                         "try /metrics or /healthz\n"));
  }
}

#endif  // !defined(_WIN32)

}  // namespace lacb::obs

// ExpositionServer: a minimal HTTP listener that serves live metrics in
// the Prometheus text format — the scrape endpoint of the serving layer.
//
//   GET /metrics  -> 200, RenderPrometheus(snapshot_fn())
//   GET /healthz  -> liveness wired to the owner's health callback:
//                    200 "healthy: ..."/"degraded: ..." while the service
//                    can still make progress, 503 "unhealthy: ..." when it
//                    cannot (no callback installed -> 200 "ok")
//   anything else -> 404
//
// Implementation is deliberately small: one blocking-accept loop on a
// dedicated thread, one connection handled at a time, no keep-alive, no
// third-party dependencies — a scrape every few seconds is the design
// load, not user traffic. The snapshot callback runs on the server thread,
// so it must be thread-safe (MetricRegistry::Snapshot is).
//
// Binding to port 0 picks an ephemeral port; port() reports the bound one
// (tests and CI smoke checks rely on this). Stop() unblocks the accept
// loop and joins the thread; the destructor calls it.

#ifndef LACB_OBS_EXPOSITION_H_
#define LACB_OBS_EXPOSITION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "lacb/common/result.h"
#include "lacb/obs/metrics.h"

namespace lacb::obs {

/// \brief Service liveness, coarsened for load balancers and probes.
///
/// The underlying gauge (serve.health_state) exports the numeric value, so
/// the ordering is part of the metric contract: 0 healthy, 1 degraded,
/// 2 unhealthy.
enum class HealthState {
  kHealthy = 0,    ///< Full capacity, no recent incidents.
  kDegraded = 1,   ///< Making progress with reduced capacity or recent
                   ///< faults (stalls, crashes, degraded batches, retries).
  kUnhealthy = 2,  ///< Cannot make progress (fatal error or no live
                   ///< workers); probes should take the instance out.
};

/// \brief Lower-case probe label of a state ("healthy"/"degraded"/
/// "unhealthy").
const char* HealthStateName(HealthState state);

/// \brief One health evaluation: the state plus a human-readable cause.
struct HealthReport {
  HealthState state = HealthState::kHealthy;
  std::string detail;
};

/// \brief Listener configuration.
struct ExpositionOptions {
  /// TCP port; 0 binds an ephemeral port (see ExpositionServer::port()).
  int port = 0;
  /// Listen address; default loopback-only (scrapers run on-host; expose
  /// on 0.0.0.0 explicitly when the scraper is remote).
  std::string bind_address = "127.0.0.1";
  /// Evaluated per /healthz probe; must be thread-safe (it runs on the
  /// server thread). Unset -> /healthz is an unconditional 200 "ok".
  std::function<HealthReport()> health_fn;
};

/// \brief Blocking-accept HTTP exposition endpoint.
class ExpositionServer {
 public:
  /// \brief Called per /metrics scrape; must be thread-safe.
  using SnapshotFn = std::function<MetricsSnapshot()>;

  /// \brief Binds, listens, and spawns the accept thread. Fails with
  /// IoError when the port cannot be bound.
  static Result<std::unique_ptr<ExpositionServer>> Start(
      SnapshotFn snapshot_fn, const ExpositionOptions& options = {});

  ~ExpositionServer();
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// \brief The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }
  /// \brief Scrapes served so far (diagnostic).
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

  /// \brief Closes the listen socket and joins the accept thread.
  /// Idempotent.
  void Stop();

 private:
  ExpositionServer(SnapshotFn snapshot_fn,
                   std::function<HealthReport()> health_fn, int listen_fd,
                   int port);

  void AcceptLoop();
  void HandleConnection(int client_fd);

  SnapshotFn snapshot_fn_;
  std::function<HealthReport()> health_fn_;
  int listen_fd_;
  int port_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> scrapes_{0};
  std::thread accept_thread_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_EXPOSITION_H_

#include "lacb/obs/forecast.h"

#include <algorithm>
#include <cmath>

#include "lacb/common/logging.h"

namespace lacb::obs {

namespace {
// Trends below this magnitude (units/second) are treated as flat: the
// projected crossing would be further out than any horizon a control loop
// could act on, and dividing by them amplifies estimator noise into
// nonsense horizons.
constexpr double kFlatTrend = 1e-9;
}  // namespace

double CrossingHorizonSeconds(double level, double trend, double target,
                              bool rising) {
  if (rising) {
    if (level >= target) return 0.0;
    if (trend <= kFlatTrend) return kNoHorizon;
    return (target - level) / trend;
  }
  if (level <= target) return 0.0;
  if (trend >= -kFlatTrend) return kNoHorizon;
  return (target - level) / trend;
}

// ---------------------------------------------------------------------------
// EwmaEstimator.

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  LACB_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void EwmaEstimator::Observe(double t, double value) {
  if (count_ == 0) {
    level_ = value;
  } else {
    level_ = alpha_ * value + (1.0 - alpha_) * level_;
  }
  last_t_ = t;
  ++count_;
}

// ---------------------------------------------------------------------------
// HoltEstimator.

HoltEstimator::HoltEstimator(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  LACB_CHECK(alpha > 0.0 && alpha <= 1.0);
  LACB_CHECK(beta > 0.0 && beta <= 1.0);
}

void HoltEstimator::Observe(double t, double value) {
  if (count_ == 0) {
    level_ = value;
    trend_ = 0.0;
    last_t_ = t;
    count_ = 1;
    return;
  }
  double dt = t - last_t_;
  if (dt <= 0.0) {
    // Repeated or out-of-order timestamp: no time elapsed, so there is no
    // rate information — only blend the level.
    level_ = alpha_ * value + (1.0 - alpha_) * level_;
    ++count_;
    return;
  }
  double predicted = level_ + trend_ * dt;
  double prev_level = level_;
  level_ = alpha_ * value + (1.0 - alpha_) * predicted;
  trend_ = beta_ * ((level_ - prev_level) / dt) + (1.0 - beta_) * trend_;
  last_t_ = t;
  ++count_;
}

double HoltEstimator::Forecast(double horizon_seconds) const {
  return level_ + trend_ * horizon_seconds;
}

double HoltEstimator::LevelAt(double at_time) const {
  double dt = at_time - last_t_;
  if (dt < 0.0) dt = 0.0;
  return Forecast(dt);
}

// ---------------------------------------------------------------------------
// HorizonEstimator.

HorizonEstimator::HorizonEstimator(size_t num_series, const Options& options)
    : series_(num_series, HoltEstimator(options.alpha, options.beta)) {}

void HorizonEstimator::Observe(size_t i, double t, double value) {
  LACB_CHECK(i < series_.size());
  series_[i].Observe(t, value);
}

double HorizonEstimator::HorizonSeconds(size_t i, double at_time,
                                        double target, bool rising) const {
  LACB_CHECK(i < series_.size());
  const HoltEstimator& s = series_[i];
  // One observation carries no trend; projecting it would always report
  // kNoHorizon anyway unless already past the target — which a single
  // stale sample should not assert either.
  if (!s.has_trend()) return kNoHorizon;
  return CrossingHorizonSeconds(s.LevelAt(at_time), s.trend(), target,
                                rising);
}

std::vector<double> HorizonEstimator::Horizons(double at_time, double target,
                                               bool rising) const {
  std::vector<double> out;
  out.reserve(series_.size());
  for (size_t i = 0; i < series_.size(); ++i) {
    out.push_back(HorizonSeconds(i, at_time, target, rising));
  }
  return out;
}

// ---------------------------------------------------------------------------
// BurstDetector.

BurstDetector::BurstDetector(const Options& options) : options_(options) {
  LACB_CHECK(options.window >= 2);
  ring_.resize(options_.window, 0.0);
}

bool BurstDetector::Observe(double value) {
  bool fired = false;
  zscore_ = 0.0;
  if (count_ >= options_.min_samples && filled_ >= 2) {
    double sum = 0.0;
    for (size_t i = 0; i < filled_; ++i) sum += ring_[i];
    double mean = sum / static_cast<double>(filled_);
    double var = 0.0;
    for (size_t i = 0; i < filled_; ++i) {
      double d = ring_[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(filled_);
    double sigma = std::sqrt(var);
    // A perfectly flat baseline has sigma 0; fall back to a fraction of
    // the mean so the z-score stays finite and the ratio guard decides.
    double denom = sigma > 1e-12 ? sigma : std::max(1e-12, 0.05 * mean);
    zscore_ = (value - mean) / denom;
    fired = zscore_ > options_.z_threshold &&
            value > options_.min_ratio * std::max(mean, 1e-12);
  }
  // The tested observation joins the baseline *after* the test.
  ring_[next_] = value;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++count_;
  active_ = fired;
  if (fired) ++firings_;
  return fired;
}

// ---------------------------------------------------------------------------
// DriftDetector.

DriftDetector::DriftDetector(const Options& options) : options_(options) {
  LACB_CHECK(options.warmup >= 2);
  LACB_CHECK(options.threshold > 0.0);
}

bool DriftDetector::Observe(double value) {
  ++count_;
  if (count_ <= options_.warmup) {
    // Welford update of the warmup baseline.
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == options_.warmup) {
      sigma_ = std::sqrt(m2_ / static_cast<double>(count_));
      if (sigma_ < 1e-12) {
        // Degenerate (constant) baseline: scale deviations against a
        // small fraction of the mean so a later shift still registers.
        sigma_ = std::max(1e-12, 0.05 * std::abs(mean_));
      }
    }
    return false;
  }
  double z = (value - mean_) / sigma_;
  sum_pos_ = std::max(0.0, sum_pos_ + z - options_.slack);
  sum_neg_ = std::max(0.0, sum_neg_ - z - options_.slack);
  return drifted();
}

double DriftDetector::score() const {
  return std::max(sum_pos_, sum_neg_) / options_.threshold;
}

void DriftDetector::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  sigma_ = 0.0;
  sum_pos_ = 0.0;
  sum_neg_ = 0.0;
}

}  // namespace lacb::obs

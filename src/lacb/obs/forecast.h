// Forecasting plane: short-horizon predictors over serving telemetry.
//
// Everything else the obs layer exports is retrospective — a counter says a
// request *was* shed, a burn rate says the budget *was* spent. The paper's
// core tension (broker capacity exhausts *during* the day) makes the
// forward-looking quantities the interesting ones: how long until a
// broker's residual capacity hits zero, how long until the ingestion queue
// saturates, is the arrival process bursting right now. This header holds
// the estimator math; the serve layer feeds it at batch-commit boundaries
// and exports the projections as serve.forecast.* gauges (docs/
// observability.md, "Forecasting & pressure signals").
//
// Components:
//   EwmaEstimator   — plain exponentially weighted level (no trend).
//   HoltEstimator   — double exponential smoothing: level + per-second
//                     trend, with irregular-interval updates (the trend is
//                     a rate, so samples may arrive at any spacing).
//   HorizonEstimator— a bank of HoltEstimators (one per tracked series,
//                     e.g. one per broker residual) projecting each series
//                     to a floor/ceiling crossing time.
//   BurstDetector   — rate-of-change z-score over a sliding ring buffer.
//   DriftDetector   — two-sided CUSUM on standardized deviations from a
//                     warmup baseline (slow shifts a z-score misses).
//
// All observation methods take explicit timestamps (seconds on any
// monotone axis), mirroring SloTracker's RecordAt/EvaluateAt pattern, so
// the math is unit-testable without wall-clock sleeps. None of the classes
// are thread-safe; the serve layer serializes access under its own mutex.

#ifndef LACB_OBS_FORECAST_H_
#define LACB_OBS_FORECAST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lacb::obs {

/// \brief Sentinel horizon meaning "no crossing predicted" (the series is
/// flat or moving away from the target). A finite sentinel instead of
/// +inf keeps the exported gauges JSON- and Prometheus-friendly.
inline constexpr double kNoHorizon = -1.0;

/// \brief Time (seconds, >= 0) until a series at `level` moving at `trend`
/// units/second reaches `target`. `rising` selects the crossing direction:
/// true means the event is the series growing up to `target` (queue depth
/// reaching capacity), false means decaying down to it (residual capacity
/// reaching zero). Already at/past the target in the event direction
/// returns 0; flat or moving away returns kNoHorizon.
double CrossingHorizonSeconds(double level, double trend, double target,
                              bool rising);

/// \brief Plain EWMA level estimator: level' = a*x + (1-a)*level.
class EwmaEstimator {
 public:
  /// \brief `alpha` in (0, 1]: weight of the newest observation.
  explicit EwmaEstimator(double alpha);

  void Observe(double t, double value);

  bool valid() const { return count_ > 0; }
  double level() const { return level_; }
  double last_time() const { return last_t_; }
  size_t count() const { return count_; }

 private:
  double alpha_;
  double level_ = 0.0;
  double last_t_ = 0.0;
  size_t count_ = 0;
};

/// \brief Holt double exponential smoothing with irregular intervals.
///
/// The trend is kept as a per-second rate so the update is well-defined
/// for any sample spacing:
///   predicted = level + trend * dt
///   level'    = alpha * x + (1 - alpha) * predicted
///   trend'    = beta * (level' - level) / dt + (1 - beta) * trend
/// The first observation seeds the level with a zero trend; a repeated
/// timestamp (dt <= 0) only blends the level.
class HoltEstimator {
 public:
  /// \brief `alpha` smooths the level, `beta` the trend; both in (0, 1].
  HoltEstimator(double alpha, double beta);

  void Observe(double t, double value);

  /// \brief Projected value `horizon_seconds` past the last observation.
  double Forecast(double horizon_seconds) const;
  /// \brief Level projected forward to absolute time `at_time` (same axis
  /// as Observe timestamps; times before the last observation clamp to it).
  double LevelAt(double at_time) const;

  bool valid() const { return count_ > 0; }
  /// \brief Trend estimates need two observations; before that trend()==0.
  bool has_trend() const { return count_ >= 2; }
  double level() const { return level_; }
  double trend() const { return trend_; }
  double last_time() const { return last_t_; }
  size_t count() const { return count_; }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  double last_t_ = 0.0;
  size_t count_ = 0;
};

/// \brief A bank of Holt estimators projecting each tracked series to a
/// target-crossing time — per-broker residual capacities to exhaustion,
/// queue depth to saturation.
class HorizonEstimator {
 public:
  struct Options {
    double alpha = 0.4;  ///< Level smoothing (SNIPPETS EWMA default).
    double beta = 0.2;   ///< Trend smoothing.
  };

  HorizonEstimator(size_t num_series, const Options& options);

  size_t num_series() const { return series_.size(); }

  /// \brief Feeds one observation of series `i` at time `t` (seconds).
  void Observe(size_t i, double t, double value);

  /// \brief Seconds from `at_time` until series `i`'s projection crosses
  /// `target` in the `rising` direction (see CrossingHorizonSeconds).
  /// kNoHorizon while the series has fewer than two observations.
  double HorizonSeconds(size_t i, double at_time, double target,
                        bool rising) const;

  /// \brief Horizon of every series at `at_time` (kNoHorizon entries for
  /// unseen/flat series).
  std::vector<double> Horizons(double at_time, double target,
                               bool rising) const;

  const HoltEstimator& series(size_t i) const { return series_[i]; }

 private:
  std::vector<HoltEstimator> series_;
};

/// \brief Sliding-window z-score burst detector.
///
/// Keeps a ring of the last `window` observations as the baseline; a new
/// observation fires when it sits more than `z_threshold` standard
/// deviations above the baseline mean AND above `min_ratio` times the
/// mean (the ratio guard keeps a near-zero-variance baseline from firing
/// on noise). The baseline excludes the observation under test, so a step
/// change fires on its first sample. Observations join the ring after the
/// test, so a sustained burst eventually becomes the new baseline and the
/// detector re-arms — it flags onsets, not plateaus.
class BurstDetector {
 public:
  struct Options {
    size_t window = 32;        ///< Baseline ring size.
    double z_threshold = 4.0;  ///< Fire above this many baseline sigmas.
    double min_ratio = 2.0;    ///< ... and above this multiple of the mean.
    size_t min_samples = 8;    ///< Warmup before the detector may fire.
  };

  explicit BurstDetector(const Options& options);

  /// \brief Feeds one observation; returns whether it fired.
  bool Observe(double value);

  /// \brief Whether the latest observation fired.
  bool active() const { return active_; }
  /// \brief z-score of the latest observation against its baseline.
  double zscore() const { return zscore_; }
  uint64_t firings() const { return firings_; }
  size_t count() const { return count_; }

 private:
  Options options_;
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t filled_ = 0;
  size_t count_ = 0;
  bool active_ = false;
  double zscore_ = 0.0;
  uint64_t firings_ = 0;
};

/// \brief Two-sided CUSUM drift detector on standardized deviations.
///
/// The first `warmup` observations fit a baseline mean and standard
/// deviation; afterwards each observation's standardized deviation z feeds
/// the classical tabular CUSUM:
///   S+ = max(0, S+ + z - slack),   S- = max(0, S- - z - slack)
/// score() = max(S+, S-) / threshold, so a score >= 1 means the decision
/// interval was crossed — a sustained shift of the mean that a per-sample
/// z-test would never flag. Unlike the burst detector this accumulates, so
/// it catches slow drifts (solve latency creeping up, admission rate
/// eroding) long before any single sample looks anomalous.
class DriftDetector {
 public:
  struct Options {
    double slack = 0.5;      ///< k: dead zone, in baseline sigmas.
    double threshold = 8.0;  ///< h: decision interval, in sigmas.
    size_t warmup = 16;      ///< Observations used to fit the baseline.
  };

  explicit DriftDetector(const Options& options);

  /// \brief Feeds one observation; returns drifted() after it.
  bool Observe(double value);

  /// \brief max(S+, S-) normalized by the decision interval; >= 1 = drift.
  double score() const;
  bool drifted() const { return score() >= 1.0; }
  size_t count() const { return count_; }

  /// \brief Drops all state (baseline and sums) — e.g. at a day boundary.
  void Reset();

 private:
  Options options_;
  size_t count_ = 0;
  // Welford running baseline over the warmup prefix.
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sigma_ = 0.0;
  double sum_pos_ = 0.0;
  double sum_neg_ = 0.0;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_FORECAST_H_

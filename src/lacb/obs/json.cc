#include "lacb/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lacb::obs {

namespace {

void WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void WriteNumber(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  // Integers up to 2^53 print exactly, without a trailing ".0".
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    os << buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os << buf;
}

// Recursive-descent parser over a raw character range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    LACB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("JSON: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("JSON: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  bool ConsumeLiteral(const char* lit) {
    size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("JSON: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      LACB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("null")) return JsonValue();
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    LACB_RETURN_NOT_OK(Expect('{'));
    JsonValue out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      LACB_ASSIGN_OR_RETURN(std::string key, ParseString());
      LACB_RETURN_NOT_OK(Expect(':'));
      LACB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Set(key, std::move(v));
      if (Consume(',')) continue;
      LACB_RETURN_NOT_OK(Expect('}'));
      return out;
    }
  }

  Result<JsonValue> ParseArray() {
    LACB_RETURN_NOT_OK(Expect('['));
    JsonValue out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      LACB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Append(std::move(v));
      if (Consume(',')) continue;
      LACB_RETURN_NOT_OK(Expect(']'));
      return out;
    }
  }

  Result<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument("JSON: expected string at offset " +
                                     std::to_string(pos_));
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("JSON: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("JSON: bad \\u escape digit");
            }
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("JSON: unknown escape");
      }
    }
    return Status::InvalidArgument("JSON: unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("JSON: expected value at offset " +
                                     std::to_string(pos_));
    }
    try {
      return JsonValue(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Status::InvalidArgument("JSON: malformed number");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void JsonValue::Append(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::WriteIndented(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      WriteNumber(os, number_);
      break;
    case Kind::kString:
      WriteEscaped(os, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        os << pad;
        items_[i].WriteIndented(os, indent, depth + 1);
        if (i + 1 < items_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        os << pad;
        WriteEscaped(os, members_[i].first);
        os << (indent > 0 ? ": " : ":");
        members_[i].second.WriteIndented(os, indent, depth + 1);
        if (i + 1 < members_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void JsonValue::Write(std::ostream& os, int indent) const {
  WriteIndented(os, indent, 0);
}

std::string JsonValue::ToString(int indent) const {
  std::ostringstream os;
  Write(os, indent);
  return os.str();
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace lacb::obs

// Minimal JSON document model for telemetry export.
//
// JsonValue holds one of null / bool / number / string / array / object,
// writes itself as standards-compliant JSON (object keys kept in insertion
// order so exported snapshots diff cleanly), and parses back from text —
// enough for BENCH_*.json round-trips without an external dependency.
// Numbers are doubles; non-finite values serialize as null.

#ifndef LACB_OBS_JSON_H_
#define LACB_OBS_JSON_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "lacb/common/result.h"

namespace lacb::obs {

/// \brief A JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}  // NOLINT
  JsonValue(int64_t i)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(uint64_t u)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(std::string s)  // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// \brief Array elements (valid for kArray).
  const std::vector<JsonValue>& items() const { return items_; }
  /// \brief Object members in insertion order (valid for kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// \brief Appends to an array (converts a null value to an array first).
  void Append(JsonValue v);

  /// \brief Sets an object member, replacing an existing key (converts a
  /// null value to an object first).
  void Set(const std::string& key, JsonValue v);

  /// \brief Member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// \brief Serializes with `indent` spaces per level (0 = compact).
  void Write(std::ostream& os, int indent = 2) const;
  std::string ToString(int indent = 2) const;

  /// \brief Parses a complete JSON document (trailing junk is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void WriteIndented(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_JSON_H_

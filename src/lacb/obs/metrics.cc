#include "lacb/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "lacb/common/logging.h"

namespace lacb::obs {

// ---------------------------------------------------------------------------
// P² streaming quantile (Jain & Chlamtac, CACM 1985).

void P2Quantile::Record(double x) {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      incr_[0] = 0.0;
      incr_[1] = q_ / 2.0;
      incr_[2] = q_;
      incr_[3] = (1.0 + q_) / 2.0;
      incr_[4] = 1.0;
    }
    return;
  }

  // Locate the cell k containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];
  ++n_;

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      double step = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, step);
      }
      pos_[i] += step;
    }
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (pos_[i + 1] - pos_[i - 1]) *
             ((pos_[i] - pos_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              (pos_[i + 1] - pos_[i] - d) * (heights_[i] - heights_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] +
         d * (heights_[j] - heights_[i]) / (pos_[j] - pos_[i]);
}

double P2Quantile::Estimate() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact quantile of the few values seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    double rank = q_ * static_cast<double>(n_ - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, n_ - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), bucket_counts_(bounds_.size() + 1) {}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 200.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::Record(double value) {
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  bucket_counts_[idx].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  p50_.Record(value);
  p95_.Record(value);
  p99_.Record(value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bucket_counts_.size());
  for (const auto& c : bucket_counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> lock(mu_);
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = p50_.Estimate();
  snap.p95 = p95_.Estimate();
  snap.p99 = p99_.Estimate();
  return snap;
}

// ---------------------------------------------------------------------------
// MetricRegistry.

bool IsValidInstrumentName(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment ("a..b")
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (!(c == '_' || (c >= 'a' && c <= 'z'))) return false;
      segment_start = false;
    } else if (!(c == '_' || (c >= 'a' && c <= 'z') ||
                 (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

namespace {
const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}
}  // namespace

void MetricRegistry::RegisterName(const std::string& name,
                                  InstrumentKind kind) {
  if (!IsValidInstrumentName(name)) {
    LACB_LOG(Error) << "invalid instrument name '" << name
                    << "' (want dotted snake_case, e.g. "
                       "\"serve.queue_depth\")";
    LACB_CHECK(IsValidInstrumentName(name));
  }
  auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    LACB_LOG(Error) << "instrument '" << name << "' already registered as a "
                    << KindName(static_cast<int>(it->second))
                    << "; cannot re-register as a "
                    << KindName(static_cast<int>(kind));
    LACB_CHECK(it->second == kind);
  }
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterName(name, InstrumentKind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterName(name, InstrumentKind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBounds());
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  RegisterName(name, InstrumentKind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricRegistry::SetHelpLocked(const std::string& name,
                                   const std::string& help) {
  if (help.empty()) return;
  help_.emplace(name, help);  // first description wins
}

Counter& MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help) {
  Counter& c = GetCounter(name);
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  return c;
}

Gauge& MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help) {
  Gauge& g = GetGauge(name);
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  return g;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const std::string& help) {
  Histogram& h = GetHistogram(name, std::move(bounds));
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  return h;
}

void MetricRegistry::SetHelp(const std::string& name,
                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  snap.help = help_;
  return snap;
}

}  // namespace lacb::obs

// Process-wide metrics primitives: monotonic counters, gauges, and
// histograms with fixed buckets plus streaming P² quantile estimators.
//
// All instruments are safe to update from multiple threads — counters and
// gauges are lock-free atomics; a histogram takes a short mutex per record
// for its quantile markers — so later parallelism PRs inherit correct
// telemetry without changes at the call sites. Instruments are owned by a
// MetricRegistry and referenced by dotted snake_case names (e.g.
// "matching.km.solves"); a reference stays valid for the registry's
// lifetime, so hot paths may cache it across calls within one run.

#ifndef LACB_OBS_METRICS_H_
#define LACB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lacb::obs {

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (also supports Add).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Point-in-time view of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Bucket upper bounds; counts has one extra entry for the overflow
  /// bucket (values above the last bound).
  std::vector<double> bounds;
  std::vector<uint64_t> counts;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// \brief Streaming quantile estimator (Jain & Chlamtac's P² algorithm):
/// five markers track one quantile in O(1) memory per observation.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile) : q_(quantile) {}

  void Record(double x);
  /// \brief Current estimate; exact while fewer than 5 observations.
  double Estimate() const;

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  size_t n_ = 0;        // observations seen
  double heights_[5];   // marker heights
  double pos_[5];       // marker positions (1-based)
  double desired_[5];   // desired marker positions
  double incr_[5];      // desired-position increments
};

/// \brief Fixed-bucket histogram with streaming p50/p95/p99.
class Histogram {
 public:
  /// \brief `bounds` are strictly increasing bucket upper limits; an
  /// implicit overflow bucket catches larger values.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

  /// \brief Exponential 1µs…~131s grid, sized for latencies in seconds.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> bucket_counts_;  // bounds + overflow

  mutable std::mutex mu_;  // guards everything below
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// \brief Point-in-time view of every instrument in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Help strings by (dotted) instrument name — instruments registered
  /// without a description are simply absent. Exporters emit these as
  /// `# HELP` lines (see prometheus.cc).
  std::map<std::string, std::string> help;
};

/// \brief True when `name` is valid dotted snake_case: non-empty
/// '.'-separated segments, each `[a-z_][a-z0-9_]*`.
bool IsValidInstrumentName(const std::string& name);

/// \brief Thread-safe name → instrument registry.
///
/// Get* creates the instrument on first use; returned references remain
/// valid (and their addresses stable) until the registry is destroyed.
/// Names are validated at registration: a malformed name (see
/// IsValidInstrumentName) or a name re-registered as a *different*
/// instrument type fails fast with LACB_CHECK — both are call-site bugs
/// that would otherwise surface as silently-forked metric families in the
/// exporters.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// \brief Uses Histogram::DefaultLatencyBounds() on first registration.
  Histogram& GetHistogram(const std::string& name);
  /// \brief Custom bounds apply only on first registration of `name`.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// \brief Registration variants carrying a help string: the description
  /// rides into MetricsSnapshot::help and the Prometheus exporter emits it
  /// as the family's `# HELP` line. The first non-empty description of a
  /// name wins; later registrations never overwrite it.
  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help);

  /// \brief Attaches a description to an instrument name (first non-empty
  /// description wins). Usable independently of the Get* overloads.
  void SetHelp(const std::string& name, const std::string& help);

  MetricsSnapshot Snapshot() const;

 private:
  enum class InstrumentKind { kCounter, kGauge, kHistogram };

  /// Validates `name` and records/compares its kind (callers hold mu_).
  void RegisterName(const std::string& name, InstrumentKind kind);

  /// Records `help` for `name` if non-empty and not already set (callers
  /// hold mu_).
  void SetHelpLocked(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, InstrumentKind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_METRICS_H_

// Umbrella header for the observability subsystem.
//
//   obs::ActiveRegistry().GetCounter("matching.km.solves").Increment();
//   { LACB_TRACE_SPAN("km_solve"); ... }
//   obs::RunTelemetry t = obs::CaptureRun(reg, tracer, {{"policy", "LACB"}});
//   obs::WriteJsonFile(t, "BENCH_run.json");
//
// See docs/observability.md for the metric name inventory and JSON schema.

#ifndef LACB_OBS_OBS_H_
#define LACB_OBS_OBS_H_

#include "lacb/obs/build_info.h"
#include "lacb/obs/context.h"
#include "lacb/obs/event_trace.h"
#include "lacb/obs/exposition.h"
#include "lacb/obs/forecast.h"
#include "lacb/obs/json.h"
#include "lacb/obs/metrics.h"
#include "lacb/obs/profiler.h"
#include "lacb/obs/prometheus.h"
#include "lacb/obs/slo.h"
#include "lacb/obs/snapshot.h"
#include "lacb/obs/timeseries.h"
#include "lacb/obs/trace.h"

#endif  // LACB_OBS_OBS_H_

#include "lacb/obs/profiler.h"

#include <sstream>
#include <utility>

#include "lacb/persist/bytes.h"

namespace lacb::obs {

SpanProfiler::~SpanProfiler() { Stop(); }

Status SpanProfiler::Start(Tracer* tracer,
                           std::chrono::milliseconds interval) {
  if (tracer == nullptr) {
    return Status::InvalidArgument("SpanProfiler needs a tracer");
  }
  if (interval.count() <= 0) {
    return Status::InvalidArgument("profiler interval must be positive");
  }
  if (thread_.joinable()) {
    return Status::FailedPrecondition("profiler already running");
  }
  tracer_ = tracer;
  tracer_->SetSamplingEnabled(true);
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this, interval] { Loop(interval); });
  return Status::OK();
}

void SpanProfiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (tracer_ != nullptr) {
    tracer_->SetSamplingEnabled(false);
    tracer_ = nullptr;
  }
}

void SpanProfiler::SampleOnce() {
  if (tracer_ == nullptr) return;
  std::vector<std::string> stacks = tracer_->SampleOpenStacks();
  std::lock_guard<std::mutex> lock(mu_);
  ++sweeps_;
  for (std::string& stack : stacks) {
    if (stack.empty()) continue;
    ++counts_[std::move(stack)];
  }
}

void SpanProfiler::Loop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
  // Final sweep so very short profiles still observe something.
  lock.unlock();
  SampleOnce();
}

std::map<std::string, uint64_t> SpanProfiler::FoldedCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

uint64_t SpanProfiler::sweeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

Status SpanProfiler::WriteFolded(const std::string& path) const {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [stack, count] : counts_) {
      out << stack << ' ' << count << '\n';
    }
  }
  return persist::WriteFileAtomic(path, out.str(), /*do_fsync=*/false);
}

}  // namespace lacb::obs

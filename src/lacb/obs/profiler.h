// Sampling span profiler: periodic snapshots of the open LACB_TRACE_SPAN
// stacks, folded into flamegraph input.
//
// The aggregated span tree (obs/trace.h) answers "how long did each span
// take in total"; a *sampling* profile answers "where was the time when we
// looked" — the classic flamegraph view, robust to spans that never close
// during the observation window. A SpanProfiler thread wakes every
// `interval`, asks the tracer for each thread's currently-open span stack,
// and counts identical stacks. WriteFolded() emits the standard
// collapsed-stack format — one "outer;inner;leaf <count>" line per
// distinct stack — consumable by flamegraph.pl or speedscope as-is.
//
// Sampling requires Tracer::SetSamplingEnabled (Start/Stop manage it), and
// that costs tracing threads one relaxed atomic load per span transition
// while enabled; stopped profilers leave the default path untouched.

#ifndef LACB_OBS_PROFILER_H_
#define LACB_OBS_PROFILER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "lacb/common/result.h"
#include "lacb/obs/trace.h"

namespace lacb::obs {

/// \brief Samples a tracer's open span stacks on a background thread.
class SpanProfiler {
 public:
  SpanProfiler() = default;
  ~SpanProfiler();
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// \brief Enables sampling on `tracer` (which must outlive the profiler
  /// or Stop()) and spawns the sampler thread. Fails when already running
  /// or `interval` is not positive.
  Status Start(Tracer* tracer, std::chrono::milliseconds interval);

  /// \brief Takes one final sample, joins the thread, and disables
  /// sampling on the tracer. Idempotent; the destructor calls it.
  void Stop();

  /// \brief Takes one sample immediately (also called by the thread).
  void SampleOnce();

  /// \brief Folded-stack counts accumulated so far (thread-safe copy).
  std::map<std::string, uint64_t> FoldedCounts() const;

  /// \brief Total number of sampling sweeps taken.
  uint64_t sweeps() const;

  /// \brief Writes "stack count" lines (sorted by stack) atomically, e.g.
  /// to PROF_serve.folded. Threads idle at every sweep produce no lines.
  Status WriteFolded(const std::string& path) const;

 private:
  void Loop(std::chrono::milliseconds interval);

  Tracer* tracer_ = nullptr;

  mutable std::mutex mu_;  // guards counts_ and sweeps_
  std::map<std::string, uint64_t> counts_;
  uint64_t sweeps_ = 0;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_PROFILER_H_

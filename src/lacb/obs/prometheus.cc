#include "lacb/obs/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace lacb::obs {

namespace {

// Shortest decimal form that round-trips a double ("%.17g" always
// round-trips but prints 0.1 as 0.10000000000000001; try ascending
// precision first).
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

// HELP text escapes backslash and newline (exposition format v0.0.4).
std::string EscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendFamilyHeader(std::string* out, const std::string& name,
                        const char* type, const std::string& help = "") {
  if (!help.empty()) {
    out->append("# HELP ").append(name).append(" ").append(EscapeHelp(help));
    out->append("\n");
  }
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendHistogram(std::string* out, const std::string& name,
                     const HistogramSnapshot& h, const std::string& help) {
  AppendFamilyHeader(out, name, "histogram", help);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += i < h.counts.size() ? h.counts[i] : 0;
    out->append(name)
        .append("_bucket{le=\"")
        .append(FormatDouble(h.bounds[i]))
        .append("\"} ")
        .append(std::to_string(cumulative))
        .append("\n");
  }
  // The overflow bucket closes the family: le="+Inf" must equal _count.
  out->append(name).append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(h.count)).append("\n");
  out->append(name).append("_sum ").append(FormatDouble(h.sum)).append("\n");
  out->append(name).append("_count ").append(std::to_string(h.count));
  out->append("\n");

  // Streaming P2 quantile estimates ride along as gauges.
  const struct {
    const char* suffix;
    double value;
  } quantiles[] = {{"_p50", h.p50}, {"_p95", h.p95}, {"_p99", h.p99}};
  for (const auto& q : quantiles) {
    std::string qname = name + q.suffix;
    AppendFamilyHeader(out, qname, "gauge");
    out->append(qname).append(" ").append(FormatDouble(q.value)).append("\n");
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  auto help_for = [&snapshot](const std::string& name) -> std::string {
    auto it = snapshot.help.find(name);
    return it == snapshot.help.end() ? std::string() : it->second;
  };
  for (const auto& [name, value] : snapshot.counters) {
    std::string pname = PrometheusName(name);
    AppendFamilyHeader(&out, pname, "counter", help_for(name));
    out.append(pname).append(" ").append(std::to_string(value)).append("\n");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string pname = PrometheusName(name);
    AppendFamilyHeader(&out, pname, "gauge", help_for(name));
    out.append(pname).append(" ").append(FormatDouble(value)).append("\n");
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    AppendHistogram(&out, PrometheusName(name), hist, help_for(name));
  }
  return out;
}

}  // namespace lacb::obs

// Prometheus text exposition: renders a MetricsSnapshot in the exposition
// format v0.0.4 that `prometheus` (and every compatible scraper) ingests.
//
// Mapping from the obs instruments:
//   Counter   -> `# TYPE <name> counter`  + one sample line
//   Gauge     -> `# TYPE <name> gauge`    + one sample line
//   Histogram -> `# TYPE <name> histogram` + cumulative `<name>_bucket`
//                lines (one per upper bound, plus le="+Inf"), `<name>_sum`
//                and `<name>_count`
//
// Instrument names are dotted snake_case ("serve.queue_depth"); Prometheus
// metric names cannot contain dots, so every '.' becomes '_'. The streaming
// p50/p95/p99 estimates are additionally exported as `<name>_p50` etc.
// gauges — quantiles are not part of the histogram type and scrapers that
// prefer exact aggregation use the buckets instead.

#ifndef LACB_OBS_PROMETHEUS_H_
#define LACB_OBS_PROMETHEUS_H_

#include <string>

#include "lacb/obs/metrics.h"

namespace lacb::obs {

/// \brief Dotted snake_case instrument name -> Prometheus metric name
/// ('.' becomes '_'; anything else is already in the legal charset).
std::string PrometheusName(const std::string& name);

/// \brief Renders every instrument of `snapshot` in the text exposition
/// format (one `# TYPE` comment per metric family, samples after it).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace lacb::obs

#endif  // LACB_OBS_PROMETHEUS_H_

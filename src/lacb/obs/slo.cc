#include "lacb/obs/slo.h"

#include <algorithm>
#include <utility>

namespace lacb::obs {

namespace {

// Bucket granularity: fine enough that the short window spans ~60 buckets,
// but never below one second (steady_clock resolution games aside, coarser
// buckets keep the ring small: a 5m/1h pair costs 720 slots).
std::chrono::seconds BucketWidthFor(const SloSpec& spec) {
  auto width = spec.short_window / 60;
  if (width < std::chrono::seconds(1)) width = std::chrono::seconds(1);
  return std::chrono::duration_cast<std::chrono::seconds>(width);
}

}  // namespace

Result<std::unique_ptr<SloTracker>> SloTracker::Create(SloSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("SloSpec needs a name");
  }
  if (spec.objective <= 0.0 || spec.objective >= 1.0) {
    return Status::InvalidArgument("SloSpec objective must be in (0, 1)");
  }
  if (spec.short_window <= std::chrono::seconds(0) ||
      spec.long_window <= spec.short_window) {
    return Status::InvalidArgument(
        "SloSpec windows must satisfy 0 < short < long");
  }
  if (spec.slow_burn_threshold <= 0.0 ||
      spec.fast_burn_threshold <= spec.slow_burn_threshold) {
    return Status::InvalidArgument(
        "SloSpec burn thresholds must satisfy 0 < slow < fast");
  }
  if (spec.recovery_hold < std::chrono::seconds(0)) {
    return Status::InvalidArgument("SloSpec recovery_hold must be >= 0");
  }
  return std::unique_ptr<SloTracker>(new SloTracker(std::move(spec)));
}

SloTracker::SloTracker(SloSpec spec) : spec_(std::move(spec)) {
  bucket_width_ = BucketWidthFor(spec_);
  size_t slots =
      static_cast<size_t>(spec_.long_window / bucket_width_) + 1;
  ring_.assign(slots, Bucket{});
}

int64_t SloTracker::BucketIndex(Clock::time_point t) const {
  if (!epoch_set_ || t <= epoch_) return 0;
  return (t - epoch_) / bucket_width_;
}

void SloTracker::RecordAt(bool good, Clock::time_point t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!epoch_set_) {
    epoch_ = t;
    epoch_set_ = true;
  }
  // Time never runs backwards for the ring: a late event lands in the
  // newest bucket rather than resurrecting an expired slot.
  int64_t idx = std::max(BucketIndex(t), last_index_);
  last_index_ = std::max(last_index_, idx);
  Bucket& slot = ring_[static_cast<size_t>(idx) % ring_.size()];
  if (slot.index != idx) {
    slot = Bucket{};
    slot.index = idx;
  }
  if (good) {
    ++slot.good;
  } else {
    ++slot.bad;
  }
}

void SloTracker::SumWindow(int64_t now_index, std::chrono::seconds window,
                           uint64_t* good, uint64_t* bad) const {
  *good = 0;
  *bad = 0;
  int64_t span = window / bucket_width_;
  int64_t first = now_index - span + 1;
  if (first < 0) first = 0;
  for (int64_t idx = first; idx <= now_index; ++idx) {
    const Bucket& slot = ring_[static_cast<size_t>(idx) % ring_.size()];
    if (slot.index != idx) continue;
    *good += slot.good;
    *bad += slot.bad;
  }
}

SloEvaluation SloTracker::EvaluateAt(Clock::time_point t) {
  std::lock_guard<std::mutex> lock(mu_);
  SloEvaluation eval;
  if (!epoch_set_) return eval;
  int64_t now_index = std::max(BucketIndex(t), last_index_);

  uint64_t good_s = 0, bad_s = 0, good_l = 0, bad_l = 0;
  SumWindow(now_index, spec_.short_window, &good_s, &bad_s);
  SumWindow(now_index, spec_.long_window, &good_l, &bad_l);
  eval.good_long = good_l;
  eval.bad_long = bad_l;

  double budget = 1.0 - spec_.objective;  // bad fraction allowed
  auto burn = [budget](uint64_t good, uint64_t bad) {
    uint64_t total = good + bad;
    if (total == 0) return 0.0;
    double bad_fraction =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_fraction / budget;
  };
  eval.burn_rate_short = burn(good_s, bad_s);
  eval.burn_rate_long = burn(good_l, bad_l);
  // Budget spend over the long window: burn 1.0 sustained for the whole
  // window consumes exactly the budget.
  eval.budget_remaining = 1.0 - eval.burn_rate_long;

  // Multi-window condition: both windows must burn hot, so a spike that
  // already aged out of the short window (or hasn't reached the long one
  // materially) does not trip.
  bool fast = eval.burn_rate_short >= spec_.fast_burn_threshold &&
              eval.burn_rate_long >= spec_.fast_burn_threshold;
  bool slow = eval.burn_rate_short >= spec_.slow_burn_threshold &&
              eval.burn_rate_long >= spec_.slow_burn_threshold;
  BurnState target =
      fast ? BurnState::kFastBurn
           : (slow ? BurnState::kSlowBurn : BurnState::kOk);
  if (target >= state_) {
    state_ = target;
    if (target != BurnState::kOk) last_breach_ = t;
  } else if (t - last_breach_ >= spec_.recovery_hold) {
    // Hysteresis satisfied: drop to whatever the conditions support now.
    state_ = target;
    if (target != BurnState::kOk) last_breach_ = t;
  }
  eval.state = state_;
  return eval;
}

}  // namespace lacb::obs

// Declarative SLOs with multi-window burn-rate evaluation.
//
// An SloSpec states an objective ("99% of requests commit within 50ms",
// "99.9% of arrivals are admitted"); an SloTracker ingests good/bad events
// and evaluates the error-budget burn rate over a short and a long window
// (the classical 5m/1h pair). A burn rate of 1.0 means the budget is being
// consumed exactly at the rate that exhausts it at the end of the long
// window; multi-window alerting fires only when BOTH windows burn hot, so
// a brief spike (short hot, long cool) and an old incident (long hot,
// short cool) both stay quiet. Recovery applies hysteresis: a tracker
// leaves a burn state only after the condition has been clear for
// `recovery_hold`, preventing health flapping at the threshold.
//
// All evaluation methods have *At variants taking an explicit timestamp so
// burn-rate math is unit-testable without wall-clock sleeps.

#ifndef LACB_OBS_SLO_H_
#define LACB_OBS_SLO_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lacb/common/result.h"

namespace lacb::obs {

/// \brief One service-level objective over a stream of good/bad events.
struct SloSpec {
  /// Dotted snake_case identifier; becomes the slo.<name>.* gauge prefix.
  std::string name;
  /// Target good fraction in (0, 1), e.g. 0.99 for a 1% error budget.
  double objective = 0.99;
  /// For latency SLOs: the threshold the caller compares against when
  /// classifying an event as good or bad. Informational to the tracker
  /// (classification happens at the recording site).
  double latency_threshold_seconds = 0.0;
  /// Multi-window pair; short confirms "still happening", long confirms
  /// "material budget spend".
  std::chrono::seconds short_window{300};
  std::chrono::seconds long_window{3600};
  /// Burn-rate thresholds (Google SRE workbook defaults for a 1h window).
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 3.0;
  /// A burn state is left only after this long below threshold.
  std::chrono::seconds recovery_hold{60};
  /// Critical SLOs escalate fast burn to unhealthy (else degraded).
  bool critical = false;
};

/// \brief Burn severity, ordered by badness.
enum class BurnState { kOk = 0, kSlowBurn = 1, kFastBurn = 2 };

/// \brief One evaluation of a tracker at a point in time.
struct SloEvaluation {
  BurnState state = BurnState::kOk;
  /// Bad-fraction / error-budget over each window (0 when no events).
  double burn_rate_short = 0.0;
  double burn_rate_long = 0.0;
  /// Fraction of the long-window error budget still unspent; negative
  /// once the budget is exhausted.
  double budget_remaining = 1.0;
  uint64_t good_long = 0;
  uint64_t bad_long = 0;
};

/// \brief Ingests good/bad events and evaluates burn rates. Thread-safe.
class SloTracker {
 public:
  /// \brief Validates the spec (windows positive, short < long, objective
  /// in (0,1), name non-empty). Heap-allocated because the tracker owns a
  /// mutex and must stay address-stable.
  static Result<std::unique_ptr<SloTracker>> Create(SloSpec spec);

  using Clock = std::chrono::steady_clock;

  /// \brief Records one event against the wall clock.
  void Record(bool good) { RecordAt(good, Clock::now()); }
  /// \brief Records one event at an explicit time (monotone per tracker;
  /// out-of-order timestamps land in the bucket of the latest time seen).
  void RecordAt(bool good, Clock::time_point t);

  /// \brief Evaluates burn rates and the hysteresis state machine.
  SloEvaluation Evaluate() { return EvaluateAt(Clock::now()); }
  SloEvaluation EvaluateAt(Clock::time_point t);

  const SloSpec& spec() const { return spec_; }

 private:
  explicit SloTracker(SloSpec spec);

  struct Bucket {
    int64_t index = -1;  // absolute bucket number; -1 = empty
    uint64_t good = 0;
    uint64_t bad = 0;
  };

  int64_t BucketIndex(Clock::time_point t) const;
  // Sums events over the trailing `window` ending at bucket `now_index`,
  // inclusive. Caller holds mu_.
  void SumWindow(int64_t now_index, std::chrono::seconds window,
                 uint64_t* good, uint64_t* bad) const;

  SloSpec spec_;
  std::chrono::seconds bucket_width_{1};
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
  Clock::time_point epoch_;
  bool epoch_set_ = false;
  int64_t last_index_ = -1;
  BurnState state_ = BurnState::kOk;
  // Last time the current (or a higher) severity's condition held; the
  // state decays one level only after recovery_hold past this point.
  Clock::time_point last_breach_{};
};

}  // namespace lacb::obs

#endif  // LACB_OBS_SLO_H_

#include "lacb/obs/snapshot.h"

#include <fstream>
#include <sstream>

#include "lacb/persist/bytes.h"

namespace lacb::obs {

namespace {

JsonValue HistogramToJson(const HistogramSnapshot& h) {
  JsonValue out = JsonValue::Object();
  out.Set("count", h.count);
  out.Set("sum", h.sum);
  out.Set("mean", h.mean());
  out.Set("min", h.min);
  out.Set("max", h.max);
  out.Set("p50", h.p50);
  out.Set("p95", h.p95);
  out.Set("p99", h.p99);
  JsonValue bounds = JsonValue::Array();
  for (double b : h.bounds) bounds.Append(b);
  out.Set("bounds", std::move(bounds));
  JsonValue counts = JsonValue::Array();
  for (uint64_t c : h.counts) counts.Append(c);
  out.Set("bucket_counts", std::move(counts));
  return out;
}

JsonValue SpanToJson(const SpanSnapshot& s) {
  JsonValue out = JsonValue::Object();
  out.Set("label", s.label);
  out.Set("count", s.count);
  out.Set("total_seconds", s.total_seconds);
  out.Set("self_seconds", s.self_seconds);
  out.Set("min_seconds", s.min_seconds);
  out.Set("max_seconds", s.max_seconds);
  if (!s.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const SpanSnapshot& c : s.children) children.Append(SpanToJson(c));
    out.Set("children", std::move(children));
  }
  return out;
}

Result<double> GetNumber(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("telemetry JSON: missing number '" + key +
                                   "'");
  }
  return v->as_number();
}

Result<HistogramSnapshot> HistogramFromJson(const JsonValue& obj) {
  HistogramSnapshot h;
  LACB_ASSIGN_OR_RETURN(double count, GetNumber(obj, "count"));
  h.count = static_cast<uint64_t>(count);
  LACB_ASSIGN_OR_RETURN(h.sum, GetNumber(obj, "sum"));
  LACB_ASSIGN_OR_RETURN(h.min, GetNumber(obj, "min"));
  LACB_ASSIGN_OR_RETURN(h.max, GetNumber(obj, "max"));
  LACB_ASSIGN_OR_RETURN(h.p50, GetNumber(obj, "p50"));
  LACB_ASSIGN_OR_RETURN(h.p95, GetNumber(obj, "p95"));
  LACB_ASSIGN_OR_RETURN(h.p99, GetNumber(obj, "p99"));
  const JsonValue* bounds = obj.Find("bounds");
  const JsonValue* counts = obj.Find("bucket_counts");
  if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
      !counts->is_array()) {
    return Status::InvalidArgument("telemetry JSON: bad histogram buckets");
  }
  for (const JsonValue& b : bounds->items()) h.bounds.push_back(b.as_number());
  for (const JsonValue& c : counts->items()) {
    h.counts.push_back(static_cast<uint64_t>(c.as_number()));
  }
  return h;
}

Result<SpanSnapshot> SpanFromJson(const JsonValue& obj) {
  SpanSnapshot s;
  const JsonValue* label = obj.Find("label");
  if (label == nullptr || !label->is_string()) {
    return Status::InvalidArgument("telemetry JSON: span without label");
  }
  s.label = label->as_string();
  LACB_ASSIGN_OR_RETURN(double count, GetNumber(obj, "count"));
  s.count = static_cast<uint64_t>(count);
  LACB_ASSIGN_OR_RETURN(s.total_seconds, GetNumber(obj, "total_seconds"));
  LACB_ASSIGN_OR_RETURN(s.self_seconds, GetNumber(obj, "self_seconds"));
  LACB_ASSIGN_OR_RETURN(s.min_seconds, GetNumber(obj, "min_seconds"));
  LACB_ASSIGN_OR_RETURN(s.max_seconds, GetNumber(obj, "max_seconds"));
  const JsonValue* children = obj.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->items()) {
      LACB_ASSIGN_OR_RETURN(SpanSnapshot child, SpanFromJson(c));
      s.children.push_back(std::move(child));
    }
  }
  return s;
}

void AggregateSpans(const std::vector<SpanSnapshot>& spans,
                    std::map<std::string, SpanAggregate>* out) {
  for (const SpanSnapshot& s : spans) {
    SpanAggregate& agg = (*out)[s.label];
    agg.count += s.count;
    agg.total_seconds += s.total_seconds;
    AggregateSpans(s.children, out);
  }
}

}  // namespace

std::map<std::string, SpanAggregate> RunTelemetry::SpansByLabel() const {
  std::map<std::string, SpanAggregate> out;
  AggregateSpans(spans, &out);
  return out;
}

JsonValue RunTelemetry::ToJson() const {
  JsonValue out = JsonValue::Object();

  JsonValue meta = JsonValue::Object();
  for (const auto& [k, v] : metadata) meta.Set(k, v);
  out.Set("metadata", std::move(meta));

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, v] : metrics.counters) counters.Set(name, v);
  out.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, v] : metrics.gauges) gauges.Set(name, v);
  out.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : metrics.histograms) {
    histograms.Set(name, HistogramToJson(h));
  }
  out.Set("histograms", std::move(histograms));

  JsonValue span_array = JsonValue::Array();
  for (const SpanSnapshot& s : spans) span_array.Append(SpanToJson(s));
  out.Set("spans", std::move(span_array));

  if (!series.empty()) out.Set("time_series", series.ToJson());
  return out;
}

Result<RunTelemetry> RunTelemetry::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("telemetry JSON: not an object");
  }
  RunTelemetry out;
  if (const JsonValue* meta = json.Find("metadata");
      meta != nullptr && meta->is_object()) {
    for (const auto& [k, v] : meta->members()) {
      out.metadata[k] = v.is_string() ? v.as_string() : v.ToString(0);
    }
  }
  if (const JsonValue* counters = json.Find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [k, v] : counters->members()) {
      out.metrics.counters[k] = static_cast<uint64_t>(v.as_number());
    }
  }
  if (const JsonValue* gauges = json.Find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [k, v] : gauges->members()) {
      out.metrics.gauges[k] = v.as_number();
    }
  }
  if (const JsonValue* histograms = json.Find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [k, v] : histograms->members()) {
      LACB_ASSIGN_OR_RETURN(HistogramSnapshot h, HistogramFromJson(v));
      out.metrics.histograms[k] = std::move(h);
    }
  }
  if (const JsonValue* spans = json.Find("spans");
      spans != nullptr && spans->is_array()) {
    for (const JsonValue& s : spans->items()) {
      LACB_ASSIGN_OR_RETURN(SpanSnapshot span, SpanFromJson(s));
      out.spans.push_back(std::move(span));
    }
  }
  if (const JsonValue* series = json.Find("time_series");
      series != nullptr) {
    LACB_ASSIGN_OR_RETURN(out.series, TimeSeries::FromJson(*series));
  }
  return out;
}

RunTelemetry CaptureRun(const MetricRegistry& registry, const Tracer& tracer,
                        std::map<std::string, std::string> metadata) {
  RunTelemetry out;
  out.metadata = std::move(metadata);
  out.metrics = registry.Snapshot();
  out.spans = tracer.Snapshot();
  return out;
}

Status WriteJsonFile(const RunTelemetry& telemetry, const std::string& path) {
  return WriteJsonFile(telemetry.ToJson(), path);
}

Status WriteJsonFile(const JsonValue& json, const std::string& path) {
  // Serialize first, then tmp+rename: a crash (or a concurrent reader —
  // CI tails BENCH_*.json while benches run) never sees a half-written
  // artifact. No fsync: these are derived outputs, not durable state.
  std::ostringstream out;
  json.Write(out, 2);
  out << "\n";
  return persist::WriteFileAtomic(path, out.str(), /*do_fsync=*/false);
}

}  // namespace lacb::obs

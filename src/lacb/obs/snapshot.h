// Structured run telemetry: one serializable snapshot of everything the
// obs layer collected during a run — metrics, the span tree, and free-form
// engine metadata — plus the JSON exporter the benches use for
// BENCH_*.json. The JSON schema is documented in docs/observability.md;
// FromJson inverts ToJson so snapshots can be reloaded for comparison
// tooling (and is what the round-trip test exercises).

#ifndef LACB_OBS_SNAPSHOT_H_
#define LACB_OBS_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/obs/json.h"
#include "lacb/obs/metrics.h"
#include "lacb/obs/timeseries.h"
#include "lacb/obs/trace.h"

namespace lacb::obs {

/// \brief Everything observed over one run.
struct RunTelemetry {
  /// Engine-provided context: policy, dataset, sizes (all stringified).
  std::map<std::string, std::string> metadata;
  MetricsSnapshot metrics;
  /// Aggregated span forest (children of the implicit root).
  std::vector<SpanSnapshot> spans;
  /// Sampled trajectory over the run (empty unless a TimeSeriesSampler was
  /// attached); serialized as "time_series" when non-empty.
  TimeSeries series;

  /// \brief Flat per-label totals over the whole span forest.
  std::map<std::string, SpanAggregate> SpansByLabel() const;

  JsonValue ToJson() const;
  static Result<RunTelemetry> FromJson(const JsonValue& json);
};

/// \brief Snapshots the given registry + tracer into a RunTelemetry.
RunTelemetry CaptureRun(const MetricRegistry& registry, const Tracer& tracer,
                        std::map<std::string, std::string> metadata);

/// \brief Serializes `telemetry` as pretty-printed JSON to `path`.
Status WriteJsonFile(const RunTelemetry& telemetry, const std::string& path);

/// \brief Serializes an arbitrary JSON document to `path` (the benches'
/// BENCH_*.json envelope, which nests several RunTelemetry objects).
Status WriteJsonFile(const JsonValue& json, const std::string& path);

}  // namespace lacb::obs

#endif  // LACB_OBS_SNAPSHOT_H_

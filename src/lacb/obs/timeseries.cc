#include "lacb/obs/timeseries.h"

#include <sstream>
#include <utility>

#include "lacb/obs/context.h"
#include "lacb/persist/bytes.h"

namespace lacb::obs {

JsonValue TimeSeries::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("time_unit", time_unit);
  JsonValue arr = JsonValue::Array();
  for (const SamplePoint& p : points) {
    JsonValue point = JsonValue::Object();
    point.Set("t", p.t);
    JsonValue values = JsonValue::Object();
    for (const auto& [name, v] : p.values) values.Set(name, v);
    point.Set("values", std::move(values));
    arr.Append(std::move(point));
  }
  out.Set("points", std::move(arr));
  return out;
}

Result<TimeSeries> TimeSeries::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("time series JSON: not an object");
  }
  TimeSeries out;
  if (const JsonValue* unit = json.Find("time_unit");
      unit != nullptr && unit->is_string()) {
    out.time_unit = unit->as_string();
  }
  const JsonValue* points = json.Find("points");
  if (points == nullptr || !points->is_array()) {
    return Status::InvalidArgument("time series JSON: missing points array");
  }
  for (const JsonValue& p : points->items()) {
    const JsonValue* t = p.Find("t");
    const JsonValue* values = p.Find("values");
    if (t == nullptr || !t->is_number() || values == nullptr ||
        !values->is_object()) {
      return Status::InvalidArgument("time series JSON: malformed point");
    }
    SamplePoint point;
    point.t = t->as_number();
    for (const auto& [name, v] : values->members()) {
      if (!v.is_number()) {
        return Status::InvalidArgument("time series JSON: non-numeric value");
      }
      point.values[name] = v.as_number();
    }
    out.points.push_back(std::move(point));
  }
  return out;
}

Status TimeSeries::WriteJsonl(const std::string& path) const {
  // Rendered in memory and written atomically so a concurrent reader (or
  // an interrupted run) never sees a half-written series.
  std::ostringstream out;
  for (const SamplePoint& p : points) {
    JsonValue line = JsonValue::Object();
    line.Set("t", p.t);
    JsonValue values = JsonValue::Object();
    for (const auto& [name, v] : p.values) values.Set(name, v);
    line.Set("values", std::move(values));
    out << line.ToString(0) << "\n";
  }
  return persist::WriteFileAtomic(path, out.str(), /*do_fsync=*/false);
}

TimeSeriesSampler::TimeSeriesSampler(Options options)
    : options_(std::move(options)) {}

TimeSeriesSampler::~TimeSeriesSampler() { StopPeriodic(); }

void TimeSeriesSampler::AddProbe(const std::string& name,
                                 std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.emplace_back(name, std::move(probe));
}

void TimeSeriesSampler::Sample(double t, const MetricRegistry& registry) {
  MetricsSnapshot snap = registry.Snapshot();
  SamplePoint point;
  point.t = t;
  if (options_.instruments.empty()) {
    for (const auto& [name, v] : snap.counters) {
      point.values[name] = static_cast<double>(v);
    }
    for (const auto& [name, v] : snap.gauges) point.values[name] = v;
  } else {
    for (const std::string& name : options_.instruments) {
      if (auto it = snap.counters.find(name); it != snap.counters.end()) {
        point.values[name] = static_cast<double>(it->second);
      } else if (auto git = snap.gauges.find(name); git != snap.gauges.end()) {
        point.values[name] = git->second;
      }
      // Absent instruments are skipped, not zero-filled: a series that
      // starts before the first Get* call simply has shorter rows.
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, probe] : probes_) point.values[name] = probe();
  points_.push_back(std::move(point));
}

void TimeSeriesSampler::Sample(double t) { Sample(t, ActiveRegistry()); }

Status TimeSeriesSampler::StartPeriodic(std::chrono::milliseconds interval) {
  if (interval.count() <= 0) {
    return Status::InvalidArgument("sampler interval must be positive");
  }
  if (periodic_thread_.joinable()) {
    return Status::FailedPrecondition("periodic sampling already running");
  }
  {
    std::lock_guard<std::mutex> lock(periodic_mu_);
    periodic_stop_ = false;
  }
  // Capture the caller's registry: the sampling thread must observe the
  // run-scoped context of the thread that started it, not its own default.
  const MetricRegistry* registry = &ActiveRegistry();
  auto epoch = std::chrono::steady_clock::now();
  periodic_thread_ =
      std::thread([this, registry, interval, epoch] {
        PeriodicLoop(registry, interval, epoch);
      });
  return Status::OK();
}

void TimeSeriesSampler::StopPeriodic() {
  {
    std::lock_guard<std::mutex> lock(periodic_mu_);
    periodic_stop_ = true;
  }
  periodic_cv_.notify_all();
  if (periodic_thread_.joinable()) periodic_thread_.join();
}

void TimeSeriesSampler::PeriodicLoop(
    const MetricRegistry* registry, std::chrono::milliseconds interval,
    std::chrono::steady_clock::time_point epoch) {
  std::unique_lock<std::mutex> lock(periodic_mu_);
  for (;;) {
    if (periodic_cv_.wait_for(lock, interval,
                              [this] { return periodic_stop_; })) {
      break;
    }
    lock.unlock();
    double t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             epoch)
                   .count();
    Sample(t, *registry);
    lock.lock();
  }
  // Final sample so short runs always record their end state.
  lock.unlock();
  double t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
                 .count();
  Sample(t, *registry);
}

TimeSeries TimeSeriesSampler::Series() const {
  TimeSeries out;
  out.time_unit = options_.time_unit;
  std::lock_guard<std::mutex> lock(mu_);
  out.points = points_;
  return out;
}

size_t TimeSeriesSampler::num_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

}  // namespace lacb::obs

// Time-series telemetry: periodic snapshots of named counters/gauges plus
// derived probes, accumulated into an exportable series.
//
// The end-of-run RunTelemetry answers "what happened in total"; the paper's
// claims are about *trajectories* — capacity estimates converge over days,
// queue depth breathes with load, overload concentrates as days pass. The
// TimeSeriesSampler records those trajectories with two cadences:
//
//   - offline: the engine ticks the sampler once per simulated day (the
//     caller attaches one via obs::ScopedSamplerAttachment; t = day index);
//   - online:  StartPeriodic spawns a thread sampling every wall-clock
//     interval (t = seconds since the periodic clock started).
//
// Each sample snapshots the selected instruments of a MetricRegistry (all
// counters and gauges when no selection is given) and evaluates registered
// probes — arbitrary double() callbacks for quantities that are not
// instruments, e.g. capacity-estimate MAE against latent truth. The series
// serializes as a JSON object (carried inside RunTelemetry / BENCH_*.json)
// or as JSONL, one sample per line, for streaming consumers.

#ifndef LACB_OBS_TIMESERIES_H_
#define LACB_OBS_TIMESERIES_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/obs/json.h"
#include "lacb/obs/metrics.h"

namespace lacb::obs {

/// \brief One sampling instant.
struct SamplePoint {
  /// Sample time: day index (offline cadence) or seconds since the
  /// periodic clock started (online cadence).
  double t = 0.0;
  std::map<std::string, double> values;
};

/// \brief An ordered series of samples plus its time axis unit.
struct TimeSeries {
  /// "day" for per-simulated-day ticks, "seconds" for wall-clock ones.
  std::string time_unit = "seconds";
  std::vector<SamplePoint> points;

  bool empty() const { return points.empty(); }

  JsonValue ToJson() const;
  static Result<TimeSeries> FromJson(const JsonValue& json);

  /// \brief Writes one compact-JSON object per line:
  /// {"t": 3, "values": {"serve.queue_depth": 12, ...}}.
  Status WriteJsonl(const std::string& path) const;
};

/// \brief Collects SamplePoints from a registry, manually or periodically.
class TimeSeriesSampler {
 public:
  struct Options {
    /// Counter/gauge names to sample; empty samples every counter and
    /// gauge present at each tick. Histograms are not sampled (their
    /// cumulative state lives in the end-of-run snapshot).
    std::vector<std::string> instruments;
    std::string time_unit = "seconds";
  };

  TimeSeriesSampler() : TimeSeriesSampler(Options()) {}
  explicit TimeSeriesSampler(Options options);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// \brief Registers a derived quantity evaluated at every sample (on the
  /// sampling thread — the callback must be thread-safe under periodic
  /// mode). Probe names share the instrument namespace.
  void AddProbe(const std::string& name, std::function<double()> probe);

  /// \brief Takes one sample at time `t` from `registry`.
  void Sample(double t, const MetricRegistry& registry);
  /// \brief Same, from this thread's ActiveRegistry().
  void Sample(double t);

  /// \brief Spawns a thread sampling the *caller's* ActiveRegistry() every
  /// `interval` until StopPeriodic (t = seconds since this call). Fails
  /// when periodic sampling is already running or interval is zero.
  Status StartPeriodic(std::chrono::milliseconds interval);
  /// \brief Takes one final sample, then joins the periodic thread.
  /// Idempotent; the destructor calls it.
  void StopPeriodic();

  /// \brief Copy of everything sampled so far (thread-safe).
  TimeSeries Series() const;
  size_t num_points() const;

 private:
  void PeriodicLoop(const MetricRegistry* registry,
                    std::chrono::milliseconds interval,
                    std::chrono::steady_clock::time_point epoch);

  Options options_;

  mutable std::mutex mu_;  // guards points_ and probes_
  std::vector<SamplePoint> points_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;

  // Periodic mode.
  std::mutex periodic_mu_;
  std::condition_variable periodic_cv_;
  bool periodic_stop_ = false;
  std::thread periodic_thread_;
};

}  // namespace lacb::obs

#endif  // LACB_OBS_TIMESERIES_H_

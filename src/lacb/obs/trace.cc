#include "lacb/obs/trace.h"

#include <algorithm>

#include "lacb/obs/context.h"

namespace lacb::obs {

struct Tracer::Node {
  std::string label;
  Node* parent = nullptr;
  Tracer* owner = nullptr;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::map<std::string, std::unique_ptr<Node>> children;
};

namespace {

// Innermost open span of this thread. May point into a previous run's
// tracer after a context switch; Enter() detects that via Node::owner and
// falls back to the root, so stale pointers are never followed.
thread_local Tracer::Node* tl_open_span = nullptr;

SpanSnapshot SnapshotNode(const Tracer::Node& node) {
  SpanSnapshot snap;
  snap.label = node.label;
  snap.count = node.count;
  snap.total_seconds = node.total_seconds;
  snap.min_seconds = node.min_seconds;
  snap.max_seconds = node.max_seconds;
  double child_total = 0.0;
  for (const auto& [label, child] : node.children) {
    snap.children.push_back(SnapshotNode(*child));
    child_total += child->total_seconds;
  }
  snap.self_seconds = std::max(0.0, node.total_seconds - child_total);
  return snap;
}

void AggregateNode(const Tracer::Node& node,
                   std::map<std::string, SpanAggregate>* out) {
  for (const auto& [label, child] : node.children) {
    SpanAggregate& agg = (*out)[label];
    agg.count += child->count;
    agg.total_seconds += child->total_seconds;
    AggregateNode(*child, out);
  }
}

}  // namespace

Tracer::Tracer() : root_(std::make_unique<Node>()) {
  root_->owner = this;
}

Tracer::~Tracer() {
  // A thread that still has a chain open into this tracer (a span alive
  // across the tracer's destruction would be a bug, but a *finished* chain
  // leaves tl_open_span == nullptr already) must not dangle.
  if (tl_open_span != nullptr && tl_open_span->owner == this) {
    tl_open_span = nullptr;
  }
}

Tracer::Node* Tracer::Enter(const char* label) {
  Node* parent =
      (tl_open_span != nullptr && tl_open_span->owner == this) ? tl_open_span
                                                               : root_.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = parent->children[label];
  if (slot == nullptr) {
    slot = std::make_unique<Node>();
    slot->label = label;
    slot->parent = parent;
    slot->owner = this;
  }
  tl_open_span = slot.get();
  return slot.get();
}

void Tracer::Exit(Node* node, double elapsed_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node->count == 0) {
      node->min_seconds = elapsed_seconds;
      node->max_seconds = elapsed_seconds;
    } else {
      node->min_seconds = std::min(node->min_seconds, elapsed_seconds);
      node->max_seconds = std::max(node->max_seconds, elapsed_seconds);
    }
    ++node->count;
    node->total_seconds += elapsed_seconds;
  }
  if (tl_open_span == node) {
    tl_open_span = node->parent == root_.get() ? nullptr : node->parent;
  }
}

std::vector<SpanSnapshot> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanSnapshot> out;
  for (const auto& [label, child] : root_->children) {
    out.push_back(SnapshotNode(*child));
  }
  return out;
}

std::map<std::string, SpanAggregate> Tracer::AggregateByLabel() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanAggregate> out;
  AggregateNode(*root_, &out);
  return out;
}

ScopedSpan::ScopedSpan(const char* label)
    : tracer_(&ActiveTracer()), node_(tracer_->Enter(label)) {}

ScopedSpan::~ScopedSpan() {
  tracer_->Exit(node_, watch_.ElapsedSeconds());
}

}  // namespace lacb::obs

#include "lacb/obs/trace.h"

#include <algorithm>

#include "lacb/obs/context.h"

namespace lacb::obs {

struct Tracer::Node {
  std::string label;
  Node* parent = nullptr;
  Tracer* owner = nullptr;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::map<std::string, std::unique_ptr<Node>> children;
};

namespace {

// Innermost open span of this thread. May point into a previous run's
// tracer after a context switch; Enter() detects that via Node::owner and
// falls back to the root, so stale pointers are never followed.
thread_local Tracer::Node* tl_open_span = nullptr;

// Process-unique tracer ids let each thread cache its publication slot
// without ever dereferencing a slot that belongs to a dead tracer (a new
// tracer has a new id, so the cache simply misses).
std::atomic<uint64_t> g_next_tracer_id{1};

struct TlSlotCache {
  uint64_t tracer_id = 0;
  void* slot = nullptr;
};
thread_local TlSlotCache tl_slot_cache;

SpanSnapshot SnapshotNode(const Tracer::Node& node) {
  SpanSnapshot snap;
  snap.label = node.label;
  snap.count = node.count;
  snap.total_seconds = node.total_seconds;
  snap.min_seconds = node.min_seconds;
  snap.max_seconds = node.max_seconds;
  double child_total = 0.0;
  for (const auto& [label, child] : node.children) {
    snap.children.push_back(SnapshotNode(*child));
    child_total += child->total_seconds;
  }
  snap.self_seconds = std::max(0.0, node.total_seconds - child_total);
  return snap;
}

void AggregateNode(const Tracer::Node& node,
                   std::map<std::string, SpanAggregate>* out) {
  for (const auto& [label, child] : node.children) {
    SpanAggregate& agg = (*out)[label];
    agg.count += child->count;
    agg.total_seconds += child->total_seconds;
    AggregateNode(*child, out);
  }
}

}  // namespace

Tracer::Tracer()
    : root_(std::make_unique<Node>()),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  root_->owner = this;
}

Tracer::~Tracer() {
  // A thread that still has a chain open into this tracer (a span alive
  // across the tracer's destruction would be a bug, but a *finished* chain
  // leaves tl_open_span == nullptr already) must not dangle.
  if (tl_open_span != nullptr && tl_open_span->owner == this) {
    tl_open_span = nullptr;
  }
}

Tracer::OpenSlot* Tracer::ThreadSlotLocked() {
  if (tl_slot_cache.tracer_id == tracer_id_) {
    return static_cast<OpenSlot*>(tl_slot_cache.slot);
  }
  open_slots_.push_back(std::make_unique<OpenSlot>());
  tl_slot_cache.tracer_id = tracer_id_;
  tl_slot_cache.slot = open_slots_.back().get();
  return open_slots_.back().get();
}

Tracer::Node* Tracer::Enter(const char* label) {
  Node* parent =
      (tl_open_span != nullptr && tl_open_span->owner == this) ? tl_open_span
                                                               : root_.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = parent->children[label];
  if (slot == nullptr) {
    slot = std::make_unique<Node>();
    slot->label = label;
    slot->parent = parent;
    slot->owner = this;
  }
  tl_open_span = slot.get();
  if (sampling_enabled_.load(std::memory_order_relaxed)) {
    ThreadSlotLocked()->top = slot.get();
  }
  return slot.get();
}

void Tracer::Exit(Node* node, double elapsed_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node->count == 0) {
      node->min_seconds = elapsed_seconds;
      node->max_seconds = elapsed_seconds;
    } else {
      node->min_seconds = std::min(node->min_seconds, elapsed_seconds);
      node->max_seconds = std::max(node->max_seconds, elapsed_seconds);
    }
    ++node->count;
    node->total_seconds += elapsed_seconds;
    if (sampling_enabled_.load(std::memory_order_relaxed)) {
      OpenSlot* open = ThreadSlotLocked();
      // Only retract the publication if this thread still has `node` on
      // top (a span opened before sampling was enabled never published).
      if (open->top == node) {
        open->top = node->parent == root_.get() ? nullptr : node->parent;
      }
    }
  }
  if (tl_open_span == node) {
    tl_open_span = node->parent == root_.get() ? nullptr : node->parent;
  }
}

void Tracer::SetSamplingEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  sampling_enabled_.store(enabled, std::memory_order_relaxed);
  if (!enabled) {
    for (auto& slot : open_slots_) slot->top = nullptr;
  }
}

std::vector<std::string> Tracer::SampleOpenStacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& slot : open_slots_) {
    const Node* n = slot->top;
    if (n == nullptr) continue;
    std::vector<const std::string*> labels;
    for (; n != nullptr && n != root_.get(); n = n->parent) {
      labels.push_back(&n->label);
    }
    std::string folded;
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      if (!folded.empty()) folded += ';';
      folded += **it;
    }
    out.push_back(std::move(folded));
  }
  return out;
}

std::vector<SpanSnapshot> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanSnapshot> out;
  for (const auto& [label, child] : root_->children) {
    out.push_back(SnapshotNode(*child));
  }
  return out;
}

std::map<std::string, SpanAggregate> Tracer::AggregateByLabel() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanAggregate> out;
  AggregateNode(*root_, &out);
  return out;
}

ScopedSpan::ScopedSpan(const char* label)
    : tracer_(&ActiveTracer()), node_(tracer_->Enter(label)) {}

ScopedSpan::~ScopedSpan() {
  tracer_->Exit(node_, watch_.ElapsedSeconds());
}

}  // namespace lacb::obs

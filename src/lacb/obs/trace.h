// Scoped-span tracing: RAII spans aggregated into a parent/child tree.
//
// A span is opened with LACB_TRACE_SPAN("km_solve") and closes when the
// scope exits; its wall time (via Stopwatch) is accumulated into the node
// for its label under the innermost open span of the same thread. Repeated
// executions of the same scope aggregate in place (count / total / min /
// max) instead of appending events, so a full run's trace stays O(distinct
// call paths) — cheap enough to leave on in production.
//
// Each thread tracks its own open-span chain; node creation and stat
// accumulation are mutex-protected, so concurrent threads may share one
// Tracer.

#ifndef LACB_OBS_TRACE_H_
#define LACB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lacb/common/stopwatch.h"

namespace lacb::obs {

class Tracer;

/// \brief Aggregated timings of one span path, with nested children.
struct SpanSnapshot {
  std::string label;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  /// Total minus the children's totals: time spent in this span itself.
  double self_seconds = 0.0;
  std::vector<SpanSnapshot> children;
};

/// \brief Flat per-label totals summed over every tree position.
struct SpanAggregate {
  uint64_t count = 0;
  double total_seconds = 0.0;
};

/// \brief Collects span statistics for one run (or the whole process).
class Tracer {
 public:
  /// Opaque aggregation node (defined in trace.cc).
  struct Node;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// \brief The aggregated span forest (children of the implicit root).
  std::vector<SpanSnapshot> Snapshot() const;

  /// \brief Per-label totals regardless of nesting position.
  std::map<std::string, SpanAggregate> AggregateByLabel() const;

  /// \brief Turns open-span publication on or off (see SampleOpenStacks).
  /// Off by default: the only cost on the default path is one relaxed
  /// atomic load per span enter/exit.
  void SetSamplingEnabled(bool enabled);

  /// \brief One folded call stack ("outer;inner;leaf") per thread that
  /// currently has a span open. Requires SetSamplingEnabled(true); spans
  /// opened before enabling publish from their next transition onward.
  /// Safe to call concurrently with tracing threads (everything is
  /// synchronized on the tracer mutex).
  std::vector<std::string> SampleOpenStacks() const;

 private:
  friend class ScopedSpan;

  /// Per-thread published top-of-stack; lives until the tracer dies.
  struct OpenSlot {
    Node* top = nullptr;  // guarded by mu_
  };

  /// Opens a child of this thread's innermost open span (or the root).
  Node* Enter(const char* label);
  /// Closes `node`, folding `elapsed_seconds` into its stats.
  void Exit(Node* node, double elapsed_seconds);
  /// This thread's slot, created on first use. Caller holds mu_.
  OpenSlot* ThreadSlotLocked();

  std::unique_ptr<Node> root_;
  mutable std::mutex mu_;
  const uint64_t tracer_id_;
  std::atomic<bool> sampling_enabled_{false};
  std::vector<std::unique_ptr<OpenSlot>> open_slots_;  // guarded by mu_
};

/// \brief RAII span handle; use via LACB_TRACE_SPAN.
class ScopedSpan {
 public:
  /// \brief Opens a span on the active tracer (see obs/context.h).
  /// `label` must outlive the tracer (string literals qualify).
  explicit ScopedSpan(const char* label);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  Tracer::Node* node_;
  Stopwatch watch_;
};

}  // namespace lacb::obs

/// \brief Times the enclosing scope as a span named `label`.
#define LACB_TRACE_SPAN(label) \
  ::lacb::obs::ScopedSpan LACB_CONCAT_(lacb_obs_span_, __LINE__)(label)

#ifndef LACB_CONCAT_
#define LACB_CONCAT_INNER_(a, b) a##b
#define LACB_CONCAT_(a, b) LACB_CONCAT_INNER_(a, b)
#endif

#endif  // LACB_OBS_TRACE_H_

#include "lacb/persist/bytes.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace lacb::persist {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::IoError("fsync failed for " + what + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteFileAtomic(const std::string& path, const std::string& data,
                       bool do_fsync) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("write failed: " + tmp + ": " +
                             std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (do_fsync) {
    Status s = FsyncFd(fd, tmp);
    if (!s.ok()) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path + ": " +
                           std::strerror(err));
  }
  if (do_fsync) {
    // Make the rename durable: fsync the directory entry.
    int dfd = ::open(DirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      Status s = FsyncFd(dfd, DirnameOf(path));
      ::close(dfd);
      LACB_RETURN_NOT_OK(s);
    }
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  if (file.bad()) return Status::IoError("read failed: " + path);
  return buf.str();
}

}  // namespace lacb::persist

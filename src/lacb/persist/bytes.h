#ifndef LACB_PERSIST_BYTES_H_
#define LACB_PERSIST_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/status.h"

namespace lacb::persist {

// Little-endian binary encoder. Doubles are encoded bit-exactly (their
// IEEE-754 representation is memcpy'd), so a round trip reproduces the
// value to the last bit — a requirement for the bit-identical restore gate.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void I64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(double));
  }
  void VecI64(const std::vector<int64_t>& v) {
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(int64_t));
  }
  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  const std::string& bytes() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  void AppendRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Bounds-checked decoder over a byte span. Every read returns a Result so a
// truncated or corrupt payload surfaces as a Status instead of UB.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  Result<uint8_t> U8() {
    LACB_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  Result<int64_t> I64() { return Fixed<int64_t>(); }
  Result<double> F64() { return Fixed<double>(); }
  Result<bool> Bool() {
    LACB_ASSIGN_OR_RETURN(uint8_t v, U8());
    return v != 0;
  }
  Result<std::string> Str() {
    LACB_ASSIGN_OR_RETURN(uint64_t n, U64());
    LACB_RETURN_NOT_OK(Need(n));
    std::string out(data_ + pos_, n);
    pos_ += n;
    return out;
  }
  Result<std::vector<double>> VecF64() { return FixedVec<double>(); }
  Result<std::vector<int64_t>> VecI64() { return FixedVec<int64_t>(); }
  Result<std::vector<uint64_t>> VecU64() { return FixedVec<uint64_t>(); }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  Status Skip(size_t n) {
    LACB_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Need(uint64_t n) const {
    if (n > size_ - pos_) {
      return Status::OutOfRange("byte stream truncated");
    }
    return Status::OK();
  }
  template <typename T>
  Result<T> Fixed() {
    LACB_RETURN_NOT_OK(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  Result<std::vector<T>> FixedVec() {
    LACB_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > (size_ - pos_) / sizeof(T)) {
      return Status::OutOfRange("byte stream truncated");
    }
    std::vector<T> out(n);
    if (n > 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// CRC-32 (reflected, polynomial 0xEDB88320, the zlib/PNG variant).
// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const char* data, size_t size);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

// Atomic durable write: writes to `<path>.tmp.<pid>`, fsyncs, renames onto
// `path`, and fsyncs the containing directory so the rename itself is
// durable. A crash mid-write can never leave a torn file at `path`.
Status WriteFileAtomic(const std::string& path, const std::string& data,
                       bool do_fsync = true);

Result<std::string> ReadFile(const std::string& path);

}  // namespace lacb::persist

#endif  // LACB_PERSIST_BYTES_H_

#include "lacb/persist/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "lacb/persist/bytes.h"

namespace lacb::persist {

namespace {

constexpr char kCkptPrefix[] = "ckpt-";
constexpr char kCkptSuffix[] = ".bin";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";

// Parses "<prefix><digits><suffix>" into the digits, or false.
bool ParseSeq(const std::string& name, const char* prefix,
              const char* suffix, uint64_t* seq) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

const CheckpointSection* Checkpoint::Find(const std::string& name) const {
  for (const CheckpointSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string EncodeCheckpoint(const Checkpoint& ckpt) {
  ByteWriter w;
  for (char c : kCheckpointMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kCheckpointVersion);
  w.U64(ckpt.seq);
  w.U32(static_cast<uint32_t>(ckpt.sections.size()));
  for (const CheckpointSection& s : ckpt.sections) {
    w.Str(s.name);
    w.Str(s.payload);
    w.U32(Crc32(s.payload));
  }
  return w.Release();
}

Result<Checkpoint> DecodeCheckpoint(const std::string& data) {
  if (data.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(data.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  ByteReader r(data.data() + sizeof(kCheckpointMagic),
               data.size() - sizeof(kCheckpointMagic));
  LACB_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  Checkpoint ckpt;
  LACB_ASSIGN_OR_RETURN(ckpt.seq, r.U64());
  LACB_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    CheckpointSection s;
    LACB_ASSIGN_OR_RETURN(s.name, r.Str());
    LACB_ASSIGN_OR_RETURN(s.payload, r.Str());
    LACB_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
    if (crc != Crc32(s.payload)) {
      return Status::InvalidArgument("checkpoint section '" + s.name +
                                     "' failed CRC validation");
    }
    ckpt.sections.push_back(std::move(s));
  }
  return ckpt;
}

Status CheckpointManager::EnsureDir() const {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create checkpoint dir: " + dir_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string CheckpointManager::CheckpointPath(uint64_t seq) const {
  return dir_ + "/" + kCkptPrefix + std::to_string(seq) + kCkptSuffix;
}

std::string CheckpointManager::WalPath(uint64_t seq) const {
  return dir_ + "/" + kWalPrefix + std::to_string(seq) + kWalSuffix;
}

std::vector<uint64_t> CheckpointManager::ListSeqs() const {
  std::vector<uint64_t> seqs;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return seqs;
  while (struct dirent* entry = ::readdir(dir)) {
    uint64_t seq = 0;
    if (ParseSeq(entry->d_name, kCkptPrefix, kCkptSuffix, &seq)) {
      seqs.push_back(seq);
    }
  }
  ::closedir(dir);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Result<uint64_t> CheckpointManager::Write(const Checkpoint& ckpt) const {
  LACB_RETURN_NOT_OK(EnsureDir());
  std::string encoded = EncodeCheckpoint(ckpt);
  const uint64_t bytes = encoded.size();
  LACB_RETURN_NOT_OK(
      WriteFileAtomic(CheckpointPath(ckpt.seq), encoded, fsync_));
  LACB_RETURN_NOT_OK(Prune());
  return bytes;
}

Result<LoadResult> CheckpointManager::LoadNewest() const {
  std::vector<uint64_t> seqs = ListSeqs();
  LoadResult out;
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    const std::string path = CheckpointPath(*it);
    Result<std::string> raw = ReadFile(path);
    if (raw.ok()) {
      Result<Checkpoint> ckpt = DecodeCheckpoint(*raw);
      if (ckpt.ok()) {
        out.checkpoint = std::move(*ckpt);
        out.path = path;
        return out;
      }
    }
    ++out.skipped_corrupt;
  }
  if (out.skipped_corrupt > 0) {
    return Status::NotFound("no valid checkpoint in " + dir_ + " (" +
                            std::to_string(out.skipped_corrupt) +
                            " corrupt)");
  }
  return Status::NotFound("no checkpoint in " + dir_);
}

Status CheckpointManager::Prune() const {
  std::vector<uint64_t> seqs = ListSeqs();
  if (seqs.size() <= retain_) return Status::OK();
  const size_t drop = seqs.size() - retain_;
  for (size_t i = 0; i < drop; ++i) {
    ::unlink(CheckpointPath(seqs[i]).c_str());
    ::unlink(WalPath(seqs[i]).c_str());
  }
  return Status::OK();
}

}  // namespace lacb::persist

// Versioned, CRC-checksummed checkpoint files with retention.
//
// File layout:
//   "LACBCKPT" | u32 version | u64 seq | u32 section_count
//   per section: Str name | u64 payload_len | payload | u32 crc32(payload)
//
// Readers skip sections they do not recognize (each section is
// self-delimiting), so newer writers can add sections without breaking
// older readers — the forward-compatibility contract of the format.
//
// Files are named `ckpt-<seq>.bin` and written via tmp+rename (see
// WriteFileAtomic), so a checkpoint either exists fully or not at all.
// Retention keeps the newest `retain` checkpoints plus their WALs.

#ifndef LACB_PERSIST_CHECKPOINT_H_
#define LACB_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/status.h"

namespace lacb::persist {

inline constexpr char kCheckpointMagic[8] = {'L', 'A', 'C', 'B',
                                             'C', 'K', 'P', 'T'};
inline constexpr uint32_t kCheckpointVersion = 1;

struct CheckpointSection {
  std::string name;
  std::string payload;
};

struct Checkpoint {
  uint64_t seq = 0;
  std::vector<CheckpointSection> sections;

  /// \brief Pointer into sections, or nullptr if absent.
  const CheckpointSection* Find(const std::string& name) const;
};

/// \brief Serializes a checkpoint into the on-disk byte layout.
std::string EncodeCheckpoint(const Checkpoint& ckpt);

/// \brief Parses and CRC-validates a checkpoint image. Any CRC mismatch
/// or truncation fails the whole file (checkpoints are atomic units; a
/// reader must never act on a partially valid one).
Result<Checkpoint> DecodeCheckpoint(const std::string& data);

struct LoadResult {
  Checkpoint checkpoint;
  std::string path;
  uint64_t skipped_corrupt = 0;  // newer files that failed validation
};

/// \brief Manages checkpoint files in one directory.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir, size_t retain = 3,
                             bool do_fsync = true)
      : dir_(std::move(dir)), retain_(retain), fsync_(do_fsync) {}

  /// \brief Creates the directory if needed.
  Status EnsureDir() const;

  std::string CheckpointPath(uint64_t seq) const;
  std::string WalPath(uint64_t seq) const;

  /// \brief Atomically writes `ckpt` and prunes old files per retention.
  /// Returns the encoded size in bytes.
  Result<uint64_t> Write(const Checkpoint& ckpt) const;

  /// \brief Loads the newest checkpoint that decodes and CRC-validates,
  /// falling back past corrupt ones (counted in `skipped_corrupt`).
  /// NotFound when the directory holds no valid checkpoint.
  Result<LoadResult> LoadNewest() const;

  /// \brief Sequence numbers of checkpoint files present, ascending.
  std::vector<uint64_t> ListSeqs() const;

 private:
  Status Prune() const;

  std::string dir_;
  size_t retain_;
  bool fsync_;
};

}  // namespace lacb::persist

#endif  // LACB_PERSIST_CHECKPOINT_H_

#include "lacb/persist/serializers.h"

#include <algorithm>

namespace lacb::persist {

void WriteRequest(ByteWriter* w, const sim::Request& q) {
  w->I64(q.id);
  w->U64(q.day);
  w->U64(q.batch);
  w->U64(q.district);
  w->F64(q.pickiness);
  w->VecF64(q.housing_embedding);
}

Result<sim::Request> ReadRequest(ByteReader* r) {
  sim::Request q;
  LACB_ASSIGN_OR_RETURN(q.id, r->I64());
  LACB_ASSIGN_OR_RETURN(uint64_t day, r->U64());
  q.day = static_cast<size_t>(day);
  LACB_ASSIGN_OR_RETURN(uint64_t batch, r->U64());
  q.batch = static_cast<size_t>(batch);
  LACB_ASSIGN_OR_RETURN(uint64_t district, r->U64());
  q.district = static_cast<size_t>(district);
  LACB_ASSIGN_OR_RETURN(q.pickiness, r->F64());
  LACB_ASSIGN_OR_RETURN(q.housing_embedding, r->VecF64());
  return q;
}

void WriteRequests(ByteWriter* w, const std::vector<sim::Request>& qs) {
  w->U64(qs.size());
  for (const sim::Request& q : qs) WriteRequest(w, q);
}

Result<std::vector<sim::Request>> ReadRequests(ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  std::vector<sim::Request> out;
  out.reserve(static_cast<size_t>(std::min<uint64_t>(n, 4096)));
  for (uint64_t i = 0; i < n; ++i) {
    LACB_ASSIGN_OR_RETURN(sim::Request q, ReadRequest(r));
    out.push_back(std::move(q));
  }
  return out;
}

void WriteMatrix(ByteWriter* w, const la::Matrix& m) {
  w->U64(m.rows());
  w->U64(m.cols());
  w->VecF64(m.data());
}

Result<la::Matrix> ReadMatrix(ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(uint64_t rows, r->U64());
  LACB_ASSIGN_OR_RETURN(uint64_t cols, r->U64());
  LACB_ASSIGN_OR_RETURN(std::vector<double> data, r->VecF64());
  if (data.size() != rows * cols) {
    return Status::InvalidArgument("matrix payload size mismatch");
  }
  la::Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  m.data() = std::move(data);
  return m;
}

}  // namespace lacb::persist

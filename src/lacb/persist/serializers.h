// Shared binary serializers for domain types used by more than one
// checkpoint section (requests appear in the WAL, the platform snapshot,
// and the batcher carryover; matrices appear in every bandit payload).

#ifndef LACB_PERSIST_SERIALIZERS_H_
#define LACB_PERSIST_SERIALIZERS_H_

#include "lacb/la/matrix.h"
#include "lacb/persist/bytes.h"
#include "lacb/sim/request.h"

namespace lacb::persist {

void WriteRequest(ByteWriter* w, const sim::Request& q);
Result<sim::Request> ReadRequest(ByteReader* r);

void WriteRequests(ByteWriter* w, const std::vector<sim::Request>& qs);
Result<std::vector<sim::Request>> ReadRequests(ByteReader* r);

void WriteMatrix(ByteWriter* w, const la::Matrix& m);
Result<la::Matrix> ReadMatrix(ByteReader* r);

}  // namespace lacb::persist

#endif  // LACB_PERSIST_SERIALIZERS_H_

#include "lacb/persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "lacb/persist/serializers.h"

namespace lacb::persist {

namespace {

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("WAL write failed: " + path + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t checkpoint_seq,
                                                     bool do_fsync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL for writing: " + path + ": " +
                           std::strerror(errno));
  }
  ByteWriter header;
  for (char c : kWalMagic) header.U8(static_cast<uint8_t>(c));
  header.U32(kWalVersion);
  header.U64(checkpoint_seq);
  Status s = WriteAll(fd, header.bytes().data(), header.bytes().size(), path);
  if (s.ok() && do_fsync && ::fsync(fd) != 0) {
    s = Status::IoError("WAL fsync failed: " + path);
  }
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(path, fd, do_fsync));
  writer->bytes_written_ = header.bytes().size();
  return writer;
}

Status WalWriter::AppendRecord(WalRecordType type,
                               const std::string& payload) {
  // Framed as one contiguous write so a crash tears at most this record:
  // len | body | crc(body), where body = type byte + payload.
  std::string body;
  body.push_back(static_cast<char>(type));
  body.append(payload);
  ByteWriter out;
  out.U32(static_cast<uint32_t>(body.size()));
  for (char c : body) out.U8(static_cast<uint8_t>(c));
  out.U32(Crc32(body));
  LACB_RETURN_NOT_OK(
      WriteAll(fd_, out.bytes().data(), out.bytes().size(), path_));
  if (fsync_ && ::fsync(fd_) != 0) {
    return Status::IoError("WAL fsync failed: " + path_);
  }
  ++records_written_;
  bytes_written_ += out.bytes().size();
  if (record_sink_) {
    record_sink_(std::string_view(out.bytes().data(), out.bytes().size()));
  }
  return Status::OK();
}

Status WalWriter::AppendDayOpen(uint64_t day) {
  ByteWriter w;
  w.U64(day);
  return AppendRecord(WalRecordType::kDayOpen, w.bytes());
}

Status WalWriter::AppendDayClose(uint64_t day) {
  ByteWriter w;
  w.U64(day);
  return AppendRecord(WalRecordType::kDayClose, w.bytes());
}

Status WalWriter::AppendBatch(uint64_t token, uint64_t day,
                              uint32_t worker_index,
                              const std::vector<sim::Request>& requests,
                              const std::vector<int64_t>& assignment) {
  ByteWriter w;
  w.U64(token);
  w.U64(day);
  w.U32(worker_index);
  WriteRequests(&w, requests);
  w.VecI64(assignment);
  return AppendRecord(WalRecordType::kBatch, w.bytes());
}

Result<WalRecovery> RecoverWal(const std::string& path) {
  Result<std::string> raw = ReadFile(path);
  if (!raw.ok()) {
    if (raw.status().code() == StatusCode::kIoError) {
      return Status::NotFound("no WAL at " + path);
    }
    return raw.status();
  }
  const std::string& data = *raw;
  constexpr size_t kHeaderSize = sizeof(kWalMagic) + 4 + 8;
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("bad WAL header: " + path);
  }
  ByteReader header(data.data() + sizeof(kWalMagic), kHeaderSize -
                                                         sizeof(kWalMagic));
  LACB_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version: " + path);
  }
  WalRecovery out;
  LACB_ASSIGN_OR_RETURN(out.checkpoint_seq, header.U64());
  out.valid_bytes = kHeaderSize;

  size_t pos = kHeaderSize;
  while (pos < data.size()) {
    ByteReader frame(data.data() + pos, data.size() - pos);
    Result<uint32_t> len = frame.U32();
    if (!len.ok() || *len == 0 || *len > frame.remaining()) {
      out.truncated_torn_tail = true;
      break;
    }
    const char* body = data.data() + pos + 4;
    ByteReader crc_reader(body + *len, frame.remaining() - *len);
    Result<uint32_t> crc = crc_reader.U32();
    if (!crc.ok() || *crc != Crc32(body, *len)) {
      out.truncated_torn_tail = true;
      break;
    }
    ByteReader payload(body + 1, *len - 1);
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(static_cast<uint8_t>(body[0]));
    bool parsed = true;
    switch (rec.type) {
      case WalRecordType::kDayOpen:
      case WalRecordType::kDayClose: {
        Result<uint64_t> day = payload.U64();
        if (!day.ok()) {
          parsed = false;
          break;
        }
        rec.day = *day;
        break;
      }
      case WalRecordType::kBatch: {
        Result<uint64_t> token = payload.U64();
        Result<uint64_t> day = token.ok() ? payload.U64() : token;
        Result<uint32_t> worker =
            day.ok() ? payload.U32() : Result<uint32_t>(day.status());
        if (!worker.ok()) {
          parsed = false;
          break;
        }
        rec.token = *token;
        rec.day = *day;
        rec.worker_index = *worker;
        Result<std::vector<sim::Request>> reqs = ReadRequests(&payload);
        Result<std::vector<int64_t>> assign =
            reqs.ok() ? payload.VecI64()
                      : Result<std::vector<int64_t>>(reqs.status());
        if (!assign.ok()) {
          parsed = false;
          break;
        }
        rec.requests = std::move(*reqs);
        rec.assignment = std::move(*assign);
        break;
      }
      default:
        parsed = false;
        break;
    }
    // A record whose CRC matched but whose payload fails to parse means a
    // writer bug or unknown future type; treat as end-of-valid-log too.
    if (!parsed) {
      out.truncated_torn_tail = true;
      break;
    }
    out.records.push_back(std::move(rec));
    pos += 4 + *len + 4;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace lacb::persist

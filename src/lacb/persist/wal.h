// Write-ahead log for the serving layer.
//
// Between checkpoints, every committed external batch is appended to the
// WAL (framed by its idempotent commit token) so that a crash loses no
// acknowledged work: restore replays the tail through the same
// Platform::CommitExternalBatch path, which deduplicates by token.
//
// File layout:
//   header:  "LACBWAL0" | u32 version | u64 checkpoint_seq
//   record:  u32 len | u8 type | payload[len-1] | u32 crc32(type+payload)
//
// Records are appended with a single write() and (optionally) fsync'd, so
// a crash can only tear the final record. Recovery CRC-validates records
// in order and truncates the file at the first invalid one (torn tail).

#ifndef LACB_PERSIST_WAL_H_
#define LACB_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/common/status.h"
#include "lacb/persist/bytes.h"
#include "lacb/sim/request.h"

namespace lacb::persist {

inline constexpr char kWalMagic[8] = {'L', 'A', 'C', 'B', 'W', 'A', 'L', '0'};
inline constexpr uint32_t kWalVersion = 1;

enum class WalRecordType : uint8_t {
  kDayOpen = 1,   // payload: u64 day
  kBatch = 2,     // payload: u64 token, u64 day, u32 worker_index,
                  //          requests, assignment (VecI64)
  kDayClose = 3,  // payload: u64 day
};

struct WalRecord {
  WalRecordType type;
  uint64_t day = 0;
  // kBatch only:
  uint64_t token = 0;
  uint32_t worker_index = 0;
  std::vector<sim::Request> requests;
  std::vector<int64_t> assignment;
};

/// \brief Append-only WAL writer. Not thread-safe; the serving layer
/// serializes appends under its environment mutex.
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Creates (truncates) `path` and writes the header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t checkpoint_seq,
                                                   bool do_fsync);

  Status AppendDayOpen(uint64_t day);
  Status AppendDayClose(uint64_t day);
  Status AppendBatch(uint64_t token, uint64_t day, uint32_t worker_index,
                     const std::vector<sim::Request>& requests,
                     const std::vector<int64_t>& assignment);

  /// \brief Observer of every durable record, invoked after the local
  /// write (and fsync, when enabled) succeeds with the exact framed bytes
  /// — `u32 len | body | crc` — as they landed on disk. The cluster layer
  /// uses this to ship the record to a replication follower; a follower
  /// appending the bytes verbatim after a header reproduces a
  /// RecoverWal-compatible file. Called under the same serialization as
  /// Append* (the serving layer's environment mutex); must not re-enter
  /// the writer.
  using RecordSink = std::function<void(std::string_view framed_record)>;
  void set_record_sink(RecordSink sink) { record_sink_ = std::move(sink); }

  uint64_t records_written() const { return records_written_; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, bool do_fsync)
      : path_(std::move(path)), fd_(fd), fsync_(do_fsync) {}

  Status AppendRecord(WalRecordType type, const std::string& payload);

  std::string path_;
  int fd_ = -1;
  bool fsync_ = true;
  uint64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
  RecordSink record_sink_;
};

struct WalRecovery {
  uint64_t checkpoint_seq = 0;
  std::vector<WalRecord> records;
  bool truncated_torn_tail = false;  // invalid tail detected and dropped
  uint64_t valid_bytes = 0;          // prefix length that CRC-validated
};

/// \brief Reads a WAL, validating CRCs record by record; stops at the
/// first invalid record (torn tail) and reports how much was valid. A
/// missing file is NotFound; a bad header is InvalidArgument.
Result<WalRecovery> RecoverWal(const std::string& path);

}  // namespace lacb::persist

#endif  // LACB_PERSIST_WAL_H_

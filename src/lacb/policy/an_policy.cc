#include "lacb/policy/an_policy.h"

namespace lacb::policy {

Result<std::unique_ptr<AnPolicy>> AnPolicy::Create(
    const AnPolicyConfig& config) {
  LACB_ASSIGN_OR_RETURN(bandit::NeuralUcb bandit,
                        bandit::NeuralUcb::Create(config.bandit));
  return std::unique_ptr<AnPolicy>(
      new AnPolicy(config, std::move(bandit)));
}

Status AnPolicy::BeginDay(const sim::Platform& platform, size_t day) {
  (void)day;
  capacity_.resize(platform.num_brokers());
  for (size_t b = 0; b < platform.num_brokers(); ++b) {
    LACB_ASSIGN_OR_RETURN(
        capacity_[b],
        bandit_.SelectValue(platform.brokers()[b].ContextVector()));
  }
  return Status::OK();
}

Result<std::vector<int64_t>> AnPolicy::AssignBatch(const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  const std::vector<double>& w = *input.workloads;
  if (capacity_.size() != u.cols()) {
    return Status::FailedPrecondition("AN policy day was not begun");
  }
  std::vector<size_t> eligible;
  for (size_t c = 0; c < u.cols(); ++c) {
    if (w[c] < capacity_[c]) eligible.push_back(c);
  }
  return SolveBatchAssignment(u, eligible, config_.pad_to_square,
                              solver_config(), StatsSink(input));
}

Status AnPolicy::EndDay(const sim::DayOutcome& outcome) {
  for (const sim::TrialTriple& t : outcome.trials) {
    if (t.workload <= 0.0) continue;  // idle brokers reveal nothing
    LACB_RETURN_NOT_OK(bandit_.Observe(t.context, t.workload, t.signup_rate));
  }
  return Status::OK();
}

Status AnPolicy::SaveState(persist::ByteWriter* w) const {
  LACB_RETURN_NOT_OK(bandit_.SaveState(w));
  w->VecF64(capacity_);
  return Status::OK();
}

Status AnPolicy::LoadState(persist::ByteReader* r) {
  LACB_RETURN_NOT_OK(bandit_.LoadState(r));
  LACB_ASSIGN_OR_RETURN(capacity_, r->VecF64());
  return Status::OK();
}

}  // namespace lacb::policy

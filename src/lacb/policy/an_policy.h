// AN baseline: "Assignment with NeuralUCB" (paper Sec. VII-A).
//
// A single generic NeuralUCB bandit (Zhou et al.) estimates one capacity
// per broker per day from the broker's context; each batch is then solved
// by capacity-filtered KM. No personalization, no value function — this
// isolates what plain neural-bandit capacity estimation buys.

#ifndef LACB_POLICY_AN_POLICY_H_
#define LACB_POLICY_AN_POLICY_H_

#include <memory>
#include <string>

#include "lacb/bandit/neural_ucb.h"
#include "lacb/policy/assignment_policy.h"

namespace lacb::policy {

/// \brief Configuration of the AN baseline.
struct AnPolicyConfig {
  bandit::NeuralUcbConfig bandit;
  /// Keep the paper's padded O(|B|³) KM formulation.
  bool pad_to_square = true;
};

/// \brief NeuralUCB capacity estimation + per-batch KM.
class AnPolicy : public AssignmentPolicy {
 public:
  static Result<std::unique_ptr<AnPolicy>> Create(const AnPolicyConfig& config);

  std::string name() const override { return "AN"; }

  Status BeginDay(const sim::Platform& platform, size_t day) override;
  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;
  Status EndDay(const sim::DayOutcome& outcome) override;

  Status SaveState(persist::ByteWriter* w) const override;
  Status LoadState(persist::ByteReader* r) override;

 private:
  AnPolicy(AnPolicyConfig config, bandit::NeuralUcb bandit)
      : config_(std::move(config)), bandit_(std::move(bandit)) {}

  AnPolicyConfig config_;
  bandit::NeuralUcb bandit_;
  std::vector<double> capacity_;  // today's per-broker estimates
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_AN_POLICY_H_

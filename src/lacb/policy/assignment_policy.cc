#include "lacb/policy/assignment_policy.h"

#include "lacb/matching/approx/parallel_bmatch.h"
#include "lacb/matching/approx/scoring.h"
#include "lacb/matching/assignment.h"

namespace lacb::policy {

namespace {

namespace approx = matching::approx;

// Exact-KM batch assignment (the historical SolveBatchAssignment body,
// with the submatrix gathers routed through the shared scoring kernels —
// identical arithmetic, so results are byte-identical).
Result<std::vector<int64_t>> SolveBatchExact(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, matching::SolveStats* stats,
    std::vector<int64_t>* out) {
  const size_t num_requests = utility.rows();
  if (eligible.size() >= num_requests) {
    la::Matrix w;
    LACB_RETURN_NOT_OK(approx::GatherColumns(utility, eligible, &w));
    matching::Assignment a;
    if (pad_to_square) {
      LACB_ASSIGN_OR_RETURN(la::Matrix square, matching::PadToSquare(w));
      LACB_ASSIGN_OR_RETURN(a, matching::MaxWeightAssignment(square, stats));
    } else {
      LACB_ASSIGN_OR_RETURN(a, matching::MaxWeightAssignment(w, stats));
    }
    for (size_t r = 0; r < num_requests; ++r) {
      int64_t col = a.col_of_row[r];
      if (col != matching::kUnmatched) {
        (*out)[r] = static_cast<int64_t>(eligible[static_cast<size_t>(col)]);
      }
    }
    return *out;
  }

  // Fewer brokers than requests: solve the transposed problem so every
  // eligible broker serves exactly one request; the rest stay unmatched.
  la::Matrix w;
  LACB_RETURN_NOT_OK(approx::GatherColumnsTransposed(utility, eligible, &w));
  LACB_ASSIGN_OR_RETURN(matching::Assignment a,
                        matching::MaxWeightAssignment(w, stats));
  for (size_t c = 0; c < eligible.size(); ++c) {
    int64_t r = a.col_of_row[c];
    if (r != matching::kUnmatched) {
      (*out)[static_cast<size_t>(r)] = static_cast<int64_t>(eligible[c]);
    }
  }
  return *out;
}

// Approximate route: unit-capacity parallel b-matching over the eligible
// columns. Handles either orientation without transposing (surplus
// requests simply stay unmatched).
Result<std::vector<int64_t>> SolveBatchApprox(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    const approx::SolverConfig& solver, matching::SolveStats* stats,
    std::vector<int64_t>* out) {
  approx::ScoreMatrix scores;
  LACB_RETURN_NOT_OK(
      approx::BuildScoreMatrix(utility, eligible, nullptr, &scores));
  std::vector<int64_t> caps(eligible.size(), 1);
  approx::BMatchOptions opts;
  opts.num_threads = solver.approx_threads;
  LACB_ASSIGN_OR_RETURN(approx::BMatchResult bm,
                        approx::ParallelBMatch(scores, caps, opts, stats));
  for (size_t r = 0; r < utility.rows(); ++r) {
    int64_t col = bm.col_of_row[r];
    if (col != matching::kUnmatched) {
      (*out)[r] = static_cast<int64_t>(eligible[static_cast<size_t>(col)]);
    }
  }
  return *out;
}

}  // namespace

Result<std::vector<int64_t>> SolveBatchAssignment(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, matching::SolveStats* stats) {
  return SolveBatchAssignment(utility, eligible, pad_to_square,
                              matching::approx::SolverConfig{}, stats);
}

Result<std::vector<int64_t>> SolveBatchAssignment(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, const matching::approx::SolverConfig& solver,
    matching::SolveStats* stats) {
  size_t num_requests = utility.rows();
  std::vector<int64_t> out(num_requests, matching::kUnmatched);
  if (eligible.empty() || num_requests == 0) return out;
  for (size_t c : eligible) {
    if (c >= utility.cols()) {
      return Status::OutOfRange("eligible broker column out of range");
    }
  }
  const size_t small_side = std::min(num_requests, eligible.size());
  const size_t large_side = std::max(num_requests, eligible.size());
  const approx::SolverChoice choice =
      approx::ResolveChoice(solver, small_side, large_side, stats);
  if (choice == approx::SolverChoice::kApprox) {
    return SolveBatchApprox(utility, eligible, solver, stats, &out);
  }
  return SolveBatchExact(utility, eligible, pad_to_square, stats, &out);
}

}  // namespace lacb::policy

#include "lacb/policy/assignment_policy.h"

#include "lacb/matching/assignment.h"

namespace lacb::policy {

Result<std::vector<int64_t>> SolveBatchAssignment(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, matching::SolveStats* stats) {
  size_t num_requests = utility.rows();
  std::vector<int64_t> out(num_requests, matching::kUnmatched);
  if (eligible.empty() || num_requests == 0) return out;
  for (size_t c : eligible) {
    if (c >= utility.cols()) {
      return Status::OutOfRange("eligible broker column out of range");
    }
  }

  if (eligible.size() >= num_requests) {
    la::Matrix w(num_requests, eligible.size());
    for (size_t r = 0; r < num_requests; ++r) {
      for (size_t c = 0; c < eligible.size(); ++c) {
        w(r, c) = utility(r, eligible[c]);
      }
    }
    matching::Assignment a;
    if (pad_to_square) {
      LACB_ASSIGN_OR_RETURN(la::Matrix square, matching::PadToSquare(w));
      LACB_ASSIGN_OR_RETURN(a, matching::MaxWeightAssignment(square, stats));
    } else {
      LACB_ASSIGN_OR_RETURN(a, matching::MaxWeightAssignment(w, stats));
    }
    for (size_t r = 0; r < num_requests; ++r) {
      int64_t col = a.col_of_row[r];
      if (col != matching::kUnmatched) {
        out[r] = static_cast<int64_t>(eligible[static_cast<size_t>(col)]);
      }
    }
    return out;
  }

  // Fewer brokers than requests: solve the transposed problem so every
  // eligible broker serves exactly one request; the rest stay unmatched.
  la::Matrix w(eligible.size(), num_requests);
  for (size_t c = 0; c < eligible.size(); ++c) {
    for (size_t r = 0; r < num_requests; ++r) {
      w(c, r) = utility(r, eligible[c]);
    }
  }
  LACB_ASSIGN_OR_RETURN(matching::Assignment a,
                        matching::MaxWeightAssignment(w, stats));
  for (size_t c = 0; c < eligible.size(); ++c) {
    int64_t r = a.col_of_row[c];
    if (r != matching::kUnmatched) {
      out[static_cast<size_t>(r)] = static_cast<int64_t>(eligible[c]);
    }
  }
  return out;
}

}  // namespace lacb::policy

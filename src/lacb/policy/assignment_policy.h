// AssignmentPolicy: the interface every compared algorithm implements.
//
// The engine (lacb::core) drives a policy through the platform's day/batch
// protocol: Initialize once, BeginDay before each day's batches, AssignBatch
// per batch, EndDay with the platform's feedback (trial triples). Policies
// see only what the production system would see — predicted utilities,
// observable broker contexts, workload counters, and sign-up feedback —
// never the simulator's latent ground truth.

#ifndef LACB_POLICY_ASSIGNMENT_POLICY_H_
#define LACB_POLICY_ASSIGNMENT_POLICY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/la/matrix.h"
#include "lacb/matching/approx/solver_select.h"
#include "lacb/matching/solve_stats.h"
#include "lacb/persist/bytes.h"
#include "lacb/sim/platform.h"

namespace lacb::policy {

/// \brief Everything a policy may inspect when assigning one batch.
struct BatchInput {
  /// Requests of this batch.
  const std::vector<sim::Request>* requests = nullptr;
  /// Predicted utility u_{r,b}, |requests| × |all brokers|.
  const la::Matrix* utility = nullptr;
  /// Requests served so far today, per broker.
  const std::vector<double>* workloads = nullptr;
  size_t day = 0;
  size_t batch = 0;
  /// When set, the policy records solver introspection for this batch,
  /// readable via AssignmentPolicy::last_solve_stats() until the next
  /// AssignBatch call. Off by default (no extra clock reads in solvers).
  bool collect_solve_stats = false;
};

/// \brief Base class of all assignment/recommendation algorithms.
class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;

  virtual std::string name() const = 0;

  /// \brief One-time setup with read-only access to the broker roster.
  virtual Status Initialize(const sim::Platform& platform) {
    (void)platform;
    return Status::OK();
  }

  /// \brief Day preamble (capacity estimation happens here).
  virtual Status BeginDay(const sim::Platform& platform, size_t day) {
    (void)platform;
    (void)day;
    return Status::OK();
  }

  /// \brief Returns assignment[i] = broker index (or -1) per request.
  virtual Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) = 0;

  /// \brief Day epilogue with the platform's feedback.
  virtual Status EndDay(const sim::DayOutcome& outcome) {
    (void)outcome;
    return Status::OK();
  }

  /// \brief Serializes all mutable policy state (bandit posteriors, value
  /// tables, RNG streams) for checkpointing. LoadState must restore a
  /// policy created from the same configuration bit-exactly. Stateless
  /// policies keep the no-op default.
  virtual Status SaveState(persist::ByteWriter* w) const {
    (void)w;
    return Status::OK();
  }
  virtual Status LoadState(persist::ByteReader* r) {
    (void)r;
    return Status::OK();
  }

  /// \brief Solver introspection for the most recent AssignBatch, or null
  /// when the batch did not request stats (or the policy runs no solver).
  const matching::SolveStats* last_solve_stats() const {
    return solve_stats_valid_ ? &solve_stats_ : nullptr;
  }

  /// \brief Installs the matching-backend routing configuration. The
  /// default (SolverChoice::kExactKm) keeps every solve on the historical
  /// exact-KM path byte-for-byte; policies that run no batch solver ignore
  /// it. The serving layer applies ServeOptions::solver to each replica.
  void set_solver_config(const matching::approx::SolverConfig& config) {
    solver_config_ = config;
  }
  const matching::approx::SolverConfig& solver_config() const {
    return solver_config_;
  }

 protected:
  /// \brief Policies call this at the top of AssignBatch: resets the
  /// per-batch record and returns the stats sink to thread into solver
  /// calls (null when the batch did not opt in).
  matching::SolveStats* StatsSink(const BatchInput& input) {
    solve_stats_valid_ = input.collect_solve_stats;
    solve_stats_ = matching::SolveStats{};
    return solve_stats_valid_ ? &solve_stats_ : nullptr;
  }

 private:
  matching::SolveStats solve_stats_;
  bool solve_stats_valid_ = false;
  matching::approx::SolverConfig solver_config_;
};

/// \brief Builds fresh, identically-configured policy instances on demand.
///
/// The online serving layer gives each assignment worker its own replica
/// (policies carry mutable per-batch state — bandit posteriors, RNG
/// streams — so sharing one instance across threads would race); a factory
/// captures the full configuration so every replica starts bit-identical.
using PolicyFactory =
    std::function<Result<std::unique_ptr<AssignmentPolicy>>()>;

/// \brief Shared KM helper: maximum-weight assignment of requests (rows) to
/// the broker columns listed in `eligible`.
///
/// When `pad_to_square` is set, the weight matrix is dummy-padded to
/// |eligible|×|eligible| before solving — faithful to the paper's KM
/// implementation and its O(|B|³) behaviour; otherwise the rectangular
/// solver runs directly. If fewer eligible brokers than requests exist, the
/// surplus requests stay unassigned (prefix order).
Result<std::vector<int64_t>> SolveBatchAssignment(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, matching::SolveStats* stats = nullptr);

/// \brief Routed variant: resolves `solver` per batch (exact KM, parallel
/// approx, or the calibrated kAuto selector) and solves accordingly. The
/// default SolverConfig reproduces the plain overload byte-for-byte; the
/// approx route runs the deterministic parallel ½-approx b-matching solver
/// with unit per-broker capacity (the per-batch residual constraint the
/// exact formulation also enforces).
Result<std::vector<int64_t>> SolveBatchAssignment(
    const la::Matrix& utility, const std::vector<size_t>& eligible,
    bool pad_to_square, const matching::approx::SolverConfig& solver,
    matching::SolveStats* stats = nullptr);

}  // namespace lacb::policy

#endif  // LACB_POLICY_ASSIGNMENT_POLICY_H_

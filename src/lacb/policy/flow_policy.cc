#include "lacb/policy/flow_policy.h"

#include <cmath>

#include "lacb/matching/min_cost_flow.h"

namespace lacb::policy {

Result<std::unique_ptr<FlowPolicy>> FlowPolicy::Create(
    const FlowPolicyConfig& config) {
  return std::unique_ptr<FlowPolicy>(new FlowPolicy(config));
}

Status FlowPolicy::Initialize(const sim::Platform& platform) {
  LACB_ASSIGN_OR_RETURN(
      capacity::PersonalizedCapacityEstimator pool,
      capacity::PersonalizedCapacityEstimator::Create(config_.estimator,
                                                      platform.num_brokers()));
  estimator_ = std::make_unique<capacity::PersonalizedCapacityEstimator>(
      std::move(pool));
  return Status::OK();
}

Status FlowPolicy::BeginDay(const sim::Platform& platform, size_t day) {
  (void)day;
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("Flow policy was not initialized");
  }
  capacity_.resize(platform.num_brokers());
  for (size_t b = 0; b < platform.num_brokers(); ++b) {
    LACB_ASSIGN_OR_RETURN(
        capacity_[b],
        estimator_->Estimate(b, platform.brokers()[b].ContextVector()));
  }
  return Status::OK();
}

Result<std::vector<int64_t>> FlowPolicy::AssignBatch(const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  const std::vector<double>& w = *input.workloads;
  if (capacity_.size() != u.cols()) {
    return Status::FailedPrecondition("Flow policy day was not begun");
  }
  matching::SolveStats* stats = StatsSink(input);
  size_t num_requests = u.rows();
  std::vector<int64_t> out(num_requests, -1);
  if (num_requests == 0) return out;

  // Eligible brokers with integral residual capacity.
  std::vector<size_t> eligible;
  std::vector<int64_t> residual;
  for (size_t c = 0; c < u.cols(); ++c) {
    int64_t res = static_cast<int64_t>(std::floor(capacity_[c] - w[c]));
    if (res > 0) {
      eligible.push_back(c);
      residual.push_back(res);
    }
  }
  if (eligible.empty()) return out;

  // Nodes: 0 source | 1..R requests | R+1..R+E brokers | sink.
  size_t source = 0;
  size_t sink = 1 + num_requests + eligible.size();
  matching::MinCostFlow g(sink + 1);
  // Edge ids of the request->broker arcs, for extraction.
  std::vector<std::vector<size_t>> edge_ids(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    LACB_RETURN_NOT_OK(g.AddEdge(source, 1 + r, 1, 0.0).status());
    edge_ids[r].reserve(eligible.size());
    for (size_t e = 0; e < eligible.size(); ++e) {
      // Negative costs turn max-utility into min-cost; the solver handles
      // them via its Bellman-Ford potential bootstrap.
      LACB_ASSIGN_OR_RETURN(
          size_t id,
          g.AddEdge(1 + r, 1 + num_requests + e, 1, -u(r, eligible[e])));
      edge_ids[r].push_back(id);
    }
  }
  for (size_t e = 0; e < eligible.size(); ++e) {
    LACB_RETURN_NOT_OK(
        g.AddEdge(1 + num_requests + e, sink, residual[e], 0.0).status());
  }
  LACB_RETURN_NOT_OK(g.Solve(source, sink, INT64_MAX, stats).status());
  for (size_t r = 0; r < num_requests; ++r) {
    for (size_t e = 0; e < eligible.size(); ++e) {
      LACB_ASSIGN_OR_RETURN(int64_t flow, g.FlowOn(edge_ids[r][e]));
      if (flow > 0) {
        out[r] = static_cast<int64_t>(eligible[e]);
        break;
      }
    }
  }
  return out;
}

Status FlowPolicy::EndDay(const sim::DayOutcome& outcome) {
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("Flow policy was not initialized");
  }
  for (const sim::TrialTriple& t : outcome.trials) {
    if (t.workload <= 0.0) continue;
    LACB_RETURN_NOT_OK(
        estimator_->Update(t.broker, t.context, t.workload, t.signup_rate));
  }
  return Status::OK();
}

}  // namespace lacb::policy

// FlowPolicy: exact capacity-constrained batch assignment via min-cost
// flow — an *extension* beyond the paper's VFGA.
//
// VFGA lets each broker serve at most one request per batch and relies on
// the value function to ration residual capacity across batches. When
// batches are large relative to broker capacities, the natural exact
// formulation is a transportation problem: each broker is a column with
// arc capacity equal to its *residual daily capacity*, and the batch is
// solved as one min-cost max-flow. This policy implements that formulation
// on top of the same personalized capacity estimator, giving the extension
// bench a principled upper-ish baseline for per-batch decisions.

#ifndef LACB_POLICY_FLOW_POLICY_H_
#define LACB_POLICY_FLOW_POLICY_H_

#include <memory>
#include <string>

#include "lacb/capacity/personalized_estimator.h"
#include "lacb/policy/assignment_policy.h"

namespace lacb::policy {

/// \brief Configuration of the flow-based policy.
struct FlowPolicyConfig {
  capacity::PersonalizedEstimatorConfig estimator;
};

/// \brief Min-cost-flow batch assignment under estimated residual
/// capacities (multiple requests per broker per batch allowed).
class FlowPolicy : public AssignmentPolicy {
 public:
  static Result<std::unique_ptr<FlowPolicy>> Create(
      const FlowPolicyConfig& config);

  std::string name() const override { return "Flow"; }

  Status Initialize(const sim::Platform& platform) override;
  Status BeginDay(const sim::Platform& platform, size_t day) override;
  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;
  Status EndDay(const sim::DayOutcome& outcome) override;

 private:
  explicit FlowPolicy(FlowPolicyConfig config) : config_(std::move(config)) {}

  FlowPolicyConfig config_;
  std::unique_ptr<capacity::PersonalizedCapacityEstimator> estimator_;
  std::vector<double> capacity_;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_FLOW_POLICY_H_

#include "lacb/policy/greedy_policy.h"

#include "lacb/matching/assignment.h"

namespace lacb::policy {

Result<std::vector<int64_t>> GreedyPolicy::AssignBatch(
    const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  const std::vector<double>& w = *input.workloads;
  matching::SolveStats* stats = StatsSink(input);
  std::vector<int64_t> out(u.rows(), matching::kUnmatched);
  std::vector<bool> taken(u.cols(), false);
  double total = 0.0;
  uint64_t matched = 0;
  for (size_t r = 0; r < u.rows(); ++r) {
    int64_t best = matching::kUnmatched;
    double best_u = -1.0;
    for (size_t c = 0; c < u.cols(); ++c) {
      if (taken[c]) continue;
      if (capacity_limit_ > 0.0 && w[c] >= capacity_limit_) continue;
      if (u(r, c) > best_u) {
        best_u = u(r, c);
        best = static_cast<int64_t>(c);
      }
    }
    if (best != matching::kUnmatched) {
      taken[static_cast<size_t>(best)] = true;
      out[r] = best;
      total += best_u;
      ++matched;
    }
  }
  if (stats != nullptr) {
    stats->solver = "greedy";
    stats->rows = u.rows();
    stats->cols = u.cols();
    stats->solves = 1;
    stats->iterations = static_cast<uint64_t>(u.rows());
    stats->augmenting_paths = matched;
    stats->objective = total;
  }
  return out;
}

}  // namespace lacb::policy

// Vertex-based greedy assignment (Kazemi & Shahabi-style, paper ref [34]).
//
// The classical alternative to batch-based matching from the spatial
// crowdsourcing literature the paper builds on: process each batch's
// requests in arrival order, give each the best *free* broker (optionally
// filtered by estimated capacity). Tong et al. [35] observe greedy is
// competitive in practice — this policy lets the benches test that claim
// in the broker-matching setting.

#ifndef LACB_POLICY_GREEDY_POLICY_H_
#define LACB_POLICY_GREEDY_POLICY_H_

#include <string>

#include "lacb/policy/assignment_policy.h"

namespace lacb::policy {

/// \brief Greedy per-request assignment within each batch.
class GreedyPolicy : public AssignmentPolicy {
 public:
  /// \brief With `capacity_limit > 0`, brokers at or beyond that daily
  /// workload are skipped (a capacity-aware greedy); 0 disables.
  explicit GreedyPolicy(double capacity_limit = 0.0)
      : capacity_limit_(capacity_limit) {}

  std::string name() const override {
    return capacity_limit_ > 0.0 ? "Greedy-Cap" : "Greedy";
  }

  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;

 private:
  double capacity_limit_;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_GREEDY_POLICY_H_

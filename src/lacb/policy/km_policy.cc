#include "lacb/policy/km_policy.h"

#include <numeric>

namespace lacb::policy {

Result<std::vector<int64_t>> KmPolicy::AssignBatch(const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  std::vector<size_t> all(u.cols());
  std::iota(all.begin(), all.end(), 0);
  return SolveBatchAssignment(u, all, pad_to_square_, solver_config(),
                              StatsSink(input));
}

}  // namespace lacb::policy

// Per-batch Kuhn–Munkres baseline (paper baseline "KM").
//
// Runs a maximum-weight assignment on the full (dummy-padded) bipartite
// graph in every batch, with no notion of capacity: a top broker can be
// re-assigned batch after batch until overloaded. Serves as the
// assignment-without-capacity control.

#ifndef LACB_POLICY_KM_POLICY_H_
#define LACB_POLICY_KM_POLICY_H_

#include <string>

#include "lacb/policy/assignment_policy.h"

namespace lacb::policy {

/// \brief Capacity-oblivious per-batch KM assignment.
class KmPolicy : public AssignmentPolicy {
 public:
  /// \brief `pad_to_square` keeps the paper's O(|B|³) padded formulation;
  /// disable for the faster rectangular-equivalent solve.
  explicit KmPolicy(bool pad_to_square = true)
      : pad_to_square_(pad_to_square) {}

  std::string name() const override { return "KM"; }

  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;

 private:
  bool pad_to_square_;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_KM_POLICY_H_

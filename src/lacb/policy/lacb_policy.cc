#include "lacb/policy/lacb_policy.h"

#include <algorithm>
#include <utility>

#include "lacb/matching/approx/parallel_bmatch.h"
#include "lacb/matching/approx/scoring.h"
#include "lacb/matching/assignment.h"
#include "lacb/matching/selection.h"
#include "lacb/obs/obs.h"

namespace lacb::policy {

Result<std::unique_ptr<LacbPolicy>> LacbPolicy::Create(
    const LacbPolicyConfig& config) {
  if (config.capacity_hit_threshold < 0.0 ||
      config.capacity_hit_threshold > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  LACB_ASSIGN_OR_RETURN(
      CapacityValueFunction vf,
      CapacityValueFunction::Create(config.value_table_max,
                                    config.td_learning_rate,
                                    config.td_discount));
  return std::unique_ptr<LacbPolicy>(new LacbPolicy(config, std::move(vf)));
}

Status LacbPolicy::Initialize(const sim::Platform& platform) {
  LACB_ASSIGN_OR_RETURN(
      capacity::PersonalizedCapacityEstimator pool,
      capacity::PersonalizedCapacityEstimator::Create(config_.estimator,
                                                      platform.num_brokers()));
  estimator_ = std::make_unique<capacity::PersonalizedCapacityEstimator>(
      std::move(pool));
  capacity_hits_.assign(platform.num_brokers(), 0);
  days_elapsed_ = 0;
  return Status::OK();
}

Status LacbPolicy::BeginDay(const sim::Platform& platform, size_t day) {
  (void)day;
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("LACB policy was not initialized");
  }
  LACB_TRACE_SPAN("capacity_estimate");
  capacity_.resize(platform.num_brokers());
  for (size_t b = 0; b < platform.num_brokers(); ++b) {
    LACB_ASSIGN_OR_RETURN(
        capacity_[b],
        estimator_->Estimate(b, platform.brokers()[b].ContextVector()));
  }
  obs::ActiveRegistry()
      .GetGauge("lacb.value_table_size")
      .Set(static_cast<double>(value_function_.table_size()));
  return Status::OK();
}

double LacbPolicy::CapacityHitFrequency(size_t broker) const {
  if (days_elapsed_ < std::max<size_t>(1, config_.min_days_for_hit_frequency) ||
      broker >= capacity_hits_.size()) {
    return 0.0;
  }
  return static_cast<double>(capacity_hits_[broker]) /
         static_cast<double>(days_elapsed_);
}

Result<std::vector<int64_t>> LacbPolicy::AssignBatch(const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  const std::vector<double>& w = *input.workloads;
  if (capacity_.size() != u.cols()) {
    return Status::FailedPrecondition("LACB policy day was not begun");
  }
  matching::SolveStats* stats = StatsSink(input);
  size_t num_requests = u.rows();
  std::vector<int64_t> out(num_requests, matching::kUnmatched);

  // Alg. 2 line 4: available brokers B₊.
  std::vector<size_t> eligible;
  for (size_t c = 0; c < u.cols(); ++c) {
    if (w[c] < capacity_[c]) eligible.push_back(c);
  }
  if (eligible.empty() || num_requests == 0) return out;

  // Alg. 2 line 6 / Eq. 15: refine utilities of frequently saturated
  // brokers by the value-function delta at their current residual. The
  // per-column deltas are computed first, then fused into the column
  // gather by the shared scoring kernel.
  la::Matrix refined;
  std::vector<double> residual(eligible.size());
  {
    LACB_TRACE_SPAN("value_refine");
    std::vector<double> column_delta(eligible.size(), 0.0);
    size_t refined_brokers = 0;
    for (size_t c = 0; c < eligible.size(); ++c) {
      size_t b = eligible[c];
      residual[c] = capacity_[b] - w[b];
      if (config_.use_value_function &&
          CapacityHitFrequency(b) > config_.capacity_hit_threshold) {
        double delta = value_function_.RefinementDelta(residual[c]);
        if (config_.clamp_refinement) delta = std::min(0.0, delta);
        column_delta[c] = delta;
        ++refined_brokers;
      }
    }
    LACB_RETURN_NOT_OK(matching::approx::GatherRefinedColumns(
        u, eligible, column_delta, &refined));
    if (refined_brokers > 0) {
      obs::ActiveRegistry()
          .GetCounter("lacb.refined_broker_columns")
          .Increment(refined_brokers);
    }
  }

  // LACB-Opt, Alg. 3: prune broker columns to the per-request candidates.
  std::vector<size_t> active(eligible.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;
  la::Matrix* solve_matrix = &refined;
  la::Matrix pruned;
  if (config_.use_cbs && eligible.size() > num_requests) {
    LACB_TRACE_SPAN("cbs_prune");
    LACB_ASSIGN_OR_RETURN(active, matching::CandidateColumns(refined, &rng_));
    LACB_ASSIGN_OR_RETURN(pruned, matching::RestrictColumns(refined, active));
    solve_matrix = &pruned;
    obs::ActiveRegistry()
        .GetCounter("lacb.cbs_pruned_columns")
        .Increment(eligible.size() - active.size());
  }

  // Alg. 2 line 7: match on the (padded or pruned) graph. The routed
  // solver config can swap the exact KM solve for the parallel ½-approx
  // b-matching solver on large batches; the default keeps exact KM. The
  // km_solve span and KM iteration counters live inside
  // matching::MaxWeightAssignment.
  namespace approx = matching::approx;
  const approx::SolverChoice choice = approx::ResolveChoice(
      solver_config(),
      std::min(solve_matrix->rows(), solve_matrix->cols()),
      std::max(solve_matrix->rows(), solve_matrix->cols()), stats);
  matching::Assignment assignment;
  if (choice == approx::SolverChoice::kApprox) {
    // The b-matching solver handles either orientation directly (surplus
    // requests simply stay unmatched), so no transpose branch here.
    std::vector<int64_t> caps(solve_matrix->cols(), 1);
    approx::BMatchOptions opts;
    opts.num_threads = solver_config().approx_threads;
    LACB_ASSIGN_OR_RETURN(
        approx::BMatchResult bm,
        approx::ParallelBMatch(*solve_matrix, caps, opts, stats));
    for (size_t r = 0; r < num_requests; ++r) {
      int64_t col = bm.col_of_row[r];
      if (col == matching::kUnmatched) continue;
      size_t local = active[static_cast<size_t>(col)];
      out[r] = static_cast<int64_t>(eligible[local]);
    }
  } else if (solve_matrix->rows() <= solve_matrix->cols()) {
    if (config_.use_cbs || !config_.pad_to_square) {
      LACB_ASSIGN_OR_RETURN(
          assignment, matching::MaxWeightAssignment(*solve_matrix, stats));
    } else {
      LACB_ASSIGN_OR_RETURN(la::Matrix square,
                            matching::PadToSquare(*solve_matrix));
      LACB_ASSIGN_OR_RETURN(assignment,
                            matching::MaxWeightAssignment(square, stats));
      assignment.col_of_row.resize(num_requests);
    }
    for (size_t r = 0; r < num_requests; ++r) {
      int64_t col = assignment.col_of_row[r];
      if (col == matching::kUnmatched) continue;
      size_t local = active[static_cast<size_t>(col)];
      out[r] = static_cast<int64_t>(eligible[local]);
    }
  } else {
    // More requests than available brokers: transpose so each broker
    // serves one request.
    la::Matrix t = solve_matrix->Transposed();
    LACB_ASSIGN_OR_RETURN(assignment, matching::MaxWeightAssignment(t, stats));
    for (size_t c = 0; c < t.rows(); ++c) {
      int64_t r = assignment.col_of_row[c];
      if (r == matching::kUnmatched) continue;
      size_t local = active[c];
      out[static_cast<size_t>(r)] = static_cast<int64_t>(eligible[local]);
    }
  }

  // Alg. 2 lines 8-10: workload bookkeeping is done by the platform; here
  // we back up the value function along each realized transition.
  if (config_.use_value_function) {
    LACB_TRACE_SPAN("value_refine");
    for (size_t r = 0; r < num_requests; ++r) {
      if (out[r] == matching::kUnmatched) continue;
      size_t b = static_cast<size_t>(out[r]);
      double cr = capacity_[b] - w[b];
      value_function_.Update(cr, cr - 1.0, u(r, b));
    }
  }
  return out;
}

Status LacbPolicy::EndDay(const sim::DayOutcome& outcome) {
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("LACB policy was not initialized");
  }
  ++days_elapsed_;
  // Day boundary: each broker-day is an episode of the assignment MDP.
  // Ground the value function at the realized final residuals.
  if (config_.use_value_function) {
    for (size_t b = 0; b < outcome.per_broker_workload.size() &&
                       b < capacity_.size();
         ++b) {
      double w = outcome.per_broker_workload[b];
      if (w <= 0.0) continue;  // idle brokers saw no episode
      value_function_.TerminalUpdate(std::max(0.0, capacity_[b] - w));
    }
  }
  size_t hits_today = 0;
  for (const sim::TrialTriple& t : outcome.trials) {
    if (t.broker < capacity_.size() && capacity_[t.broker] > 0.0 &&
        t.workload >= capacity_[t.broker]) {
      ++capacity_hits_[t.broker];
      ++hits_today;
    }
    if (t.workload <= 0.0) continue;
    LACB_RETURN_NOT_OK(
        estimator_->Update(t.broker, t.context, t.workload, t.signup_rate));
  }

  // Exploration-health telemetry: how often capacity binds (vs the paper's
  // δ threshold) and how many brokers currently clear it.
  obs::MetricRegistry& registry = obs::ActiveRegistry();
  if (hits_today > 0) {
    registry.GetCounter("lacb.capacity_hits").Increment(hits_today);
  }
  double freq_sum = 0.0;
  size_t above_threshold = 0;
  for (size_t b = 0; b < capacity_hits_.size(); ++b) {
    double f = CapacityHitFrequency(b);
    freq_sum += f;
    if (f > config_.capacity_hit_threshold) ++above_threshold;
  }
  if (!capacity_hits_.empty()) {
    registry.GetGauge("lacb.capacity_hit_freq_mean")
        .Set(freq_sum / static_cast<double>(capacity_hits_.size()));
  }
  registry.GetGauge("lacb.brokers_above_hit_threshold")
      .Set(static_cast<double>(above_threshold));
  return Status::OK();
}

Status LacbPolicy::SaveState(persist::ByteWriter* w) const {
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("LacbPolicy not initialized");
  }
  LACB_RETURN_NOT_OK(estimator_->SaveState(w));
  w->VecF64(value_function_.table());
  w->Str(rng_.SaveState());
  w->VecF64(capacity_);
  std::vector<uint64_t> hits(capacity_hits_.begin(), capacity_hits_.end());
  w->VecU64(hits);
  w->U64(days_elapsed_);
  return Status::OK();
}

Status LacbPolicy::LoadState(persist::ByteReader* r) {
  if (estimator_ == nullptr) {
    return Status::FailedPrecondition("LacbPolicy not initialized");
  }
  LACB_RETURN_NOT_OK(estimator_->LoadState(r));
  LACB_ASSIGN_OR_RETURN(std::vector<double> table, r->VecF64());
  LACB_RETURN_NOT_OK(value_function_.set_table(std::move(table)));
  LACB_ASSIGN_OR_RETURN(std::string rng_state, r->Str());
  LACB_RETURN_NOT_OK(rng_.LoadState(rng_state));
  LACB_ASSIGN_OR_RETURN(capacity_, r->VecF64());
  LACB_ASSIGN_OR_RETURN(std::vector<uint64_t> hits, r->VecU64());
  capacity_hits_.assign(hits.begin(), hits.end());
  LACB_ASSIGN_OR_RETURN(uint64_t days, r->U64());
  days_elapsed_ = static_cast<size_t>(days);
  return Status::OK();
}

}  // namespace lacb::policy

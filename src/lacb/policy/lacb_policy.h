// LACB: Learned Assignment with Contextual Bandits (paper Secs. V–VI).
//
// The full proposed system. Each day, every broker's workload capacity is
// estimated by its personalized NN-enhanced-UCB bandit (shared base network
// + per-broker fine-tuned last layer). Each batch runs Value Function
// Guided Assignment (Alg. 2): brokers with residual capacity form B₊,
// edge utilities of brokers that frequently exhaust their capacity are
// refined with the TD-learned capacity value function (Eq. 15), and a
// Kuhn–Munkres assignment is solved. With `use_cbs` the Candidate Broker
// Selection optimization (Alg. 3) first prunes the broker side to the
// per-request top-|R| candidates — this is LACB-Opt, which by Theorem 2
// preserves the optimal utility while cutting KM to O(|R|³).

#ifndef LACB_POLICY_LACB_POLICY_H_
#define LACB_POLICY_LACB_POLICY_H_

#include <memory>
#include <string>

#include "lacb/capacity/personalized_estimator.h"
#include "lacb/common/rng.h"
#include "lacb/policy/assignment_policy.h"
#include "lacb/policy/value_function.h"

namespace lacb::policy {

/// \brief Configuration of LACB / LACB-Opt.
struct LacbPolicyConfig {
  capacity::PersonalizedEstimatorConfig estimator;
  /// TD learning rate β (paper: 0.25).
  double td_learning_rate = 0.25;
  /// TD discount γ (paper: 0.9).
  double td_discount = 0.9;
  /// Capacity-hit frequency threshold δ (paper: 0.8).
  double capacity_hit_threshold = 0.8;
  /// Days of history required before f_b is trusted against δ: a
  /// frequency over one or two days is a coin flip, and refining on it
  /// steers early assignments with a still-untrained value function.
  size_t min_days_for_hit_frequency = 5;
  /// Largest residual capacity representable in the value table.
  size_t value_table_max = 100;
  /// Enables Candidate Broker Selection (LACB-Opt).
  bool use_cbs = false;
  /// Dummy-pad KM to a square matrix (the paper's O(|B|³) formulation);
  /// LACB-Opt always solves the pruned rectangular instance.
  bool pad_to_square = true;
  /// Ablation switch: disable the Eq. 15 refinement entirely.
  bool use_value_function = true;
  /// Clamp the refinement γV(cr−1) − V(cr) at zero: for a value function
  /// monotone in the residual the term is a non-positive scarcity price,
  /// and clamping bounds mid-training noise. Off by default — Eq. 15 as
  /// printed; available for sensitivity studies.
  bool clamp_refinement = false;
  uint64_t seed = 7;
};

/// \brief The proposed capacity-aware assignment policy.
class LacbPolicy : public AssignmentPolicy {
 public:
  static Result<std::unique_ptr<LacbPolicy>> Create(
      const LacbPolicyConfig& config);

  std::string name() const override {
    return config_.use_cbs ? "LACB-Opt" : "LACB";
  }

  Status Initialize(const sim::Platform& platform) override;
  Status BeginDay(const sim::Platform& platform, size_t day) override;
  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;
  Status EndDay(const sim::DayOutcome& outcome) override;

  /// \brief Today's capacity estimate per broker (after BeginDay).
  const std::vector<double>& capacities() const { return capacity_; }

  /// \brief Replaces today's capacity estimate for one broker (valid
  /// after BeginDay). The scenario engine uses this to install the
  /// cold-start prior on a broker's join day; from the next day on the
  /// bandit estimate takes over again (docs/scenarios.md).
  Status OverrideCapacity(size_t broker, double capacity) {
    if (broker >= capacity_.size()) {
      return Status::OutOfRange("capacity override: unknown broker");
    }
    capacity_[broker] = capacity;
    return Status::OK();
  }

  /// \brief Fraction of past days broker b exhausted its capacity (f_b).
  double CapacityHitFrequency(size_t broker) const;

  const capacity::PersonalizedCapacityEstimator& estimator() const {
    return *estimator_;
  }

  Status SaveState(persist::ByteWriter* w) const override;
  Status LoadState(persist::ByteReader* r) override;

 private:
  LacbPolicy(LacbPolicyConfig config, CapacityValueFunction value_function)
      : config_(std::move(config)),
        value_function_(std::move(value_function)),
        rng_(config_.seed) {}

  LacbPolicyConfig config_;
  std::unique_ptr<capacity::PersonalizedCapacityEstimator> estimator_;
  CapacityValueFunction value_function_;
  Rng rng_;

  std::vector<double> capacity_;       // today's estimates
  std::vector<size_t> capacity_hits_;  // days the broker hit capacity
  size_t days_elapsed_ = 0;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_LACB_POLICY_H_

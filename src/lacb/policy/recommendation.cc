#include "lacb/policy/recommendation.h"

#include <algorithm>
#include <numeric>

namespace lacb::policy {

namespace {

// Indices of the k largest entries of `row` restricted to `allowed`
// (all columns when `allowed` is null). Partial sort; k is tiny (1 or 3).
std::vector<size_t> TopColumns(const la::Matrix& utility, size_t row,
                               size_t k, const std::vector<bool>* allowed) {
  std::vector<size_t> cols;
  cols.reserve(utility.cols());
  for (size_t c = 0; c < utility.cols(); ++c) {
    if (allowed == nullptr || (*allowed)[c]) cols.push_back(c);
  }
  size_t take = std::min(k, cols.size());
  std::partial_sort(cols.begin(), cols.begin() + static_cast<long>(take),
                    cols.end(), [&](size_t a, size_t b) {
                      return utility(row, a) > utility(row, b);
                    });
  cols.resize(take);
  return cols;
}

}  // namespace

Result<std::vector<int64_t>> TopKPolicy::AssignBatch(const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  std::vector<int64_t> out(u.rows(), -1);
  for (size_t r = 0; r < u.rows(); ++r) {
    std::vector<size_t> top = TopColumns(u, r, k_, nullptr);
    if (top.empty()) continue;
    // The client picks among the recommended brokers, biased toward the
    // highest-ranked card (position bias).
    std::vector<double> weights(top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    out[r] = static_cast<int64_t>(top[rng_.Categorical(weights)]);
  }
  return out;
}

Result<std::vector<int64_t>> ConstrainedTopKPolicy::AssignBatch(
    const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  const std::vector<double>& w = *input.workloads;
  std::vector<bool> allowed(u.cols());
  bool any = false;
  for (size_t c = 0; c < u.cols(); ++c) {
    allowed[c] = w[c] < city_capacity_;
    any = any || allowed[c];
  }
  std::vector<int64_t> out(u.rows(), -1);
  if (!any) return out;  // the whole city is saturated
  for (size_t r = 0; r < u.rows(); ++r) {
    std::vector<size_t> top = TopColumns(u, r, k_, &allowed);
    if (top.empty()) continue;
    std::vector<double> weights(top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    out[r] = static_cast<int64_t>(top[rng_.Categorical(weights)]);
  }
  return out;
}

Status RandomizedRecommendationPolicy::Initialize(
    const sim::Platform& platform) {
  quality_sum_.assign(platform.num_brokers(), 0.0);
  quality_count_.assign(platform.num_brokers(), 0.0);
  return Status::OK();
}

Result<std::vector<int64_t>> RandomizedRecommendationPolicy::AssignBatch(
    const BatchInput& input) {
  const la::Matrix& u = *input.utility;
  if (quality_sum_.size() != u.cols()) {
    return Status::FailedPrecondition("RR policy was not initialized");
  }
  // Smoothed quality estimate as the sampling weight (uniform until
  // feedback accumulates).
  std::vector<double> weights(u.cols());
  for (size_t c = 0; c < u.cols(); ++c) {
    weights[c] = (quality_sum_[c] + 0.05) / (quality_count_[c] + 1.0);
  }
  std::vector<int64_t> out(u.rows(), -1);
  for (size_t r = 0; r < u.rows(); ++r) {
    out[r] = static_cast<int64_t>(rng_.Categorical(weights));
  }
  return out;
}

Status RandomizedRecommendationPolicy::EndDay(const sim::DayOutcome& outcome) {
  for (const sim::TrialTriple& t : outcome.trials) {
    if (t.workload <= 0.0) continue;
    quality_sum_[t.broker] += t.signup_rate;
    quality_count_[t.broker] += 1.0;
  }
  return Status::OK();
}

}  // namespace lacb::policy

// Recommendation-style baselines: Top-K, Constrained Top-K, Randomized.
//
// These model the *status quo* mechanisms the paper argues against. They
// act per request, independently: Top-K shows the K highest-utility
// brokers and the client picks one (so several requests in one batch can
// pile onto the same broker — the source of the overload phenomenon).
// CTop-K additionally hides brokers whose daily workload has reached a
// single empirical city-wide capacity. RR samples a broker weighted by a
// running service-quality estimate, extending fair-matching baselines.

#ifndef LACB_POLICY_RECOMMENDATION_H_
#define LACB_POLICY_RECOMMENDATION_H_

#include <string>
#include <vector>

#include "lacb/common/rng.h"
#include "lacb/policy/assignment_policy.h"

namespace lacb::policy {

/// \brief Top-K recommendation (paper baseline "Top-K", K ∈ {1, 3}).
class TopKPolicy : public AssignmentPolicy {
 public:
  TopKPolicy(size_t k, uint64_t seed) : k_(k), rng_(seed) {}

  std::string name() const override {
    return "Top-" + std::to_string(k_);
  }

  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;

  Status SaveState(persist::ByteWriter* w) const override {
    w->Str(rng_.SaveState());
    return Status::OK();
  }
  Status LoadState(persist::ByteReader* r) override {
    LACB_ASSIGN_OR_RETURN(std::string state, r->Str());
    return rng_.LoadState(state);
  }

 private:
  size_t k_;
  Rng rng_;
};

/// \brief Constrained Top-K (paper baseline "CTop-K"): Top-K over brokers
/// below one empirical city-level capacity.
class ConstrainedTopKPolicy : public AssignmentPolicy {
 public:
  ConstrainedTopKPolicy(size_t k, double city_capacity, uint64_t seed)
      : k_(k), city_capacity_(city_capacity), rng_(seed) {}

  std::string name() const override {
    return "CTop-" + std::to_string(k_);
  }

  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;

  Status SaveState(persist::ByteWriter* w) const override {
    w->Str(rng_.SaveState());
    return Status::OK();
  }
  Status LoadState(persist::ByteReader* r) override {
    LACB_ASSIGN_OR_RETURN(std::string state, r->Str());
    return rng_.LoadState(state);
  }

 private:
  size_t k_;
  double city_capacity_;
  Rng rng_;
};

/// \brief Randomized Recommendation (paper baseline "RR"): samples one
/// broker per request with probability proportional to a running estimate
/// of the broker's service quality (observed sign-up rates).
class RandomizedRecommendationPolicy : public AssignmentPolicy {
 public:
  explicit RandomizedRecommendationPolicy(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "RR"; }

  Status Initialize(const sim::Platform& platform) override;
  Result<std::vector<int64_t>> AssignBatch(const BatchInput& input) override;
  Status EndDay(const sim::DayOutcome& outcome) override;

  Status SaveState(persist::ByteWriter* w) const override {
    w->Str(rng_.SaveState());
    w->VecF64(quality_sum_);
    w->VecF64(quality_count_);
    return Status::OK();
  }
  Status LoadState(persist::ByteReader* r) override {
    LACB_ASSIGN_OR_RETURN(std::string state, r->Str());
    LACB_RETURN_NOT_OK(rng_.LoadState(state));
    LACB_ASSIGN_OR_RETURN(quality_sum_, r->VecF64());
    LACB_ASSIGN_OR_RETURN(quality_count_, r->VecF64());
    return Status::OK();
  }

 private:
  Rng rng_;
  std::vector<double> quality_sum_;
  std::vector<double> quality_count_;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_RECOMMENDATION_H_

#include "lacb/policy/value_function.h"

#include <algorithm>
#include <cmath>

#include "lacb/obs/context.h"

namespace lacb::policy {

Result<CapacityValueFunction> CapacityValueFunction::Create(
    size_t cr_max, double learning_rate, double discount) {
  if (cr_max == 0) {
    return Status::InvalidArgument("cr_max must be positive");
  }
  if (learning_rate <= 0.0 || learning_rate > 1.0) {
    return Status::InvalidArgument("learning rate must be in (0,1]");
  }
  if (discount < 0.0 || discount > 1.0) {
    return Status::InvalidArgument("discount must be in [0,1]");
  }
  return CapacityValueFunction(cr_max, learning_rate, discount);
}

size_t CapacityValueFunction::Index(double residual) const {
  double clamped =
      std::clamp(residual, 0.0, static_cast<double>(table_.size() - 1));
  return static_cast<size_t>(std::llround(clamped));
}

double CapacityValueFunction::Value(double residual) const {
  return table_[Index(residual)];
}

double CapacityValueFunction::RefinementDelta(double residual) const {
  return discount_ * Value(residual - 1.0) - Value(residual);
}

void CapacityValueFunction::TerminalUpdate(double residual) {
  size_t idx = Index(residual);
  table_[idx] += learning_rate_ * (0.0 - table_[idx]);
  obs::ActiveRegistry().GetCounter("vf.terminal_updates").Increment();
}

void CapacityValueFunction::Update(double residual_before,
                                   double residual_after, double reward) {
  size_t idx = Index(residual_before);
  double target = reward + discount_ * Value(residual_after);
  table_[idx] += learning_rate_ * (target - table_[idx]);
  obs::ActiveRegistry().GetCounter("vf.td_updates").Increment();
}

}  // namespace lacb::policy

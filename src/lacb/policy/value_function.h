// Capacity-aware value function V(cr) (paper Sec. VI-B, Eq. 14).
//
// Tabular value over a broker's residual capacity cr ∈ {0, …, cr_max},
// trained online by the temporal-difference rule
//   V(cr) ← V(cr) + β [ u + γ V(cr′) − V(cr) ].
// VFGA refines candidate-edge utilities with γV(cr′) − V(cr) for brokers
// that frequently exhaust their capacity (Eq. 15), which prices in the
// opportunity cost of consuming a scarce broker's remaining slots.

#ifndef LACB_POLICY_VALUE_FUNCTION_H_
#define LACB_POLICY_VALUE_FUNCTION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "lacb/common/result.h"

namespace lacb::policy {

/// \brief Tabular TD-learned value of residual capacity.
class CapacityValueFunction {
 public:
  /// \brief `cr_max` is the largest representable residual capacity;
  /// `learning_rate` is β and `discount` is γ of Eq. 14.
  static Result<CapacityValueFunction> Create(size_t cr_max,
                                              double learning_rate,
                                              double discount);

  /// \brief V(cr); out-of-range residuals clamp to the table edge.
  double Value(double residual) const;

  /// \brief The Eq. 15 refinement term γV(cr−1) − V(cr) at residual cr.
  double RefinementDelta(double residual) const;

  /// \brief One TD backup for a transition cr → cr′ with reward u.
  void Update(double residual_before, double residual_after, double reward);

  /// \brief End-of-episode backup: the day is over, no further utility
  /// follows from residual cr, so V(cr) is pulled toward zero. Without
  /// this the TD chain assumes an infinite request stream and V inflates
  /// to the non-episodic fixpoint u/(1−γ), over-pricing slots that would
  /// never have been used today.
  void TerminalUpdate(double residual);

  double discount() const { return discount_; }
  size_t table_size() const { return table_.size(); }

  /// \brief Raw table access for checkpoint serialization. `set_table`
  /// rejects a size change (the config owns the table shape).
  const std::vector<double>& table() const { return table_; }
  Status set_table(std::vector<double> table) {
    if (table.size() != table_.size()) {
      return Status::InvalidArgument("value table size mismatch");
    }
    table_ = std::move(table);
    return Status::OK();
  }

 private:
  CapacityValueFunction(size_t cr_max, double learning_rate, double discount)
      : table_(cr_max + 1, 0.0),
        learning_rate_(learning_rate),
        discount_(discount) {}

  size_t Index(double residual) const;

  std::vector<double> table_;
  double learning_rate_;
  double discount_;
};

}  // namespace lacb::policy

#endif  // LACB_POLICY_VALUE_FUNCTION_H_

#include "lacb/scenario/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "lacb/common/rng.h"

namespace lacb::scenario {
namespace {

// SplitMix64 finalizer: the stateless hash behind every per-entity draw
// (broker costs, request limits), so constraints depend on identity, not
// on iteration or batch order.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double HashUnit(uint64_t seed, uint64_t tag, uint64_t x) {
  uint64_t h = Mix64(seed ^ Mix64(tag ^ Mix64(x)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

// Minimum / maximum broker engagement cost (HashUnit maps into this
// band); budgets interpolate against these bounds.
constexpr double kMinCost = 0.5;
constexpr double kMaxCost = 1.5;

}  // namespace

Result<CompiledScenario> CompiledScenario::Compile(
    const ScenarioSpec& spec, const sim::DatasetConfig& config) {
  LACB_RETURN_NOT_OK(spec.Validate());
  CompiledScenario out;
  out.spec_ = spec;

  std::vector<double> caps = config.capacity_candidates;
  if (caps.empty()) {
    return Status::InvalidArgument(
        "scenario compilation needs capacity candidates");
  }
  std::sort(caps.begin(), caps.end());
  out.median_capacity_ = caps[caps.size() / 2];

  if (!spec.arrivals.diurnal.empty()) {
    double sum = 0.0;
    for (double w : spec.arrivals.diurnal) sum += w;
    out.diurnal_mean_ = sum / static_cast<double>(spec.arrivals.diurnal.size());
  }

  const size_t n = config.num_brokers;
  const size_t days = config.num_days;
  const size_t batches_per_day = config.BatchesPerDay();

  // Scripted events: validate against roster and horizon.
  for (const ChurnEvent& ev : spec.churn) {
    if (ev.broker >= n) {
      return Status::InvalidArgument("scripted churn broker out of range");
    }
    if (ev.day >= days) {
      return Status::InvalidArgument("scripted churn day past the horizon");
    }
    out.timeline_.push_back(ev);
  }

  // The join pool: the tail of the roster index range is reserved
  // initially inactive. Stochastic joins consume it front to back.
  size_t pool_size = static_cast<size_t>(
      std::floor(spec.stochastic.join_pool_fraction * static_cast<double>(n)));
  size_t pool_begin = n - pool_size;
  std::vector<size_t> pool;
  for (size_t b = pool_begin; b < n; ++b) pool.push_back(b);

  // Stochastic expansion: one forked stream per concern so adding a rate
  // never shifts another's draws.
  if (!spec.stochastic.Empty()) {
    Rng base(spec.seed);
    Rng join_rng = base.Fork(1);
    Rng leave_rng = base.Fork(2);
    Rng fail_rng = base.Fork(3);
    size_t next_join = 0;
    for (size_t day = 0; day < days; ++day) {
      int64_t joins = spec.stochastic.join_rate > 0.0
                          ? join_rng.Poisson(spec.stochastic.join_rate)
                          : 0;
      for (int64_t k = 0; k < joins && next_join < pool.size(); ++k) {
        ChurnEvent ev;
        ev.day = day;
        ev.batch_offset = static_cast<size_t>(join_rng.UniformInt(
            0, static_cast<int64_t>(batches_per_day) - 1));
        ev.broker = pool[next_join++];
        ev.kind = ChurnKind::kJoin;
        out.timeline_.push_back(ev);
      }
      // Leaves and fails target the steady (non-pool) prefix; a repeat
      // hit on an already-departed broker is a no-op at apply time.
      int64_t leaves = spec.stochastic.leave_rate > 0.0
                           ? leave_rng.Poisson(spec.stochastic.leave_rate)
                           : 0;
      for (int64_t k = 0; k < leaves && pool_begin > 0; ++k) {
        ChurnEvent ev;
        ev.day = day;
        ev.batch_offset = static_cast<size_t>(leave_rng.UniformInt(
            0, static_cast<int64_t>(batches_per_day) - 1));
        ev.broker = static_cast<size_t>(leave_rng.UniformInt(
            0, static_cast<int64_t>(pool_begin) - 1));
        ev.kind = ChurnKind::kLeave;
        out.timeline_.push_back(ev);
      }
      int64_t fails = spec.stochastic.fail_rate > 0.0
                          ? fail_rng.Poisson(spec.stochastic.fail_rate)
                          : 0;
      for (int64_t k = 0; k < fails && pool_begin > 0; ++k) {
        ChurnEvent ev;
        ev.day = day;
        ev.batch_offset = static_cast<size_t>(fail_rng.UniformInt(
            0, static_cast<int64_t>(batches_per_day) - 1));
        ev.broker = static_cast<size_t>(fail_rng.UniformInt(
            0, static_cast<int64_t>(pool_begin) - 1));
        ev.kind = ChurnKind::kFail;
        out.timeline_.push_back(ev);
      }
    }
  }

  std::stable_sort(out.timeline_.begin(), out.timeline_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     if (a.day != b.day) return a.day < b.day;
                     if (a.batch_offset != b.batch_offset) {
                       return a.batch_offset < b.batch_offset;
                     }
                     return a.broker < b.broker;
                   });

  // Initially inactive: the whole join pool plus every scripted joiner.
  std::vector<uint8_t> inactive(n, 0);
  for (size_t b : pool) inactive[b] = 1;
  for (const ChurnEvent& ev : out.timeline_) {
    if (ev.kind == ChurnKind::kJoin) inactive[ev.broker] = 1;
  }
  for (size_t b = 0; b < n; ++b) {
    if (inactive[b]) out.initially_inactive_.push_back(b);
  }
  return out;
}

double CompiledScenario::ColdCapacity(const ChurnEvent& ev) const {
  return ev.cold_capacity > 0.0 ? ev.cold_capacity : median_capacity_;
}

Result<std::vector<std::vector<std::vector<sim::Request>>>>
CompiledScenario::ShapeSchedule(
    const std::vector<std::vector<std::vector<sim::Request>>>& schedule)
    const {
  if (!HasArrivalShaping()) return schedule;
  const ArrivalShape& ar = spec_.arrivals;

  int64_t max_id = 0;
  for (const auto& day : schedule) {
    for (const auto& batch : day) {
      for (const sim::Request& r : batch) max_id = std::max(max_id, r.id);
    }
  }
  int64_t next_id = max_id + 1;

  std::vector<std::vector<std::vector<sim::Request>>> out(schedule.size());
  for (size_t day = 0; day < schedule.size(); ++day) {
    // Flatten the day, then rescale its volume by the day-of-week factor.
    std::vector<sim::Request> flat;
    for (const auto& batch : schedule[day]) {
      flat.insert(flat.end(), batch.begin(), batch.end());
    }
    size_t target = flat.size();
    if (!ar.day_of_week.empty()) {
      target = static_cast<size_t>(std::llround(
          ar.day_of_week[day % 7] * static_cast<double>(flat.size())));
    }
    if (target < flat.size()) {
      flat.resize(target);  // truncate the tail
    } else if (target > flat.size() && !flat.empty()) {
      // Cyclic cloning with fresh ids: clones keep the template's
      // district/embedding/pickiness so the day's request mix is scaled,
      // not resampled.
      size_t original = flat.size();
      for (size_t k = 0; flat.size() < target; ++k) {
        sim::Request clone = flat[k % original];
        clone.id = next_id++;
        flat.push_back(clone);
      }
    }

    // Redistribute into the same number of batches, weighted by the
    // diurnal curve (uniform when flat).
    size_t num_batches = std::max<size_t>(1, schedule[day].size());
    std::vector<double> weights(num_batches, 1.0);
    if (!ar.diurnal.empty()) {
      for (size_t b = 0; b < num_batches; ++b) {
        double frac = (static_cast<double>(b) + 0.5) /
                      static_cast<double>(num_batches);
        size_t slot = std::min(
            ar.diurnal.size() - 1,
            static_cast<size_t>(frac * static_cast<double>(ar.diurnal.size())));
        weights[b] = ar.diurnal[slot];
      }
    } else {
      // Volume scaling only: keep the original batch proportions.
      for (size_t b = 0; b < num_batches; ++b) {
        weights[b] = static_cast<double>(schedule[day][b].size()) + 1e-9;
      }
    }
    double wsum = 0.0;
    for (double w : weights) wsum += w;

    std::vector<size_t> counts(num_batches, 0);
    size_t assigned = 0;
    for (size_t b = 0; b < num_batches; ++b) {
      counts[b] = static_cast<size_t>(std::floor(
          static_cast<double>(flat.size()) * weights[b] / wsum));
      assigned += counts[b];
    }
    // Distribute the rounding remainder front to back.
    for (size_t b = 0; assigned < flat.size(); b = (b + 1) % num_batches) {
      ++counts[b];
      ++assigned;
    }

    out[day].resize(num_batches);
    size_t cursor = 0;
    for (size_t b = 0; b < num_batches; ++b) {
      for (size_t k = 0; k < counts[b]; ++k) {
        sim::Request r = flat[cursor++];
        r.day = day;
        r.batch = b;
        out[day][b].push_back(std::move(r));
      }
    }
  }
  return out;
}

double CompiledScenario::PacingMultiplier(size_t day, size_t index,
                                          size_t total) const {
  double m = 1.0;
  const ArrivalShape& ar = spec_.arrivals;
  double frac = total == 0 ? 0.0
                           : static_cast<double>(index) /
                                 static_cast<double>(std::max<size_t>(1, total));
  if (!ar.diurnal.empty()) {
    size_t slot = std::min(
        ar.diurnal.size() - 1,
        static_cast<size_t>(frac * static_cast<double>(ar.diurnal.size())));
    m *= ar.diurnal[slot] / diurnal_mean_;
  }
  if (!ar.day_of_week.empty()) m *= ar.day_of_week[day % 7];
  for (const FlashWindow& fw : ar.flash) {
    if (fw.period > 0 && day % fw.period != fw.phase) continue;
    if (frac >= fw.start_fraction &&
        frac < fw.start_fraction + fw.length_fraction) {
      m *= fw.multiplier;
    }
  }
  return m;
}

Result<matching::TwoSidedParams> CompiledScenario::DeriveTwoSided(
    const std::vector<sim::Request>& requests, size_t num_brokers) const {
  if (!spec_.two_sided.enabled) {
    return Status::FailedPrecondition("two-sided mode is not enabled");
  }
  const TwoSidedSpec& ts = spec_.two_sided;
  matching::TwoSidedParams params;
  params.costs.resize(num_brokers);
  for (size_t b = 0; b < num_brokers; ++b) {
    params.costs[b] =
        kMinCost + (kMaxCost - kMinCost) * HashUnit(spec_.seed, 0xc057, b);
  }
  params.limits.resize(requests.size());
  params.budgets.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    uint64_t id = static_cast<uint64_t>(requests[i].id);
    int64_t limit =
        1 + static_cast<int64_t>(HashUnit(spec_.seed, 0x11417, id) *
                                 static_cast<double>(ts.max_limit));
    limit = std::min(limit, ts.max_limit);
    params.limits[i] = limit;
    // tightness 0: budget covers `limit` brokers at maximum cost (the
    // knapsack never binds); tightness → 1: only the cheapest single
    // engagement fits.
    double slack = static_cast<double>(limit) * kMaxCost;
    params.budgets[i] = kMinCost + (slack - kMinCost) * (1.0 - ts.tightness);
  }
  return params;
}

}  // namespace lacb::scenario

// CompiledScenario: a ScenarioSpec bound to a concrete dataset.
//
// Compilation is where every stochastic element of a spec is resolved,
// deterministically, from the spec seed alone:
//
//   * stochastic churn rates expand into a concrete, sorted event
//     timeline (Poisson counts per day, uniform batch offsets, targets
//     drawn from the steady roster / the reserved join pool);
//   * scripted events are validated against the roster and horizon and
//     merged into the same timeline;
//   * the initially-inactive set (join pool + scripted joiners) is
//     fixed, so a joining broker occupies a roster slot that existed —
//     dormant — from day zero (arrays never resize mid-run).
//
// The compiled object is immutable and shareable: the offline runner,
// the serving layer (ServeOptions::scenario), the load generators, and
// the cluster driver all read the same instance.

#ifndef LACB_SCENARIO_ENGINE_H_
#define LACB_SCENARIO_ENGINE_H_

#include <cstdint>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/matching/two_sided.h"
#include "lacb/scenario/spec.h"
#include "lacb/sim/dataset.h"
#include "lacb/sim/request.h"

namespace lacb::scenario {

/// \brief Workload value shown to policies for churned-away brokers: far
/// beyond any capacity estimate, so capacity-aware policies treat the
/// broker as saturated and steer around it.
inline constexpr double kInactiveWorkload = 1e18;

/// \brief A spec resolved against a dataset configuration.
class CompiledScenario {
 public:
  /// \brief Validates `spec` and expands all stochastic elements.
  static Result<CompiledScenario> Compile(const ScenarioSpec& spec,
                                          const sim::DatasetConfig& config);

  const ScenarioSpec& spec() const { return spec_; }

  /// \brief All churn events — scripted and expanded — sorted by
  /// (day, batch_offset, broker).
  const std::vector<ChurnEvent>& timeline() const { return timeline_; }

  /// \brief Roster slots that start the run inactive (ascending).
  const std::vector<size_t>& initially_inactive() const {
    return initially_inactive_;
  }

  bool HasChurn() const {
    return !timeline_.empty() || !initially_inactive_.empty();
  }
  bool HasArrivalShaping() const {
    return !spec_.arrivals.day_of_week.empty() ||
           !spec_.arrivals.diurnal.empty();
  }

  /// \brief Cold-start capacity prior of a join event: the event's
  /// explicit value, or the dataset's median capacity candidate.
  double ColdCapacity(const ChurnEvent& ev) const;

  /// \brief Reshapes a generated request schedule: day-of-week scales
  /// each day's volume (tail truncation / cyclic cloning with fresh
  /// ids), diurnal reweights batch sizes within the day. Identity when
  /// HasArrivalShaping() is false.
  Result<std::vector<std::vector<std::vector<sim::Request>>>> ShapeSchedule(
      const std::vector<std::vector<std::vector<sim::Request>>>& schedule)
      const;

  /// \brief Instantaneous pacing-rate multiplier for open-loop load
  /// generation at position `index` of `total` within `day`: the
  /// mean-normalized diurnal weight times every flash window active at
  /// that point of that day. Returns 1.0 with no shaping.
  double PacingMultiplier(size_t day, size_t index, size_t total) const;

  /// \brief Pareto tail exponent for inter-arrival gaps (0 = exponential).
  double ParetoShape() const { return spec_.arrivals.pareto_shape; }

  /// \brief Derives the two-sided parameters of one batch: per-broker
  /// costs and per-request limits/budgets hashed deterministically from
  /// the spec seed (request identity, not batch position, so re-driven
  /// batches see identical constraints).
  Result<matching::TwoSidedParams> DeriveTwoSided(
      const std::vector<sim::Request>& requests, size_t num_brokers) const;

 private:
  ScenarioSpec spec_;
  std::vector<ChurnEvent> timeline_;
  std::vector<size_t> initially_inactive_;
  double median_capacity_ = 0.0;
  double diurnal_mean_ = 1.0;
};

}  // namespace lacb::scenario

#endif  // LACB_SCENARIO_ENGINE_H_

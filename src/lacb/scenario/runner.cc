#include "lacb/scenario/runner.h"

#include <algorithm>
#include <cmath>

#include "lacb/common/stopwatch.h"
#include "lacb/matching/assignment.h"
#include "lacb/matching/two_sided.h"
#include "lacb/policy/lacb_policy.h"

namespace lacb::scenario {
namespace {

// Applies one churn event; returns true when it changed anything.
Result<bool> ApplyEvent(const CompiledScenario& scenario, const ChurnEvent& ev,
                        sim::Platform* platform,
                        policy::AssignmentPolicy* policy) {
  switch (ev.kind) {
    case ChurnKind::kJoin: {
      if (platform->BrokerActive(ev.broker)) return false;
      LACB_RETURN_NOT_OK(platform->SetBrokerActive(ev.broker, true));
      // Cold-start prior: a capacity-estimating policy starts the joiner
      // at the scenario's prior instead of an estimate trained on zero
      // observations. From tomorrow's BeginDay the bandit re-estimates.
      if (auto* lacb = dynamic_cast<policy::LacbPolicy*>(policy);
          lacb != nullptr && !lacb->capacities().empty()) {
        LACB_RETURN_NOT_OK(
            lacb->OverrideCapacity(ev.broker, scenario.ColdCapacity(ev)));
      }
      return true;
    }
    case ChurnKind::kLeave: {
      if (!platform->BrokerActive(ev.broker)) return false;
      LACB_RETURN_NOT_OK(platform->SetBrokerActive(ev.broker, false));
      return true;
    }
    case ChurnKind::kFail: {
      if (!platform->BrokerActive(ev.broker)) return false;
      LACB_RETURN_NOT_OK(platform->SetBrokerActive(ev.broker, false));
      LACB_RETURN_NOT_OK(platform->RetireBrokerDay(ev.broker));
      return true;
    }
  }
  return Status::InvalidArgument("unknown churn kind");
}

// Primary engagement of a two-sided request: its maximum-utility kept
// edge (ties broken by broker index, matching the truncation order).
int64_t PrimaryEdge(const la::Matrix& utility, size_t row,
                    const std::vector<int64_t>& brokers) {
  int64_t best = matching::kUnmatched;
  double best_u = 0.0;
  for (int64_t b : brokers) {
    double u = utility(row, static_cast<size_t>(b));
    if (best == matching::kUnmatched || u > best_u) {
      best = b;
      best_u = u;
    }
  }
  return best;
}

}  // namespace

Result<ScenarioRunResult> RunPolicyScenario(const sim::DatasetConfig& config,
                                            policy::AssignmentPolicy* policy,
                                            const CompiledScenario& scenario) {
  if (policy == nullptr) {
    return Status::InvalidArgument("RunPolicyScenario requires a policy");
  }
  const ScenarioSpec& spec = scenario.spec();
  if (spec.two_sided.enabled && config.appeal_rate > 0.0) {
    return Status::InvalidArgument(
        "two-sided mode requires appeal_rate == 0 (engagement edges cannot "
        "re-queue)");
  }

  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(config));
  if (scenario.HasArrivalShaping()) {
    LACB_ASSIGN_OR_RETURN(auto shaped,
                          scenario.ShapeSchedule(platform.all_requests()));
    LACB_RETURN_NOT_OK(platform.SetRequestSchedule(std::move(shaped)));
  }
  for (size_t b : scenario.initially_inactive()) {
    LACB_RETURN_NOT_OK(platform.SetBrokerActive(b, false));
  }

  ScenarioRunResult result;
  core::PolicyRunResult& run = result.run;
  run.policy = policy->name();
  run.dataset = config.name;
  const size_t n = platform.num_brokers();
  run.broker_utility.assign(n, 0.0);
  run.broker_requests.assign(n, 0.0);
  run.broker_peak_workload.assign(n, 0.0);
  run.broker_mean_workload.assign(n, 0.0);

  LACB_RETURN_NOT_OK(policy->Initialize(platform));

  const std::vector<ChurnEvent>& timeline = scenario.timeline();
  size_t cursor = 0;
  std::vector<sim::Request> pending_appeals;
  std::vector<double> latencies;

  const size_t days = platform.num_days();
  for (size_t day = 0; day < days; ++day) {
    LACB_RETURN_NOT_OK(platform.StartDayExternal(day));
    double policy_time = 0.0;
    {
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->BeginDay(platform, day));
      policy_time += sw.ElapsedSeconds();
    }

    // Today's batches mirror StartDay: the schedule, with the previous
    // day's overflow appeals appended to the first batch.
    std::vector<std::vector<sim::Request>> batches =
        platform.all_requests()[day];
    // Fresh arrivals only: a carried appeal was already counted submitted
    // on its original day (re-counting it would break the ledger).
    for (const auto& batch : batches) result.ledger.submitted += batch.size();
    if (!pending_appeals.empty() && !batches.empty()) {
      batches.front().insert(batches.front().end(), pending_appeals.begin(),
                             pending_appeals.end());
      pending_appeals.clear();
    }

    for (size_t batch = 0; batch < batches.size(); ++batch) {
      // Churn due at this boundary (batch_offset 0 = day open).
      while (cursor < timeline.size() && timeline[cursor].day == day &&
             timeline[cursor].batch_offset <= batch) {
        LACB_ASSIGN_OR_RETURN(
            bool applied,
            ApplyEvent(scenario, timeline[cursor], &platform, policy));
        if (applied) ++result.churn_applied;
        ++cursor;
      }

      const std::vector<sim::Request>& requests = batches[batch];
      la::Matrix utility =
          platform.utility_model().UtilityMatrix(requests, platform.brokers());

      std::vector<int64_t> assignment;
      std::vector<sim::Request> commit_requests;
      const std::vector<sim::Request>* commit_reqs = &requests;
      if (spec.two_sided.enabled) {
        LACB_ASSIGN_OR_RETURN(matching::TwoSidedParams params,
                              scenario.DeriveTwoSided(requests, n));
        // Inactive brokers are ineligible outright: price them out.
        if (platform.AnyBrokerInactive()) {
          for (size_t b = 0; b < n; ++b) {
            if (!platform.BrokerActive(b)) params.costs[b] = 1e30;
          }
        }
        Stopwatch sw;
        matching::TwoSidedAssignment solved;
        if (spec.two_sided.backend == TwoSidedBackend::kExact) {
          LACB_ASSIGN_OR_RETURN(solved, matching::TwoSidedExact(utility, params));
        } else {
          LACB_ASSIGN_OR_RETURN(solved,
                                matching::TwoSidedApprox(utility, params));
        }
        double elapsed = sw.ElapsedSeconds();
        policy_time += elapsed;
        latencies.push_back(elapsed);
        if (!matching::CheckTwoSidedFeasible(utility, params, solved).ok()) {
          ++result.feasibility_violations;
        }
        // Primary edge per request plus duplicated rows for the extra
        // engagements, all committed in one batch.
        assignment.assign(requests.size(), matching::kUnmatched);
        commit_requests = requests;
        for (size_t i = 0; i < requests.size(); ++i) {
          const std::vector<int64_t>& edges = solved.brokers_of_row[i];
          if (edges.empty()) continue;
          int64_t primary = PrimaryEdge(utility, i, edges);
          assignment[i] = primary;
          for (int64_t b : edges) {
            if (b == primary) continue;
            commit_requests.push_back(requests[i]);
            assignment.push_back(b);
            ++result.ledger.extra_assigned;
          }
        }
        commit_reqs = &commit_requests;
      } else {
        policy::BatchInput input;
        input.requests = &requests;
        input.utility = &utility;
        input.day = day;
        input.batch = batch;
        // Steering: the policy sees inactive brokers as saturated. The
        // no-churn path passes the platform's vector through untouched
        // (the bit-identity gate).
        std::vector<double> steered;
        if (platform.AnyBrokerInactive()) {
          steered = platform.workloads_today();
          for (size_t b = 0; b < n; ++b) {
            if (!platform.BrokerActive(b)) steered[b] = kInactiveWorkload;
          }
          input.workloads = &steered;
        } else {
          input.workloads = &platform.workloads_today();
        }
        Stopwatch sw;
        LACB_ASSIGN_OR_RETURN(assignment, policy->AssignBatch(input));
        double elapsed = sw.ElapsedSeconds();
        policy_time += elapsed;
        latencies.push_back(elapsed);
        if (assignment.size() != requests.size()) {
          return Status::Internal("policy returned a misshapen assignment");
        }
        // Sanitize: an edge into a churned-away broker becomes
        // terminally unmatched.
        if (platform.AnyBrokerInactive()) {
          for (int64_t& a : assignment) {
            if (a != matching::kUnmatched &&
                !platform.BrokerActive(static_cast<size_t>(a))) {
              a = matching::kUnmatched;
              ++result.ledger.churn_rejected;
            }
          }
        }
      }

      for (size_t i = 0; i < requests.size(); ++i) {
        if (assignment[i] == matching::kUnmatched) ++result.ledger.unmatched;
      }
      LACB_ASSIGN_OR_RETURN(
          sim::ExternalCommitOutcome outcome,
          platform.CommitExternalBatch(*commit_reqs, assignment));
      result.ledger.assigned +=
          outcome.accepted.size() -
          (commit_reqs->size() - requests.size());  // primaries only
      for (const sim::Request& r : outcome.appealed) {
        if (batch + 1 < batches.size()) {
          batches[batch + 1].push_back(r);
        } else {
          pending_appeals.push_back(r);
        }
      }
    }

    // Day-tail churn (batch_offset at/after the last batch) still lands
    // inside the open day so fail-retirement can void today's edges.
    while (cursor < timeline.size() && timeline[cursor].day == day) {
      LACB_ASSIGN_OR_RETURN(
          bool applied,
          ApplyEvent(scenario, timeline[cursor], &platform, policy));
      if (applied) ++result.churn_applied;
      ++cursor;
    }

    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, platform.EndDay());
    {
      Stopwatch sw;
      LACB_RETURN_NOT_OK(policy->EndDay(outcome));
      policy_time += sw.ElapsedSeconds();
    }

    run.daily_utility.push_back(outcome.realized_utility);
    run.daily_policy_seconds.push_back(policy_time);
    run.total_utility += outcome.realized_utility;
    run.policy_seconds += policy_time;
    run.total_appeals += outcome.appeals;
    for (size_t b = 0; b < n; ++b) {
      run.broker_utility[b] += outcome.per_broker_utility[b];
      double w = outcome.per_broker_workload[b];
      run.broker_requests[b] += w;
      run.broker_peak_workload[b] = std::max(run.broker_peak_workload[b], w);
      double knee = platform.brokers()[b].latent.true_capacity;
      if (w > knee) {
        ++run.overloaded_broker_days;
        run.overload_excess += w - knee;
      }
    }
  }
  double d = static_cast<double>(std::max<size_t>(1, days));
  for (size_t b = 0; b < n; ++b) {
    run.broker_mean_workload[b] = run.broker_requests[b] / d;
  }
  result.ledger.dropped_appeals = pending_appeals.size();

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    size_t idx = static_cast<size_t>(
        std::ceil(0.99 * static_cast<double>(latencies.size())));
    run.p99_batch_latency = latencies[std::min(idx, latencies.size() - 1)];
  }
  return result;
}

}  // namespace lacb::scenario

// RunPolicyScenario: the offline engine loop under a compiled scenario.
//
// Mirrors core::RunPolicy through the platform's *external-day* protocol
// (StartDayExternal + CommitExternalBatch), which draws the identical RNG
// stream for identical batch compositions — so with an empty scenario the
// result is bit-identical to core::RunPolicy (gated in scenario_test).
// On top of that loop it applies the three scenario stressors:
//
//   * churn — the compiled timeline is applied at batch boundaries:
//     joins activate dormant roster slots (cold capacity prior installed
//     into LacbPolicy when present), leaves deactivate, fails also void
//     the broker's in-flight day. Inactive brokers are steered away from
//     (workload pinned huge in the policy's view) and sanitized out of
//     returned assignments (counted as churn_rejected, terminally
//     unmatched — the conservation identity is preserved).
//   * arrival shaping — the schedule is reshaped before the run.
//   * two-sided mode — the per-batch assignment comes from the
//     matching::TwoSided* backends instead of the policy's AssignBatch
//     (budgets/limits derived per request from the spec seed); every
//     batch is re-checked by CheckTwoSidedFeasible. Requires
//     appeal_rate == 0 (engagement edges cannot re-queue).

#ifndef LACB_SCENARIO_RUNNER_H_
#define LACB_SCENARIO_RUNNER_H_

#include <cstddef>

#include "lacb/core/engine.h"
#include "lacb/policy/assignment_policy.h"
#include "lacb/scenario/engine.h"
#include "lacb/sim/dataset.h"

namespace lacb::scenario {

/// \brief Request-conservation ledger of one scenario run:
/// submitted == assigned + unmatched + dropped_appeals.
struct ScenarioLedger {
  /// Scheduled arrivals after shaping (appeal re-queues not re-counted).
  size_t submitted = 0;
  /// Requests with a surviving committed edge (two-sided: ≥ 1 edge).
  size_t assigned = 0;
  /// Terminally unmatched requests (includes churn_rejected).
  size_t unmatched = 0;
  /// Appeals still pending when the horizon ended.
  size_t dropped_appeals = 0;
  /// Assignments voided because the target broker had churned away
  /// (a subset of `unmatched`).
  size_t churn_rejected = 0;
  /// Two-sided engagement edges beyond each request's primary one
  /// (value-bearing, but not part of the request count identity).
  size_t extra_assigned = 0;

  bool ConservationHolds() const {
    return submitted == assigned + unmatched + dropped_appeals;
  }
};

/// \brief Everything measured over one scenario run.
struct ScenarioRunResult {
  core::PolicyRunResult run;
  ScenarioLedger ledger;
  /// Churn events actually applied (repeat hits on departed brokers and
  /// joins of already-active brokers are no-ops and not counted).
  size_t churn_applied = 0;
  /// Two-sided batches whose solution failed CheckTwoSidedFeasible
  /// (always 0; re-checked per batch and exported by bench_scenario).
  size_t feasibility_violations = 0;
};

/// \brief Runs `policy` over `config` under `scenario`.
Result<ScenarioRunResult> RunPolicyScenario(const sim::DatasetConfig& config,
                                            policy::AssignmentPolicy* policy,
                                            const CompiledScenario& scenario);

}  // namespace lacb::scenario

#endif  // LACB_SCENARIO_RUNNER_H_

#include "lacb/scenario/spec.h"

#include <cmath>

namespace lacb::scenario {
namespace {

Result<double> GetNumber(const obs::JsonValue& obj, const char* key,
                         double fallback) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(std::string("scenario field '") + key +
                                   "' must be a number");
  }
  return v->as_number();
}

Result<bool> GetBool(const obs::JsonValue& obj, const char* key,
                     bool fallback) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(std::string("scenario field '") + key +
                                   "' must be a bool");
  }
  return v->as_bool();
}

Result<std::vector<double>> GetNumberArray(const obs::JsonValue& obj,
                                           const char* key) {
  std::vector<double> out;
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return out;
  if (!v->is_array()) {
    return Status::InvalidArgument(std::string("scenario field '") + key +
                                   "' must be an array");
  }
  for (const obs::JsonValue& item : v->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument(std::string("scenario field '") + key +
                                     "' must hold numbers");
    }
    out.push_back(item.as_number());
  }
  return out;
}

obs::JsonValue NumberArray(const std::vector<double>& v) {
  obs::JsonValue arr = obs::JsonValue::Array();
  for (double x : v) arr.Append(x);
  return arr;
}

}  // namespace

const char* ChurnKindName(ChurnKind k) {
  switch (k) {
    case ChurnKind::kJoin:
      return "join";
    case ChurnKind::kLeave:
      return "leave";
    case ChurnKind::kFail:
      return "fail";
  }
  return "unknown";
}

Status ScenarioSpec::Validate() const {
  if (version != 1) {
    return Status::InvalidArgument("unsupported scenario spec version");
  }
  for (const ChurnEvent& ev : churn) {
    if (ev.cold_capacity < 0.0) {
      return Status::InvalidArgument("churn cold_capacity must be >= 0");
    }
    if (ev.kind != ChurnKind::kJoin && ev.cold_capacity != 0.0) {
      return Status::InvalidArgument(
          "cold_capacity only applies to join events");
    }
  }
  const StochasticChurn& st = stochastic;
  if (st.join_rate < 0.0 || st.leave_rate < 0.0 || st.fail_rate < 0.0) {
    return Status::InvalidArgument("stochastic churn rates must be >= 0");
  }
  if (st.join_pool_fraction < 0.0 || st.join_pool_fraction >= 1.0) {
    return Status::InvalidArgument("join_pool_fraction must be in [0, 1)");
  }
  if (st.join_rate > 0.0 && st.join_pool_fraction == 0.0) {
    return Status::InvalidArgument(
        "stochastic joins require a join pool (join_pool_fraction > 0)");
  }
  const ArrivalShape& ar = arrivals;
  if (!ar.day_of_week.empty() && ar.day_of_week.size() != 7) {
    return Status::InvalidArgument("day_of_week must have exactly 7 entries");
  }
  for (double m : ar.day_of_week) {
    if (!(m > 0.0) || !std::isfinite(m)) {
      return Status::InvalidArgument("day_of_week multipliers must be > 0");
    }
  }
  for (double w : ar.diurnal) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("diurnal weights must be > 0");
    }
  }
  for (const FlashWindow& fw : ar.flash) {
    if (!(fw.length_fraction > 0.0)) {
      return Status::InvalidArgument(
          "flash window length_fraction must be > 0 (zero-length windows "
          "are rejected, not ignored)");
    }
    if (fw.start_fraction < 0.0 || fw.start_fraction >= 1.0) {
      return Status::InvalidArgument(
          "flash window start_fraction must be in [0, 1)");
    }
    if (fw.start_fraction + fw.length_fraction > 1.0) {
      return Status::InvalidArgument(
          "flash window must not extend past the end of the day");
    }
    if (!(fw.multiplier > 0.0)) {
      return Status::InvalidArgument("flash window multiplier must be > 0");
    }
    if (fw.period > 0 && fw.phase >= fw.period) {
      return Status::InvalidArgument("flash window phase must be < period");
    }
  }
  if (ar.pareto_shape != 0.0 && !(ar.pareto_shape > 1.0)) {
    return Status::InvalidArgument(
        "pareto_shape must be > 1 (finite mean) or 0 to disable");
  }
  if (two_sided.enabled) {
    if (two_sided.tightness < 0.0 || two_sided.tightness >= 1.0) {
      return Status::InvalidArgument("two_sided tightness must be in [0, 1)");
    }
    if (two_sided.max_limit < 1) {
      return Status::InvalidArgument("two_sided max_limit must be >= 1");
    }
  }
  return Status::OK();
}

obs::JsonValue ScenarioSpec::ToJson() const {
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("version", version);
  root.Set("seed", seed);

  obs::JsonValue churn_arr = obs::JsonValue::Array();
  for (const ChurnEvent& ev : churn) {
    obs::JsonValue e = obs::JsonValue::Object();
    e.Set("day", static_cast<uint64_t>(ev.day));
    e.Set("batch_offset", static_cast<uint64_t>(ev.batch_offset));
    e.Set("broker", static_cast<uint64_t>(ev.broker));
    e.Set("kind", ChurnKindName(ev.kind));
    if (ev.kind == ChurnKind::kJoin) e.Set("cold_capacity", ev.cold_capacity);
    churn_arr.Append(std::move(e));
  }
  root.Set("churn", std::move(churn_arr));

  obs::JsonValue st = obs::JsonValue::Object();
  st.Set("join_rate", stochastic.join_rate);
  st.Set("leave_rate", stochastic.leave_rate);
  st.Set("fail_rate", stochastic.fail_rate);
  st.Set("join_pool_fraction", stochastic.join_pool_fraction);
  root.Set("stochastic", std::move(st));

  obs::JsonValue ar = obs::JsonValue::Object();
  ar.Set("day_of_week", NumberArray(arrivals.day_of_week));
  ar.Set("diurnal", NumberArray(arrivals.diurnal));
  obs::JsonValue flash = obs::JsonValue::Array();
  for (const FlashWindow& fw : arrivals.flash) {
    obs::JsonValue f = obs::JsonValue::Object();
    f.Set("start_fraction", fw.start_fraction);
    f.Set("length_fraction", fw.length_fraction);
    f.Set("multiplier", fw.multiplier);
    f.Set("period", static_cast<uint64_t>(fw.period));
    f.Set("phase", static_cast<uint64_t>(fw.phase));
    flash.Append(std::move(f));
  }
  ar.Set("flash", std::move(flash));
  ar.Set("pareto_shape", arrivals.pareto_shape);
  root.Set("arrivals", std::move(ar));

  obs::JsonValue ts = obs::JsonValue::Object();
  ts.Set("enabled", two_sided.enabled);
  ts.Set("tightness", two_sided.tightness);
  ts.Set("max_limit", two_sided.max_limit);
  ts.Set("backend",
         two_sided.backend == TwoSidedBackend::kExact ? "exact" : "approx");
  root.Set("two_sided", std::move(ts));
  return root;
}

Result<ScenarioSpec> ScenarioSpec::FromJson(const obs::JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("scenario spec must be a JSON object");
  }
  ScenarioSpec spec;
  LACB_ASSIGN_OR_RETURN(double version, GetNumber(v, "version", 1.0));
  spec.version = static_cast<int64_t>(version);
  LACB_ASSIGN_OR_RETURN(double seed, GetNumber(v, "seed", 1.0));
  spec.seed = static_cast<uint64_t>(seed);

  if (const obs::JsonValue* churn = v.Find("churn"); churn != nullptr) {
    if (!churn->is_array()) {
      return Status::InvalidArgument("scenario 'churn' must be an array");
    }
    for (const obs::JsonValue& e : churn->items()) {
      if (!e.is_object()) {
        return Status::InvalidArgument("churn events must be objects");
      }
      ChurnEvent ev;
      LACB_ASSIGN_OR_RETURN(double day, GetNumber(e, "day", 0.0));
      ev.day = static_cast<size_t>(day);
      LACB_ASSIGN_OR_RETURN(double off, GetNumber(e, "batch_offset", 0.0));
      ev.batch_offset = static_cast<size_t>(off);
      LACB_ASSIGN_OR_RETURN(double broker, GetNumber(e, "broker", 0.0));
      ev.broker = static_cast<size_t>(broker);
      LACB_ASSIGN_OR_RETURN(double cold, GetNumber(e, "cold_capacity", 0.0));
      ev.cold_capacity = cold;
      const obs::JsonValue* kind = e.Find("kind");
      if (kind == nullptr || !kind->is_string()) {
        return Status::InvalidArgument("churn event needs a string 'kind'");
      }
      const std::string& k = kind->as_string();
      if (k == "join") {
        ev.kind = ChurnKind::kJoin;
      } else if (k == "leave") {
        ev.kind = ChurnKind::kLeave;
      } else if (k == "fail") {
        ev.kind = ChurnKind::kFail;
      } else {
        return Status::InvalidArgument("unknown churn kind: " + k);
      }
      spec.churn.push_back(ev);
    }
  }

  if (const obs::JsonValue* st = v.Find("stochastic"); st != nullptr) {
    if (!st->is_object()) {
      return Status::InvalidArgument("scenario 'stochastic' must be an object");
    }
    LACB_ASSIGN_OR_RETURN(spec.stochastic.join_rate,
                          GetNumber(*st, "join_rate", 0.0));
    LACB_ASSIGN_OR_RETURN(spec.stochastic.leave_rate,
                          GetNumber(*st, "leave_rate", 0.0));
    LACB_ASSIGN_OR_RETURN(spec.stochastic.fail_rate,
                          GetNumber(*st, "fail_rate", 0.0));
    LACB_ASSIGN_OR_RETURN(spec.stochastic.join_pool_fraction,
                          GetNumber(*st, "join_pool_fraction", 0.0));
  }

  if (const obs::JsonValue* ar = v.Find("arrivals"); ar != nullptr) {
    if (!ar->is_object()) {
      return Status::InvalidArgument("scenario 'arrivals' must be an object");
    }
    LACB_ASSIGN_OR_RETURN(spec.arrivals.day_of_week,
                          GetNumberArray(*ar, "day_of_week"));
    LACB_ASSIGN_OR_RETURN(spec.arrivals.diurnal,
                          GetNumberArray(*ar, "diurnal"));
    LACB_ASSIGN_OR_RETURN(spec.arrivals.pareto_shape,
                          GetNumber(*ar, "pareto_shape", 0.0));
    if (const obs::JsonValue* flash = ar->Find("flash"); flash != nullptr) {
      if (!flash->is_array()) {
        return Status::InvalidArgument("arrivals 'flash' must be an array");
      }
      for (const obs::JsonValue& f : flash->items()) {
        if (!f.is_object()) {
          return Status::InvalidArgument("flash windows must be objects");
        }
        FlashWindow fw;
        LACB_ASSIGN_OR_RETURN(fw.start_fraction,
                              GetNumber(f, "start_fraction", 0.0));
        LACB_ASSIGN_OR_RETURN(fw.length_fraction,
                              GetNumber(f, "length_fraction", 0.0));
        LACB_ASSIGN_OR_RETURN(fw.multiplier, GetNumber(f, "multiplier", 1.0));
        LACB_ASSIGN_OR_RETURN(double period, GetNumber(f, "period", 0.0));
        fw.period = static_cast<size_t>(period);
        LACB_ASSIGN_OR_RETURN(double phase, GetNumber(f, "phase", 0.0));
        fw.phase = static_cast<size_t>(phase);
        spec.arrivals.flash.push_back(fw);
      }
    }
  }

  if (const obs::JsonValue* ts = v.Find("two_sided"); ts != nullptr) {
    if (!ts->is_object()) {
      return Status::InvalidArgument("scenario 'two_sided' must be an object");
    }
    LACB_ASSIGN_OR_RETURN(spec.two_sided.enabled,
                          GetBool(*ts, "enabled", false));
    LACB_ASSIGN_OR_RETURN(spec.two_sided.tightness,
                          GetNumber(*ts, "tightness", 0.0));
    LACB_ASSIGN_OR_RETURN(double max_limit, GetNumber(*ts, "max_limit", 1.0));
    spec.two_sided.max_limit = static_cast<int64_t>(max_limit);
    if (const obs::JsonValue* backend = ts->Find("backend");
        backend != nullptr) {
      if (!backend->is_string()) {
        return Status::InvalidArgument("two_sided 'backend' must be a string");
      }
      const std::string& b = backend->as_string();
      if (b == "exact") {
        spec.two_sided.backend = TwoSidedBackend::kExact;
      } else if (b == "approx") {
        spec.two_sided.backend = TwoSidedBackend::kApprox;
      } else {
        return Status::InvalidArgument("unknown two_sided backend: " + b);
      }
    }
  }

  LACB_RETURN_NOT_OK(spec.Validate());
  return spec;
}

std::string ScenarioSpec::Serialize() const { return ToJson().ToString(2); }

Result<ScenarioSpec> ScenarioSpec::Parse(const std::string& text) {
  LACB_ASSIGN_OR_RETURN(obs::JsonValue v, obs::JsonValue::Parse(text));
  return FromJson(v);
}

}  // namespace lacb::scenario

// ScenarioSpec: the versioned, validated description of one dynamic
// workload scenario (docs/scenarios.md).
//
// A spec composes three orthogonal stressors over a base dataset:
//
//   * broker churn   — scripted events plus seed-driven stochastic rates;
//     joins activate initially-dormant roster slots with a cold-start
//     capacity prior, leaves stop new work cleanly, fails additionally
//     void the broker's in-flight day (value destroyed, conservation
//     intact).
//   * arrival shaping — day-of-week seasonality and intra-day diurnal
//     curves reshape the request schedule; flash-crowd windows and
//     Pareto inter-arrival gaps shape the *pacing* of open-loop load
//     generation (generalizing serve::LoadMode::kFlashCrowd).
//   * two-sided mode — requests carry budgets and matching limits that
//     the matching layer enforces (matching::TwoSidedExact/Approx).
//
// Specs serialize to versioned JSON (obs::JsonValue) so benches, tests,
// and the cluster driver share one format. A default-constructed spec is
// empty: every consumer treats it as "scenario off" and stays
// byte-identical to the pre-scenario path.

#ifndef LACB_SCENARIO_SPEC_H_
#define LACB_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lacb/common/result.h"
#include "lacb/obs/json.h"

namespace lacb::scenario {

/// \brief Kinds of broker churn.
enum class ChurnKind : uint8_t {
  /// An initially-inactive roster slot comes online (cold capacity prior).
  kJoin = 0,
  /// The broker stops accepting new work; today's committed edges stand.
  kLeave = 1,
  /// Hard mid-day failure: like kLeave, plus every edge committed to the
  /// broker today is voided (Platform::RetireBrokerDay).
  kFail = 2,
};

const char* ChurnKindName(ChurnKind k);

/// \brief One scripted churn event.
struct ChurnEvent {
  size_t day = 0;
  /// Number of batch commits into the day after which the event fires;
  /// 0 = at day open.
  size_t batch_offset = 0;
  size_t broker = 0;
  ChurnKind kind = ChurnKind::kLeave;
  /// Cold-start capacity prior for kJoin (0 = median capacity candidate
  /// of the dataset config). Ignored for leave/fail.
  double cold_capacity = 0.0;
};

/// \brief Seed-driven churn rates, expanded deterministically at compile
/// time (CompiledScenario) into concrete events.
struct StochasticChurn {
  /// Expected events per day of each kind (Poisson).
  double join_rate = 0.0;
  double leave_rate = 0.0;
  double fail_rate = 0.0;
  /// Fraction of the roster held initially inactive as the join pool.
  /// Required > 0 when join_rate > 0.
  double join_pool_fraction = 0.0;

  bool Empty() const {
    return join_rate == 0.0 && leave_rate == 0.0 && fail_rate == 0.0 &&
           join_pool_fraction == 0.0;
  }
};

/// \brief One reusable flash-crowd window: within matching days, the
/// pacing rate is multiplied inside [start, start+length) of the day.
struct FlashWindow {
  double start_fraction = 0.0;
  double length_fraction = 0.0;
  double multiplier = 1.0;
  /// Fire on days where day % period == phase; period 0 = every day.
  size_t period = 0;
  size_t phase = 0;
};

/// \brief Arrival-curve shaping.
struct ArrivalShape {
  /// Day-of-week volume multipliers (empty = flat, else exactly 7,
  /// indexed by day % 7). Scales each day's scheduled request count.
  std::vector<double> day_of_week;
  /// Intra-day relative weights (empty = flat). Reweights batch sizes
  /// within each day offline, and the instantaneous pacing rate online.
  std::vector<double> diurnal;
  /// Flash-crowd pacing windows (open-loop load generation only).
  std::vector<FlashWindow> flash;
  /// Pareto tail exponent for inter-arrival gaps in open-loop pacing;
  /// 0 = exponential gaps. Must be > 1 when set (finite mean).
  double pareto_shape = 0.0;

  bool Empty() const {
    return day_of_week.empty() && diurnal.empty() && flash.empty() &&
           pareto_shape == 0.0;
  }
};

/// \brief Matching backend for two-sided mode.
enum class TwoSidedBackend : uint8_t { kExact = 0, kApprox = 1 };

/// \brief Two-sided-capacity workload mode (docs/scenarios.md).
struct TwoSidedSpec {
  bool enabled = false;
  /// Budget tightness in [0, 1): 0 = slack (budgets cover the full
  /// matching limit at maximum broker cost), →1 = only the cheapest
  /// single engagement fits.
  double tightness = 0.0;
  /// Matching limits are drawn per request in [1, max_limit].
  int64_t max_limit = 1;
  TwoSidedBackend backend = TwoSidedBackend::kExact;
};

/// \brief The full scenario description.
struct ScenarioSpec {
  int64_t version = 1;
  /// Master seed for every stochastic element of the scenario (churn
  /// expansion, arrival clones, two-sided parameter draws).
  uint64_t seed = 1;

  std::vector<ChurnEvent> churn;
  StochasticChurn stochastic;
  ArrivalShape arrivals;
  TwoSidedSpec two_sided;

  /// \brief True when the spec changes nothing (the byte-identical gate).
  bool Empty() const {
    return churn.empty() && stochastic.Empty() && arrivals.Empty() &&
           !two_sided.enabled;
  }

  /// \brief Structural validation independent of any dataset.
  Status Validate() const;

  obs::JsonValue ToJson() const;
  static Result<ScenarioSpec> FromJson(const obs::JsonValue& v);

  /// \brief JSON text round-trip (Parse validates).
  std::string Serialize() const;
  static Result<ScenarioSpec> Parse(const std::string& text);
};

}  // namespace lacb::scenario

#endif  // LACB_SCENARIO_SPEC_H_

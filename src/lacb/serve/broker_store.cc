#include "lacb/serve/broker_store.h"

#include <algorithm>

namespace lacb::serve {

ShardedBrokerStore::ShardedBrokerStore(size_t num_brokers, size_t num_stripes)
    : num_stripes_(std::clamp<size_t>(num_stripes, 1,
                                      std::max<size_t>(1, num_brokers))),
      stripes_(new Stripe[num_stripes_]),
      slots_(num_brokers) {}

void ShardedBrokerStore::ResetDay() {
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      slots_[b].workload = 0.0;
      slots_[b].day_utility = 0.0;
    }
  }
}

void ShardedBrokerStore::SetCapacities(const std::vector<double>& capacities) {
  size_t n = std::min(capacities.size(), slots_.size());
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < n; b += num_stripes_) {
      slots_[b].capacity = capacities[b];
    }
  }
}

void ShardedBrokerStore::SetBrokerCapacity(size_t broker, double capacity) {
  if (broker >= slots_.size()) return;
  std::lock_guard<std::mutex> lock(stripes_[StripeOf(broker)].mu);
  slots_[broker].capacity = capacity;
}

void ShardedBrokerStore::RetireBroker(size_t broker) {
  if (broker >= slots_.size()) return;
  std::lock_guard<std::mutex> lock(stripes_[StripeOf(broker)].mu);
  slots_[broker].capacity = 0.0;
  slots_[broker].workload = 0.0;
  slots_[broker].day_utility = 0.0;
}

void ShardedBrokerStore::SnapshotWorkloads(std::vector<double>* out) const {
  out->resize(slots_.size());
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      (*out)[b] = slots_[b].workload;
    }
  }
}

std::vector<double> ShardedBrokerStore::ResidualCapacities(
    double unknown_residual) const {
  std::vector<double> residual(slots_.size(), 0.0);
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      residual[b] = slots_[b].capacity <= 0.0
                        ? unknown_residual
                        : std::max(0.0, slots_[b].capacity - slots_[b].workload);
    }
  }
  return residual;
}

void ShardedBrokerStore::CommitAccepted(
    const std::vector<sim::CommittedEdge>& edges) {
  // Group edges by stripe so each stripe mutex is taken at most once per
  // batch regardless of how many of its brokers the batch touches.
  std::vector<std::vector<const sim::CommittedEdge*>> by_stripe(num_stripes_);
  for (const sim::CommittedEdge& e : edges) {
    if (e.broker < slots_.size()) {
      by_stripe[StripeOf(e.broker)].push_back(&e);
    }
  }
  for (size_t s = 0; s < num_stripes_; ++s) {
    if (by_stripe[s].empty()) continue;
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (const sim::CommittedEdge* e : by_stripe[s]) {
      BrokerSlot& slot = slots_[e->broker];
      slot.workload += 1.0;
      slot.day_utility += e->utility;
      ++slot.served_total;
    }
  }
}

void ShardedBrokerStore::ApplyDayFeedback(const sim::DayOutcome& outcome) {
  for (const sim::TrialTriple& t : outcome.trials) {
    if (t.broker >= slots_.size()) continue;
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(t.broker)].mu);
    slots_[t.broker].last_workload = t.workload;
    slots_[t.broker].last_signup_rate = t.signup_rate;
  }
}

BrokerSlot ShardedBrokerStore::Get(size_t broker) const {
  std::lock_guard<std::mutex> lock(stripes_[StripeOf(broker)].mu);
  return slots_[broker];
}

double ShardedBrokerStore::MaxOverCapacity() const {
  double worst = 0.0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      if (slots_[b].capacity <= 0.0) continue;
      worst = std::max(worst, slots_[b].workload - slots_[b].capacity);
    }
  }
  return worst;
}

std::vector<BrokerSlot> ShardedBrokerStore::ExportSlots() const {
  std::vector<BrokerSlot> out(slots_.size());
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      out[b] = slots_[b];
    }
  }
  return out;
}

Status ShardedBrokerStore::RestoreSlots(const std::vector<BrokerSlot>& slots) {
  if (slots.size() != slots_.size()) {
    return Status::InvalidArgument("broker slot count mismatch on restore");
  }
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      slots_[b] = slots[b];
    }
  }
  return Status::OK();
}

double ShardedBrokerStore::TotalWorkload() const {
  double total = 0.0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t b = s; b < slots_.size(); b += num_stripes_) {
      total += slots_[b].workload;
    }
  }
  return total;
}

}  // namespace lacb::serve

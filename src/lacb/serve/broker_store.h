// Sharded broker-state store: the concurrent view of per-broker serving
// state that batch workers read and write without a global lock.
//
// Brokers are partitioned into lock stripes (broker b belongs to stripe
// b % num_stripes); every mutation takes only its stripe's mutex, so
// workers committing assignments for disjoint stripes never contend, and a
// whole-roster snapshot costs num_stripes lock acquisitions instead of a
// stop-the-world lock. Each slot carries the state the assignment path
// consumes: today's workload, the current capacity estimate (residual =
// capacity − workload is the admission headroom the paper's B₊ filter
// uses), the day's committed predicted utility, and the cached bandit
// feedback (w_b, s_b) from the most recent day close.
//
// The store is a *view*, not the environment of record: the simulator's
// Platform stays authoritative for ground truth (appeals, realized
// utility, sign-up draws). With one worker the two agree exactly — that is
// the determinism gate — and with many workers the store is what makes
// concurrent workload reads and commits race-free.

#ifndef LACB_SERVE_BROKER_STORE_H_
#define LACB_SERVE_BROKER_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "lacb/sim/platform.h"

namespace lacb::serve {

/// \brief Per-broker serving state (one slot per broker).
struct BrokerSlot {
  double workload = 0.0;       ///< Requests committed today.
  double capacity = 0.0;       ///< Today's capacity estimate (0 = unknown).
  double day_utility = 0.0;    ///< Σ predicted utility committed today.
  uint64_t served_total = 0;   ///< Requests committed over the store's life.
  double last_workload = 0.0;  ///< w_b of the latest closed day.
  double last_signup_rate = 0.0;  ///< s_b of the latest closed day.
};

/// \brief Striped-lock store of BrokerSlots.
class ShardedBrokerStore {
 public:
  /// \brief `num_stripes` is clamped to [1, num_brokers].
  ShardedBrokerStore(size_t num_brokers, size_t num_stripes);

  ShardedBrokerStore(const ShardedBrokerStore&) = delete;
  ShardedBrokerStore& operator=(const ShardedBrokerStore&) = delete;

  size_t num_brokers() const { return slots_.size(); }
  size_t num_stripes() const { return num_stripes_; }

  /// \brief Zeroes the intra-day state (workload, day_utility) of every
  /// broker; capacities and feedback caches persist across days.
  void ResetDay();

  /// \brief Installs today's capacity estimates (size must match roster;
  /// extra/missing entries are ignored defensively).
  void SetCapacities(const std::vector<double>& capacities);

  /// \brief Overwrites one broker's capacity estimate (scenario churn:
  /// the cold-start prior of a freshly joined broker — docs/scenarios.md).
  void SetBrokerCapacity(size_t broker, double capacity);

  /// \brief Churn retirement of one broker: zeroes capacity, workload,
  /// and day utility so the residual view stops offering it headroom.
  /// Lifetime counters and feedback caches are kept.
  void RetireBroker(size_t broker);

  /// \brief Copies every broker's current workload into `out` (resized).
  /// Stripe-consistent: each stripe is copied atomically.
  void SnapshotWorkloads(std::vector<double>* out) const;

  /// \brief residual[b] = max(0, capacity − workload); brokers with an
  /// unknown capacity (0) report `unknown_residual`.
  std::vector<double> ResidualCapacities(double unknown_residual) const;

  /// \brief Applies one batch's accepted assignments: bumps workloads,
  /// served counts, and day utility. Edges are grouped by stripe so each
  /// stripe's mutex is taken once per batch.
  void CommitAccepted(const std::vector<sim::CommittedEdge>& edges);

  /// \brief Day-close feedback fan-in: caches each broker's (w_b, s_b)
  /// observation from the platform's day outcome.
  void ApplyDayFeedback(const sim::DayOutcome& outcome);

  /// \brief Copy of one broker's slot (takes its stripe lock).
  BrokerSlot Get(size_t broker) const;

  /// \brief Σ workload across the roster (stripe-consistent).
  double TotalWorkload() const;

  /// \brief max over brokers with a known capacity of (workload −
  /// capacity); <= 0 means no broker is over its capacity estimate (the
  /// chaos tests' no-overrun invariant). Brokers with unknown capacity
  /// (0) are skipped.
  double MaxOverCapacity() const;

  /// \brief Stripe-consistent copy of every slot (checkpoint snapshot).
  std::vector<BrokerSlot> ExportSlots() const;

  /// \brief Overwrites all slots from a checkpoint; size must match the
  /// roster.
  Status RestoreSlots(const std::vector<BrokerSlot>& slots);

 private:
  size_t StripeOf(size_t broker) const { return broker % num_stripes_; }

  // Stripes are cacheline-aligned so neighbouring locks don't false-share.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
  };

  size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
  std::vector<BrokerSlot> slots_;
};

}  // namespace lacb::serve

#endif  // LACB_SERVE_BROKER_STORE_H_

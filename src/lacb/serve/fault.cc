#include "lacb/serve/fault.h"

#include <limits>

namespace lacb::serve {

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  Rng root(plan_.seed);
  for (size_t s = 0; s < kNumFaultSites; ++s) {
    sites_[s].rng = root.Fork(s);
  }
}

FaultDecision FaultInjector::Decide(FaultSite site) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  std::lock_guard<std::mutex> lock(state.mu);
  ++state.draws;
  // Every branch below draws a *fixed* number of uniforms per decision
  // (Uniform() advances the engine by exactly one variate, unlike
  // Bernoulli, whose consumption can depend on p), so the site stream
  // stays aligned no matter which actions fire.
  FaultDecision d;
  switch (site) {
    case FaultSite::kCommit: {
      double u_transient = state.rng.Uniform();
      double u_after = state.rng.Uniform();
      double u_stall = state.rng.Uniform();
      if (u_transient < plan_.commit_transient_rate) {
        d.action = u_after < plan_.commit_after_apply_fraction
                       ? FaultAction::kTransientErrorAfterApply
                       : FaultAction::kTransientError;
      } else if (u_stall < plan_.commit_stall_rate) {
        d.action = FaultAction::kStall;
        d.stall = plan_.stall_duration;
      }
      break;
    }
    case FaultSite::kSolve: {
      if (state.rng.Uniform() < plan_.solve_over_budget_rate) {
        d.action = FaultAction::kOverBudgetSolve;
      }
      break;
    }
    case FaultSite::kStore: {
      if (state.rng.Uniform() < plan_.store_stall_rate) {
        d.action = FaultAction::kStall;
        d.stall = plan_.stall_duration;
      }
      break;
    }
    case FaultSite::kWorkerLoop: {
      double u_crash = state.rng.Uniform();
      double u_stall = state.rng.Uniform();
      if (u_crash < plan_.worker_crash_rate) {
        d.action = FaultAction::kCrashBeforeCommit;
      } else if (u_stall < plan_.worker_stall_rate) {
        d.action = FaultAction::kStall;
        d.stall = plan_.stall_duration;
      }
      break;
    }
  }
  return d;
}

uint64_t FaultInjector::decisions(FaultSite site) const {
  const SiteState& state = sites_[static_cast<size_t>(site)];
  std::lock_guard<std::mutex> lock(state.mu);
  return state.draws;
}

std::vector<int64_t> GreedyCapacityAssign(const policy::BatchInput& input,
                                          std::vector<double> residual) {
  const std::vector<sim::Request>& requests = *input.requests;
  const la::Matrix& utility = *input.utility;
  std::vector<int64_t> assignment(requests.size(), -1);
  size_t num_brokers = utility.cols();
  if (residual.size() < num_brokers) {
    residual.resize(num_brokers, std::numeric_limits<double>::infinity());
  }
  for (size_t r = 0; r < requests.size(); ++r) {
    double best = -std::numeric_limits<double>::infinity();
    int64_t pick = -1;
    for (size_t b = 0; b < num_brokers; ++b) {
      if (residual[b] <= 0.0) continue;
      double u = utility(r, b);
      if (u > best) {
        best = u;
        pick = static_cast<int64_t>(b);
      }
    }
    if (pick >= 0) {
      residual[static_cast<size_t>(pick)] -= 1.0;
      assignment[r] = pick;
    }
  }
  return assignment;
}

}  // namespace lacb::serve

// Deterministic fault injection for the serving layer.
//
// A FaultPlan is a seeded description of *where* and *how often* the serve
// pipeline misbehaves; a FaultInjector turns it into a reproducible
// decision stream per injection site. Sites:
//
//   kCommit     — the platform commit: transient errors before the apply
//                 (the classic retryable failure), transient errors *after*
//                 the apply (a lost ack — the case idempotent commit tokens
//                 exist for), and stalls.
//   kSolve      — the per-batch assignment solve: over-budget overruns that
//                 push the worker onto the greedy degradation path.
//   kStore      — broker-store access stalls (slow reads).
//   kWorkerLoop — the worker itself: stalls (a wedged thread the supervisor
//                 redrives around) and crash-before-commit (the thread
//                 exits; the supervisor re-queues its batch and restarts
//                 it — crash faults therefore require an active
//                 supervisor, i.e. ServeOptions::stall_timeout > 0).
//
// Determinism: each site owns an independent RNG stream forked from the
// plan seed, and every Decide at a site draws a *fixed* number of variates,
// so the k-th decision at a site is a pure function of (seed, site, k) — a
// fixed plan replays bit-identically regardless of wall-clock timing. With
// no plan installed (all rates zero) the injector is not constructed at all
// and every injection point reduces to one null-pointer check.

#ifndef LACB_SERVE_FAULT_H_
#define LACB_SERVE_FAULT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lacb/common/rng.h"
#include "lacb/policy/assignment_policy.h"

namespace lacb::serve {

/// \brief Where a fault can be injected.
enum class FaultSite : size_t {
  kCommit = 0,
  kSolve = 1,
  kStore = 2,
  kWorkerLoop = 3,
};
inline constexpr size_t kNumFaultSites = 4;

/// \brief What a triggered fault does at its site.
enum class FaultAction {
  kNone,
  /// Sleep for FaultDecision::stall before proceeding (commit, store,
  /// worker-loop sites).
  kStall,
  /// Commit site: the commit attempt fails before anything is applied.
  kTransientError,
  /// Commit site: the commit *applies* but the acknowledgement is lost —
  /// the caller sees an error and retries; only the idempotent commit
  /// token keeps the retry from double-decrementing broker capacity.
  kTransientErrorAfterApply,
  /// Solve site: the solve overruns its budget (simulated deadline abort).
  kOverBudgetSolve,
  /// Worker-loop site: the worker dies before committing its batch.
  kCrashBeforeCommit,
};

/// \brief Seeded description of the injected fault mix. All-zero rates
/// (the default) mean "no plan installed".
struct FaultPlan {
  uint64_t seed = 1;
  /// P(commit attempt reports a transient error).
  double commit_transient_rate = 0.0;
  /// Of transient commit errors, the fraction that are lost *acks* (the
  /// commit applied); the rest fail before the apply.
  double commit_after_apply_fraction = 0.5;
  /// P(commit attempt stalls for stall_duration first).
  double commit_stall_rate = 0.0;
  /// P(batch solve overruns its ServeOptions::solve_budget).
  double solve_over_budget_rate = 0.0;
  /// P(broker-store snapshot stalls for stall_duration).
  double store_stall_rate = 0.0;
  /// P(worker stalls for stall_duration after picking up a batch).
  double worker_stall_rate = 0.0;
  /// P(worker crashes before committing the batch it picked up).
  double worker_crash_rate = 0.0;
  /// Length of every injected stall.
  std::chrono::microseconds stall_duration{2000};
  /// Process-kill trigger for crash-recovery tests: after this many live
  /// (non-duplicate) platform commits have applied, the service poisons
  /// itself with a fatal error at the next batch boundary — everything
  /// after behaves as if the process died (in-flight work fails, the day
  /// never closes) and recovery must come from the durable checkpoint +
  /// WAL (docs/persistence.md). Zero disables the trigger.
  uint64_t kill_after_commits = 0;

  bool enabled() const {
    return commit_transient_rate > 0.0 || commit_stall_rate > 0.0 ||
           solve_over_budget_rate > 0.0 || store_stall_rate > 0.0 ||
           worker_stall_rate > 0.0 || worker_crash_rate > 0.0 ||
           kill_after_commits > 0;
  }
};

/// \brief One resolved injection decision.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::chrono::microseconds stall{0};
};

/// \brief Thread-safe, per-site deterministic decision source.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// \brief Draws the next decision of `site`'s stream. Deterministic per
  /// (plan seed, site, call index); safe from any thread.
  FaultDecision Decide(FaultSite site);

  /// \brief Decisions drawn at `site` so far (diagnostics/tests).
  uint64_t decisions(FaultSite site) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  struct SiteState {
    SiteState() : rng(0) {}
    mutable std::mutex mu;
    Rng rng;
    uint64_t draws = 0;
  };

  FaultPlan plan_;
  std::array<SiteState, kNumFaultSites> sites_;
};

/// \brief Injection-point helper: one null check when no plan is installed.
inline FaultDecision DecideAt(FaultInjector* injector, FaultSite site) {
  if (injector == nullptr) return FaultDecision{};
  return injector->Decide(site);
}

/// \brief Cheap capacity-aware fallback for solve-budget degradation:
/// every request goes to the highest-predicted-utility broker that still
/// has residual capacity (`residual` is decremented as the batch is
/// walked; pass +inf entries for brokers with unknown capacity); a request
/// with no broker left under capacity stays unmatched. O(R×B), no RNG, no
/// learned state — the bounded-utility-loss floor the batch deadline falls
/// back to.
std::vector<int64_t> GreedyCapacityAssign(const policy::BatchInput& input,
                                          std::vector<double> residual);

}  // namespace lacb::serve

#endif  // LACB_SERVE_FAULT_H_

#include "lacb/serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "lacb/common/rng.h"
#include "lacb/common/stopwatch.h"
#include "lacb/obs/obs.h"

namespace lacb::serve {

namespace {

Status PumpLockstep(AssignmentService* service,
                    const std::vector<std::vector<sim::Request>>& batches) {
  for (const std::vector<sim::Request>& batch : batches) {
    for (const sim::Request& r : batch) {
      if (!service->Submit(r)) {
        // Lockstep replay exists to mirror the offline protocol exactly;
        // shedding would silently change the instance.
        return Status::FailedPrecondition(
            "lockstep replay shed a request; raise queue_capacity above "
            "the scheduled batch size");
      }
    }
    service->Flush();
    LACB_RETURN_NOT_OK(service->WaitIdle());
    // Quiesce point: the service is idle between lockstep batches, so a
    // mid-day interval checkpoint (when enabled) can snapshot here.
    LACB_RETURN_NOT_OK(service->MaybeCheckpoint());
  }
  return Status::OK();
}

Status PumpFreeRun(AssignmentService* service,
                   const std::vector<std::vector<sim::Request>>& batches) {
  for (const std::vector<sim::Request>& batch : batches) {
    for (const sim::Request& r : batch) {
      service->Submit(r);  // shed arrivals are counted by the service
    }
  }
  return Status::OK();
}

Status PumpPoisson(AssignmentService* service,
                   const std::vector<std::vector<sim::Request>>& batches,
                   size_t day, const ServedRunOptions& options) {
  if (options.poisson_rate <= 0.0) return PumpFreeRun(service, batches);
  // Per-day fork: the arrival clock is deterministic and independent of
  // how many arrivals earlier days consumed.
  Rng rng = Rng(options.poisson_seed).Fork(day);
  const double mean_gap = 1.0 / options.poisson_rate;
  for (const std::vector<sim::Request>& batch : batches) {
    for (const sim::Request& r : batch) {
      // Exponential inter-arrival gap via inverse CDF.
      double u = rng.Uniform();
      if (u < 1e-12) u = 1e-12;
      double gap = -mean_gap * std::log(u);
      std::this_thread::sleep_for(std::chrono::duration<double>(gap));
      service->Submit(r);  // open-loop: shed when admission refuses
    }
  }
  return Status::OK();
}

// Open-loop flash-crowd arrivals: a Poisson-like baseline with one
// contiguous burst window at burst_multiplier times the base rate, and
// optionally heavy-tailed (Pareto) gaps. Pacing uses absolute deadlines
// (sleep_until against an accumulated schedule) instead of relative
// sleep_for: at burst rates the per-arrival sleep overshoot would
// otherwise accumulate and quietly flatten the burst the mode exists to
// produce.
Status PumpFlashCrowd(AssignmentService* service,
                      const std::vector<std::vector<sim::Request>>& batches,
                      size_t day, const ServedRunOptions& options) {
  if (options.burst_fraction <= 0.0) {
    // A zero-length window silently degenerating to "no burst" hides a
    // misconfigured bench; reject it outright.
    return Status::InvalidArgument(
        "flash-crowd burst window is zero-length (burst_fraction must be "
        "> 0; use kPoisson for burst-free open-loop load)");
  }
  if (options.burst_start_fraction < 0.0 ||
      options.burst_start_fraction >= 1.0) {
    return Status::InvalidArgument(
        "flash-crowd burst_start_fraction must lie in [0, 1): the window "
        "starts inside the day it bursts");
  }
  if (options.flash_base_rate <= 0.0) return PumpFreeRun(service, batches);
  size_t total = 0;
  for (const std::vector<sim::Request>& batch : batches) {
    total += batch.size();
  }
  const size_t burst_begin = static_cast<size_t>(
      options.burst_start_fraction * static_cast<double>(total));
  // A window that begins in the day's final pacing interval is truncated
  // at the day boundary — each day's burst indices are its own; the
  // remainder never carries into the next day's schedule.
  const size_t burst_end = std::min(
      total, burst_begin + static_cast<size_t>(std::ceil(
                 options.burst_fraction * static_cast<double>(total))));
  Rng rng = Rng(options.poisson_seed).Fork(day);
  auto deadline = std::chrono::steady_clock::now();
  size_t index = 0;
  for (const std::vector<sim::Request>& batch : batches) {
    for (const sim::Request& r : batch) {
      const bool in_burst = index >= burst_begin && index < burst_end;
      const double rate = in_burst
                              ? options.flash_base_rate *
                                    std::max(1.0, options.burst_multiplier)
                              : options.flash_base_rate;
      const double mean_gap = 1.0 / rate;
      double u = rng.Uniform();
      if (u < 1e-12) u = 1e-12;
      double gap;
      if (options.pareto_shape > 1.0) {
        // Pareto via inverse CDF, scale chosen so the mean matches the
        // exponential gap: E[gap] = xm·a/(a−1) = mean_gap.
        const double a = options.pareto_shape;
        const double xm = mean_gap * (a - 1.0) / a;
        gap = xm * std::pow(u, -1.0 / a);
      } else {
        gap = -mean_gap * std::log(u);
      }
      deadline += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(gap));
      std::this_thread::sleep_until(deadline);
      service->Submit(r);  // open-loop: shed when admission refuses
      ++index;
    }
  }
  return Status::OK();
}

// Open-loop scenario-shaped arrivals: the compiled scenario's pacing
// multiplier (mean-normalized diurnal curve × day-of-week scale × every
// active flash window) modulates the base rate per arrival slot, and the
// spec's Pareto tail exponent (> 1) switches the gaps heavy-tailed. The
// same absolute-deadline pacing as PumpFlashCrowd, generalized from one
// hard-coded window to the spec's reusable schedule.
Status PumpScenario(AssignmentService* service,
                    const std::vector<std::vector<sim::Request>>& batches,
                    size_t day, const ServedRunOptions& options) {
  const scenario::CompiledScenario* sc = options.serve.scenario.get();
  if (sc == nullptr) {
    return Status::InvalidArgument(
        "LoadMode::kScenario requires ServeOptions::scenario");
  }
  if (options.flash_base_rate <= 0.0) return PumpFreeRun(service, batches);
  size_t total = 0;
  for (const std::vector<sim::Request>& batch : batches) {
    total += batch.size();
  }
  Rng rng = Rng(options.poisson_seed).Fork(day);
  const double pareto = sc->ParetoShape();
  auto deadline = std::chrono::steady_clock::now();
  size_t index = 0;
  for (const std::vector<sim::Request>& batch : batches) {
    for (const sim::Request& r : batch) {
      const double mult =
          std::max(1e-9, sc->PacingMultiplier(day, index, total));
      const double mean_gap = 1.0 / (options.flash_base_rate * mult);
      double u = rng.Uniform();
      if (u < 1e-12) u = 1e-12;
      double gap;
      if (pareto > 1.0) {
        const double a = pareto;
        const double xm = mean_gap * (a - 1.0) / a;
        gap = xm * std::pow(u, -1.0 / a);
      } else {
        gap = -mean_gap * std::log(u);
      }
      deadline += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(gap));
      std::this_thread::sleep_until(deadline);
      service->Submit(r);  // open-loop: shed when admission refuses
      ++index;
    }
  }
  return Status::OK();
}

}  // namespace

Status PumpDay(AssignmentService* service, size_t day,
               const ServedRunOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("PumpDay requires a service");
  }
  const auto& schedule = service->platform().all_requests();
  if (day >= schedule.size()) {
    return Status::OutOfRange("day beyond dataset horizon");
  }
  switch (options.mode) {
    case LoadMode::kLockstepReplay:
      return PumpLockstep(service, schedule[day]);
    case LoadMode::kFreeRunReplay:
      return PumpFreeRun(service, schedule[day]);
    case LoadMode::kPoisson:
      return PumpPoisson(service, schedule[day], day, options);
    case LoadMode::kFlashCrowd:
      return PumpFlashCrowd(service, schedule[day], day, options);
    case LoadMode::kScenario:
      return PumpScenario(service, schedule[day], day, options);
  }
  return Status::Internal("unknown load mode");
}

Result<core::PolicyRunResult> RunPolicyServed(
    const sim::DatasetConfig& config, const policy::PolicyFactory& factory,
    const ServedRunOptions& options) {
  // Same run-scoped collection pattern as core::RunPolicy: everything the
  // service and its worker threads record lands in this context.
  obs::ScopedTelemetry telemetry;
  obs::ScopedEventRecording record(options.recorder);

  LACB_ASSIGN_OR_RETURN(std::unique_ptr<AssignmentService> service,
                        AssignmentService::Create(config, factory, options.serve));
  LACB_RETURN_NOT_OK(service->Start());

  // Wall-clock sampling of the run's registry (the sampling thread holds a
  // pointer to the run-scoped registry, which outlives it).
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  if (options.sample_interval.count() > 0) {
    obs::TimeSeriesSampler::Options sampler_opts;
    sampler_opts.instruments = options.sample_instruments;
    sampler_opts.time_unit = "seconds";
    sampler = std::make_unique<obs::TimeSeriesSampler>(std::move(sampler_opts));
    LACB_RETURN_NOT_OK(sampler->StartPeriodic(options.sample_interval));
  }

  // Sampling span profiler over the run-scoped tracer: every serve thread
  // adopts this tracer, so worker/batcher spans show up in the profile.
  obs::SpanProfiler profiler;
  if (options.profile_interval.count() > 0) {
    LACB_RETURN_NOT_OK(
        profiler.Start(&telemetry.tracer(), options.profile_interval));
  }

  const sim::Platform& platform = service->platform();
  core::PolicyRunResult result;
  result.policy = service->policy_name();
  result.dataset = config.name;
  size_t n = platform.num_brokers();
  result.broker_utility.assign(n, 0.0);
  result.broker_requests.assign(n, 0.0);
  result.broker_peak_workload.assign(n, 0.0);
  result.broker_mean_workload.assign(n, 0.0);

  size_t days = platform.num_days();
  double assign_seconds_before = 0.0;
  for (size_t day = 0; day < days; ++day) {
    LACB_TRACE_SPAN("serve.day");
    LACB_RETURN_NOT_OK(service->OpenDay(day));
    LACB_RETURN_NOT_OK(PumpDay(service.get(), day, options));
    LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome, service->CloseDay());

    double assign_seconds_now = service->Stats().assign_seconds;
    double policy_time = service->day_boundary_seconds() +
                         (assign_seconds_now - assign_seconds_before);
    assign_seconds_before = assign_seconds_now;

    result.daily_utility.push_back(outcome.realized_utility);
    result.daily_policy_seconds.push_back(policy_time);
    result.total_utility += outcome.realized_utility;
    result.policy_seconds += policy_time;
    result.total_appeals += outcome.appeals;
    for (size_t b = 0; b < n; ++b) {
      result.broker_utility[b] += outcome.per_broker_utility[b];
      double w = outcome.per_broker_workload[b];
      result.broker_requests[b] += w;
      result.broker_peak_workload[b] =
          std::max(result.broker_peak_workload[b], w);
      double knee = platform.brokers()[b].latent.true_capacity;
      if (w > knee) {
        ++result.overloaded_broker_days;
        result.overload_excess += w - knee;
      }
    }
  }
  double d = static_cast<double>(std::max<size_t>(1, days));
  for (size_t b = 0; b < n; ++b) {
    result.broker_mean_workload[b] = result.broker_requests[b] / d;
  }

  ServeStats stats = service->Stats();
  result.shed_requests = stats.shed;
  result.degraded_batches = stats.degraded_batches;
  result.failed_requests = stats.failed;
  service->Shutdown();
  if (sampler != nullptr) sampler->StopPeriodic();
  if (options.profile_interval.count() > 0) {
    profiler.Stop();
    if (!options.profile_path.empty()) {
      LACB_RETURN_NOT_OK(profiler.WriteFolded(options.profile_path));
    }
  }

  obs::MetricsSnapshot metrics = telemetry.registry().Snapshot();
  auto latency = metrics.histograms.find("serve.batch_assign_seconds");
  if (latency != metrics.histograms.end()) {
    result.p99_batch_latency = latency->second.p99;
  }

  if (obs::CollectionEnabled()) {
    std::map<std::string, std::string> meta;
    meta["policy"] = result.policy;
    meta["dataset"] = result.dataset;
    meta["path"] = "serve";
    meta["num_brokers"] = std::to_string(n);
    meta["num_days"] = std::to_string(days);
    meta["num_workers"] = std::to_string(options.serve.num_workers);
    meta["policy_seconds"] = std::to_string(result.policy_seconds);
    meta["degraded_batches"] = std::to_string(stats.degraded_batches);
    meta["failed_requests"] = std::to_string(stats.failed);
    obs::RunTelemetry captured = obs::CaptureRun(
        telemetry.registry(), telemetry.tracer(), std::move(meta));
    if (sampler != nullptr) captured.series = sampler->Series();
    result.telemetry =
        std::make_shared<obs::RunTelemetry>(std::move(captured));
  }
  return result;
}

}  // namespace lacb::serve

// Load drivers for the online serving layer.
//
// Two ways to feed an AssignmentService from a platform-generated request
// schedule:
//
//  - Trace replay walks the dataset's day/batch schedule. In *lockstep*
//    mode each scheduled batch is submitted, flushed, and fully drained
//    before the next one — batch edges then coincide exactly with the
//    offline protocol, which is what makes the single-worker determinism
//    gate bit-identical to core::RunPolicy. In *free-run* mode all of a
//    day's requests are pumped as fast as the queue admits them and the
//    micro-batcher's size/deadline limits shape the batches — the
//    saturation mode the throughput bench measures.
//
//  - The Poisson generator is an open-loop arrival process: exponential
//    inter-arrival gaps at a target rate, submitted on the wall clock
//    regardless of downstream progress (arrivals beyond the admission
//    bound are shed — that is the point of open-loop load). A
//    non-positive rate degenerates to free-run pumping.
//
//  - The flash-crowd generator layers a burst on the open-loop process: a
//    contiguous window of each day's schedule arrives at a multiple of the
//    base rate (optionally with heavy-tailed Pareto gaps), which is the
//    stimulus the forecasting plane's burst/horizon detectors are scored
//    against (bench_forecast).
//
// RunPolicyServed drives a whole run — days opened/closed around the
// chosen load mode — and aggregates the same PolicyRunResult the offline
// engine produces, so benches and tests compare the two paths directly.

#ifndef LACB_SERVE_LOAD_GENERATOR_H_
#define LACB_SERVE_LOAD_GENERATOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "lacb/core/engine.h"
#include "lacb/serve/service.h"

namespace lacb::serve {

/// \brief How a run's requests reach the service.
enum class LoadMode {
  kLockstepReplay,  ///< Batch-by-batch, drained between scheduled batches.
  kFreeRunReplay,   ///< Pump each day as fast as admission allows.
  kPoisson,         ///< Open-loop Poisson arrivals at `poisson_rate`.
  kFlashCrowd,      ///< Open-loop arrivals at `flash_base_rate` with a
                    ///< contiguous burst window at a rate multiple —
                    ///< optionally heavy-tailed gaps (see pareto_shape).
  kScenario,        ///< Open-loop arrivals at `flash_base_rate` modulated
                    ///< by the compiled scenario's pacing curve (diurnal ×
                    ///< day-of-week × flash windows) with the spec's
                    ///< Pareto tail; requires ServeOptions::scenario
                    ///< (docs/scenarios.md).
};

/// \brief Options of a served run.
struct ServedRunOptions {
  ServeOptions serve;
  LoadMode mode = LoadMode::kLockstepReplay;
  /// Mean arrivals per second for LoadMode::kPoisson; <= 0 pumps with no
  /// pacing (saturation).
  double poisson_rate = 0.0;
  /// Seed of the Poisson arrival clock (independent of the dataset seed).
  uint64_t poisson_seed = 1234;

  // --- Flash-crowd mode (LoadMode::kFlashCrowd) ---

  /// Baseline arrivals per second outside the burst window; <= 0 pumps
  /// with no pacing (saturation), like kPoisson.
  double flash_base_rate = 0.0;
  /// Burst arrival rate = flash_base_rate × burst_multiplier.
  double burst_multiplier = 8.0;
  /// The burst window covers the contiguous requests whose index falls in
  /// [burst_start_fraction, burst_start_fraction + burst_fraction) of each
  /// day's schedule.
  double burst_start_fraction = 0.4;
  double burst_fraction = 0.3;
  /// > 1: draw heavy-tailed Pareto inter-arrival gaps with the same mean
  /// as the exponential ones (shape a, scale mean·(a−1)/a) — occasional
  /// long gaps between arrival clumps. <= 1 (default): exponential gaps.
  double pareto_shape = 0.0;
  /// Wall-clock cadence of time-series samples over the run's registry
  /// (queue depth, carryover, shed, ... — see sample_instruments); zero
  /// disables sampling. The series lands in the result's
  /// RunTelemetry::series.
  std::chrono::milliseconds sample_interval{0};
  /// Instrument selection for the sampler; empty samples every counter
  /// and gauge.
  std::vector<std::string> sample_instruments;
  /// Optional event-timeline recorder (not owned): installed for the
  /// driving thread and forwarded by the service to its batcher/worker
  /// threads, so one request is traceable across the pipeline.
  obs::EventRecorder* recorder = nullptr;
  /// Sampling span profiler: walks every thread's open LACB_TRACE_SPAN
  /// stack at this cadence and aggregates folded call stacks. Zero (the
  /// default) disables sampling entirely — span enter/exit then pays one
  /// relaxed atomic load, nothing else.
  std::chrono::milliseconds profile_interval{0};
  /// Where the folded-stack profile is written after the run
  /// ("outer;inner;leaf count" lines — flamegraph.pl / speedscope input).
  /// Empty: don't write a file (sampling still runs when enabled).
  std::string profile_path;
};

/// \brief Submits day `day` of the service's request schedule in the given
/// mode (the day must already be open). Lockstep flushes + drains per
/// scheduled batch; the other modes only submit.
Status PumpDay(AssignmentService* service, size_t day, const ServedRunOptions&
               options);

/// \brief Runs `factory`'s policy over `config` through the online serving
/// path and aggregates the offline engine's PolicyRunResult (plus the
/// serve-only fields: shed_requests, p99_batch_latency, and the serve.*
/// telemetry instruments).
Result<core::PolicyRunResult> RunPolicyServed(
    const sim::DatasetConfig& config, const policy::PolicyFactory& factory,
    const ServedRunOptions& options);

}  // namespace lacb::serve

#endif  // LACB_SERVE_LOAD_GENERATOR_H_

// Load drivers for the online serving layer.
//
// Two ways to feed an AssignmentService from a platform-generated request
// schedule:
//
//  - Trace replay walks the dataset's day/batch schedule. In *lockstep*
//    mode each scheduled batch is submitted, flushed, and fully drained
//    before the next one — batch edges then coincide exactly with the
//    offline protocol, which is what makes the single-worker determinism
//    gate bit-identical to core::RunPolicy. In *free-run* mode all of a
//    day's requests are pumped as fast as the queue admits them and the
//    micro-batcher's size/deadline limits shape the batches — the
//    saturation mode the throughput bench measures.
//
//  - The Poisson generator is an open-loop arrival process: exponential
//    inter-arrival gaps at a target rate, submitted on the wall clock
//    regardless of downstream progress (arrivals beyond the admission
//    bound are shed — that is the point of open-loop load). A
//    non-positive rate degenerates to free-run pumping.
//
// RunPolicyServed drives a whole run — days opened/closed around the
// chosen load mode — and aggregates the same PolicyRunResult the offline
// engine produces, so benches and tests compare the two paths directly.

#ifndef LACB_SERVE_LOAD_GENERATOR_H_
#define LACB_SERVE_LOAD_GENERATOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "lacb/core/engine.h"
#include "lacb/serve/service.h"

namespace lacb::serve {

/// \brief How a run's requests reach the service.
enum class LoadMode {
  kLockstepReplay,  ///< Batch-by-batch, drained between scheduled batches.
  kFreeRunReplay,   ///< Pump each day as fast as admission allows.
  kPoisson,         ///< Open-loop Poisson arrivals at `poisson_rate`.
};

/// \brief Options of a served run.
struct ServedRunOptions {
  ServeOptions serve;
  LoadMode mode = LoadMode::kLockstepReplay;
  /// Mean arrivals per second for LoadMode::kPoisson; <= 0 pumps with no
  /// pacing (saturation).
  double poisson_rate = 0.0;
  /// Seed of the Poisson arrival clock (independent of the dataset seed).
  uint64_t poisson_seed = 1234;
  /// Wall-clock cadence of time-series samples over the run's registry
  /// (queue depth, carryover, shed, ... — see sample_instruments); zero
  /// disables sampling. The series lands in the result's
  /// RunTelemetry::series.
  std::chrono::milliseconds sample_interval{0};
  /// Instrument selection for the sampler; empty samples every counter
  /// and gauge.
  std::vector<std::string> sample_instruments;
  /// Optional event-timeline recorder (not owned): installed for the
  /// driving thread and forwarded by the service to its batcher/worker
  /// threads, so one request is traceable across the pipeline.
  obs::EventRecorder* recorder = nullptr;
  /// Sampling span profiler: walks every thread's open LACB_TRACE_SPAN
  /// stack at this cadence and aggregates folded call stacks. Zero (the
  /// default) disables sampling entirely — span enter/exit then pays one
  /// relaxed atomic load, nothing else.
  std::chrono::milliseconds profile_interval{0};
  /// Where the folded-stack profile is written after the run
  /// ("outer;inner;leaf count" lines — flamegraph.pl / speedscope input).
  /// Empty: don't write a file (sampling still runs when enabled).
  std::string profile_path;
};

/// \brief Submits day `day` of the service's request schedule in the given
/// mode (the day must already be open). Lockstep flushes + drains per
/// scheduled batch; the other modes only submit.
Status PumpDay(AssignmentService* service, size_t day, const ServedRunOptions&
               options);

/// \brief Runs `factory`'s policy over `config` through the online serving
/// path and aggregates the offline engine's PolicyRunResult (plus the
/// serve-only fields: shed_requests, p99_batch_latency, and the serve.*
/// telemetry instruments).
Result<core::PolicyRunResult> RunPolicyServed(
    const sim::DatasetConfig& config, const policy::PolicyFactory& factory,
    const ServedRunOptions& options);

}  // namespace lacb::serve

#endif  // LACB_SERVE_LOAD_GENERATOR_H_

#include "lacb/serve/micro_batcher.h"

#include <utility>

namespace lacb::serve {

MicroBatcher::MicroBatcher(BoundedRequestQueue* queue,
                           MicroBatcherOptions options,
                           std::function<void()> on_flush_retired)
    : queue_(queue),
      options_(options),
      on_flush_retired_(std::move(on_flush_retired)) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
}

void MicroBatcher::AddCarryover(std::vector<sim::Request> requests) {
  if (requests.empty()) return;
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(carryover_mu_);
  for (sim::Request& r : requests) {
    carryover_.push_back(std::move(r));
    carryover_times_.push_back(now);
  }
}

size_t MicroBatcher::carryover_size() const {
  std::lock_guard<std::mutex> lock(carryover_mu_);
  return carryover_.size();
}

std::vector<sim::Request> MicroBatcher::SnapshotCarryover() const {
  std::lock_guard<std::mutex> lock(carryover_mu_);
  return carryover_;
}

void MicroBatcher::DrainCarryoverInto(MicroBatch* batch) {
  std::lock_guard<std::mutex> lock(carryover_mu_);
  for (size_t i = 0; i < carryover_.size(); ++i) {
    batch->requests.push_back(std::move(carryover_[i]));
    batch->arrival_times.push_back(carryover_times_[i]);
  }
  carryover_.clear();
  carryover_times_.clear();
}

std::optional<MicroBatch> MicroBatcher::NextBatch() {
  MicroBatch batch;
  std::chrono::steady_clock::time_point deadline{};
  bool deadline_armed = false;

  for (;;) {
    QueueItem item;
    PopResult r = deadline_armed ? queue_->PopUntil(deadline, &item)
                                 : queue_->Pop(&item);
    switch (r) {
      case PopResult::kClosed: {
        // Shutdown: emit whatever is pending (partial batch + carryover)
        // exactly once, then signal end-of-stream.
        DrainCarryoverInto(&batch);
        if (batch.requests.empty()) return std::nullopt;
        batch.close_cause = BatchCloseCause::kShutdown;
        batch.token = next_token_++;
        batch.closed_at = std::chrono::steady_clock::now();
        return batch;
      }
      case PopResult::kTimeout: {
        // Deadlines are armed only after the first request, so this batch
        // is never empty.
        batch.close_cause = BatchCloseCause::kDeadline;
        DrainCarryoverInto(&batch);
        batch.token = next_token_++;
        batch.closed_at = std::chrono::steady_clock::now();
        return batch;
      }
      case PopResult::kItem:
        break;
    }
    if (item.kind == QueueItem::Kind::kFlush) {
      if (on_flush_retired_) on_flush_retired_();
      if (batch.requests.empty()) {
        // Empty flush: nothing forming, emit no batch. Pending carryover
        // keeps waiting — appeals ride the end of the next real batch,
        // they never form one of their own (the platform's re-queue
        // appends end-of-day appeals to the *next day's* first batch).
        deadline_armed = false;
        continue;
      }
      DrainCarryoverInto(&batch);
      batch.close_cause = BatchCloseCause::kFlush;
      batch.token = next_token_++;
      batch.closed_at = std::chrono::steady_clock::now();
      return batch;
    }
    if (!deadline_armed) {
      deadline = std::chrono::steady_clock::now() + options_.max_batch_delay;
      deadline_armed = true;
    }
    batch.requests.push_back(std::move(item.request));
    batch.arrival_times.push_back(item.enqueued_at);
    ++batch.from_queue;
    if (batch.requests.size() >= options_.max_batch_size) {
      batch.close_cause = BatchCloseCause::kSize;
      DrainCarryoverInto(&batch);
      batch.token = next_token_++;
      batch.closed_at = std::chrono::steady_clock::now();
      return batch;
    }
  }
}

}  // namespace lacb::serve

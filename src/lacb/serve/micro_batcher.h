// Deadline-driven micro-batcher: turns the request stream into assignment
// batches — the online generalization of the paper's fixed-time-window
// protocol (Sec. III), where the window closes on whichever of two limits
// is hit first:
//
//   - size:     the forming batch reached max_batch_size, or
//   - deadline: max_batch_delay elapsed since the batch's first request
//               was pulled (the clock starts at the first request, so an
//               idle service never emits empty batches).
//
// Two more close causes exist: an explicit flush token in the stream
// (deterministic batch edges for day boundaries and lockstep replay) and
// queue shutdown (the final partial batch is emitted, never dropped).
//
// Appealed clients re-enter through the carryover buffer: AddCarryover is
// thread-safe and the pending carryover is appended to the *end* of the
// next batch that closes — exactly where the offline Platform re-queues
// appeals (end of the following batch, or the next day's first batch when
// the appeal outlives the day), which is what makes the single-worker
// serve path bit-identical to the offline engine.
//
// NextBatch is single-consumer: only the batcher thread calls it.

#ifndef LACB_SERVE_MICRO_BATCHER_H_
#define LACB_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "lacb/serve/request_queue.h"
#include "lacb/sim/request.h"

namespace lacb::serve {

/// \brief Why a batch closed (exported as per-cause close counters).
enum class BatchCloseCause { kSize, kDeadline, kFlush, kShutdown };

/// \brief One closed batch, ready for a worker.
struct MicroBatch {
  std::vector<sim::Request> requests;
  /// Per-request ingestion timestamps (parallel to `requests`) for
  /// end-to-end latency accounting.
  std::vector<std::chrono::steady_clock::time_point> arrival_times;
  /// When the batch closed (stamped by NextBatch). Stage attribution
  /// splits a request's life into queue wait (arrival → close) and
  /// channel wait (close → worker pickup) at this boundary.
  std::chrono::steady_clock::time_point closed_at{};
  /// How many of `requests` were drained from the ingestion queue (the
  /// rest are carryover); the service retires exactly this many units of
  /// in-system work when the batch commits.
  size_t from_queue = 0;
  BatchCloseCause close_cause = BatchCloseCause::kSize;
  /// Unique non-zero identity of the batch, assigned at close and kept by
  /// every copy: the idempotent-commit token (Platform dedups on it) and
  /// the exactly-once terminal claim. A re-driven twin of a stalled or
  /// crashed worker's batch carries the same token as the original.
  uint64_t token = 0;
};

// All serving deadlines (ingestion, batching, retry backoff, heartbeats)
// are computed on steady_clock: an NTP step on the wall clock must never
// fire a batch deadline early or starve a stall detector.
static_assert(
    std::is_same_v<decltype(MicroBatch{}.arrival_times)::value_type,
                   std::chrono::steady_clock::time_point>,
    "serve-layer timestamps must use steady_clock");

/// \brief Batching knobs.
struct MicroBatcherOptions {
  /// Close the batch at this many requests.
  size_t max_batch_size = 64;
  /// Close the batch this long after its first request was pulled.
  std::chrono::microseconds max_batch_delay{2000};
};

/// \brief Deadline/size/flush-driven batch former over a request queue.
class MicroBatcher {
 public:
  /// \brief `on_flush_retired` fires once per flush token consumed (the
  /// service uses it to retire the token from its in-system accounting);
  /// may be empty.
  MicroBatcher(BoundedRequestQueue* queue, MicroBatcherOptions options,
               std::function<void()> on_flush_retired = nullptr);

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// \brief Blocks until the next batch closes. Empty flushes (a flush
  /// token with nothing pending) emit no batch. Returns nullopt once the
  /// queue is closed and everything — including carryover — has been
  /// emitted.
  std::optional<MicroBatch> NextBatch();

  /// \brief Queues appealed requests for the end of the next closing
  /// batch. Thread-safe (workers call this; NextBatch consumes it).
  void AddCarryover(std::vector<sim::Request> requests);

  /// \brief Pending carryover count (test/diagnostic hook).
  size_t carryover_size() const;

  /// \brief Copy of the pending carryover requests (checkpoint snapshot;
  /// arrival timestamps are not persisted — restore re-stamps them).
  std::vector<sim::Request> SnapshotCarryover() const;

  /// \brief Token counter hooks for warm restart: tokens must continue
  /// from where the pre-crash process stopped so the Platform's per-token
  /// commit ledger stays globally unique. Call set_next_token only before
  /// the batcher thread starts (single-consumer invariant).
  uint64_t next_token() const { return next_token_; }
  void set_next_token(uint64_t token) { next_token_ = token; }

 private:
  /// \brief Moves pending carryover to the end of `batch`.
  void DrainCarryoverInto(MicroBatch* batch);

  BoundedRequestQueue* queue_;
  MicroBatcherOptions options_;
  std::function<void()> on_flush_retired_;
  uint64_t next_token_ = 1;  // single-consumer: only NextBatch touches it

  mutable std::mutex carryover_mu_;
  std::vector<sim::Request> carryover_;
  std::vector<std::chrono::steady_clock::time_point> carryover_times_;
};

}  // namespace lacb::serve

#endif  // LACB_SERVE_MICRO_BATCHER_H_

#include "lacb/serve/request_queue.h"

#include <utility>

namespace lacb::serve {

BoundedRequestQueue::BoundedRequestQueue(size_t capacity,
                                         obs::Gauge* depth_gauge)
    : capacity_(capacity == 0 ? 1 : capacity), depth_gauge_(depth_gauge) {}

void BoundedRequestQueue::UpdateGauge() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(items_.size()));
  }
}

bool BoundedRequestQueue::TryPush(QueueItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    UpdateGauge();
  }
  not_empty_.notify_one();
  return true;
}

bool BoundedRequestQueue::PushBlocking(QueueItem item) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    UpdateGauge();
  }
  not_empty_.notify_one();
  return true;
}

PopResult BoundedRequestQueue::Pop(QueueItem* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return PopResult::kClosed;
  *out = std::move(items_.front());
  items_.pop_front();
  UpdateGauge();
  lock.unlock();
  not_full_.notify_one();
  return PopResult::kItem;
}

PopResult BoundedRequestQueue::PopUntil(
    std::chrono::steady_clock::time_point deadline, QueueItem* out) {
  std::unique_lock<std::mutex> lock(mu_);
  bool ready = not_empty_.wait_until(
      lock, deadline, [&] { return closed_ || !items_.empty(); });
  if (!ready) return PopResult::kTimeout;
  if (items_.empty()) return PopResult::kClosed;
  *out = std::move(items_.front());
  items_.pop_front();
  UpdateGauge();
  lock.unlock();
  not_full_.notify_one();
  return PopResult::kItem;
}

void BoundedRequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t BoundedRequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool BoundedRequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace lacb::serve

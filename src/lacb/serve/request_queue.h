// Bounded MPSC ingestion queue: the service's admission-control front door.
//
// Producers (request handlers, load generators, appeal re-queues) push from
// any thread; the single consumer is the micro-batcher thread. The queue is
// bounded: TryPush fails immediately when the bound is hit — that is the
// admission-control path, the caller counts the request as shed — while
// PushBlocking waits for room (used for control tokens that must not be
// dropped). Backpressure composes through the pipeline: a slow worker pool
// fills the batch channel, which stalls the batcher, which fills this
// queue, which sheds new arrivals instead of growing without bound.
//
// Items are either client requests or flush tokens. A flush token asks the
// micro-batcher to close the batch it is currently forming (day boundaries
// and lockstep replay use this to force deterministic batch edges).

#ifndef LACB_SERVE_REQUEST_QUEUE_H_
#define LACB_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <type_traits>

#include "lacb/obs/metrics.h"
#include "lacb/sim/request.h"

namespace lacb::serve {

/// \brief One unit of work accepted by the ingestion queue.
struct QueueItem {
  enum class Kind { kRequest, kFlush };

  Kind kind = Kind::kRequest;
  sim::Request request;
  /// When the item entered the queue (end-to-end latency baseline).
  std::chrono::steady_clock::time_point enqueued_at;

  static QueueItem Flush() {
    QueueItem item;
    item.kind = Kind::kFlush;
    item.enqueued_at = std::chrono::steady_clock::now();
    return item;
  }
  static QueueItem Of(const sim::Request& request) {
    QueueItem item;
    item.kind = Kind::kRequest;
    item.request = request;
    item.enqueued_at = std::chrono::steady_clock::now();
    return item;
  }
};

// Queue timestamps feed batch deadlines and latency accounting; pin them
// to the monotonic clock so wall-clock (NTP) steps cannot re-order or
// starve pops.
static_assert(std::is_same_v<decltype(QueueItem{}.enqueued_at),
                             std::chrono::steady_clock::time_point>,
              "ingestion timestamps must use steady_clock");

/// \brief Outcome of a consumer pop.
enum class PopResult {
  kItem,     ///< `*out` holds the next item.
  kTimeout,  ///< Deadline expired with no item available.
  kClosed,   ///< Queue closed and fully drained.
};

/// \brief Bounded multi-producer single-consumer queue of QueueItems.
class BoundedRequestQueue {
 public:
  /// \brief `capacity` > 0 bounds the number of queued items; an optional
  /// gauge tracks the live depth (e.g. "serve.queue_depth").
  explicit BoundedRequestQueue(size_t capacity, obs::Gauge* depth_gauge = nullptr);

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// \brief Non-blocking producer push. Returns false — the caller sheds
  /// the item — when the queue is full or closed.
  bool TryPush(QueueItem item);

  /// \brief Blocking producer push: waits for room. Returns false only if
  /// the queue is (or becomes) closed.
  bool PushBlocking(QueueItem item);

  /// \brief Consumer pop; blocks until an item arrives or the queue is
  /// closed and drained.
  PopResult Pop(QueueItem* out);

  /// \brief Consumer pop with a deadline; kTimeout when it expires first.
  PopResult PopUntil(std::chrono::steady_clock::time_point deadline,
                     QueueItem* out);

  /// \brief Closes the queue: further pushes fail, pops drain the backlog
  /// then return kClosed. Idempotent.
  void Close();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  bool closed() const;

 private:
  void UpdateGauge();  // callers hold mu_

  const size_t capacity_;
  obs::Gauge* depth_gauge_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueueItem> items_;
  bool closed_ = false;
};

}  // namespace lacb::serve

#endif  // LACB_SERVE_REQUEST_QUEUE_H_

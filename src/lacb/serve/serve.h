// Umbrella header for the online serving layer.
//
//   auto factory = lacb::core::SuitePolicyFactory(data, suite, index);
//   lacb::serve::ServedRunOptions opts;
//   opts.serve.num_workers = 4;
//   opts.mode = lacb::serve::LoadMode::kFreeRunReplay;
//   auto run = lacb::serve::RunPolicyServed(data, factory, opts);
//
// See docs/serving.md for the architecture, configuration knobs,
// backpressure semantics, and metric names.

#ifndef LACB_SERVE_SERVE_H_
#define LACB_SERVE_SERVE_H_

#include "lacb/serve/broker_store.h"
#include "lacb/serve/fault.h"
#include "lacb/serve/load_generator.h"
#include "lacb/serve/micro_batcher.h"
#include "lacb/serve/request_queue.h"
#include "lacb/serve/service.h"
#include "lacb/serve/supervisor.h"

#endif  // LACB_SERVE_SERVE_H_

#include "lacb/serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>

#include "lacb/common/rng.h"
#include "lacb/common/stopwatch.h"
#include "lacb/matching/assignment.h"
#include "lacb/obs/context.h"
#include "lacb/persist/serializers.h"
#include "lacb/policy/lacb_policy.h"

namespace lacb::serve {

namespace {

// Flow identity of a request across the serve pipeline. Request ids are
// non-negative and a flow id of 0 means "no flow", so shift by one.
uint64_t RequestFlowId(const sim::Request& request) {
  return static_cast<uint64_t>(request.id) + 1;
}

void WriteBrokerSlots(persist::ByteWriter* w,
                      const std::vector<BrokerSlot>& slots) {
  w->U64(slots.size());
  for (const BrokerSlot& s : slots) {
    w->F64(s.workload);
    w->F64(s.capacity);
    w->F64(s.day_utility);
    w->U64(s.served_total);
    w->F64(s.last_workload);
    w->F64(s.last_signup_rate);
  }
}

Result<std::vector<BrokerSlot>> ReadBrokerSlots(persist::ByteReader* r) {
  LACB_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  std::vector<BrokerSlot> slots;
  slots.reserve(std::min<uint64_t>(n, 4096));
  for (uint64_t i = 0; i < n; ++i) {
    BrokerSlot s;
    LACB_ASSIGN_OR_RETURN(s.workload, r->F64());
    LACB_ASSIGN_OR_RETURN(s.capacity, r->F64());
    LACB_ASSIGN_OR_RETURN(s.day_utility, r->F64());
    LACB_ASSIGN_OR_RETURN(s.served_total, r->U64());
    LACB_ASSIGN_OR_RETURN(s.last_workload, r->F64());
    LACB_ASSIGN_OR_RETURN(s.last_signup_rate, r->F64());
    slots.push_back(s);
  }
  return slots;
}

// Horizons exported as gauges are capped so downstream JSON/Prometheus
// consumers never see astronomically large (or infinite) values; anything
// beyond ~11 days is operationally equivalent to "no horizon".
constexpr double kHorizonGaugeCap = 1e6;

// Lead time is a signed difference (a late signal is a negative lead), so
// its "not yet measurable" sentinel sits far outside the plausible range
// instead of at -1.
constexpr double kNoLeadTime = -1e6;

double CapHorizon(double h) {
  if (h < 0.0) return obs::kNoHorizon;
  return std::min(h, kHorizonGaugeCap);
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", s);
  return buf;
}

}  // namespace

// Estimators, detectors, lead-time stamps, and instrument pointers of the
// forecasting plane — allocated at Start() only when
// ServeOptions::forecasting is enabled, so the default path carries a null
// pointer and nothing else. All mutable state is guarded by `mu` except
// `epoch` (immutable) and the `shed_stamped` fast-path flag Submit checks
// before taking the lock.
struct AssignmentService::ForecastRuntime {
  ForecastRuntime(const ForecastOptions& opt, size_t num_brokers)
      : epoch(std::chrono::steady_clock::now()),
        brokers(num_brokers,
                obs::HorizonEstimator::Options{opt.alpha, opt.beta}),
        queue_depth(opt.alpha, opt.beta),
        arrival_rate(opt.alpha, opt.beta),
        burst(obs::BurstDetector::Options{opt.burst_window,
                                          opt.burst_z_threshold,
                                          opt.burst_min_ratio,
                                          /*min_samples=*/8}),
        solve_drift(obs::DriftDetector::Options{opt.cusum_slack,
                                                opt.cusum_threshold,
                                                /*warmup=*/16}),
        admission_drift(obs::DriftDetector::Options{opt.cusum_slack,
                                                    opt.cusum_threshold,
                                                    /*warmup=*/16}) {}

  /// Seconds since the runtime was created (the time axis every estimator
  /// observation and lead-time stamp lives on).
  double Now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }

  const std::chrono::steady_clock::time_point epoch;

  mutable std::mutex mu;
  obs::HorizonEstimator brokers;       // per-broker residual capacity
  obs::HoltEstimator queue_depth;      // ingestion-queue depth
  obs::HoltEstimator arrival_rate;     // requests/second (admitted + shed)
  obs::BurstDetector burst;            // on the arrival rate
  obs::DriftDetector solve_drift;      // on non-degraded solve seconds
  obs::DriftDetector admission_drift;  // on the per-sample shed fraction

  // Rate-window bookkeeping between batch-commit samples.
  double last_sample_t = -1.0;
  uint64_t last_arrivals = 0;
  uint64_t last_shed = 0;

  // Lead-time stamps (seconds on the epoch axis; -1 = never happened).
  // first_signal is the earliest pressure signal (burst firing or a
  // horizon inside warn_horizon_seconds); first_shed / first_degraded are
  // the earliest *actual* capacity events. Their difference is the lead
  // time the bench scores.
  double first_signal_t = -1.0;
  double first_shed_t = -1.0;
  double first_degraded_t = -1.0;
  std::atomic<bool> shed_stamped{false};

  // Instruments (registered in Start() under serve.forecast.*).
  obs::Counter* samples = nullptr;
  obs::Counter* burst_firings = nullptr;
  obs::Gauge* broker_horizon_min = nullptr;
  obs::Gauge* broker_horizon_p10 = nullptr;
  obs::Gauge* broker_horizon_median = nullptr;
  obs::Gauge* queue_horizon = nullptr;
  obs::Gauge* arrival_rate_gauge = nullptr;
  obs::Gauge* arrival_trend_gauge = nullptr;
  obs::Gauge* burst_active_gauge = nullptr;
  obs::Gauge* drift_score_gauge = nullptr;
  obs::Gauge* first_signal_gauge = nullptr;
  obs::Gauge* first_shed_gauge = nullptr;
  obs::Gauge* first_degraded_gauge = nullptr;
  obs::Gauge* lead_time_gauge = nullptr;

  // --- Derived quantities; callers hold mu ---

  /// Seconds until the queue depth projection reaches `capacity`.
  double QueueHorizonLocked(double at_time, double capacity) const {
    if (!queue_depth.has_trend()) return obs::kNoHorizon;
    return obs::CrossingHorizonSeconds(queue_depth.LevelAt(at_time),
                                       queue_depth.trend(), capacity,
                                       /*rising=*/true);
  }

  /// Minimum predicted broker-exhaustion horizon (kNoHorizon when no
  /// broker projects a crossing).
  double MinBrokerHorizonLocked(double at_time) const {
    double best = obs::kNoHorizon;
    for (size_t i = 0; i < brokers.num_series(); ++i) {
      double h = brokers.HorizonSeconds(i, at_time, 0.0, /*rising=*/false);
      if (h < 0.0) continue;
      if (best < 0.0 || h < best) best = h;
    }
    return best;
  }

  double MaxDriftScoreLocked() const {
    return std::max(solve_drift.score(), admission_drift.score());
  }
};

Result<std::unique_ptr<AssignmentService>> AssignmentService::Create(
    const sim::DatasetConfig& config, const policy::PolicyFactory& factory,
    const ServeOptions& options) {
  if (!factory) {
    return Status::InvalidArgument("AssignmentService requires a factory");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument("AssignmentService requires >= 1 worker");
  }
  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(config));
  if (options.scenario != nullptr) {
    const scenario::CompiledScenario& sc = *options.scenario;
    if (sc.spec().two_sided.enabled) {
      return Status::InvalidArgument(
          "two-sided scenario mode is offline-only (RunPolicyScenario); the "
          "serve path commits one edge per request");
    }
    if (sc.HasArrivalShaping()) {
      LACB_ASSIGN_OR_RETURN(auto shaped,
                            sc.ShapeSchedule(platform.all_requests()));
      LACB_RETURN_NOT_OK(platform.SetRequestSchedule(std::move(shaped)));
    }
    for (size_t b : sc.initially_inactive()) {
      LACB_RETURN_NOT_OK(platform.SetBrokerActive(b, false));
    }
  }
  std::vector<std::unique_ptr<policy::AssignmentPolicy>> replicas;
  replicas.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    LACB_ASSIGN_OR_RETURN(std::unique_ptr<policy::AssignmentPolicy> replica,
                          factory());
    if (replica == nullptr) {
      return Status::InvalidArgument("policy factory returned null");
    }
    replica->set_solver_config(options.solver);
    LACB_RETURN_NOT_OK(replica->Initialize(platform));
    replicas.push_back(std::move(replica));
  }
  return std::unique_ptr<AssignmentService>(new AssignmentService(
      std::make_unique<sim::Platform>(std::move(platform)),
      std::move(replicas), options));
}

AssignmentService::AssignmentService(
    std::unique_ptr<sim::Platform> platform,
    std::vector<std::unique_ptr<policy::AssignmentPolicy>> replicas,
    const ServeOptions& options)
    : options_(options),
      platform_(std::move(platform)),
      replicas_(std::move(replicas)),
      policy_name_(replicas_.front()->name()),
      store_(platform_->num_brokers(), options.num_stripes) {
  channel_capacity_ = options_.batch_channel_capacity != 0
                          ? options_.batch_channel_capacity
                          : 2 * options_.num_workers;
  if (options_.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(options_.fault_plan);
  }
}

AssignmentService::~AssignmentService() { Shutdown(); }

Status AssignmentService::Start() {
  if (started_) return Status::FailedPrecondition("service already started");
  registry_ = &obs::ActiveRegistry();
  tracer_ = &obs::ActiveTracer();
  recorder_ = obs::ActiveEventRecorder();
  submitted_counter_ = &registry_->GetCounter(
      "serve.submitted", "Requests accepted by the ingestion queue.");
  shed_counter_ = &registry_->GetCounter(
      "serve.shed_requests",
      "Requests refused at admission (queue full or no open day).");
  assigned_counter_ = &registry_->GetCounter(
      "serve.assigned_requests", "Requests committed to a broker.");
  unmatched_counter_ = &registry_->GetCounter(
      "serve.unmatched_requests",
      "Requests the policy left unassigned in a committed batch.");
  appeal_counter_ = &registry_->GetCounter(
      "serve.appeals_requeued", "Appeals re-queued into later batches.");
  batch_counter_ =
      &registry_->GetCounter("serve.batches", "Batches committed.");
  size_close_counter_ = &registry_->GetCounter("serve.batch_close.size");
  deadline_close_counter_ =
      &registry_->GetCounter("serve.batch_close.deadline");
  flush_close_counter_ = &registry_->GetCounter("serve.batch_close.flush");
  failed_counter_ = &registry_->GetCounter(
      "serve.failed_requests",
      "Requests in batches whose commit retries were exhausted.");
  dropped_counter_ = &registry_->GetCounter("serve.dropped_appeals");
  degraded_counter_ = &registry_->GetCounter(
      "serve.degraded_batches",
      "Batches solved by the greedy capacity-aware fallback.");
  retry_counter_ = &registry_->GetCounter("serve.commit_retries");
  redrive_counter_ = &registry_->GetCounter("serve.redriven_batches");
  stall_counter_ = &registry_->GetCounter("serve.worker_stalls");
  crash_counter_ = &registry_->GetCounter("serve.worker_crashes");
  restart_counter_ = &registry_->GetCounter("serve.worker_restarts");
  inflight_gauge_ = &registry_->GetGauge("serve.inflight_batches");
  carryover_gauge_ = &registry_->GetGauge("serve.carryover_depth");
  health_gauge_ = &registry_->GetGauge(
      "serve.health_state", "0 = healthy, 1 = degraded, 2 = unhealthy.");
  batch_size_hist_ = &registry_->GetHistogram(
      "serve.batch_size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  assign_latency_hist_ =
      &registry_->GetHistogram("serve.batch_assign_seconds");
  e2e_latency_hist_ = &registry_->GetHistogram("serve.e2e_seconds");

  if (options_.stage_attribution) {
    stage_queue_wait_hist_ =
        &registry_->GetHistogram("serve.stage.queue_wait_seconds");
    stage_channel_wait_hist_ =
        &registry_->GetHistogram("serve.stage.channel_wait_seconds");
    stage_solve_hist_ = &registry_->GetHistogram("serve.stage.solve_seconds");
    stage_commit_hist_ =
        &registry_->GetHistogram("serve.stage.commit_seconds");
    stage_disposition_hist_ =
        &registry_->GetHistogram("serve.stage.disposition_seconds");
    stage_queue_wait_total_ =
        &registry_->GetGauge("serve.stage.queue_wait_total_seconds");
    stage_channel_wait_total_ =
        &registry_->GetGauge("serve.stage.channel_wait_total_seconds");
    stage_solve_total_ =
        &registry_->GetGauge("serve.stage.solve_total_seconds");
    stage_commit_total_ =
        &registry_->GetGauge("serve.stage.commit_total_seconds");
    stage_disposition_total_ =
        &registry_->GetGauge("serve.stage.disposition_total_seconds");
  }
  if (options_.solver_introspection) {
    solver_solves_counter_ = &registry_->GetCounter("serve.solver.solves");
    solver_iterations_counter_ =
        &registry_->GetCounter("serve.solver.iterations");
    solver_paths_counter_ =
        &registry_->GetCounter("serve.solver.augmenting_paths");
    solver_duals_counter_ =
        &registry_->GetCounter("serve.solver.dual_updates");
    solver_rows_hist_ = &registry_->GetHistogram(
        "serve.solver.problem_rows",
        std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    solver_seconds_hist_ =
        &registry_->GetHistogram("serve.solver.solve_seconds");
    solver_objective_total_ =
        &registry_->GetGauge("serve.solver.objective_total");
    solver_backend_gauge_ = &registry_->GetGauge("serve.solver.backend");
    solver_rounds_counter_ =
        &registry_->GetCounter("serve.solver.approx_rounds");
  }
  if (recorder_ != nullptr) {
    timeline_dropped_counter_ =
        &registry_->GetCounter("obs.timeline_dropped_events");
  }
  for (const ServedSlo& slo : options_.slos) {
    SloRuntime rt;
    rt.target = slo.target;
    LACB_ASSIGN_OR_RETURN(rt.tracker, obs::SloTracker::Create(slo.spec));
    const std::string prefix = "slo." + slo.spec.name;
    rt.burn_short = &registry_->GetGauge(prefix + ".burn_rate_short");
    rt.burn_long = &registry_->GetGauge(prefix + ".burn_rate_long");
    rt.state = &registry_->GetGauge(prefix + ".state");
    rt.budget = &registry_->GetGauge(prefix + ".budget_remaining");
    rt.budget->Set(1.0);  // untouched budget until the first event
    slos_.push_back(std::move(rt));
  }
  if (options_.forecasting.enabled) {
    forecast_ = std::make_unique<ForecastRuntime>(options_.forecasting,
                                                  platform_->num_brokers());
    ForecastRuntime& fr = *forecast_;
    fr.samples = &registry_->GetCounter(
        "serve.forecast.samples",
        "Batch-commit samples fed to the forecasting plane.");
    fr.burst_firings = &registry_->GetCounter(
        "serve.forecast.burst_firings",
        "Arrival-rate burst detector firings (onsets, not plateaus).");
    fr.broker_horizon_min = &registry_->GetGauge(
        "serve.forecast.broker_exhaustion_horizon_seconds_min",
        "Smallest predicted seconds until any broker's residual capacity "
        "reaches zero (-1: no crossing predicted).");
    fr.broker_horizon_p10 = &registry_->GetGauge(
        "serve.forecast.broker_exhaustion_horizon_seconds_p10",
        "10th percentile of predicted broker-exhaustion horizons (-1: no "
        "crossing predicted).");
    fr.broker_horizon_median = &registry_->GetGauge(
        "serve.forecast.broker_exhaustion_horizon_seconds_median",
        "Median predicted broker-exhaustion horizon in seconds (-1: no "
        "crossing predicted).");
    fr.queue_horizon = &registry_->GetGauge(
        "serve.forecast.queue_saturation_horizon_seconds",
        "Predicted seconds until the ingestion queue depth reaches its "
        "capacity (-1: no crossing predicted).");
    fr.arrival_rate_gauge = &registry_->GetGauge(
        "serve.forecast.arrival_rate",
        "Smoothed arrival rate (admitted + shed), requests/second.");
    fr.arrival_trend_gauge = &registry_->GetGauge(
        "serve.forecast.arrival_rate_trend",
        "Holt trend of the arrival rate, requests/second per second.");
    fr.burst_active_gauge = &registry_->GetGauge(
        "serve.forecast.burst_active",
        "1 while the latest arrival-rate sample fired the burst detector.");
    fr.drift_score_gauge = &registry_->GetGauge(
        "serve.forecast.drift_score",
        "Max CUSUM drift score across solve latency and admission "
        "detectors; >= 1 means the decision interval was crossed.");
    fr.first_signal_gauge = &registry_->GetGauge(
        "serve.forecast.first_signal_seconds",
        "Seconds from service start to the first pressure signal (-1: "
        "none yet).");
    fr.first_shed_gauge = &registry_->GetGauge(
        "serve.forecast.first_shed_seconds",
        "Seconds from service start to the first shed request (-1: none "
        "yet).");
    fr.first_degraded_gauge = &registry_->GetGauge(
        "serve.forecast.first_degraded_seconds",
        "Seconds from service start to the first degraded batch (-1: none "
        "yet).");
    fr.lead_time_gauge = &registry_->GetGauge(
        "serve.forecast.lead_time_seconds",
        "First actual capacity event (shed or degraded batch) minus first "
        "pressure signal; positive = the forecast led the event (-1000000: "
        "not yet measurable).");
    // Horizons start as "no crossing predicted" rather than zero.
    fr.broker_horizon_min->Set(obs::kNoHorizon);
    fr.broker_horizon_p10->Set(obs::kNoHorizon);
    fr.broker_horizon_median->Set(obs::kNoHorizon);
    fr.queue_horizon->Set(obs::kNoHorizon);
    fr.first_signal_gauge->Set(-1.0);
    fr.first_shed_gauge->Set(-1.0);
    fr.first_degraded_gauge->Set(-1.0);
    fr.lead_time_gauge->Set(kNoLeadTime);
  }

  queue_ = std::make_unique<BoundedRequestQueue>(
      options_.queue_capacity,
      &registry_->GetGauge("serve.queue_depth",
                           "Requests waiting in the ingestion queue."));
  MicroBatcherOptions batch_opts;
  batch_opts.max_batch_size = options_.max_batch_size;
  batch_opts.max_batch_delay = options_.max_batch_delay;
  batcher_ = std::make_unique<MicroBatcher>(queue_.get(), batch_opts,
                                            [this] { RetireWork(1); });

  SupervisorOptions sup_opts;
  sup_opts.stall_timeout = options_.stall_timeout;
  sup_opts.poll_interval = options_.supervisor_poll;
  supervisor_ = std::make_unique<WorkerSupervisor>(
      options_.num_workers, sup_opts,
      [this](MicroBatch&& batch) { RedriveBatch(std::move(batch)); },
      [this](size_t worker) { RestartWorker(worker); },
      [this](const char* kind) {
        if (std::string_view(kind) == "crash") {
          crash_counter_->Increment();
        } else {
          stall_counter_->Increment();
        }
        RecordIncident(kind);
      });

  if (options_.exposition_port >= 0) {
    obs::ExpositionOptions expo;
    expo.port = options_.exposition_port;
    expo.health_fn = [this] { return Health(); };
    LACB_ASSIGN_OR_RETURN(
        exposition_,
        obs::ExpositionServer::Start(
            [this] {
              // Refresh scrape-time-only derived state: the timeline-drop
              // mirror, the SLO burn gauges (via the health probe), the
              // forecast projections, and the store residual gauges.
              SyncTimelineDrops();
              Health();
              RefreshForecastTelemetry();
              RefreshStoreGauges();
              return registry_->Snapshot();
            },
            expo));
  }

  if (!options_.checkpoint_dir.empty()) {
    persist_ckpt_counter_ = &registry_->GetCounter("persist.checkpoints");
    persist_ckpt_bytes_counter_ =
        &registry_->GetCounter("persist.checkpoint_bytes");
    persist_wal_records_counter_ =
        &registry_->GetCounter("persist.wal_records");
    persist_wal_bytes_counter_ = &registry_->GetCounter("persist.wal_bytes");
    persist_replayed_counter_ =
        &registry_->GetCounter("persist.restore_replayed_batches");
    persist_torn_counter_ =
        &registry_->GetCounter("persist.torn_tail_truncations");
    persist_load_fail_counter_ =
        &registry_->GetCounter("persist.checkpoint_load_failures");
    persist_divergence_counter_ =
        &registry_->GetCounter("persist.replay_divergence");
    persist_carryover_counter_ =
        &registry_->GetCounter("persist.restore_carryover_requests");
    persist_last_seq_gauge_ =
        &registry_->GetGauge("persist.last_checkpoint_seq");
    persist_ckpt_seconds_hist_ =
        &registry_->GetHistogram("persist.checkpoint_seconds");
    ckpt_mgr_ = std::make_unique<persist::CheckpointManager>(
        options_.checkpoint_dir, options_.checkpoint_retain,
        options_.wal_fsync);
    // Warm restart happens before any thread spawns: the batcher's token
    // counter and carryover are still single-owner here.
    LACB_RETURN_NOT_OK(RestoreFromDurable());
  }

  started_ = true;
  supervisor_->Start();
  batcher_thread_ = std::thread([this] { BatcherLoop(); });
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    worker_threads_.reserve(options_.num_workers);
    for (size_t i = 0; i < options_.num_workers; ++i) {
      worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
  return Status::OK();
}

Status AssignmentService::OpenDay(size_t day) {
  if (!started_) return Status::FailedPrecondition("service not started");
  if (day_open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("previous day is still open");
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (in_system_ > 0) {
      return Status::FailedPrecondition("service must be idle to open a day");
    }
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    LACB_RETURN_NOT_OK(error_);
  }
  return DoOpenDay(day, /*log_wal=*/true);
}

Status AssignmentService::DoOpenDay(size_t day, bool log_wal) {
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    LACB_RETURN_NOT_OK(platform_->StartDayExternal(day));
    if (log_wal && wal_ != nullptr) {
      uint64_t before = wal_->bytes_written();
      LACB_RETURN_NOT_OK(wal_->AppendDayOpen(day));
      persist_wal_records_counter_->Increment();
      persist_wal_bytes_counter_->Increment(wal_->bytes_written() - before);
    }
  }
  store_.ResetDay();
  day_boundary_seconds_ = 0.0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Stopwatch sw;
    LACB_RETURN_NOT_OK(replicas_[i]->BeginDay(*platform_, day));
    if (i == 0) day_boundary_seconds_ += sw.ElapsedSeconds();
  }
  // Publish the lead replica's capacity estimates so the store's residual
  // view is live for capacity-aware consumers.
  if (auto* lacb = dynamic_cast<policy::LacbPolicy*>(replicas_.front().get());
      lacb != nullptr && !lacb->capacities().empty()) {
    store_.SetCapacities(lacb->capacities());
  }
  if (options_.scenario != nullptr && options_.scenario->HasChurn()) {
    std::lock_guard<std::mutex> lock(env_mu_);
    const std::vector<scenario::ChurnEvent>& timeline =
        options_.scenario->timeline();
    // Skip events of earlier days without applying them: on a warm restart
    // the activity mask already arrived inside the checkpointed platform,
    // and replaying past churn on top of it would double-apply.
    while (churn_cursor_ < timeline.size() &&
           timeline[churn_cursor_].day < day) {
      ++churn_cursor_;
    }
    // Day-open events (batch_offset 0) land before the first batch.
    while (churn_cursor_ < timeline.size() &&
           timeline[churn_cursor_].day == day &&
           timeline[churn_cursor_].batch_offset == 0) {
      bool applied = false;
      LACB_RETURN_NOT_OK(
          ApplyChurnEventLocked(timeline[churn_cursor_], &applied));
      ++churn_cursor_;
    }
    // Sync the store to the platform's mask: the lead replica published
    // capacity estimates for the whole roster above, including brokers
    // that are currently churned away (initial mask or restored state).
    if (platform_->AnyBrokerInactive()) {
      for (size_t b = 0; b < platform_->num_brokers(); ++b) {
        if (!platform_->BrokerActive(b)) store_.RetireBroker(b);
      }
    }
  }
  current_day_.store(day, std::memory_order_release);
  batch_seq_.store(0, std::memory_order_release);
  commits_today_.store(0, std::memory_order_release);
  day_open_.store(true, std::memory_order_release);
  return Status::OK();
}

bool AssignmentService::Submit(const sim::Request& request) {
  if (!started_) return false;
  if (!day_open_.load(std::memory_order_acquire)) {
    shed_counter_->Increment();
    RecordAdmissionSlo(false);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_system_;
  }
  if (!queue_->TryPush(QueueItem::Of(request))) {
    RetireWork(1);
    shed_counter_->Increment();
    RecordAdmissionSlo(false);
    NoteForecastShed();
    if (recorder_ != nullptr) recorder_->Instant("serve.shed");
    return false;
  }
  submitted_counter_->Increment();
  RecordAdmissionSlo(true);
  if (recorder_ != nullptr) {
    // The flow arrow starts at the producer's enqueue slice and is picked
    // up by the batcher and worker threads downstream.
    recorder_->Begin("serve.enqueue");
    recorder_->FlowBegin("serve.request", RequestFlowId(request));
    recorder_->End("serve.enqueue");
  }
  return true;
}

void AssignmentService::Flush() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_system_;
  }
  if (!queue_->PushBlocking(QueueItem::Flush())) {
    RetireWork(1);  // queue already closed (shutdown)
  }
}

Status AssignmentService::WaitIdle() {
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] {
      if (in_system_ <= 0) return true;
      std::lock_guard<std::mutex> elock(error_mu_);
      return !error_.ok();
    });
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

bool AssignmentService::WaitIdleFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(idle_mu_);
  return idle_cv_.wait_for(lock, timeout, [&] {
    if (in_system_ <= 0) return true;
    std::lock_guard<std::mutex> elock(error_mu_);
    return !error_.ok();
  });
}

Result<sim::DayOutcome> AssignmentService::CloseDay() {
  if (!day_open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("no day is open");
  }
  Flush();
  LACB_RETURN_NOT_OK(WaitIdle());
  LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome,
                        DoCloseDay(/*log_wal=*/true));
  // Day-boundary checkpoint: the WAL between days stays one record deep
  // (the close itself), so a crash at a day boundary restores instantly.
  if (ckpt_mgr_ != nullptr && !killed_.load(std::memory_order_acquire)) {
    LACB_RETURN_NOT_OK(CheckpointLocked());
  }
  return outcome;
}

Result<sim::DayOutcome> AssignmentService::DoCloseDay(bool log_wal) {
  sim::DayOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    if (options_.scenario != nullptr && options_.scenario->HasChurn()) {
      // Day-tail churn (batch_offset at/after the day's last commit)
      // still lands inside the open day, so fail-retirement can void the
      // broker's in-flight edges before they realize utility.
      const std::vector<scenario::ChurnEvent>& timeline =
          options_.scenario->timeline();
      size_t day = current_day_.load(std::memory_order_acquire);
      while (churn_cursor_ < timeline.size() &&
             timeline[churn_cursor_].day <= day) {
        if (timeline[churn_cursor_].day == day) {
          bool applied = false;
          LACB_RETURN_NOT_OK(
              ApplyChurnEventLocked(timeline[churn_cursor_], &applied));
        }
        ++churn_cursor_;
      }
    }
    if (log_wal && wal_ != nullptr) {
      // Redo logging: the close is journaled *before* it applies, so a
      // crash between the append and EndDay replays the close instead of
      // losing the day's feedback broadcast.
      uint64_t before = wal_->bytes_written();
      LACB_RETURN_NOT_OK(
          wal_->AppendDayClose(current_day_.load(std::memory_order_acquire)));
      persist_wal_records_counter_->Increment();
      persist_wal_bytes_counter_->Increment(wal_->bytes_written() - before);
    }
    LACB_ASSIGN_OR_RETURN(outcome, platform_->EndDay());
  }
  store_.ApplyDayFeedback(outcome);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Stopwatch sw;
    LACB_RETURN_NOT_OK(replicas_[i]->EndDay(outcome));
    if (i == 0) day_boundary_seconds_ += sw.ElapsedSeconds();
  }
  day_open_.store(false, std::memory_order_release);
  return outcome;
}

Status AssignmentService::ApplyChurn(const scenario::ChurnEvent& event) {
  if (!day_open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("churn requires an open day");
  }
  std::lock_guard<std::mutex> lock(env_mu_);
  bool applied = false;
  return ApplyChurnEventLocked(event, &applied);
}

Status AssignmentService::ApplyChurnEventLocked(
    const scenario::ChurnEvent& event, bool* applied) {
  *applied = false;
  if (event.broker >= platform_->num_brokers()) {
    return Status::OutOfRange("churn event names an unknown broker");
  }
  switch (event.kind) {
    case scenario::ChurnKind::kJoin: {
      if (platform_->BrokerActive(event.broker)) return Status::OK();
      LACB_RETURN_NOT_OK(platform_->SetBrokerActive(event.broker, true));
      // Cold-start prior into the store only: replicas are mid-day hot
      // (workers read them concurrently) and re-estimate at BeginDay.
      double cold = options_.scenario != nullptr
                        ? options_.scenario->ColdCapacity(event)
                        : event.cold_capacity;
      if (cold > 0.0) store_.SetBrokerCapacity(event.broker, cold);
      break;
    }
    case scenario::ChurnKind::kLeave: {
      if (!platform_->BrokerActive(event.broker)) return Status::OK();
      LACB_RETURN_NOT_OK(platform_->SetBrokerActive(event.broker, false));
      store_.RetireBroker(event.broker);
      break;
    }
    case scenario::ChurnKind::kFail: {
      if (!platform_->BrokerActive(event.broker)) return Status::OK();
      LACB_RETURN_NOT_OK(platform_->SetBrokerActive(event.broker, false));
      store_.RetireBroker(event.broker);
      LACB_RETURN_NOT_OK(platform_->RetireBrokerDay(event.broker));
      break;
    }
  }
  *applied = true;
  churn_events_.fetch_add(1, std::memory_order_relaxed);
  if (recorder_ != nullptr) recorder_->Instant("serve.churn");
  return Status::OK();
}

void AssignmentService::ApplyScenarioChurnDueLocked() {
  if (options_.scenario == nullptr || !options_.scenario->HasChurn()) return;
  const std::vector<scenario::ChurnEvent>& timeline =
      options_.scenario->timeline();
  size_t day = current_day_.load(std::memory_order_acquire);
  uint64_t commits = commits_today_.load(std::memory_order_acquire);
  while (churn_cursor_ < timeline.size()) {
    const scenario::ChurnEvent& ev = timeline[churn_cursor_];
    if (ev.day < day) {  // stale after a warm restart: already in the mask
      ++churn_cursor_;
      continue;
    }
    if (ev.day != day || ev.batch_offset > commits) break;
    bool applied = false;
    Status status = ApplyChurnEventLocked(ev, &applied);
    if (!status.ok()) {
      SetError(status);
      return;
    }
    ++churn_cursor_;
  }
}

void AssignmentService::Shutdown() {
  if (!started_ || shutdown_.load(std::memory_order_acquire)) return;
  // Residual flush: if a day is still open, the batcher may be holding a
  // forming batch — close it with a flush token and drain (bounded, in
  // case workers are wedged) so it commits through the normal path
  // instead of being dropped with the queue.
  if (day_open_.load(std::memory_order_acquire)) {
    Flush();
    WaitIdleFor(std::chrono::milliseconds(5000));
  }
  // Stop supervision before joining workers: afterwards no restart can
  // race a join, and no redrive can land in a closing channel.
  supervisor_->Stop();
  shutdown_.store(true, std::memory_order_release);
  queue_->Close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : worker_threads_) {
      if (t.joinable()) t.join();
    }
  }
  // Defensive drain: a crash that lands after the supervisor stopped can
  // leave batches in the channel; account for them explicitly so the
  // request ledger stays exact.
  for (;;) {
    MicroBatch batch;
    {
      std::lock_guard<std::mutex> lock(channel_mu_);
      if (channel_.empty()) break;
      batch = std::move(channel_.front());
      channel_.pop_front();
    }
    DropBatchTerminal(batch, DropKind::kFailed);
  }
  // Appeals stranded in the batcher's carryover (re-queued but never
  // emitted into a later batch — the end-of-run appeal overflow) are
  // dropped here with accounting, keeping the conservation identity exact:
  //   submitted == assigned + unmatched + failed + dropped_appeals.
  if (batcher_ != nullptr) {
    size_t stranded = batcher_->carryover_size();
    if (stranded > 0) {
      dropped_counter_->Increment(stranded);
      if (options_.disposition_sink) {
        BatchDisposition d;  // token 0: not batch-scoped, shutdown overflow
        d.day = current_day_.load(std::memory_order_acquire);
        for (const sim::Request& r : batcher_->SnapshotCarryover()) {
          d.dropped.push_back(r.id);
        }
        EmitDisposition(d);
      }
    }
  }
  // Final drop-count sync and forecast-gauge refresh: both run without an
  // exposition server too, so the captured RunTelemetry carries the
  // truthful totals and the final projections/lead-time stamps.
  SyncTimelineDrops();
  RefreshForecastTelemetry();
  if (exposition_ != nullptr) exposition_->Stop();
}

void AssignmentService::BatcherLoop() {
  obs::ScopedContextAdoption adopt(registry_, tracer_, recorder_);
  for (;;) {
    std::optional<MicroBatch> batch = batcher_->NextBatch();
    if (!batch.has_value()) break;
    if (recorder_ != nullptr) {
      recorder_->Begin("serve.batch_close");
      for (const sim::Request& r : batch->requests) {
        recorder_->FlowStep("serve.request", RequestFlowId(r));
      }
      recorder_->End("serve.batch_close");
    }
    carryover_gauge_->Set(static_cast<double>(batcher_->carryover_size()));
    std::unique_lock<std::mutex> lock(channel_mu_);
    channel_not_full_.wait(lock, [&] {
      return channel_closed_ || channel_.size() < channel_capacity_;
    });
    if (channel_closed_) {
      lock.unlock();
      DropBatchTerminal(*batch, DropKind::kFailed);
      continue;
    }
    channel_.push_back(std::move(*batch));
    inflight_gauge_->Set(static_cast<double>(channel_.size()));
    lock.unlock();
    channel_not_empty_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(channel_mu_);
    channel_closed_ = true;
  }
  channel_not_empty_.notify_all();
}

void AssignmentService::WorkerLoop(size_t worker_index) {
  obs::ScopedContextAdoption adopt(registry_, tracer_, recorder_);
  const bool supervised = supervisor_ != nullptr && supervisor_->active();
  for (;;) {
    MicroBatch batch;
    {
      std::unique_lock<std::mutex> lock(channel_mu_);
      channel_not_empty_.wait(
          lock, [&] { return channel_closed_ || !channel_.empty(); });
      if (channel_.empty()) return;  // closed and drained
      batch = std::move(channel_.front());
      channel_.pop_front();
      inflight_gauge_->Set(static_cast<double>(channel_.size()));
    }
    channel_not_full_.notify_one();

    // Park a copy for the supervisor before any fault can hit: a stalled
    // or crashed worker's batch is re-driven from the parked copy.
    if (supervised) supervisor_->Park(worker_index, batch);

    FaultDecision loop_fault =
        DecideAt(injector_.get(), FaultSite::kWorkerLoop);
    if (loop_fault.action == FaultAction::kCrashBeforeCommit && supervised &&
        supervisor_->TryCrash(worker_index)) {
      // Injected crash: this thread dies with the batch parked. The
      // supervisor re-drives the copy (to the channel front, so order is
      // preserved) and restarts the worker. Without a supervisor there is
      // nobody to restart us, so crash faults require one (see fault.h);
      // likewise TryCrash refuses once the supervisor is stopping (during
      // Shutdown's drain), because dying then would strand the batch.
      return;
    }
    if (loop_fault.action == FaultAction::kStall) {
      // A wedged worker: no heartbeat for the whole sleep, so a stall
      // longer than stall_timeout is detected and the batch re-driven;
      // when this worker eventually finishes anyway, the terminal claim
      // makes the slower twin a no-op.
      std::this_thread::sleep_for(loop_fault.stall);
    }

    const uint64_t token = batch.token;
    const size_t batch_requests = batch.requests.size();
    const int64_t from_queue = static_cast<int64_t>(batch.from_queue);
    Status status = ProcessBatch(worker_index, std::move(batch));
    if (supervised) supervisor_->Unpark(worker_index);
    if (!status.ok()) {
      SetError(status);
      // Fatal error before the terminal claim: fail the batch explicitly
      // so the ledger still balances and WaitIdle observes the retire.
      bool claimed = false;
      {
        std::lock_guard<std::mutex> lock(env_mu_);
        claimed = TryClaimTerminalLocked(token);
      }
      if (claimed) {
        failed_counter_->Increment(batch_requests);
        RetireWork(from_queue);
      }
    }
  }
}

Status AssignmentService::ProcessBatch(size_t worker_index, MicroBatch batch) {
  LACB_TRACE_SPAN("serve.batch");
  obs::ScopedTimelineEvent timeline("serve.batch");
  const bool attribute = stage_queue_wait_hist_ != nullptr;
  std::chrono::steady_clock::time_point picked_up{};
  if (attribute) picked_up = std::chrono::steady_clock::now();
  if (killed_.load(std::memory_order_acquire)) {
    // The injected process kill already fired: this process is "dead".
    // Every batch that still reaches a worker fails terminally; recovery
    // happens in a fresh service instance via checkpoint + WAL replay.
    DropBatchTerminal(batch, DropKind::kFailed);
    return Status::OK();
  }
  if (!day_open_.load(std::memory_order_acquire)) {
    // Only carryover-only batches can surface here (CloseDay drains every
    // queued item before the day closes): appeals that outlive the horizon
    // are dropped, exactly like the platform's appeal overflow at the end
    // of the run — but with explicit ledger accounting.
    DropBatchTerminal(batch, DropKind::kDroppedAppeal);
    return Status::OK();
  }
  {
    // Twin short-circuit: if another copy of this batch (a supervisor
    // redrive) already reached its terminal, skip the solve entirely.
    std::lock_guard<std::mutex> lock(env_mu_);
    if (terminal_tokens_.count(batch.token) != 0) return Status::OK();
  }

  // Store access (stall injection point: a slow snapshot read).
  FaultDecision store_fault = DecideAt(injector_.get(), FaultSite::kStore);
  if (store_fault.action == FaultAction::kStall) {
    std::this_thread::sleep_for(store_fault.stall);
    if (supervisor_ != nullptr) supervisor_->Beat(worker_index);
  }
  std::vector<double> workloads;
  store_.SnapshotWorkloads(&workloads);
  // Scenario churn steering: the policy sees churned-away brokers as
  // saturated. The mask copy happens under env_mu_ (churn mutates it at
  // commit boundaries); with several workers a batch may race the event
  // one commit either way — the post-solve sanitization below is what
  // guarantees no assignment ever lands on an inactive broker.
  std::vector<uint8_t> active_mask;
  const bool churning =
      options_.scenario != nullptr && options_.scenario->HasChurn();
  if (churning) {
    std::lock_guard<std::mutex> lock(env_mu_);
    active_mask = platform_->ActiveMaskCopy();
  }
  if (!active_mask.empty()) {
    for (size_t b = 0; b < active_mask.size() && b < workloads.size(); ++b) {
      if (active_mask[b] == 0) workloads[b] = scenario::kInactiveWorkload;
    }
  }
  la::Matrix utility;
  {
    LACB_TRACE_SPAN("serve.utility_matrix");
    utility = platform_->utility_model().UtilityMatrix(batch.requests,
                                                       platform_->brokers());
  }

  policy::BatchInput input;
  input.requests = &batch.requests;
  input.utility = &utility;
  input.workloads = &workloads;
  input.day = current_day_.load(std::memory_order_acquire);
  input.batch = batch_seq_.fetch_add(1, std::memory_order_acq_rel);
  input.collect_solve_stats = options_.solver_introspection;

  // Solve under budget. An injected overrun models a deadline abort: the
  // real solve is skipped outright (replica state untouched, no RNG
  // consumed — what a true cancellation would do). A measured overrun is
  // detected after the fact, so its result is discarded. Both degrade to
  // the greedy capacity-aware fallback over the store's residual view:
  // feasible, O(R×B), bounded utility loss instead of a missed batch.
  std::vector<int64_t> assignment;
  bool degraded = false;
  double solve_seconds = 0.0;
  const bool budgeted = options_.solve_budget.count() > 0;
  FaultDecision solve_fault = DecideAt(injector_.get(), FaultSite::kSolve);
  if (budgeted && solve_fault.action == FaultAction::kOverBudgetSolve) {
    degraded = true;
  } else {
    LACB_TRACE_SPAN("serve.assign");
    obs::ScopedTimelineEvent timeline_assign("serve.assign");
    Stopwatch sw;
    LACB_ASSIGN_OR_RETURN(assignment,
                          replicas_[worker_index]->AssignBatch(input));
    double elapsed = sw.ElapsedSeconds();
    solve_seconds = elapsed;
    assign_latency_hist_->Record(elapsed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      assign_seconds_ += elapsed;
    }
    if (attribute) {
      stage_solve_hist_->Record(elapsed);
      stage_solve_total_->Add(elapsed);
    }
    if (options_.solver_introspection) {
      if (const matching::SolveStats* ss =
              replicas_[worker_index]->last_solve_stats();
          ss != nullptr) {
        RecordSolveStats(*ss);
      }
    }
    if (budgeted &&
        elapsed > std::chrono::duration<double>(options_.solve_budget).count()) {
      degraded = true;
    }
  }
  if (degraded) {
    LACB_TRACE_SPAN("serve.assign_degraded");
    assignment = GreedyCapacityAssign(
        input, store_.ResidualCapacities(
                   std::numeric_limits<double>::infinity()));
  }
  // Sanitize before the commit (and before the WAL append inside it, so a
  // replayed batch re-commits the already-sanitized assignment): an edge
  // into an inactive broker becomes terminally unmatched. Catches both the
  // steered policy solve and the greedy fallback — the fallback treats the
  // retired broker's unknown capacity (0) as infinite residual.
  if (!active_mask.empty()) {
    for (int64_t& a : assignment) {
      if (a >= 0 && static_cast<size_t>(a) < active_mask.size() &&
          active_mask[static_cast<size_t>(a)] == 0) {
        a = matching::kUnmatched;
        churn_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (supervisor_ != nullptr) supervisor_->Beat(worker_index);

  Stopwatch stage_sw;  // the commit stage starts here
  bool owner = false;
  bool committed = false;
  sim::ExternalCommitOutcome commit;
  LACB_RETURN_NOT_OK(CommitWithRetry(worker_index, batch, assignment, &owner,
                                     &committed, &commit));
  const double commit_seconds = attribute ? stage_sw.ElapsedSeconds() : 0.0;
  if (!owner) {
    // A twin claimed the terminal first: it did (or will do) the
    // disposition and the retire; this copy evaporates.
    return Status::OK();
  }

  // Terminal owner: batch-level instruments count exactly once per token,
  // no matter how many twins raced.
  batch_counter_->Increment();
  switch (batch.close_cause) {
    case BatchCloseCause::kSize:
      size_close_counter_->Increment();
      break;
    case BatchCloseCause::kDeadline:
      deadline_close_counter_->Increment();
      break;
    case BatchCloseCause::kFlush:
    case BatchCloseCause::kShutdown:
      flush_close_counter_->Increment();
      break;
  }
  batch_size_hist_->Record(static_cast<double>(batch.requests.size()));
  if (attribute) {
    // Queue wait is per request (arrival → batch close); the batch's
    // critical-path contribution is the longest waiter. Channel wait and
    // everything downstream are batch-scoped.
    double max_queue_wait = 0.0;
    for (const auto& arrival : batch.arrival_times) {
      double wait =
          std::chrono::duration<double>(batch.closed_at - arrival).count();
      if (wait < 0.0) wait = 0.0;
      stage_queue_wait_hist_->Record(wait);
      if (wait > max_queue_wait) max_queue_wait = wait;
    }
    stage_queue_wait_total_->Add(max_queue_wait);
    double channel_wait =
        std::chrono::duration<double>(picked_up - batch.closed_at).count();
    if (channel_wait < 0.0) channel_wait = 0.0;
    stage_channel_wait_hist_->Record(channel_wait);
    stage_channel_wait_total_->Add(channel_wait);
    stage_commit_hist_->Record(commit_seconds);
    stage_commit_total_->Add(commit_seconds);
    stage_sw.Restart();  // the disposition stage starts here
  }
  if (degraded) {
    degraded_counter_->Increment();
    RecordIncident("degraded_batch");
  }

  if (committed) {
    const bool sink = static_cast<bool>(options_.disposition_sink);
    std::unordered_set<int64_t> appealed_ids;
    if (recorder_ != nullptr || sink) {
      appealed_ids.reserve(commit.appealed.size());
      for (const sim::Request& r : commit.appealed) appealed_ids.insert(r.id);
    }
    if (recorder_ != nullptr) {
      // Terminate each request's flow at the commit; appealed requests
      // keep their flow alive (they re-enter through carryover and step
      // again at the next batch close).
      recorder_->Begin("serve.disposition");
      for (const sim::Request& r : batch.requests) {
        if (appealed_ids.count(r.id) == 0) {
          recorder_->FlowEnd("serve.request", RequestFlowId(r));
        }
      }
      recorder_->End("serve.disposition");
    }
    BatchDisposition disposition;
    if (sink) {
      disposition.token = batch.token;
      disposition.day = current_day_.load(std::memory_order_acquire);
      for (size_t i = 0; i < batch.requests.size(); ++i) {
        const sim::Request& r = batch.requests[i];
        if (appealed_ids.count(r.id) != 0) continue;
        if (i < assignment.size() && assignment[i] >= 0) {
          disposition.assigned.push_back(r.id);
        } else {
          disposition.unmatched.push_back(r.id);
        }
      }
    }

    if (!commit.appealed.empty()) {
      appeal_counter_->Increment(commit.appealed.size());
      if (queue_->closed()) {
        // Shutdown already retired the batcher: an appeal re-queued now
        // would never be drained. Drop with accounting instead of
        // leaking the requests out of the ledger.
        dropped_counter_->Increment(commit.appealed.size());
        if (sink) {
          for (const sim::Request& r : commit.appealed) {
            disposition.dropped.push_back(r.id);
          }
        }
      } else {
        if (sink) {
          for (const sim::Request& r : commit.appealed) {
            disposition.appealed.push_back(r.id);
          }
        }
        batcher_->AddCarryover(std::move(commit.appealed));
        carryover_gauge_->Set(static_cast<double>(batcher_->carryover_size()));
      }
    }
    store_.CommitAccepted(commit.accepted);
    assigned_counter_->Increment(commit.accepted.size());
    size_t unmatched = 0;
    for (int64_t a : assignment) {
      if (a < 0) ++unmatched;
    }
    unmatched_counter_->Increment(unmatched);
    if (sink) EmitDisposition(disposition);

    auto now = std::chrono::steady_clock::now();
    for (const auto& arrival : batch.arrival_times) {
      double e2e = std::chrono::duration<double>(now - arrival).count();
      e2e_latency_hist_->Record(e2e);
      RecordLatencySlo(e2e);
    }
  } else {
    // Retry budget exhausted and the platform confirmed nothing applied:
    // the whole batch is shed with explicit accounting.
    failed_counter_->Increment(batch.requests.size());
    if (options_.disposition_sink) {
      BatchDisposition d;
      d.token = batch.token;
      d.day = current_day_.load(std::memory_order_acquire);
      d.failed.reserve(batch.requests.size());
      for (const sim::Request& r : batch.requests) d.failed.push_back(r.id);
      EmitDisposition(d);
    }
    RecordIncident("commit_failed");
  }
  if (attribute) {
    double disposition_seconds = stage_sw.ElapsedSeconds();
    stage_disposition_hist_->Record(disposition_seconds);
    stage_disposition_total_->Add(disposition_seconds);
  }
  // Batch-commit boundary: exactly one forecast sample per terminal-owned
  // batch (twins never reach this point).
  FeedForecast(degraded, solve_seconds);
  RetireWork(static_cast<int64_t>(batch.from_queue));
  // Injected process kill: fires at a batch boundary — this batch fully
  // disposed (committed, WAL-logged, retired), nothing after it survives.
  // The durable prefix is exactly the WAL through this batch, which is
  // what the crash-recovery gate replays.
  if (injector_ != nullptr && options_.fault_plan.kill_after_commits > 0 &&
      commits_applied_.load(std::memory_order_acquire) >=
          options_.fault_plan.kill_after_commits &&
      !killed_.exchange(true, std::memory_order_acq_rel)) {
    RecordIncident("process_kill");
    SetError(Status::Internal("injected process kill (fault plan)"));
  }
  return Status::OK();
}

Status AssignmentService::CommitWithRetry(
    size_t worker_index, const MicroBatch& batch,
    const std::vector<int64_t>& assignment, bool* owner, bool* committed,
    sim::ExternalCommitOutcome* outcome) {
  *owner = false;
  *committed = false;
  const size_t max_attempts = std::max<size_t>(1, options_.commit_max_attempts);
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    FaultDecision fault = DecideAt(injector_.get(), FaultSite::kCommit);
    if (fault.action == FaultAction::kStall) {
      // A slow commit; stall outside env_mu_ so the injected latency does
      // not serialize the whole pipeline behind this worker.
      std::this_thread::sleep_for(fault.stall);
      if (supervisor_ != nullptr) supervisor_->Beat(worker_index);
    }
    {
      LACB_TRACE_SPAN("serve.commit");
      obs::ScopedTimelineEvent timeline_commit("serve.commit");
      std::lock_guard<std::mutex> lock(env_mu_);
      if (terminal_tokens_.count(batch.token) != 0) {
        return Status::OK();  // a twin finished this batch; not the owner
      }
      if (fault.action != FaultAction::kTransientError) {
        LACB_ASSIGN_OR_RETURN(*outcome,
                              platform_->CommitExternalBatch(
                                  batch.requests, assignment, batch.token));
        if (!outcome->duplicate) {
          // First live apply of this token: journal it atomically with
          // the platform mutation (same env_mu_ critical section). This
          // runs even when the injected fault is a lost *ack* — the
          // commit applied, so it is durable state.
          if (wal_ != nullptr) {
            uint64_t before = wal_->bytes_written();
            LACB_RETURN_NOT_OK(wal_->AppendBatch(
                batch.token, current_day_.load(std::memory_order_acquire),
                static_cast<uint32_t>(worker_index), batch.requests,
                assignment));
            persist_wal_records_counter_->Increment();
            persist_wal_bytes_counter_->Increment(wal_->bytes_written() -
                                                  before);
          }
          commits_applied_.fetch_add(1, std::memory_order_acq_rel);
          commits_since_ckpt_.fetch_add(1, std::memory_order_acq_rel);
          commits_today_.fetch_add(1, std::memory_order_acq_rel);
          // Mid-day scenario churn lands at commit boundaries: an event
          // with batch_offset k applies once k batches of its day have
          // committed, atomically with the commit under env_mu_.
          ApplyScenarioChurnDueLocked();
        }
        if (fault.action != FaultAction::kTransientErrorAfterApply) {
          *owner = TryClaimTerminalLocked(batch.token);
          *committed = true;
          return Status::OK();
        }
        // Lost acknowledgement: the commit applied but this caller sees an
        // error. The retry hits the duplicate-token path and gets the
        // cached outcome back — capacity is decremented once.
      }
      // else: failed before the apply — nothing happened; retry below.
    }
    // Transient failure: bounded exponential backoff with deterministic
    // per-(token, attempt) jitter, slept outside every lock.
    retry_counter_->Increment();
    RecordIncident("commit_retry");
    if (attempt < max_attempts) {
      int64_t base_us = options_.commit_backoff_base.count()
                        << std::min<size_t>(attempt - 1, 20);
      int64_t capped_us =
          std::min(options_.commit_backoff_cap.count(), base_us);
      double jitter =
          0.5 + 0.5 * Rng(options_.retry_jitter_seed)
                          .Fork(batch.token * 0x9e3779b9ULL + attempt)
                          .Uniform();
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(static_cast<double>(capped_us) * jitter)));
      if (supervisor_ != nullptr) supervisor_->Beat(worker_index);
    }
  }
  // Retries exhausted. The last failure may have been a lost ack (the
  // commit applied), so reconcile against the platform before declaring
  // the batch failed — otherwise capacity would be consumed by requests
  // the ledger counts as shed.
  std::lock_guard<std::mutex> lock(env_mu_);
  if (terminal_tokens_.count(batch.token) != 0) return Status::OK();
  if (const sim::ExternalCommitOutcome* found =
          platform_->FindExternalCommit(batch.token)) {
    *outcome = *found;
    *owner = TryClaimTerminalLocked(batch.token);
    *committed = true;
    return Status::OK();
  }
  *owner = TryClaimTerminalLocked(batch.token);
  *committed = false;
  return Status::OK();
}

bool AssignmentService::TryClaimTerminalLocked(uint64_t token) {
  return terminal_tokens_.insert(token).second;
}

void AssignmentService::DropBatchTerminal(const MicroBatch& batch,
                                          DropKind kind) {
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    claimed = TryClaimTerminalLocked(batch.token);
  }
  if (!claimed) return;
  obs::Counter* bucket =
      kind == DropKind::kFailed ? failed_counter_ : dropped_counter_;
  if (!batch.requests.empty()) bucket->Increment(batch.requests.size());
  if (options_.disposition_sink && !batch.requests.empty()) {
    BatchDisposition d;
    d.token = batch.token;
    d.day = current_day_.load(std::memory_order_acquire);
    std::vector<int64_t>& ids =
        kind == DropKind::kFailed ? d.failed : d.dropped;
    ids.reserve(batch.requests.size());
    for (const sim::Request& r : batch.requests) ids.push_back(r.id);
    EmitDisposition(d);
  }
  RetireWork(static_cast<int64_t>(batch.from_queue));
}

void AssignmentService::EmitDisposition(const BatchDisposition& d) {
  if (options_.disposition_sink) options_.disposition_sink(d);
}

void AssignmentService::RedriveBatch(MicroBatch&& batch) {
  std::unique_lock<std::mutex> lock(channel_mu_);
  if (channel_closed_) {
    lock.unlock();
    DropBatchTerminal(batch, DropKind::kFailed);
    return;
  }
  // Channel *front*, skipping the capacity bound: the replacement worker
  // must see the re-driven batch before anything newer (deterministic
  // order), and the supervisor must never block behind backpressure.
  channel_.push_front(std::move(batch));
  inflight_gauge_->Set(static_cast<double>(channel_.size()));
  redrive_counter_->Increment();
  lock.unlock();
  channel_not_empty_.notify_one();
}

void AssignmentService::RestartWorker(size_t worker_index) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (shutdown_.load(std::memory_order_acquire)) return;
  std::thread& slot = worker_threads_[worker_index];
  if (slot.joinable()) slot.join();  // the crashed thread has exited
  restart_counter_->Increment();
  slot = std::thread([this, worker_index] { WorkerLoop(worker_index); });
}

void AssignmentService::RecordAdmissionSlo(bool admitted) {
  for (const SloRuntime& slo : slos_) {
    if (slo.target == SloTarget::kAdmission) slo.tracker->Record(admitted);
  }
}

void AssignmentService::RecordLatencySlo(double seconds) {
  for (const SloRuntime& slo : slos_) {
    if (slo.target == SloTarget::kLatency) {
      slo.tracker->Record(seconds <=
                          slo.tracker->spec().latency_threshold_seconds);
    }
  }
}

void AssignmentService::RecordSolveStats(const matching::SolveStats& stats) {
  if (solver_solves_counter_ == nullptr || stats.solves == 0) return;
  solver_solves_counter_->Increment(stats.solves);
  solver_iterations_counter_->Increment(stats.iterations);
  solver_paths_counter_->Increment(stats.augmenting_paths);
  solver_duals_counter_->Increment(stats.dual_updates);
  solver_rows_hist_->Record(static_cast<double>(stats.rows));
  solver_seconds_hist_->Record(stats.total_seconds);
  solver_objective_total_->Add(stats.objective);
  solver_backend_gauge_->Set(
      static_cast<double>(matching::approx::BackendGaugeCode(stats.solver)));
  if (stats.rounds > 0) solver_rounds_counter_->Increment(stats.rounds);
  std::lock_guard<std::mutex> lock(stats_mu_);
  solver_stats_.MergeFrom(stats);
}

void AssignmentService::SyncTimelineDrops() {
  if (recorder_ == nullptr || timeline_dropped_counter_ == nullptr) return;
  uint64_t total = recorder_->dropped();
  // exchange() makes concurrent scrapes race-safe: each drop increment is
  // attributed exactly once, a stale read yields a non-positive delta.
  uint64_t prev =
      timeline_drops_synced_.exchange(total, std::memory_order_acq_rel);
  if (total > prev) timeline_dropped_counter_->Increment(total - prev);
}

void AssignmentService::FeedForecast(bool degraded, double solve_seconds) {
  if (forecast_ == nullptr) return;
  ForecastRuntime& fr = *forecast_;
  const double t = fr.Now();
  const uint64_t shed = shed_counter_->value();
  const uint64_t arrivals = submitted_counter_->value() + shed;
  const double depth = static_cast<double>(queue_->size());
  const std::vector<double> residuals =
      store_.ResidualCapacities(std::numeric_limits<double>::infinity());

  std::lock_guard<std::mutex> lock(fr.mu);
  if (degraded && fr.first_degraded_t < 0.0) fr.first_degraded_t = t;
  fr.queue_depth.Observe(t, depth);
  for (size_t b = 0; b < residuals.size(); ++b) {
    if (std::isinf(residuals[b])) continue;  // capacity never installed
    fr.brokers.Observe(b, t, residuals[b]);
  }
  // A degraded batch skipped (or discarded) the real solve; its latency
  // would teach the drift detector the wrong baseline.
  if (!degraded) fr.solve_drift.Observe(solve_seconds);
  if (fr.last_sample_t < 0.0) {
    // First sample anchors the rate window; there is no rate yet.
    fr.last_sample_t = t;
    fr.last_arrivals = arrivals;
    fr.last_shed = shed;
  } else if (t - fr.last_sample_t > 1e-6) {
    const double dt = t - fr.last_sample_t;
    const double rate = static_cast<double>(arrivals - fr.last_arrivals) / dt;
    fr.arrival_rate.Observe(t, rate);
    if (fr.burst.Observe(rate)) fr.burst_firings->Increment();
    if (arrivals > fr.last_arrivals) {
      fr.admission_drift.Observe(static_cast<double>(shed - fr.last_shed) /
                                 static_cast<double>(arrivals -
                                                     fr.last_arrivals));
    }
    fr.last_sample_t = t;
    fr.last_arrivals = arrivals;
    fr.last_shed = shed;
  }
  fr.samples->Increment();
  if (fr.first_signal_t < 0.0) {
    const double warn = options_.forecasting.warn_horizon_seconds;
    bool signal = fr.burst.active() || fr.solve_drift.drifted() ||
                  fr.admission_drift.drifted();
    if (!signal) {
      double qh = fr.QueueHorizonLocked(
          t, static_cast<double>(options_.queue_capacity));
      signal = qh >= 0.0 && qh <= warn;
    }
    if (!signal) {
      double bh = fr.MinBrokerHorizonLocked(t);
      signal = bh >= 0.0 && bh <= warn;
    }
    if (signal) fr.first_signal_t = t;
  }
}

void AssignmentService::NoteForecastShed() {
  if (forecast_ == nullptr) return;
  ForecastRuntime& fr = *forecast_;
  // Fast path: after the first shed this is one relaxed load per shed.
  if (fr.shed_stamped.load(std::memory_order_relaxed)) return;
  const double t = fr.Now();
  std::lock_guard<std::mutex> lock(fr.mu);
  if (fr.first_shed_t < 0.0) {
    fr.first_shed_t = t;
    fr.shed_stamped.store(true, std::memory_order_relaxed);
  }
}

void AssignmentService::RefreshForecastTelemetry() {
  if (forecast_ == nullptr) return;
  ForecastRuntime& fr = *forecast_;
  const double t = fr.Now();
  std::lock_guard<std::mutex> lock(fr.mu);
  std::vector<double> horizons;
  for (size_t i = 0; i < fr.brokers.num_series(); ++i) {
    double h = fr.brokers.HorizonSeconds(i, t, 0.0, /*rising=*/false);
    if (h >= 0.0) horizons.push_back(h);
  }
  std::sort(horizons.begin(), horizons.end());
  if (horizons.empty()) {
    fr.broker_horizon_min->Set(obs::kNoHorizon);
    fr.broker_horizon_p10->Set(obs::kNoHorizon);
    fr.broker_horizon_median->Set(obs::kNoHorizon);
  } else {
    const size_t n = horizons.size();
    fr.broker_horizon_min->Set(CapHorizon(horizons.front()));
    fr.broker_horizon_p10->Set(
        CapHorizon(horizons[static_cast<size_t>(0.10 * (n - 1))]));
    fr.broker_horizon_median->Set(CapHorizon(horizons[n / 2]));
  }
  fr.queue_horizon->Set(CapHorizon(fr.QueueHorizonLocked(
      t, static_cast<double>(options_.queue_capacity))));
  fr.arrival_rate_gauge->Set(fr.arrival_rate.valid() ? fr.arrival_rate.level()
                                                     : 0.0);
  fr.arrival_trend_gauge->Set(fr.arrival_rate.trend());
  fr.burst_active_gauge->Set(fr.burst.active() ? 1.0 : 0.0);
  fr.drift_score_gauge->Set(fr.MaxDriftScoreLocked());
  fr.first_signal_gauge->Set(fr.first_signal_t);
  fr.first_shed_gauge->Set(fr.first_shed_t);
  fr.first_degraded_gauge->Set(fr.first_degraded_t);
  // Lead time = first actual capacity event − first pressure signal.
  double event_t = fr.first_shed_t;
  if (fr.first_degraded_t >= 0.0 &&
      (event_t < 0.0 || fr.first_degraded_t < event_t)) {
    event_t = fr.first_degraded_t;
  }
  fr.lead_time_gauge->Set((fr.first_signal_t >= 0.0 && event_t >= 0.0)
                              ? event_t - fr.first_signal_t
                              : kNoLeadTime);
}

void AssignmentService::RefreshStoreGauges() {
  if (registry_ == nullptr) return;
  const std::vector<double> residuals =
      store_.ResidualCapacities(std::numeric_limits<double>::infinity());
  std::vector<double> known;
  known.reserve(residuals.size());
  for (double r : residuals) {
    if (!std::isinf(r)) known.push_back(std::max(0.0, r));
  }
  // Lazy registration keeps the never-scraped default path instrument-free.
  obs::Gauge& min_gauge = registry_->GetGauge(
      "serve.store.residual_min",
      "Smallest residual capacity across brokers with installed capacity "
      "(-1: no capacities installed).");
  obs::Gauge& median_gauge = registry_->GetGauge(
      "serve.store.residual_median",
      "Median residual capacity across brokers with installed capacity "
      "(-1: no capacities installed).");
  obs::Gauge& gini_gauge = registry_->GetGauge(
      "serve.store.residual_gini",
      "Gini coefficient of residual capacities: 0 = headroom evenly "
      "spread, towards 1 = concentrated on few brokers (-1: no capacities "
      "installed).");
  if (known.empty()) {
    min_gauge.Set(-1.0);
    median_gauge.Set(-1.0);
    gini_gauge.Set(-1.0);
    return;
  }
  std::sort(known.begin(), known.end());
  min_gauge.Set(known.front());
  median_gauge.Set(known[known.size() / 2]);
  // Gini via the sorted-rank identity: G = 2·Σ i·x_i / (n·Σ x_i) − (n+1)/n.
  double total = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < known.size(); ++i) {
    total += known[i];
    weighted += static_cast<double>(i + 1) * known[i];
  }
  const double n = static_cast<double>(known.size());
  gini_gauge.Set(total > 0.0
                     ? (2.0 * weighted) / (n * total) - (n + 1.0) / n
                     : 0.0);
}

std::string AssignmentService::ForecastPressureDetail() const {
  if (forecast_ == nullptr) return std::string();
  const ForecastRuntime& fr = *forecast_;
  const double t = fr.Now();
  const double warn = options_.forecasting.warn_horizon_seconds;
  std::lock_guard<std::mutex> lock(fr.mu);
  std::string out;
  auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ", ";
    out += part;
  };
  if (double bh = fr.MinBrokerHorizonLocked(t); bh >= 0.0 && bh <= warn) {
    append("broker exhaustion in ~" + FormatSeconds(bh));
  }
  if (double qh = fr.QueueHorizonLocked(
          t, static_cast<double>(options_.queue_capacity));
      qh >= 0.0 && qh <= warn) {
    append("queue saturation in ~" + FormatSeconds(qh));
  }
  if (fr.burst.active()) append("arrival burst");
  if (fr.solve_drift.drifted()) append("solve-latency drift");
  if (fr.admission_drift.drifted()) append("admission drift");
  if (out.empty()) return out;
  return "pressure: " + out;
}

void AssignmentService::RecordIncident(const char* /*kind*/) {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    any_incident_ = true;
    ++incident_count_;
    last_incident_ = std::chrono::steady_clock::now();
  }
  Health();  // refresh the exported gauge
}

obs::HealthReport AssignmentService::Health() const {
  obs::HealthReport report;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_.ok()) {
      report.state = obs::HealthState::kUnhealthy;
      report.detail = "fatal: " + error_.message();
    }
  }
  if (report.state != obs::HealthState::kUnhealthy && supervisor_ != nullptr &&
      supervisor_->active()) {
    size_t unavailable = supervisor_->WorkersUnavailable();
    size_t total = supervisor_->num_workers();
    if (total > 0 && unavailable >= total) {
      report.state = obs::HealthState::kUnhealthy;
      report.detail =
          "all " + std::to_string(total) + " workers stalled or crashed";
    } else if (unavailable > 0) {
      report.state = obs::HealthState::kDegraded;
      report.detail = std::to_string(unavailable) + "/" +
                      std::to_string(total) + " workers unavailable";
    }
  }
  // SLO burn states fold in after worker availability: a critical SLO in
  // fast burn is an outage (unhealthy); any other burn degrades. The
  // exported slo.<name>.* gauges refresh on every probe.
  if (report.state != obs::HealthState::kUnhealthy) {
    for (const SloRuntime& slo : slos_) {
      obs::SloEvaluation eval = slo.tracker->Evaluate();
      slo.burn_short->Set(eval.burn_rate_short);
      slo.burn_long->Set(eval.burn_rate_long);
      slo.state->Set(static_cast<double>(static_cast<int>(eval.state)));
      slo.budget->Set(eval.budget_remaining);
      if (eval.state == obs::BurnState::kFastBurn &&
          slo.tracker->spec().critical) {
        report.state = obs::HealthState::kUnhealthy;
        report.detail =
            "slo " + slo.tracker->spec().name + " burning fast";
      } else if (eval.state != obs::BurnState::kOk &&
                 report.state == obs::HealthState::kHealthy) {
        report.state = obs::HealthState::kDegraded;
        report.detail = "slo " + slo.tracker->spec().name + " burning";
      }
    }
  }
  if (report.state == obs::HealthState::kHealthy) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (any_incident_ && std::chrono::steady_clock::now() - last_incident_ <=
                             options_.health_window) {
      report.state = obs::HealthState::kDegraded;
      report.detail =
          "recent fault incidents: " + std::to_string(incident_count_);
    }
  }
  // Advisory pressure annotation from the forecasting plane. Deliberately
  // applied after the state machine settles: forecasts annotate /healthz,
  // they never drive transitions.
  if (std::string pressure = ForecastPressureDetail(); !pressure.empty()) {
    report.detail = report.detail.empty() ? pressure
                                          : report.detail + "; " + pressure;
  }
  if (report.detail.empty()) report.detail = "serving";
  if (health_gauge_ != nullptr) {
    health_gauge_->Set(static_cast<double>(static_cast<int>(report.state)));
  }
  return report;
}

void AssignmentService::SetStoreCapacities(
    const std::vector<double>& capacities) {
  store_.SetCapacities(capacities);
}

void AssignmentService::RetireWork(int64_t units) {
  if (units == 0) return;
  bool idle;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    in_system_ -= units;
    idle = in_system_ <= 0;
  }
  if (idle) idle_cv_.notify_all();
}

void AssignmentService::SetError(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_.ok()) error_ = status;
  }
  idle_cv_.notify_all();
}

Status AssignmentService::MaybeCheckpoint() {
  if (ckpt_mgr_ == nullptr || options_.checkpoint_interval_batches == 0) {
    return Status::OK();
  }
  if (killed_.load(std::memory_order_acquire)) return Status::OK();
  if (commits_since_ckpt_.load(std::memory_order_acquire) <
      options_.checkpoint_interval_batches) {
    return Status::OK();
  }
  return Checkpoint();
}

Status AssignmentService::Checkpoint() {
  if (ckpt_mgr_ == nullptr) {
    return Status::FailedPrecondition(
        "persistence disabled (set ServeOptions::checkpoint_dir)");
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (in_system_ > 0) {
      return Status::FailedPrecondition(
          "checkpoint requires an idle service (call after WaitIdle)");
    }
  }
  return CheckpointLocked();
}

Status AssignmentService::CheckpointLocked() {
  Stopwatch sw;
  persist::Checkpoint ckpt;
  ckpt.seq = next_ckpt_seq_;
  uint64_t bytes = 0;
  {
    // env_mu_ makes the snapshot quiesced: no commit can interleave with
    // the section build or the WAL rotation.
    std::lock_guard<std::mutex> lock(env_mu_);
    LACB_RETURN_NOT_OK(BuildCheckpointSections(&ckpt));
    LACB_ASSIGN_OR_RETURN(bytes, ckpt_mgr_->Write(ckpt));
    if (options_.checkpoint_sink) {
      // Ship the bootstrap envelope before any record of the new WAL
      // sequence: a follower that has ckpt seq k can always replay wal-k.
      options_.checkpoint_sink(ckpt.seq, persist::EncodeCheckpoint(ckpt));
    }
    LACB_ASSIGN_OR_RETURN(
        wal_, persist::WalWriter::Create(ckpt_mgr_->WalPath(ckpt.seq),
                                         ckpt.seq, options_.wal_fsync));
    if (options_.wal_record_sink) {
      const uint64_t seq = ckpt.seq;
      wal_->set_record_sink([this, seq](std::string_view record) {
        options_.wal_record_sink(seq, record);
      });
    }
  }
  commits_since_ckpt_.store(0, std::memory_order_release);
  ++next_ckpt_seq_;
  persist_ckpt_counter_->Increment();
  persist_ckpt_bytes_counter_->Increment(bytes);
  persist_last_seq_gauge_->Set(static_cast<double>(ckpt.seq));
  persist_ckpt_seconds_hist_->Record(sw.ElapsedSeconds());
  return Status::OK();
}

Status AssignmentService::BuildCheckpointSections(persist::Checkpoint* out) {
  persist::ByteWriter meta;
  meta.Str(policy_name_);
  meta.U64(current_day_.load(std::memory_order_acquire));
  meta.Bool(day_open_.load(std::memory_order_acquire));
  meta.U64(batch_seq_.load(std::memory_order_acquire));
  meta.U64(batcher_->next_token());
  meta.U64(commits_today_.load(std::memory_order_acquire));
  meta.U64(replicas_.size());
  out->sections.push_back({"meta", meta.Release()});

  persist::ByteWriter platform_w;
  LACB_RETURN_NOT_OK(platform_->SaveState(&platform_w));
  out->sections.push_back({"platform", platform_w.Release()});

  persist::ByteWriter store_w;
  WriteBrokerSlots(&store_w, store_.ExportSlots());
  out->sections.push_back({"store", store_w.Release()});

  for (size_t i = 0; i < replicas_.size(); ++i) {
    persist::ByteWriter replica_w;
    LACB_RETURN_NOT_OK(replicas_[i]->SaveState(&replica_w));
    out->sections.push_back(
        {"replica." + std::to_string(i), replica_w.Release()});
  }

  persist::ByteWriter batcher_w;
  persist::WriteRequests(&batcher_w, batcher_->SnapshotCarryover());
  out->sections.push_back({"batcher", batcher_w.Release()});
  return Status::OK();
}

Status AssignmentService::ApplyCheckpoint(const persist::Checkpoint& ckpt,
                                          std::vector<sim::Request>* carryover) {
  const persist::CheckpointSection* meta = ckpt.Find("meta");
  if (meta == nullptr) {
    return Status::InvalidArgument("checkpoint missing meta section");
  }
  persist::ByteReader meta_r(meta->payload);
  LACB_ASSIGN_OR_RETURN(std::string policy, meta_r.Str());
  if (policy != policy_name_) {
    return Status::FailedPrecondition("checkpoint was cut by policy '" +
                                      policy + "', serving '" + policy_name_ +
                                      "'");
  }
  LACB_ASSIGN_OR_RETURN(uint64_t day, meta_r.U64());
  LACB_ASSIGN_OR_RETURN(bool day_open, meta_r.Bool());
  LACB_ASSIGN_OR_RETURN(uint64_t batch_seq, meta_r.U64());
  LACB_ASSIGN_OR_RETURN(uint64_t next_token, meta_r.U64());
  LACB_ASSIGN_OR_RETURN(uint64_t commits_today, meta_r.U64());
  LACB_ASSIGN_OR_RETURN(uint64_t num_replicas, meta_r.U64());
  if (num_replicas != replicas_.size()) {
    return Status::FailedPrecondition(
        "worker count changed across restore: checkpoint has " +
        std::to_string(num_replicas) + " replicas, service has " +
        std::to_string(replicas_.size()));
  }

  const persist::CheckpointSection* platform_s = ckpt.Find("platform");
  if (platform_s == nullptr) {
    return Status::InvalidArgument("checkpoint missing platform section");
  }
  persist::ByteReader platform_r(platform_s->payload);
  LACB_RETURN_NOT_OK(platform_->LoadState(&platform_r));

  const persist::CheckpointSection* store_s = ckpt.Find("store");
  if (store_s == nullptr) {
    return Status::InvalidArgument("checkpoint missing store section");
  }
  persist::ByteReader store_r(store_s->payload);
  LACB_ASSIGN_OR_RETURN(std::vector<BrokerSlot> slots,
                        ReadBrokerSlots(&store_r));
  LACB_RETURN_NOT_OK(store_.RestoreSlots(slots));

  for (size_t i = 0; i < replicas_.size(); ++i) {
    const persist::CheckpointSection* replica_s =
        ckpt.Find("replica." + std::to_string(i));
    if (replica_s == nullptr) {
      return Status::InvalidArgument("checkpoint missing replica section " +
                                     std::to_string(i));
    }
    persist::ByteReader replica_r(replica_s->payload);
    LACB_RETURN_NOT_OK(replicas_[i]->LoadState(&replica_r));
  }

  const persist::CheckpointSection* batcher_s = ckpt.Find("batcher");
  if (batcher_s == nullptr) {
    return Status::InvalidArgument("checkpoint missing batcher section");
  }
  persist::ByteReader batcher_r(batcher_s->payload);
  LACB_ASSIGN_OR_RETURN(*carryover, persist::ReadRequests(&batcher_r));

  current_day_.store(day, std::memory_order_release);
  day_open_.store(day_open, std::memory_order_release);
  batch_seq_.store(batch_seq, std::memory_order_release);
  commits_today_.store(commits_today, std::memory_order_release);
  batcher_->set_next_token(next_token);
  return Status::OK();
}

Status AssignmentService::RestoreFromDurable() {
  LACB_RETURN_NOT_OK(ckpt_mgr_->EnsureDir());
  Result<persist::LoadResult> loaded = ckpt_mgr_->LoadNewest();
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
    // Cold start: cut the anchor checkpoint immediately so the WAL always
    // has a base image to replay against.
    return CheckpointLocked();
  }
  if (loaded->skipped_corrupt > 0) {
    persist_load_fail_counter_->Increment(loaded->skipped_corrupt);
  }
  std::vector<sim::Request> carryover;
  LACB_RETURN_NOT_OK(ApplyCheckpoint(loaded->checkpoint, &carryover));
  next_ckpt_seq_ = loaded->checkpoint.seq + 1;

  // WALs chain: wal-k holds exactly the commits between checkpoint k and
  // checkpoint k+1, so replaying forward from the loaded sequence re-covers
  // everything acknowledged after it — including the WALs of *newer but
  // corrupt* checkpoints the loader fell back past. The chain ends at the
  // first missing file, unreadable header, or torn tail (the crash
  // frontier: nothing durable can exist beyond it).
  uint64_t replayed = 0;
  for (uint64_t seq = loaded->checkpoint.seq;; ++seq) {
    Result<persist::WalRecovery> recovery =
        persist::RecoverWal(ckpt_mgr_->WalPath(seq));
    if (!recovery.ok()) {
      if (recovery.status().code() != StatusCode::kNotFound) {
        // Unreadable WAL (bad header/version): count it and stop — the
        // checkpoint image plus the chain so far is all that is durable.
        persist_torn_counter_->Increment();
      }
      break;
    }
    LACB_RETURN_NOT_OK(
        ReplayWalRecords(recovery->records, &carryover, &replayed));
    if (recovery->truncated_torn_tail) {
      persist_torn_counter_->Increment();
      break;
    }
  }

  if (!carryover.empty()) {
    persist_carryover_counter_->Increment(carryover.size());
    batcher_->AddCarryover(std::move(carryover));
  }
  restore_info_.restored = true;
  restore_info_.day = current_day_.load(std::memory_order_acquire);
  restore_info_.day_open = day_open_.load(std::memory_order_acquire);
  restore_info_.batches_committed_today =
      commits_today_.load(std::memory_order_acquire);
  restore_info_.replayed_batches = replayed;
  persist_replayed_counter_->Increment(replayed);
  // Fresh anchor at seq+1: the next crash restores from here; the stale
  // WAL can never be replayed twice.
  return CheckpointLocked();
}

Status AssignmentService::ReplayWalRecords(
    const std::vector<persist::WalRecord>& records,
    std::vector<sim::Request>* carryover, uint64_t* replayed) {
  uint64_t max_token = 0;
  for (const persist::WalRecord& record : records) {
    switch (record.type) {
      case persist::WalRecordType::kDayOpen:
        LACB_RETURN_NOT_OK(
            DoOpenDay(static_cast<size_t>(record.day), /*log_wal=*/false));
        break;
      case persist::WalRecordType::kBatch: {
        // Recompute the assignment through the replica so its learned
        // state (value-function backups, exploration RNG) advances in
        // lockstep with the pre-crash process — then commit the
        // *recorded* assignment, which is what was acknowledged.
        std::vector<double> workloads;
        store_.SnapshotWorkloads(&workloads);
        la::Matrix utility = platform_->utility_model().UtilityMatrix(
            record.requests, platform_->brokers());
        policy::BatchInput input;
        input.requests = &record.requests;
        input.utility = &utility;
        input.workloads = &workloads;
        input.day = current_day_.load(std::memory_order_acquire);
        input.batch = batch_seq_.fetch_add(1, std::memory_order_acq_rel);
        size_t worker = record.worker_index % replicas_.size();
        Result<std::vector<int64_t>> recomputed =
            replicas_[worker]->AssignBatch(input);
        if (!recomputed.ok() || *recomputed != record.assignment) {
          // Divergence means the replica's restored state does not
          // reproduce the journaled decision. The recorded assignment
          // still commits (it is the acknowledged truth), but the
          // counter flags the replica drift for the recovery gate.
          persist_divergence_counter_->Increment();
        }
        LACB_ASSIGN_OR_RETURN(
            sim::ExternalCommitOutcome outcome,
            platform_->CommitExternalBatch(record.requests, record.assignment,
                                           record.token));
        if (!outcome.duplicate) {
          store_.CommitAccepted(outcome.accepted);
          commits_today_.fetch_add(1, std::memory_order_acq_rel);
          // Replay advances the churn cursor at the same commit
          // boundaries as the live run; events whose effect is already in
          // the restored mask re-apply as no-ops (idempotent).
          ApplyScenarioChurnDueLocked();
        }
        if (options_.record_replay_log) {
          // Re-derive the batch's disposition for coordinator
          // reconciliation — same id partition as the live sink.
          BatchDisposition d;
          d.token = record.token;
          d.day = record.day;
          std::unordered_set<int64_t> appealed_ids;
          appealed_ids.reserve(outcome.appealed.size());
          for (const sim::Request& r : outcome.appealed) {
            appealed_ids.insert(r.id);
            d.appealed.push_back(r.id);
          }
          for (size_t i = 0; i < record.requests.size(); ++i) {
            const sim::Request& r = record.requests[i];
            if (appealed_ids.count(r.id) != 0) continue;
            if (i < record.assignment.size() && record.assignment[i] >= 0) {
              d.assigned.push_back(r.id);
            } else {
              d.unmatched.push_back(r.id);
            }
          }
          replay_log_.push_back(std::move(d));
        }
        *carryover = std::move(outcome.appealed);
        max_token = std::max(max_token, record.token);
        ++*replayed;
        break;
      }
      case persist::WalRecordType::kDayClose: {
        LACB_ASSIGN_OR_RETURN(sim::DayOutcome outcome,
                              DoCloseDay(/*log_wal=*/false));
        if (options_.record_replay_log) {
          replayed_day_closes_.emplace_back(record.day,
                                            outcome.realized_utility);
        }
        break;
      }
    }
  }
  if (max_token + 1 > batcher_->next_token()) {
    batcher_->set_next_token(max_token + 1);
  }
  return Status::OK();
}

std::vector<int64_t> AssignmentService::CarryoverRequestIds() const {
  std::vector<int64_t> ids;
  if (batcher_ != nullptr) {
    for (const sim::Request& r : batcher_->SnapshotCarryover()) {
      ids.push_back(r.id);
    }
  }
  return ids;
}

Result<std::string> AssignmentService::SerializeReplicaState(size_t index) {
  if (index >= replicas_.size()) {
    return Status::OutOfRange("replica index out of range");
  }
  persist::ByteWriter w;
  LACB_RETURN_NOT_OK(replicas_[index]->SaveState(&w));
  return w.Release();
}

Result<std::string> AssignmentService::SerializePlatformState() {
  persist::ByteWriter w;
  std::lock_guard<std::mutex> lock(env_mu_);
  LACB_RETURN_NOT_OK(platform_->SaveState(&w));
  return w.Release();
}

ServeStats AssignmentService::Stats() const {
  ServeStats stats;
  if (!started_) return stats;
  stats.submitted = submitted_counter_->value();
  stats.shed = shed_counter_->value();
  stats.batches = batch_counter_->value();
  stats.assigned = assigned_counter_->value();
  stats.unmatched = unmatched_counter_->value();
  stats.appeals = appeal_counter_->value();
  stats.size_closes = size_close_counter_->value();
  stats.deadline_closes = deadline_close_counter_->value();
  stats.flush_closes = flush_close_counter_->value();
  stats.failed = failed_counter_->value();
  stats.dropped_appeals = dropped_counter_->value();
  stats.degraded_batches = degraded_counter_->value();
  stats.commit_retries = retry_counter_->value();
  stats.redriven_batches = redrive_counter_->value();
  stats.worker_stalls = stall_counter_->value();
  stats.worker_crashes = crash_counter_->value();
  stats.worker_restarts = restart_counter_->value();
  stats.churn_events = churn_events_.load(std::memory_order_relaxed);
  stats.churn_rejected = churn_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.assign_seconds = assign_seconds_;
    stats.solver = solver_stats_;
  }
  return stats;
}

}  // namespace lacb::serve

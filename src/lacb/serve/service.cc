#include "lacb/serve/service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "lacb/common/stopwatch.h"
#include "lacb/obs/context.h"
#include "lacb/policy/lacb_policy.h"

namespace lacb::serve {

namespace {

// Flow identity of a request across the serve pipeline. Request ids are
// non-negative and a flow id of 0 means "no flow", so shift by one.
uint64_t RequestFlowId(const sim::Request& request) {
  return static_cast<uint64_t>(request.id) + 1;
}

}  // namespace

Result<std::unique_ptr<AssignmentService>> AssignmentService::Create(
    const sim::DatasetConfig& config, const policy::PolicyFactory& factory,
    const ServeOptions& options) {
  if (!factory) {
    return Status::InvalidArgument("AssignmentService requires a factory");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument("AssignmentService requires >= 1 worker");
  }
  LACB_ASSIGN_OR_RETURN(sim::Platform platform, sim::Platform::Create(config));
  std::vector<std::unique_ptr<policy::AssignmentPolicy>> replicas;
  replicas.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    LACB_ASSIGN_OR_RETURN(std::unique_ptr<policy::AssignmentPolicy> replica,
                          factory());
    if (replica == nullptr) {
      return Status::InvalidArgument("policy factory returned null");
    }
    LACB_RETURN_NOT_OK(replica->Initialize(platform));
    replicas.push_back(std::move(replica));
  }
  return std::unique_ptr<AssignmentService>(new AssignmentService(
      std::make_unique<sim::Platform>(std::move(platform)),
      std::move(replicas), options));
}

AssignmentService::AssignmentService(
    std::unique_ptr<sim::Platform> platform,
    std::vector<std::unique_ptr<policy::AssignmentPolicy>> replicas,
    const ServeOptions& options)
    : options_(options),
      platform_(std::move(platform)),
      replicas_(std::move(replicas)),
      policy_name_(replicas_.front()->name()),
      store_(platform_->num_brokers(), options.num_stripes) {
  channel_capacity_ = options_.batch_channel_capacity != 0
                          ? options_.batch_channel_capacity
                          : 2 * options_.num_workers;
}

AssignmentService::~AssignmentService() { Shutdown(); }

Status AssignmentService::Start() {
  if (started_) return Status::FailedPrecondition("service already started");
  registry_ = &obs::ActiveRegistry();
  tracer_ = &obs::ActiveTracer();
  recorder_ = obs::ActiveEventRecorder();
  submitted_counter_ = &registry_->GetCounter("serve.submitted");
  shed_counter_ = &registry_->GetCounter("serve.shed_requests");
  assigned_counter_ = &registry_->GetCounter("serve.assigned_requests");
  unmatched_counter_ = &registry_->GetCounter("serve.unmatched_requests");
  appeal_counter_ = &registry_->GetCounter("serve.appeals_requeued");
  batch_counter_ = &registry_->GetCounter("serve.batches");
  size_close_counter_ = &registry_->GetCounter("serve.batch_close.size");
  deadline_close_counter_ =
      &registry_->GetCounter("serve.batch_close.deadline");
  flush_close_counter_ = &registry_->GetCounter("serve.batch_close.flush");
  inflight_gauge_ = &registry_->GetGauge("serve.inflight_batches");
  carryover_gauge_ = &registry_->GetGauge("serve.carryover_depth");
  batch_size_hist_ = &registry_->GetHistogram(
      "serve.batch_size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  assign_latency_hist_ =
      &registry_->GetHistogram("serve.batch_assign_seconds");
  e2e_latency_hist_ = &registry_->GetHistogram("serve.e2e_seconds");

  queue_ = std::make_unique<BoundedRequestQueue>(
      options_.queue_capacity, &registry_->GetGauge("serve.queue_depth"));
  MicroBatcherOptions batch_opts;
  batch_opts.max_batch_size = options_.max_batch_size;
  batch_opts.max_batch_delay = options_.max_batch_delay;
  batcher_ = std::make_unique<MicroBatcher>(queue_.get(), batch_opts,
                                            [this] { RetireWork(1); });

  if (options_.exposition_port >= 0) {
    obs::ExpositionOptions expo;
    expo.port = options_.exposition_port;
    LACB_ASSIGN_OR_RETURN(
        exposition_,
        obs::ExpositionServer::Start(
            [registry = registry_] { return registry->Snapshot(); }, expo));
  }

  started_ = true;
  batcher_thread_ = std::thread([this] { BatcherLoop(); });
  worker_threads_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

Status AssignmentService::OpenDay(size_t day) {
  if (!started_) return Status::FailedPrecondition("service not started");
  if (day_open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("previous day is still open");
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (in_system_ > 0) {
      return Status::FailedPrecondition("service must be idle to open a day");
    }
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    LACB_RETURN_NOT_OK(error_);
  }
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    LACB_RETURN_NOT_OK(platform_->StartDayExternal(day));
  }
  store_.ResetDay();
  day_boundary_seconds_ = 0.0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Stopwatch sw;
    LACB_RETURN_NOT_OK(replicas_[i]->BeginDay(*platform_, day));
    if (i == 0) day_boundary_seconds_ += sw.ElapsedSeconds();
  }
  // Publish the lead replica's capacity estimates so the store's residual
  // view is live for capacity-aware consumers.
  if (auto* lacb = dynamic_cast<policy::LacbPolicy*>(replicas_.front().get());
      lacb != nullptr && !lacb->capacities().empty()) {
    store_.SetCapacities(lacb->capacities());
  }
  current_day_.store(day, std::memory_order_release);
  batch_seq_.store(0, std::memory_order_release);
  day_open_.store(true, std::memory_order_release);
  return Status::OK();
}

bool AssignmentService::Submit(const sim::Request& request) {
  if (!started_) return false;
  if (!day_open_.load(std::memory_order_acquire)) {
    shed_counter_->Increment();
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_system_;
  }
  if (!queue_->TryPush(QueueItem::Of(request))) {
    RetireWork(1);
    shed_counter_->Increment();
    if (recorder_ != nullptr) recorder_->Instant("serve.shed");
    return false;
  }
  submitted_counter_->Increment();
  if (recorder_ != nullptr) {
    // The flow arrow starts at the producer's enqueue slice and is picked
    // up by the batcher and worker threads downstream.
    recorder_->Begin("serve.enqueue");
    recorder_->FlowBegin("serve.request", RequestFlowId(request));
    recorder_->End("serve.enqueue");
  }
  return true;
}

void AssignmentService::Flush() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_system_;
  }
  if (!queue_->PushBlocking(QueueItem::Flush())) {
    RetireWork(1);  // queue already closed (shutdown)
  }
}

Status AssignmentService::WaitIdle() {
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] {
      if (in_system_ <= 0) return true;
      std::lock_guard<std::mutex> elock(error_mu_);
      return !error_.ok();
    });
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

Result<sim::DayOutcome> AssignmentService::CloseDay() {
  if (!day_open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("no day is open");
  }
  Flush();
  LACB_RETURN_NOT_OK(WaitIdle());
  sim::DayOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    LACB_ASSIGN_OR_RETURN(outcome, platform_->EndDay());
  }
  store_.ApplyDayFeedback(outcome);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Stopwatch sw;
    LACB_RETURN_NOT_OK(replicas_[i]->EndDay(outcome));
    if (i == 0) day_boundary_seconds_ += sw.ElapsedSeconds();
  }
  day_open_.store(false, std::memory_order_release);
  return outcome;
}

void AssignmentService::Shutdown() {
  if (!started_ || shutdown_) return;
  shutdown_ = true;
  queue_->Close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  if (exposition_ != nullptr) exposition_->Stop();
}

void AssignmentService::BatcherLoop() {
  obs::ScopedContextAdoption adopt(registry_, tracer_, recorder_);
  for (;;) {
    std::optional<MicroBatch> batch = batcher_->NextBatch();
    if (!batch.has_value()) break;
    if (recorder_ != nullptr) {
      recorder_->Begin("serve.batch_close");
      for (const sim::Request& r : batch->requests) {
        recorder_->FlowStep("serve.request", RequestFlowId(r));
      }
      recorder_->End("serve.batch_close");
    }
    carryover_gauge_->Set(static_cast<double>(batcher_->carryover_size()));
    std::unique_lock<std::mutex> lock(channel_mu_);
    channel_not_full_.wait(lock, [&] {
      return channel_closed_ || channel_.size() < channel_capacity_;
    });
    if (channel_closed_) {
      lock.unlock();
      RetireWork(static_cast<int64_t>(batch->from_queue));
      continue;
    }
    channel_.push_back(std::move(*batch));
    inflight_gauge_->Set(static_cast<double>(channel_.size()));
    lock.unlock();
    channel_not_empty_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(channel_mu_);
    channel_closed_ = true;
  }
  channel_not_empty_.notify_all();
}

void AssignmentService::WorkerLoop(size_t worker_index) {
  obs::ScopedContextAdoption adopt(registry_, tracer_, recorder_);
  for (;;) {
    MicroBatch batch;
    {
      std::unique_lock<std::mutex> lock(channel_mu_);
      channel_not_empty_.wait(
          lock, [&] { return channel_closed_ || !channel_.empty(); });
      if (channel_.empty()) return;  // closed and drained
      batch = std::move(channel_.front());
      channel_.pop_front();
      inflight_gauge_->Set(static_cast<double>(channel_.size()));
    }
    channel_not_full_.notify_one();
    int64_t units = static_cast<int64_t>(batch.from_queue);
    Status status = ProcessBatch(worker_index, std::move(batch));
    if (!status.ok()) SetError(status);
    // Retire after the full disposition (including appeal re-queues) so
    // WaitIdle cannot observe a half-committed batch.
    RetireWork(units);
  }
}

Status AssignmentService::ProcessBatch(size_t worker_index, MicroBatch batch) {
  LACB_TRACE_SPAN("serve.batch");
  obs::ScopedTimelineEvent timeline("serve.batch");
  if (!day_open_.load(std::memory_order_acquire)) {
    // Only carryover-only batches can surface here (CloseDay drains every
    // queued item before the day closes): appeals that outlive the horizon
    // are dropped, exactly like the platform's appeal overflow at the end
    // of the run.
    return Status::OK();
  }
  batch_counter_->Increment();
  switch (batch.close_cause) {
    case BatchCloseCause::kSize:
      size_close_counter_->Increment();
      break;
    case BatchCloseCause::kDeadline:
      deadline_close_counter_->Increment();
      break;
    case BatchCloseCause::kFlush:
    case BatchCloseCause::kShutdown:
      flush_close_counter_->Increment();
      break;
  }
  batch_size_hist_->Record(static_cast<double>(batch.requests.size()));

  std::vector<double> workloads;
  store_.SnapshotWorkloads(&workloads);
  la::Matrix utility;
  {
    LACB_TRACE_SPAN("serve.utility_matrix");
    utility = platform_->utility_model().UtilityMatrix(batch.requests,
                                                       platform_->brokers());
  }

  policy::BatchInput input;
  input.requests = &batch.requests;
  input.utility = &utility;
  input.workloads = &workloads;
  input.day = current_day_.load(std::memory_order_acquire);
  input.batch = batch_seq_.fetch_add(1, std::memory_order_acq_rel);

  std::vector<int64_t> assignment;
  {
    LACB_TRACE_SPAN("serve.assign");
    obs::ScopedTimelineEvent timeline_assign("serve.assign");
    Stopwatch sw;
    LACB_ASSIGN_OR_RETURN(assignment,
                          replicas_[worker_index]->AssignBatch(input));
    double elapsed = sw.ElapsedSeconds();
    assign_latency_hist_->Record(elapsed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    assign_seconds_ += elapsed;
  }

  sim::ExternalCommitOutcome commit;
  {
    LACB_TRACE_SPAN("serve.commit");
    obs::ScopedTimelineEvent timeline_commit("serve.commit");
    std::lock_guard<std::mutex> lock(env_mu_);
    LACB_ASSIGN_OR_RETURN(
        commit, platform_->CommitExternalBatch(batch.requests, assignment));
  }

  if (recorder_ != nullptr) {
    // Terminate each request's flow at the commit; appealed requests keep
    // their flow alive (they re-enter through carryover and step again at
    // the next batch close).
    std::unordered_set<int64_t> appealed_ids;
    appealed_ids.reserve(commit.appealed.size());
    for (const sim::Request& r : commit.appealed) appealed_ids.insert(r.id);
    recorder_->Begin("serve.disposition");
    for (const sim::Request& r : batch.requests) {
      if (appealed_ids.count(r.id) == 0) {
        recorder_->FlowEnd("serve.request", RequestFlowId(r));
      }
    }
    recorder_->End("serve.disposition");
  }

  if (!commit.appealed.empty()) {
    appeal_counter_->Increment(commit.appealed.size());
    batcher_->AddCarryover(std::move(commit.appealed));
    carryover_gauge_->Set(static_cast<double>(batcher_->carryover_size()));
  }
  store_.CommitAccepted(commit.accepted);
  assigned_counter_->Increment(commit.accepted.size());
  size_t unmatched = 0;
  for (int64_t a : assignment) {
    if (a < 0) ++unmatched;
  }
  unmatched_counter_->Increment(unmatched);

  auto now = std::chrono::steady_clock::now();
  for (const auto& arrival : batch.arrival_times) {
    e2e_latency_hist_->Record(
        std::chrono::duration<double>(now - arrival).count());
  }
  return Status::OK();
}

void AssignmentService::RetireWork(int64_t units) {
  if (units == 0) return;
  bool idle;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    in_system_ -= units;
    idle = in_system_ <= 0;
  }
  if (idle) idle_cv_.notify_all();
}

void AssignmentService::SetError(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_.ok()) error_ = status;
  }
  idle_cv_.notify_all();
}

ServeStats AssignmentService::Stats() const {
  ServeStats stats;
  if (!started_) return stats;
  stats.submitted = submitted_counter_->value();
  stats.shed = shed_counter_->value();
  stats.batches = batch_counter_->value();
  stats.assigned = assigned_counter_->value();
  stats.unmatched = unmatched_counter_->value();
  stats.appeals = appeal_counter_->value();
  stats.size_closes = size_close_counter_->value();
  stats.deadline_closes = deadline_close_counter_->value();
  stats.flush_closes = flush_close_counter_->value();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.assign_seconds = assign_seconds_;
  }
  return stats;
}

}  // namespace lacb::serve
